//! Adversarial traffic against the running system: every malformation at
//! every protocol layer — including the oversized frames that exploited
//! the paper's unverified prototype — plus random junk, interleaved with
//! valid commands. The end-to-end property must survive all of it.
//!
//! ```sh
//! cargo run --release --example malformed_packet_fuzz [seed] [rounds]
//! ```

use lightbulb_system::devices::workload::{Malformation, TrafficGen};
use lightbulb_system::integration::{end_to_end_lightbulb, SystemConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0xF00D);
    let rounds: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let config = SystemConfig::default();
    println!("fuzzing with seed {seed}, {rounds} rounds\n");

    // Round 0: one of each malformation, pure attack traffic.
    let mut gen = TrafficGen::new(seed);
    let frames: Vec<Vec<u8>> = Malformation::ALL
        .iter()
        .map(|k| gen.malformed(*k))
        .collect();
    for (k, f) in Malformation::ALL.iter().zip(&frames) {
        println!("  {k:?}: {} bytes", f.len());
    }
    let report = end_to_end_lightbulb(&config, &frames, 1_200_000, Some(&[]))
        .expect("attack traffic must be ignored");
    println!(
        "pure-attack round: {} events checked, bulb untouched ✓\n",
        report.events_checked
    );

    // Remaining rounds: random mixtures; the bulb must track exactly the
    // valid commands.
    for round in 1..rounds {
        let mut gen = TrafficGen::new(seed + round as u64);
        let (frames, expected) = gen.mixed(8);
        let report = end_to_end_lightbulb(&config, &frames, 2_000_000, Some(&expected))
            .unwrap_or_else(|e| panic!("round {round} failed: {e}"));
        println!(
            "mixed round {round}: {} frames ({} valid), {} events, history {:?} ✓",
            frames.len(),
            expected.len(),
            report.events_checked,
            report.run.bulb_history
        );
    }
    println!("\nall rounds PASSED: malformed traffic cannot actuate the lightbulb");
}

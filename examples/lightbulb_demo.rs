//! The verified IoT lightbulb, end to end (Figure 2 of the paper): the
//! Bedrock2 sources are compiled, booted at address 0 of the pipelined
//! processor, fed UDP packets through the simulated LAN9250, and the
//! resulting MMIO trace is checked against `goodHlTrace`.
//!
//! ```sh
//! cargo run --release --example lightbulb_demo
//! ```

use lightbulb_system::devices::TrafficGen;
use lightbulb_system::integration::{end_to_end_lightbulb, SystemConfig};
use lightbulb_system::lightbulb::good_hl_trace;

fn main() {
    let config = SystemConfig::default();
    let mut gen = TrafficGen::new(2026);

    println!("building the boot image from the Bedrock2 sources…");
    let image = lightbulb_system::integration::build_image(&config);
    println!(
        "  {} instructions, {} bytes, worst-case stack {} bytes\n",
        image.insts.len(),
        image.image_size(),
        image.max_stack_usage
    );

    let commands = [true, false, true, true, false];
    let frames: Vec<Vec<u8>> = commands.iter().map(|on| gen.command(*on)).collect();
    println!(
        "injecting {} UDP command packets: {commands:?}",
        frames.len()
    );

    let budget = 1_500_000;
    let report = end_to_end_lightbulb(&config, &frames, budget, Some(&commands))
        .expect("the end-to-end property must hold");

    println!("\nran {} pipeline cycles", report.run.cycles);
    println!("observed {} MMIO events", report.events_checked);
    println!("lightbulb history: {:?}", report.run.bulb_history);
    println!(
        "trace is a {} of goodHlTrace",
        if report.complete_member {
            "member"
        } else {
            "prefix"
        }
    );

    // Show the diagnostic machinery too: where would a corrupted trace
    // fail?
    let spec = good_hl_trace(config.driver);
    let mut corrupted = report.run.events.clone();
    corrupted.push(lightbulb_system::riscv::MmioEvent::store(
        lightbulb_system::lightbulb::layout::GPIO_OUTPUT_VAL,
        lightbulb_system::lightbulb::layout::LIGHTBULB_MASK,
    ));
    let matched = spec.longest_matching_prefix(&corrupted);
    println!(
        "\n(adding one rogue GPIO write: spec match stops at event {matched}/{})",
        corrupted.len()
    );
    println!("\nend-to-end check PASSED");
}

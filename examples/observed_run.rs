//! Observability tour: run the default verified configuration with
//! tracing on, print the cross-layer counter summary, and show how to get
//! the trace into Perfetto.
//!
//! ```sh
//! cargo run --release --example observed_run
//! ```
//!
//! To inspect the timeline, redirect the Chrome trace to a file and open
//! it at <https://ui.perfetto.dev>:
//!
//! ```sh
//! cargo run --release --example observed_run -- --trace > trace.json
//! ```

use lightbulb_system::devices::TrafficGen;
use lightbulb_system::integration::SystemConfig;

fn main() {
    let mut gen = TrafficGen::new(42);
    let frames = vec![gen.command(true), gen.command(false)];
    let run = SystemConfig::default().run_traced(&frames, 600_000);
    assert!(run.error.is_none(), "{:?}", run.error);

    if std::env::args().any(|a| a == "--trace") {
        // Just the Perfetto document on stdout, commentary on stderr.
        println!("{}", run.report.chrome_trace());
        eprintln!(
            "({} trace events; load the JSON at https://ui.perfetto.dev)",
            run.report.trace_events.len()
        );
        return;
    }

    println!("=== run ===");
    println!(
        "{} cycles, {} MMIO events, bulb history {:?}, final pc 0x{:08x}",
        run.cycles,
        run.events.len(),
        run.bulb_history,
        run.report.final_pc
    );

    println!("\n=== cross-layer counters ===");
    print!("{}", run.report.summary());

    let c = &run.report.counters;
    let cycles = c.get("pipeline.cycles").max(1);
    println!("\n=== derived ===");
    println!(
        "IPC {:.3}  ({} retired / {} cycles)",
        c.get("pipeline.retired") as f64 / cycles as f64,
        c.get("pipeline.retired"),
        cycles
    );
    println!(
        "stall rate {:.1}%  flush rate {:.2}%  BTB hit rate {:.1}%",
        100.0 * c.get("pipeline.stall.total") as f64 / cycles as f64,
        100.0 * c.get("pipeline.flush.total") as f64 / cycles as f64,
        100.0 * c.get("pipeline.btb.hit") as f64
            / (c.get("pipeline.btb.hit") + c.get("pipeline.btb.miss")).max(1) as f64
    );
    println!(
        "{} trace events recorded (rerun with --trace to export for Perfetto)",
        run.report.trace_events.len()
    );
}

//! Compiler differential testing: generate random terminating Bedrock2
//! programs, run each through the interpreter and (compiled) through the
//! ISA specification machine, and compare the I/O traces — the executable
//! analogue of the paper's compiler-correctness theorem, plus the same
//! check for the optimizing pipeline and the Kami single-cycle core.
//!
//! ```sh
//! cargo run --release --example differential_compiler [count] [seed]
//! ```

use lightbulb_system::integration::differential::{
    check_compiler_differential, check_isa_consistency, check_optimizer_differential, DiffError,
};
use lightbulb_system::integration::progen::ProgGen;

fn main() {
    let mut args = std::env::args().skip(1);
    let count: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let seed0: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0);

    let mut stats = [(0u64, 0u64); 3]; // (conclusive, inconclusive)
    let names = [
        "compiler (naive)",
        "compiler (optimizing)",
        "ISA consistency",
    ];

    for seed in seed0..seed0 + count {
        let prog = ProgGen::new(seed).gen_program();
        let checks: [&dyn Fn() -> Result<(), DiffError>; 3] = [
            &|| check_compiler_differential(&prog, false),
            &|| check_optimizer_differential(&prog),
            &|| check_isa_consistency(&prog, false),
        ];
        for (i, check) in checks.iter().enumerate() {
            match check() {
                Ok(()) => stats[i].0 += 1,
                Err(DiffError::SourceUb(_)) => stats[i].1 += 1,
                Err(e) => {
                    eprintln!("=== BUG FOUND (seed {seed}, {}) ===", names[i]);
                    eprintln!("{e}\n\nprogram:\n{prog}");
                    std::process::exit(1);
                }
            }
        }
        if (seed - seed0 + 1).is_multiple_of(50) {
            println!("…{} programs", seed - seed0 + 1);
        }
    }

    println!("\n{count} random programs, three checks each:");
    for (name, (ok, skip)) in names.iter().zip(stats) {
        println!("  {name:24} {ok} agree, {skip} inconclusive (source UB)");
    }
    println!("\nno differences found");
}

//! A *second* application on the same verified platform (§3: "while this
//! system could be used for any simple application, this paper focuses on
//! one specific example"): a packet counter that displays, on the GPIO
//! output pins, how many frames have arrived — reusing the SPI and
//! LAN9250 drivers unchanged and swapping only the application function.
//!
//! ```sh
//! cargo run --release --example packet_counter
//! ```

use lightbulb_system::bedrock2::dsl::*;
use lightbulb_system::bedrock2::{Function, Program};
use lightbulb_system::compiler::{compile, CompileOptions, Entry, MmioExtCompiler};
use lightbulb_system::devices::{Board, SpiConfig, TrafficGen};
use lightbulb_system::lightbulb::{lan9250_driver, layout, spi_driver};
use lightbulb_system::processor::{PipelineConfig, Pipelined};

/// The whole new application: poll; if a frame arrived (any frame — this
/// app is a counter, not a validator), bump a counter kept in RAM and
/// mirror it onto the GPIO output pins.
fn counter_app() -> Vec<Function> {
    let counter_addr = 0x8000; // scratch word above the code, below the stack
    let init = Function::new(
        "counter_init",
        &[],
        &["err"],
        block([
            store4(lit(counter_addr), lit(0)),
            interact(&[], "MMIOWRITE", [lit(layout::GPIO_OUTPUT_EN), lit(0xFF)]),
            call(&["err"], "lan_init", []),
        ]),
    );
    let step = Function::new(
        "counter_step",
        &[],
        &[],
        stackalloc(
            "buf",
            layout::RX_BUFFER_BYTES,
            block([
                call(&["len", "code"], "lan_tryrecv", [var("buf")]),
                // code 0 = copied, 2 = rejected by the length guard: both
                // count as "a frame arrived".
                when(
                    or(eq(var("code"), lit(0)), eq(var("code"), lit(2))),
                    block([
                        set("n", add(load4(lit(counter_addr)), lit(1))),
                        store4(lit(counter_addr), var("n")),
                        interact(
                            &[],
                            "MMIOWRITE",
                            [lit(layout::GPIO_OUTPUT_VAL), and(var("n"), lit(0xFF))],
                        ),
                    ]),
                ),
            ]),
        ),
    );
    vec![init, step]
}

fn main() {
    // Drivers reused verbatim; only the application functions are new.
    let mut fns = spi_driver::functions(true);
    fns.extend(lan9250_driver::functions(true, false));
    fns.extend(counter_app());
    let prog = Program::from_functions(fns);
    assert!(prog.check().is_empty());

    let image = compile(
        &prog,
        &MmioExtCompiler,
        &CompileOptions {
            stack_top: 0x1_0000,
            stack_size: Some(0x4000),
            entry: Entry::EventLoop {
                init: Some("counter_init".to_string()),
                step: "counter_step".to_string(),
            },
            optimize: false,
            spill_everything: false,
        },
    )
    .expect("the counter app compiles");
    println!(
        "compiled the packet-counter app: {} instructions (drivers reused unchanged)",
        image.insts.len()
    );

    let mut board = Board::new(SpiConfig::default());
    let mut gen = TrafficGen::new(7);
    // Mixed traffic: the counter counts all frames, valid or not.
    let (frames, valid) = gen.mixed(10);
    for f in &frames {
        board.inject_frame(f);
    }

    let mut cpu = Pipelined::new(&image.bytes(), 0x1_0000, board, PipelineConfig::default());
    cpu.run(4_000_000);
    let count = cpu.mem.mmio.gpio.output_val;
    println!(
        "injected {} frames ({} valid for the lightbulb app — irrelevant here)",
        frames.len(),
        valid.len()
    );
    println!("GPIO pins now display: {count}");
    assert_eq!(count as usize, frames.len(), "every frame must be counted");
    println!("packet counter agrees ✓ — same platform, different application");
}

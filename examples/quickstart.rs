//! Quickstart: write a Bedrock2 program, compile it to RV32IM, run it on
//! the ISA specification machine, and inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lightbulb_system::bedrock2::dsl::*;
use lightbulb_system::bedrock2::{Function, Program};
use lightbulb_system::compiler::{compile, CompileOptions, NoExtCompiler};
use lightbulb_system::riscv::{Memory, NoMmio, SpecMachine};

fn main() {
    // Euclid's gcd, plus a main that computes gcd(252, 105).
    let gcd = Function::new(
        "gcd",
        &["a", "b"],
        &["a"],
        while_(
            var("b"),
            block([
                set("t", remu(var("a"), var("b"))),
                set("a", var("b")),
                set("b", var("t")),
            ]),
        ),
    );
    let main_fn = Function::new(
        "main",
        &[],
        &["g"],
        call(&["g"], "gcd", [lit(252), lit(105)]),
    );
    let program = Program::from_functions([gcd, main_fn]);
    println!("=== Bedrock2 source ===\n{program}");

    let image =
        compile(&program, &NoExtCompiler, &CompileOptions::default()).expect("program compiles");
    println!("=== RV32IM ({} instructions) ===", image.insts.len());
    println!("{}", image.listing());
    println!(
        "static worst-case stack usage: {} bytes",
        image.max_stack_usage
    );

    let mut machine = SpecMachine::new(Memory::with_size(0x1_0000), NoMmio);
    machine.load_program(0, &image.words());
    let outcome = machine
        .run_until_ebreak(1_000_000)
        .expect("no undefined behavior");
    assert!(
        matches!(outcome, lightbulb_system::riscv::StepOutcome::Halted { .. }),
        "program must halt"
    );
    let result = machine
        .mem
        .load_u32(image.stack_top - 4)
        .expect("return slot");
    println!("=== result ===");
    println!(
        "gcd(252, 105) = {result} after {} instructions",
        machine.instret
    );
    assert_eq!(result, 21);
}

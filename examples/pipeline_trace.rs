//! Watch the 4-stage pipeline execute, cycle by cycle: run a small program
//! on both processor models, compare their costs, and demonstrate the
//! stale-instruction hazard (§5.6) plus the refinement checker (§5.7).
//!
//! ```sh
//! cargo run --example pipeline_trace
//! ```

use lightbulb_system::processor::{check_refinement, PipelineConfig, Pipelined, SingleCycle};
use lightbulb_system::riscv::{encode, Instruction as I, NoMmio, Reg};

fn image(prog: &[I]) -> Vec<u8> {
    prog.iter().flat_map(|i| encode(i).to_le_bytes()).collect()
}

fn main() {
    // A 200-iteration countdown loop with a dependent add chain.
    let prog = [
        I::Addi {
            rd: Reg::new(10),
            rs1: Reg::X0,
            imm: 200,
        },
        I::Addi {
            rd: Reg::new(11),
            rs1: Reg::X0,
            imm: 0,
        },
        I::Add {
            rd: Reg::new(11),
            rs1: Reg::new(11),
            rs2: Reg::new(10),
        },
        I::Addi {
            rd: Reg::new(10),
            rs1: Reg::new(10),
            imm: -1,
        },
        I::Bne {
            rs1: Reg::new(10),
            rs2: Reg::X0,
            offset: -8,
        },
        I::Ebreak,
    ];
    let img = image(&prog);

    let mut spec = SingleCycle::new(&img, 0x1000, NoMmio);
    spec.run(1_000_000);

    for (name, btb) in [("with BTB", Some(6)), ("without BTB", None)] {
        let config = PipelineConfig {
            btb_bits: btb,
            ..PipelineConfig::default()
        };
        let mut pipe = Pipelined::new(&img, 0x1000, NoMmio, config);
        pipe.run(1_000_000);
        assert_eq!(pipe.reg(11), spec.rf.read(11));
        println!(
            "pipeline {name:12}: {:6} cycles, IPC {:.2}, {} stalls, {} mispredicts",
            pipe.cycle,
            pipe.ipc(),
            pipe.stats.stalls,
            pipe.stats.mispredicts
        );
    }
    println!(
        "single-cycle spec  : {:6} cycles (1.00 IPC), sum = {}",
        spec.cycle,
        spec.rf.read(11)
    );

    // Refinement: every pipelined run is a legal spec-core run.
    let report = check_refinement(
        &img,
        0x1000,
        NoMmio,
        |_| false,
        PipelineConfig::default(),
        1_000_000,
    )
    .expect("refinement holds");
    println!(
        "\nrefinement check: pipelined ({} cycles, {} retired) ⊑ spec ({} cycles) ✓",
        report.impl_cycles, report.impl_retired, report.spec_cycles
    );

    // The stale-instruction hazard: self-modifying code without fence.i
    // executes stale bytes from the I$ — which is why XAddrs exists.
    let addi9 = encode(&I::Addi {
        rd: Reg::new(5),
        rs1: Reg::X0,
        imm: 9,
    });
    let hi = addi9.wrapping_add(0x800) >> 12;
    let lo = lightbulb_system::riscv::word::sign_extend(addi9 & 0xFFF, 12) as i32;
    let smc = [
        I::Lui {
            rd: Reg::new(6),
            imm20: hi & 0xFFFFF,
        },
        I::Addi {
            rd: Reg::new(6),
            rs1: Reg::new(6),
            imm: lo,
        },
        I::Sw {
            rs1: Reg::X0,
            rs2: Reg::new(6),
            offset: 16,
        },
        I::NOP,
        I::Addi {
            rd: Reg::new(5),
            rs1: Reg::X0,
            imm: 7,
        }, // overwritten with "9"
        I::Ebreak,
    ];
    let mut pipe = Pipelined::new(&image(&smc), 0x1000, NoMmio, PipelineConfig::default());
    pipe.run(1_000_000);
    let mut spec = SingleCycle::new(&image(&smc), 0x1000, NoMmio);
    spec.run(1_000_000);
    println!(
        "\nself-modifying code without fence.i: pipeline sees x5 = {}, spec core sees x5 = {}",
        pipe.reg(5),
        spec.rf.read(5)
    );
    println!("…which is exactly the divergence the XAddrs discipline (§5.6) rules out.");
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access and no vendored registry, so
//! this workspace ships the subset of the criterion API its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with `iter` /
//! `iter_batched`, [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is simple and honest: each benchmark runs `sample_size`
//! timed samples (after one warm-up), where each sample times a batch of
//! enough iterations to exceed ~2 ms, and reports the **median** per-call
//! time. There are no statistical tests, plots, or saved baselines. Every
//! measurement is also recorded in [`Criterion::results`] so harnesses can
//! assert on ratios (the observability overhead bench does).

use std::time::Instant;

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, ignored: every batch
/// here runs the routine once per setup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to benchmark closures; runs and times the workload.
pub struct Bencher<'a> {
    samples: usize,
    /// Collected per-call times in nanoseconds (one per sample).
    result_ns: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine` called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: how many calls fill ~2 ms?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1) as u64;
        let batch = (2_000_000 / once).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.result_ns
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.result_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    if v.is_empty() {
        0.0
    } else {
        v[v.len() / 2]
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// `(benchmark id, median ns per call)` for every finished benchmark.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.into(),
            samples: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        self.run(id, 10, f);
    }

    /// Median per-call nanoseconds of a finished benchmark, by exact id.
    pub fn median_ns(&self, id: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|(n, _)| n == id)
            .map(|(_, ns)| *ns)
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, samples: usize, mut f: F) {
        let mut ns = Vec::new();
        f(&mut Bencher {
            samples,
            result_ns: &mut ns,
        });
        let med = median(ns);
        println!("{id:<55} time: [{}]", human(med));
        self.results.push((id, med));
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one benchmark in the group (id is `prefix/name`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let id = format!("{}/{}", self.prefix, name.into());
        let samples = self.samples;
        self.c.run(id, samples, f);
    }

    /// Ends the group (exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(c.median_ns("demo/noop").is_some());
        assert!(c.median_ns("demo/batched").unwrap() >= 0.0);
        assert_eq!(c.results.len(), 2);
    }

    #[test]
    fn median_is_positional() {
        assert_eq!(super::median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(super::median(vec![]), 0.0);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry, so
//! this workspace ships the minimal subset of the `rand` 0.10 API it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] sampling methods (`random`, `random_range`, `random_bool`).
//!
//! The generator is SplitMix64 — deterministic, seedable, and of more than
//! adequate quality for traffic generation and randomized differential
//! testing. It is **not** the real `StdRng` (ChaCha12) and must not be used
//! for anything security-sensitive.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's full range.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform integer can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample from empty range");
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start() as i128, *self.end() as i128);
                let span = end - start + 1;
                assert!(span > 0, "cannot sample from empty range");
                (start + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The sampling interface (the subset of `rand::Rng` this workspace uses).
pub trait RngExt: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand`'s `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = rng.random_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn byte_sampling_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[rng.random::<u8>() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all byte values reachable");
    }
}

//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator (a plain sampler — no shrink tree).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Builds a recursive strategy: `recurse` receives a handle generating
    /// the previous depth level, up to `depth` levels above `self`.
    /// (`_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility and ignored — depth alone bounds the trees here.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![(1, leaf.clone()), (2, recurse(strat).boxed())]).boxed();
        }
        strat
    }
}

/// A cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between strategies of one value type (what
/// `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % self.total as u64) as u32;
        for (w, strat) in &self.arms {
            if pick < *w {
                return strat.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample from empty range");
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start() as i128, *self.end() as i128);
                let span = end - start + 1;
                assert!(span > 0, "cannot sample from empty range");
                (start + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S1);
impl_tuple_strategy!(S1, S2);
impl_tuple_strategy!(S1, S2, S3);
impl_tuple_strategy!(S1, S2, S3, S4);
impl_tuple_strategy!(S1, S2, S3, S4, S5);
impl_tuple_strategy!(S1, S2, S3, S4, S5, S6);

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

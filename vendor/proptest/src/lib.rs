//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access and no vendored registry, so
//! this workspace ships the subset of the proptest API its property tests
//! use: the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! `prop_recursive`, and `boxed`; range/tuple/`Just`/`any` strategies;
//! `collection::vec`; the `proptest!`, `prop_oneof!`, `prop_compose!`,
//! `prop_assert!`, and `prop_assert_eq!` macros; and
//! [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from real proptest, on purpose:
//!
//! * sampling is **deterministic**: the RNG is seeded from the test
//!   function's name and the case index, so failures reproduce exactly
//!   without a persistence file;
//! * there is **no shrinking** — a failing case panics with the assertion
//!   message (the asserting macros use `assert!`/`assert_eq!` underneath,
//!   so values still print);
//! * strategies are plain samplers, not shrink trees.

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng, Union};

/// Runner configuration (case counts).
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// Lengths a [`vec`] strategy may produce: an exact `usize` or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.end > self.start, "empty length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start() + (rng.next_u64() as usize) % (self.end() - self.start() + 1)
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (panics with the message; no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted or unweighted union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines a function returning a strategy built by sampling named
/// sub-strategies and mapping them through a body.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ($($outer:tt)*)
                                ($($var:ident in $strat:expr),+ $(,)?)
                                -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($var,)+)| $body,
            )
        }
    };
}

/// Hashes a string to a seed (FNV-1a), so each property gets a distinct
/// deterministic RNG stream.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ ((case as u64) << 1 | 1)
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)`
/// runs `cases` deterministic samples of its strategies.
#[macro_export]
macro_rules! proptest {
    // Internal `@funcs` arms must precede the public catch-all, or the
    // catch-all re-wraps every recursive call forever.
    (@funcs ($config:expr) ) => {};
    (
        @funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::strategy::TestRng::new(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                // Bodies may bail out of a case with `return Ok(())` (real
                // proptest's Result style), so run them in a closure.
                #[allow(clippy::redundant_closure_call)]
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("property returned Err: {e}");
                }
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(
            @funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn arb_small() -> impl Strategy<Value = u32> {
        prop_oneof![
            Just(1u32),
            10u32..20,
            any::<u32>().prop_map(|v| v % 5 + 100)
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u32..7, y in -4i32..=4) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_hits_only_declared_arms(x in arb_small()) {
            prop_assert!(x == 1 || (10..20).contains(&x) || (100..105).contains(&x));
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_terminate(
            t in (0u32..10).prop_map(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
        ) {
            prop_assert!(depth(&t) <= 3);
        }
    }

    prop_compose! {
        fn pair()(a in 0u32..10, b in 0u32..10) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategies_work((a, b) in pair()) {
            prop_assert!(a < 10 && b < 10);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut r1 = TestRng::new(crate::seed_for("x", 0));
        let mut r2 = TestRng::new(crate::seed_for("x", 0));
        let s = collection::vec(any::<u32>(), 8usize);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}

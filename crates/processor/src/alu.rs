//! Combinational decode/execute logic shared by the single-cycle spec core
//! and the pipelined implementation.
//!
//! `execute` computes, for one instruction and its register operands, the
//! complete set of datapath control signals: the write-back value, the
//! memory operation (if any), the actual next pc, and the halt condition.
//! Nothing here knows about pipelines, caches, or hazards — those live in
//! the cores, which is exactly the split that makes checking the pipeline
//! against the spec core informative.
//!
//! The hardware is total: an [`riscv_spec::Instruction::Invalid`] word
//! executes as a nop, misaligned accesses use lane masking, and division
//! follows the RISC-V conventions (shared, via `riscv_spec::word`, with the
//! ISA specification — one source of truth for the tricky bit patterns).

use riscv_spec::word;
use riscv_spec::Instruction;

/// The memory operation an instruction requests of the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemKind {
    /// `lb`: sign-extended byte load.
    Lb,
    /// `lh`: sign-extended halfword load.
    Lh,
    /// `lw`: word load.
    Lw,
    /// `lbu`: zero-extended byte load.
    Lbu,
    /// `lhu`: zero-extended halfword load.
    Lhu,
    /// `sb`: byte store.
    Sb,
    /// `sh`: halfword store.
    Sh,
    /// `sw`: word store.
    Sw,
}

impl MemKind {
    /// True for the load variants.
    pub fn is_load(self) -> bool {
        matches!(
            self,
            MemKind::Lb | MemKind::Lh | MemKind::Lw | MemKind::Lbu | MemKind::Lhu
        )
    }
}

/// A requested memory access: `value` is meaningful for stores only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// Which access.
    pub kind: MemKind,
    /// Byte address (possibly misaligned; the memory system masks lanes).
    pub addr: u32,
    /// Store data (ignored for loads).
    pub value: u32,
}

/// All datapath outputs of executing one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOut {
    /// Value to write to `rd` for non-load instructions (`None` when the
    /// instruction writes no register or is a load, whose value comes from
    /// the memory system).
    pub wb_value: Option<u32>,
    /// Memory access to perform, if any.
    pub mem: Option<MemOp>,
    /// The architecturally correct next pc.
    pub next_pc: u32,
    /// True for `ebreak`/`ecall` (the cores halt).
    pub halt: bool,
    /// True for `fence.i` (the pipeline refills its instruction cache and
    /// refetches).
    pub fence_i: bool,
}

/// Executes one decoded instruction combinationally.
///
/// `a` and `b` are the values of `rs1` and `rs2` (zero where the
/// instruction has no such operand). Jump targets have their low bits
/// masked (hardware truncates; the software contract treats misaligned
/// targets as UB before they get here).
pub fn execute(inst: &Instruction, pc: u32, a: u32, b: u32) -> ExecOut {
    use Instruction::*;
    let seq = pc.wrapping_add(4);
    let mut out = ExecOut {
        wb_value: None,
        mem: None,
        next_pc: seq,
        halt: false,
        fence_i: false,
    };
    match *inst {
        Lui { imm20, .. } => out.wb_value = Some(imm20 << 12),
        Auipc { imm20, .. } => out.wb_value = Some(pc.wrapping_add(imm20 << 12)),
        Jal { offset, .. } => {
            out.wb_value = Some(seq);
            out.next_pc = pc.wrapping_add(offset as u32) & !3;
        }
        Jalr { offset, .. } => {
            out.wb_value = Some(seq);
            out.next_pc = a.wrapping_add(offset as u32) & !3;
        }
        Beq { offset, .. } => branch(&mut out, pc, offset, a == b),
        Bne { offset, .. } => branch(&mut out, pc, offset, a != b),
        Blt { offset, .. } => branch(&mut out, pc, offset, word::lts(a, b)),
        Bge { offset, .. } => branch(&mut out, pc, offset, !word::lts(a, b)),
        Bltu { offset, .. } => branch(&mut out, pc, offset, word::ltu(a, b)),
        Bgeu { offset, .. } => branch(&mut out, pc, offset, !word::ltu(a, b)),
        Lb { offset, .. } => mem(&mut out, MemKind::Lb, a, offset, 0),
        Lh { offset, .. } => mem(&mut out, MemKind::Lh, a, offset, 0),
        Lw { offset, .. } => mem(&mut out, MemKind::Lw, a, offset, 0),
        Lbu { offset, .. } => mem(&mut out, MemKind::Lbu, a, offset, 0),
        Lhu { offset, .. } => mem(&mut out, MemKind::Lhu, a, offset, 0),
        Sb { offset, .. } => mem(&mut out, MemKind::Sb, a, offset, b),
        Sh { offset, .. } => mem(&mut out, MemKind::Sh, a, offset, b),
        Sw { offset, .. } => mem(&mut out, MemKind::Sw, a, offset, b),
        Addi { imm, .. } => out.wb_value = Some(a.wrapping_add(imm as u32)),
        Slti { imm, .. } => out.wb_value = Some(word::lts(a, imm as u32) as u32),
        Sltiu { imm, .. } => out.wb_value = Some(word::ltu(a, imm as u32) as u32),
        Xori { imm, .. } => out.wb_value = Some(a ^ imm as u32),
        Ori { imm, .. } => out.wb_value = Some(a | imm as u32),
        Andi { imm, .. } => out.wb_value = Some(a & imm as u32),
        Slli { shamt, .. } => out.wb_value = Some(word::sll(a, shamt)),
        Srli { shamt, .. } => out.wb_value = Some(word::srl(a, shamt)),
        Srai { shamt, .. } => out.wb_value = Some(word::sra(a, shamt)),
        Add { .. } => out.wb_value = Some(a.wrapping_add(b)),
        Sub { .. } => out.wb_value = Some(a.wrapping_sub(b)),
        Sll { .. } => out.wb_value = Some(word::sll(a, b)),
        Slt { .. } => out.wb_value = Some(word::lts(a, b) as u32),
        Sltu { .. } => out.wb_value = Some(word::ltu(a, b) as u32),
        Xor { .. } => out.wb_value = Some(a ^ b),
        Srl { .. } => out.wb_value = Some(word::srl(a, b)),
        Sra { .. } => out.wb_value = Some(word::sra(a, b)),
        Or { .. } => out.wb_value = Some(a | b),
        And { .. } => out.wb_value = Some(a & b),
        Mul { .. } => out.wb_value = Some(a.wrapping_mul(b)),
        Mulh { .. } => out.wb_value = Some(word::mulh(a, b)),
        Mulhsu { .. } => out.wb_value = Some(word::mulhsu(a, b)),
        Mulhu { .. } => out.wb_value = Some(word::mulhu(a, b)),
        Div { .. } => out.wb_value = Some(word::div(a, b)),
        Divu { .. } => out.wb_value = Some(word::divu(a, b)),
        Rem { .. } => out.wb_value = Some(word::rem(a, b)),
        Remu { .. } => out.wb_value = Some(word::remu(a, b)),
        Fence => {}
        FenceI => out.fence_i = true,
        Ecall | Ebreak => out.halt = true,
        Invalid { .. } => {} // hardware treats undecodable words as nops
    }
    out
}

fn branch(out: &mut ExecOut, pc: u32, offset: i32, taken: bool) {
    if taken {
        out.next_pc = pc.wrapping_add(offset as u32) & !3;
    }
}

fn mem(out: &mut ExecOut, kind: MemKind, base: u32, offset: i32, value: u32) {
    out.mem = Some(MemOp {
        kind,
        addr: base.wrapping_add(offset as u32),
        value,
    });
}

/// Extracts and extends a load result from the full word the memory port
/// returned. Lanes are selected by the low address bits; accesses that
/// would cross the word boundary read zeros in the missing bytes (a total
/// stand-in for behavior that is UB at the software level).
pub fn load_result(kind: MemKind, addr: u32, word_read: u32) -> u32 {
    let lane = addr & 3;
    let shifted = word_read >> (8 * lane);
    match kind {
        MemKind::Lb => word::sext8(shifted & 0xFF),
        MemKind::Lbu => shifted & 0xFF,
        MemKind::Lh => word::sext16(shifted & 0xFFFF),
        MemKind::Lhu => shifted & 0xFFFF,
        MemKind::Lw => shifted,
        _ => unreachable!("load_result on a store"),
    }
}

/// Computes the shifted write data and 4-bit byte-enable mask for a store
/// (the signals of the §5.5 memory interface).
pub fn store_signals(kind: MemKind, addr: u32, value: u32) -> (u32, u8) {
    let lane = addr & 3;
    match kind {
        MemKind::Sb => (value << (8 * lane), 1u8 << lane),
        MemKind::Sh => {
            let be = 0b11u8 << lane;
            (value << (8 * lane), be & 0xF)
        }
        MemKind::Sw => (value, 0xF),
        _ => unreachable!("store_signals on a load"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_spec::Reg;

    #[test]
    fn alu_results() {
        let i = Instruction::Add {
            rd: Reg::X5,
            rs1: Reg::X6,
            rs2: Reg::X7,
        };
        assert_eq!(execute(&i, 0, 2, 3).wb_value, Some(5));
        let i = Instruction::Sltu {
            rd: Reg::X5,
            rs1: Reg::X6,
            rs2: Reg::X7,
        };
        assert_eq!(execute(&i, 0, 1, 2).wb_value, Some(1));
    }

    #[test]
    fn branches_compute_next_pc() {
        let i = Instruction::Beq {
            rs1: Reg::X5,
            rs2: Reg::X6,
            offset: -8,
        };
        assert_eq!(execute(&i, 100, 7, 7).next_pc, 92);
        assert_eq!(execute(&i, 100, 7, 8).next_pc, 104);
    }

    #[test]
    fn jal_links_and_jumps() {
        let i = Instruction::Jal {
            rd: Reg::X1,
            offset: 16,
        };
        let o = execute(&i, 100, 0, 0);
        assert_eq!(o.wb_value, Some(104));
        assert_eq!(o.next_pc, 116);
    }

    #[test]
    fn jalr_masks_low_bit() {
        let i = Instruction::Jalr {
            rd: Reg::X0,
            rs1: Reg::X5,
            offset: 1,
        };
        assert_eq!(execute(&i, 0, 100, 0).next_pc, 100 & !3);
    }

    #[test]
    fn loads_request_memory() {
        let i = Instruction::Lw {
            rd: Reg::X5,
            rs1: Reg::X6,
            offset: 4,
        };
        let o = execute(&i, 0, 0x100, 0);
        assert_eq!(
            o.mem,
            Some(MemOp {
                kind: MemKind::Lw,
                addr: 0x104,
                value: 0
            })
        );
        assert_eq!(o.wb_value, None);
    }

    #[test]
    fn halt_and_fence_signals() {
        assert!(execute(&Instruction::Ebreak, 0, 0, 0).halt);
        assert!(execute(&Instruction::Ecall, 0, 0, 0).halt);
        assert!(execute(&Instruction::FenceI, 0, 0, 0).fence_i);
        let nop = execute(&Instruction::Invalid { word: 0 }, 8, 0, 0);
        assert_eq!(nop.next_pc, 12);
        assert!(!nop.halt);
    }

    #[test]
    fn load_lane_extraction() {
        let word = 0x8877_6655;
        assert_eq!(load_result(MemKind::Lbu, 0x100, word), 0x55);
        assert_eq!(load_result(MemKind::Lbu, 0x103, word), 0x88);
        assert_eq!(load_result(MemKind::Lb, 0x103, word), 0xFFFF_FF88);
        assert_eq!(load_result(MemKind::Lhu, 0x102, word), 0x8877);
        assert_eq!(load_result(MemKind::Lh, 0x102, word), 0xFFFF_8877);
        assert_eq!(load_result(MemKind::Lw, 0x100, word), word);
    }

    #[test]
    fn store_lane_signals() {
        assert_eq!(
            store_signals(MemKind::Sb, 0x102, 0xAB),
            (0x00AB_0000, 0b0100)
        );
        assert_eq!(
            store_signals(MemKind::Sh, 0x102, 0xBEEF),
            (0xBEEF_0000, 0b1100)
        );
        assert_eq!(store_signals(MemKind::Sw, 0x100, 7), (7, 0xF));
    }
}

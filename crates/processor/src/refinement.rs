//! The refinement checker: pipelined ⊑ single-cycle.
//!
//! The paper proves that every trace of the pipelined processor is a trace
//! of the single-cycle spec processor (§5.7). Traces differ only through
//! *input nondeterminism* — the values the environment returns for MMIO
//! loads — so the executable check mirrors the proof's structure exactly:
//!
//! 1. run the pipelined implementation against the real devices and record
//!    its label trace;
//! 2. run the spec core against a [`ReplayHandler`] that answers each MMIO
//!    load with the value the implementation observed (the environment
//!    "chooses" the same inputs) and checks each store matches;
//! 3. the run refines iff the spec core consumes exactly the same label
//!    sequence and, when both runs halt, the architectural state agrees.
//!
//! Like `kstep1_sound`, the statement is conditional on the software
//! contract: programs that trigger software-level undefined behavior
//! (self-modifying code without `fence.i`, misaligned MMIO, …) are outside
//! it, and callers are expected to screen them with the `riscv-spec`
//! machine first (the `integration` crate's differential tests do).

use crate::pipeline::{PipelineConfig, Pipelined};
use crate::spec_core::SingleCycle;
use obs::Counters;
use riscv_spec::{AccessSize, MmioEvent, MmioEventKind, MmioHandler};
use std::collections::VecDeque;

/// How a pipelined run failed to refine the spec core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Divergence {
    /// The spec core performed an MMIO access the implementation never did
    /// (or in a different order / with different data).
    TraceMismatch {
        /// Index of the first mismatching event.
        index: usize,
        /// What the implementation's trace holds there, if anything.
        implementation: Option<MmioEvent>,
        /// What the spec core attempted.
        spec: MmioEvent,
    },
    /// The spec core halted having consumed only a prefix of the
    /// implementation's trace (or vice versa).
    TraceLength {
        /// Events in the implementation trace.
        implementation: usize,
        /// Events the spec consumed.
        spec: usize,
    },
    /// Both halted but architectural register files differ.
    RegisterMismatch {
        /// First differing register index.
        reg: u8,
        /// Implementation value.
        implementation: u32,
        /// Spec value.
        spec: u32,
    },
    /// Both halted but memories differ.
    MemoryMismatch {
        /// First differing byte address.
        addr: u32,
    },
    /// One side halted and the other did not within the cycle budget.
    HaltMismatch {
        /// Did the implementation halt?
        implementation: bool,
        /// Did the spec halt?
        spec: bool,
    },
}

/// Statistics from a successful refinement check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefinementReport {
    /// Hardware cycles the pipelined implementation ran.
    pub impl_cycles: u64,
    /// Instructions the implementation retired.
    pub impl_retired: u64,
    /// Cycles (= instructions) the spec core ran.
    pub spec_cycles: u64,
    /// MMIO events matched.
    pub events: usize,
}

/// Replays a recorded MMIO trace into a machine, checking each access.
#[derive(Clone, Debug)]
pub struct ReplayHandler<F> {
    queue: VecDeque<MmioEvent>,
    claims: F,
    consumed: usize,
    divergence: Option<Divergence>,
}

impl<F: Fn(u32) -> bool> ReplayHandler<F> {
    /// Creates a handler replaying `events`; `claims` tells which addresses
    /// are MMIO (it must match the device map the trace was recorded
    /// against).
    pub fn new(events: Vec<MmioEvent>, claims: F) -> ReplayHandler<F> {
        ReplayHandler {
            queue: events.into(),
            claims,
            consumed: 0,
            divergence: None,
        }
    }

    /// Number of events consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// The first recorded divergence, if any.
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    fn expect(&mut self, attempted: MmioEvent) -> u32 {
        if self.divergence.is_some() {
            return 0;
        }
        match self.queue.pop_front() {
            Some(rec)
                if rec.kind == attempted.kind
                    && rec.addr == attempted.addr
                    && (rec.kind == MmioEventKind::Load || rec.value == attempted.value) =>
            {
                self.consumed += 1;
                rec.value
            }
            other => {
                self.divergence = Some(Divergence::TraceMismatch {
                    index: self.consumed,
                    implementation: other,
                    spec: attempted,
                });
                0
            }
        }
    }
}

impl<F: Fn(u32) -> bool> MmioHandler for ReplayHandler<F> {
    fn is_mmio(&self, addr: u32, _size: AccessSize) -> bool {
        (self.claims)(addr)
    }

    fn load(&mut self, addr: u32, _size: AccessSize) -> u32 {
        self.expect(MmioEvent::load(addr, 0))
    }

    fn store(&mut self, addr: u32, _size: AccessSize, value: u32) {
        self.expect(MmioEvent::store(addr, value));
    }
}

/// Checks one program run: builds both cores over `image`, runs the
/// pipelined core against `devices`, replays into the spec core, and
/// compares.
///
/// # Errors
///
/// The first [`Divergence`] found. A bug planted in either core — or a
/// program outside the software contract — produces one.
pub fn check_refinement<M, F>(
    image: &[u8],
    ram_bytes: u32,
    devices: M,
    claims: F,
    config: PipelineConfig,
    max_cycles: u64,
) -> Result<RefinementReport, Divergence>
where
    M: MmioHandler,
    F: Fn(u32) -> bool,
{
    let mut imp = Pipelined::new(image, ram_bytes, devices, config);
    imp.run(max_cycles);
    let impl_events = imp.mem.events();

    let replay = ReplayHandler::new(impl_events.clone(), claims);
    let mut spec = SingleCycle::new(image, ram_bytes, replay);
    // Run the spec core until it halts, diverges, or — when the
    // implementation ran out of fuel mid-interaction — has consumed every
    // event the implementation produced (running further would make it
    // overrun the replay queue, which is not a divergence). Stepping is
    // batched: since one instruction consumes at most one replay event, a
    // block bounded by the remaining event count can never overrun the
    // queue, and divergence is sticky inside [`ReplayHandler`] (every
    // post-divergence access is a no-op), so checking once per block sees
    // exactly the first divergence the per-step loop would.
    while !spec.halted && spec.cycle < max_cycles {
        let budget = (max_cycles - spec.cycle).min(1024);
        let block = if imp.halted {
            budget
        } else {
            let remaining = impl_events.len() - spec.mem.mmio.consumed();
            if remaining == 0 {
                break;
            }
            budget.min(remaining as u64)
        };
        spec.run_block(block);
        if spec.mem.mmio.divergence().is_some() {
            break;
        }
    }

    if let Some(d) = spec.mem.mmio.divergence() {
        return Err(d.clone());
    }
    // The spec core's own label trace must equal the implementation's.
    let spec_events = spec.mem.events();
    if imp.halted != spec.halted {
        return Err(Divergence::HaltMismatch {
            implementation: imp.halted,
            spec: spec.halted,
        });
    }
    if imp.halted {
        if spec_events != impl_events {
            return Err(Divergence::TraceLength {
                implementation: impl_events.len(),
                spec: spec_events.len(),
            });
        }
        let (irf, srf) = (imp.rf_snapshot(), spec.rf.snapshot());
        for r in 1..32u8 {
            if irf[r as usize] != srf[r as usize] {
                return Err(Divergence::RegisterMismatch {
                    reg: r,
                    implementation: irf[r as usize],
                    spec: srf[r as usize],
                });
            }
        }
        let (im, sm) = (imp.mem.ram.to_bytes(), spec.mem.ram.to_bytes());
        if let Some(addr) = im.iter().zip(&sm).position(|(a, b)| a != b) {
            return Err(Divergence::MemoryMismatch { addr: addr as u32 });
        }
    } else {
        // Fuel ran out: the shorter trace must be a prefix of the longer.
        let n = spec_events.len().min(impl_events.len());
        if spec_events[..n] != impl_events[..n] {
            let i = (0..n)
                .find(|&i| spec_events[i] != impl_events[i])
                .expect("mismatch exists");
            return Err(Divergence::TraceMismatch {
                index: i,
                implementation: Some(impl_events[i]),
                spec: spec_events[i],
            });
        }
    }

    Ok(RefinementReport {
        impl_cycles: imp.cycle,
        impl_retired: imp.retired,
        spec_cycles: spec.cycle,
        events: impl_events.len(),
    })
}

/// Result of a sharded refinement batch ([`check_refinement_batch`]):
/// per-job reports in job order plus the shard count used.
#[derive(Clone, Debug)]
pub struct RefinementBatch {
    /// Outcome of each job, in job (= submission) order.
    pub reports: Vec<Result<RefinementReport, Divergence>>,
    /// Shards the batch ran on.
    pub shards: usize,
}

impl RefinementBatch {
    /// The first diverging job, if any, with its index.
    pub fn first_divergence(&self) -> Option<(usize, &Divergence)> {
        self.reports
            .iter()
            .enumerate()
            .find_map(|(i, r)| r.as_ref().err().map(|d| (i, d)))
    }

    /// Whether every job refined.
    pub fn is_clean(&self) -> bool {
        self.first_divergence().is_none()
    }

    /// Panics with the first diverging job — the batch analogue of
    /// `Result::unwrap` for test harnesses, mirroring
    /// `SweepReport::expect_clean` in `crates/core`.
    pub fn expect_clean(&self, name: &str) {
        if let Some((job, d)) = self.first_divergence() {
            panic!(
                "{name}: {} of {} refinement jobs diverged; first is job {job} \
                 (reproduce: rerun that job with 1 shard): {d:?}",
                self.reports.iter().filter(|r| r.is_err()).count(),
                self.reports.len(),
            );
        }
    }

    /// Total MMIO events matched across the successful jobs.
    pub fn total_events(&self) -> usize {
        self.reports
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.events)
            .sum()
    }

    /// Telemetry: `processor.refinement.{runs,diverged,events,shards}`.
    pub fn counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("processor.refinement.runs", self.reports.len() as u64);
        c.set(
            "processor.refinement.diverged",
            self.reports.iter().filter(|r| r.is_err()).count() as u64,
        );
        c.set("processor.refinement.events", self.total_events() as u64);
        c.set("processor.refinement.shards", self.shards as u64);
        c
    }
}

/// Runs `jobs` independent refinement checks over the same `image`,
/// sharded across `shards` OS threads.
///
/// Each refinement check is inherently sequential — the spec core replays
/// the implementation's trace event by event — but *independent runs*
/// (different device states, injected frames, pipeline configs via the
/// closure's captured state) are embarrassingly parallel, exactly like
/// differential-test seeds. The same determinism discipline as
/// `differential::parallel_sweep` applies: job indices are split into
/// contiguous chunks, one per shard, and shard results are merged back in
/// shard (= ascending job) order, so `reports` is a deterministic function
/// of the inputs regardless of `shards`.
///
/// `build` is called once per job (from that job's shard thread) and
/// returns the device model and MMIO-claim predicate for that run.
pub fn check_refinement_batch<M, F, B>(
    image: &[u8],
    ram_bytes: u32,
    jobs: usize,
    shards: usize,
    build: B,
    config: PipelineConfig,
    max_cycles: u64,
) -> RefinementBatch
where
    M: MmioHandler,
    F: Fn(u32) -> bool,
    B: Fn(usize) -> (M, F) + Sync,
{
    let shards = shards.clamp(1, jobs.max(1));
    let run = |job: usize| {
        let (devices, claims) = build(job);
        check_refinement(image, ram_bytes, devices, claims, config, max_cycles)
    };

    let mut reports = Vec::with_capacity(jobs);
    if shards == 1 {
        // Degenerate case inline — no thread spawn on single-core runners.
        reports.extend((0..jobs).map(run));
    } else {
        let per_shard = jobs.div_ceil(shards);
        let chunks: Vec<std::ops::Range<usize>> = (0..shards)
            .map(|s| (s * per_shard).min(jobs)..((s + 1) * per_shard).min(jobs))
            .filter(|r| !r.is_empty())
            .collect();
        let mut results: Vec<Option<Vec<Result<RefinementReport, Divergence>>>> = Vec::new();
        results.resize_with(chunks.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for chunk in &chunks {
                let run = &run;
                handles.push(scope.spawn(move || chunk.clone().map(run).collect()));
            }
            // Join in shard order: the merge below is deterministic.
            for (slot, handle) in results.iter_mut().zip(handles) {
                *slot = Some(
                    handle
                        .join()
                        .expect("refinement shard panicked; the checker must not panic"),
                );
            }
        });
        for slot in results {
            reports.extend(slot.expect("every shard slot is filled by the scope above"));
        }
    }

    RefinementBatch { reports, shards }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_spec::{Instruction as I, Reg};

    /// A counter device: reads return successive values, writes set the
    /// counter. Deliberately time-independent so both cores see the same
    /// values per access index.
    #[derive(Clone, Debug, Default)]
    struct Counter {
        value: u32,
    }
    impl MmioHandler for Counter {
        fn is_mmio(&self, addr: u32, _s: AccessSize) -> bool {
            claims(addr)
        }
        fn load(&mut self, _a: u32, _s: AccessSize) -> u32 {
            self.value += 1;
            self.value
        }
        fn store(&mut self, _a: u32, _s: AccessSize, v: u32) {
            self.value = v;
        }
    }
    fn claims(addr: u32) -> bool {
        (0x1000_0000..0x1000_0100).contains(&addr)
    }

    fn image(prog: &[I]) -> Vec<u8> {
        riscv_spec::encode::encode_to_bytes(prog)
    }

    #[test]
    fn compute_program_refines() {
        let img = image(&[
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 100,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X0,
                imm: 0,
            },
            I::Add {
                rd: Reg::X6,
                rs1: Reg::X6,
                rs2: Reg::X5,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: -1,
            },
            I::Bne {
                rs1: Reg::X5,
                rs2: Reg::X0,
                offset: -8,
            },
            I::Ebreak,
        ]);
        let r = check_refinement(
            &img,
            0x1000,
            Counter::default(),
            claims,
            PipelineConfig::default(),
            1_000_000,
        )
        .expect("refinement must hold");
        assert!(
            r.impl_cycles >= r.spec_cycles,
            "pipeline can only be slower"
        );
        assert_eq!(r.events, 0);
    }

    #[test]
    fn mmio_program_refines_with_replay() {
        // x5 = 0x10000000; write 5; read twice; ebreak.
        let img = image(&[
            I::Lui {
                rd: Reg::X5,
                imm20: 0x10000,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X0,
                imm: 5,
            },
            I::Sw {
                rs1: Reg::X5,
                rs2: Reg::X6,
                offset: 0,
            },
            I::Lw {
                rd: Reg::X7,
                rs1: Reg::X5,
                offset: 0,
            },
            I::Lw {
                rd: Reg::new(8),
                rs1: Reg::X5,
                offset: 0,
            },
            I::Ebreak,
        ]);
        let r = check_refinement(
            &img,
            0x1000,
            Counter::default(),
            claims,
            PipelineConfig::default(),
            1_000_000,
        )
        .expect("refinement must hold");
        assert_eq!(r.events, 3);
    }

    #[test]
    fn replay_handler_catches_wrong_store_data() {
        let mut h = ReplayHandler::new(vec![MmioEvent::store(0x10, 1)], |_| true);
        h.store(0x10, AccessSize::Word, 2);
        assert!(matches!(
            h.divergence(),
            Some(Divergence::TraceMismatch { .. })
        ));
    }

    #[test]
    fn replay_handler_answers_loads_in_order() {
        let mut h = ReplayHandler::new(
            vec![MmioEvent::load(0x10, 7), MmioEvent::load(0x10, 9)],
            |_| true,
        );
        assert_eq!(h.load(0x10, AccessSize::Word), 7);
        assert_eq!(h.load(0x10, AccessSize::Word), 9);
        assert!(h.divergence().is_none());
        assert_eq!(h.consumed(), 2);
    }

    #[test]
    fn planted_bug_is_caught() {
        // Simulate a "buggy pipeline" by checking a program that violates
        // the software contract: self-modifying code without fence.i. The
        // spec core (no I$) sees the new instruction; the pipeline sees the
        // stale one — refinement must fail.
        let addi9 = riscv_spec::encode(&I::Addi {
            rd: Reg::X5,
            rs1: Reg::X0,
            imm: 9,
        });
        let hi = addi9.wrapping_add(0x800) >> 12;
        let lo = riscv_spec::word::sign_extend(addi9 & 0xFFF, 12) as i32;
        let store_target_insn = 4 * 4; // slot 4
        let prog = [
            I::Lui {
                rd: Reg::X6,
                imm20: hi & 0xFFFFF,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X6,
                imm: lo,
            },
            I::Sw {
                rs1: Reg::X0,
                rs2: Reg::X6,
                offset: store_target_insn,
            },
            I::NOP,
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 7,
            }, // overwritten
            I::Sw {
                rs1: Reg::X0,
                rs2: Reg::X5,
                offset: 0x100,
            },
            I::Ebreak,
        ];
        let err = check_refinement(
            &image(&prog),
            0x1000,
            Counter::default(),
            claims,
            PipelineConfig::default(),
            1_000_000,
        );
        assert!(
            err.is_err(),
            "stale-instruction divergence must be detected"
        );
    }

    #[test]
    fn batch_reports_are_shard_invariant() {
        // x5 = 0x10000000; write 5; read; ebreak — each job starts its
        // counter device at a different value, so the runs are genuinely
        // distinct but all refine.
        let img = image(&[
            I::Lui {
                rd: Reg::X5,
                imm20: 0x10000,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X0,
                imm: 5,
            },
            I::Sw {
                rs1: Reg::X5,
                rs2: Reg::X6,
                offset: 0,
            },
            I::Lw {
                rd: Reg::X7,
                rs1: Reg::X5,
                offset: 0,
            },
            I::Ebreak,
        ]);
        let build = |job: usize| {
            (
                Counter {
                    value: job as u32 * 10,
                },
                claims,
            )
        };
        let baseline = check_refinement_batch(
            &img,
            0x1000,
            7,
            1,
            build,
            PipelineConfig::default(),
            1_000_000,
        );
        baseline.expect_clean("refinement batch");
        assert_eq!(baseline.reports.len(), 7);
        assert_eq!(baseline.total_events(), 7 * 2);
        for shards in [2, 3, 8] {
            let batch = check_refinement_batch(
                &img,
                0x1000,
                7,
                shards,
                build,
                PipelineConfig::default(),
                1_000_000,
            );
            assert_eq!(batch.reports, baseline.reports, "shards={shards}");
        }
        let c = baseline.counters();
        assert_eq!(c.get("processor.refinement.runs"), 7);
        assert_eq!(c.get("processor.refinement.diverged"), 0);
        assert_eq!(c.get("processor.refinement.events"), 14);
    }

    #[test]
    fn batch_surfaces_first_divergence_by_job_index() {
        // Every job runs the self-modifying-code program from
        // `planted_bug_is_caught`, so every job diverges; the batch must
        // report the lowest job index first regardless of sharding.
        let addi9 = riscv_spec::encode(&I::Addi {
            rd: Reg::X5,
            rs1: Reg::X0,
            imm: 9,
        });
        let hi = addi9.wrapping_add(0x800) >> 12;
        let lo = riscv_spec::word::sign_extend(addi9 & 0xFFF, 12) as i32;
        let prog = [
            I::Lui {
                rd: Reg::X6,
                imm20: hi & 0xFFFFF,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X6,
                imm: lo,
            },
            I::Sw {
                rs1: Reg::X0,
                rs2: Reg::X6,
                offset: 4 * 4,
            },
            I::NOP,
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 7,
            },
            I::Sw {
                rs1: Reg::X0,
                rs2: Reg::X5,
                offset: 0x100,
            },
            I::Ebreak,
        ];
        let batch = check_refinement_batch(
            &image(&prog),
            0x1000,
            3,
            2,
            |_| (Counter::default(), claims),
            PipelineConfig::default(),
            1_000_000,
        );
        let (job, _) = batch
            .first_divergence()
            .expect("stale-instruction divergence must be detected");
        assert_eq!(job, 0, "first divergence reports the lowest job index");
        assert!(!batch.is_clean());
        assert_eq!(batch.counters().get("processor.refinement.diverged"), 3);
    }
}

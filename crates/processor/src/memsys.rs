//! The memory system: BRAM with byte enables plus MMIO routing.
//!
//! As in the paper's factoring (§6.4), "the processor itself does not
//! distinguish ordinary memory operations from MMIO. When the memory module
//! is attached, it handles the loads and stores to memory addresses but
//! makes designated external method calls for the rest." Those external
//! method calls are the cycle-stamped labels in [`MemSystem::trace`].

use crate::alu::{load_result, store_signals, MemOp};
use kami::{BeMemory, LabelTrace, TraceEvent};
use riscv_spec::{AccessSize, MmioEvent, MmioHandler};

/// Memory + MMIO, shared by both processor models.
#[derive(Clone, Debug)]
pub struct MemSystem<M> {
    /// The BRAM, based at address 0.
    pub ram: BeMemory,
    /// The attached external module (devices).
    pub mmio: M,
    /// External method-call labels, oldest first.
    pub trace: LabelTrace,
    /// Device ticks deferred by [`MemSystem::tick_deferred`], delivered in
    /// one [`MmioHandler::tick_n`] call before the next device interaction.
    pending_ticks: u64,
}

impl<M: MmioHandler> MemSystem<M> {
    /// Creates a memory system over an initial RAM image.
    pub fn new(ram: BeMemory, mmio: M) -> MemSystem<M> {
        MemSystem {
            ram,
            mmio,
            trace: Vec::new(),
            pending_ticks: 0,
        }
    }

    fn routes_to_mmio(&self, addr: u32) -> bool {
        self.mmio.is_mmio(addr & !3, AccessSize::Word)
    }

    /// True when an access to `addr` lands in RAM rather than a device —
    /// the routing decision of [`MemSystem::load`]/[`MemSystem::store`],
    /// exposed so cores can maintain fetch-path caches over RAM.
    pub fn is_ram(&self, addr: u32) -> bool {
        !self.routes_to_mmio(addr)
    }

    /// Instruction fetch: always from RAM (devices are not executable).
    pub fn fetch(&self, pc: u32) -> u32 {
        self.ram.read(pc)
    }

    /// Performs a load, returning the extended register value.
    pub fn load(&mut self, cycle: u64, op: MemOp) -> u32 {
        debug_assert!(op.kind.is_load());
        let aligned = op.addr & !3;
        let word = if self.routes_to_mmio(op.addr) {
            self.flush_ticks();
            let v = self.mmio.load(aligned, AccessSize::Word);
            self.trace.push(TraceEvent {
                cycle,
                event: MmioEvent::load(aligned, v),
            });
            v
        } else {
            self.ram.read(aligned)
        };
        load_result(op.kind, op.addr, word)
    }

    /// Performs a store.
    pub fn store(&mut self, cycle: u64, op: MemOp) {
        debug_assert!(!op.kind.is_load());
        let aligned = op.addr & !3;
        let (data, be) = store_signals(op.kind, op.addr, op.value);
        if self.routes_to_mmio(op.addr) {
            // The device interface is word-sized; narrower stores present
            // the shifted word (software-level UB, but hardware is total).
            self.flush_ticks();
            self.mmio.store(aligned, AccessSize::Word, data);
            self.trace.push(TraceEvent {
                cycle,
                event: MmioEvent::store(aligned, data),
            });
        } else {
            self.ram.write(aligned, data, be);
        }
    }

    /// Advances device time by one hardware cycle, immediately.
    pub fn tick(&mut self) {
        debug_assert_eq!(self.pending_ticks, 0, "mixing immediate and deferred ticks");
        self.mmio.tick();
    }

    /// Records one cycle of device time without delivering it yet; the
    /// batched stepping loops use this so straight-line instruction runs
    /// cost one `tick_n` call instead of a virtual `tick` per step. Pending
    /// ticks are flushed before the next device load/store (so the device
    /// observes exactly the ticks it would have under immediate ticking)
    /// and must be flushed with [`MemSystem::flush_ticks`] at block exit.
    pub fn tick_deferred(&mut self) {
        self.pending_ticks += 1;
    }

    /// Delivers all deferred ticks to the device in one `tick_n` call.
    pub fn flush_ticks(&mut self) {
        if self.pending_ticks > 0 {
            let n = self.pending_ticks;
            self.pending_ticks = 0;
            self.mmio.tick_n(n);
        }
    }

    /// The projected (cycle-free) MMIO event sequence.
    pub fn events(&self) -> Vec<MmioEvent> {
        kami::label::project(&self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alu::MemKind;
    use riscv_spec::NoMmio;

    #[derive(Clone, Default)]
    struct Dev {
        last: u32,
        loads: u32,
    }
    impl MmioHandler for Dev {
        fn is_mmio(&self, addr: u32, _s: AccessSize) -> bool {
            addr >= 0x1000_0000
        }
        fn load(&mut self, _a: u32, _s: AccessSize) -> u32 {
            self.loads += 1;
            self.last
        }
        fn store(&mut self, _a: u32, _s: AccessSize, v: u32) {
            self.last = v;
        }
    }

    #[test]
    fn ram_loads_and_stores_with_lanes() {
        let mut ms = MemSystem::new(BeMemory::with_size(64), NoMmio);
        ms.store(
            0,
            MemOp {
                kind: MemKind::Sw,
                addr: 8,
                value: 0xAABB_CCDD,
            },
        );
        ms.store(
            1,
            MemOp {
                kind: MemKind::Sb,
                addr: 9,
                value: 0x11,
            },
        );
        assert_eq!(
            ms.load(
                2,
                MemOp {
                    kind: MemKind::Lw,
                    addr: 8,
                    value: 0
                }
            ),
            0xAABB_11DD
        );
        assert_eq!(
            ms.load(
                3,
                MemOp {
                    kind: MemKind::Lbu,
                    addr: 9,
                    value: 0
                }
            ),
            0x11
        );
        assert!(ms.trace.is_empty(), "RAM traffic produces no labels");
    }

    #[test]
    fn mmio_traffic_is_labelled() {
        let mut ms = MemSystem::new(BeMemory::with_size(64), Dev::default());
        ms.store(
            5,
            MemOp {
                kind: MemKind::Sw,
                addr: 0x1000_0000,
                value: 42,
            },
        );
        let v = ms.load(
            9,
            MemOp {
                kind: MemKind::Lw,
                addr: 0x1000_0004,
                value: 0,
            },
        );
        assert_eq!(v, 42);
        assert_eq!(
            ms.trace,
            vec![
                TraceEvent {
                    cycle: 5,
                    event: MmioEvent::store(0x1000_0000, 42)
                },
                TraceEvent {
                    cycle: 9,
                    event: MmioEvent::load(0x1000_0004, 42)
                },
            ]
        );
        assert_eq!(ms.events().len(), 2);
    }

    #[test]
    fn fetch_reads_ram() {
        let mut ms = MemSystem::new(BeMemory::with_size(64), NoMmio);
        ms.store(
            0,
            MemOp {
                kind: MemKind::Sw,
                addr: 12,
                value: 0x1234,
            },
        );
        assert_eq!(ms.fetch(12), 0x1234);
    }
}

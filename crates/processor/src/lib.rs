//! Hardware models of the RV32IM processor: a single-cycle specification
//! core and a 4-stage pipelined implementation (Figure 4 of the paper),
//! plus the refinement checker relating them.
//!
//! The decomposition mirrors the paper's (§5.5–§5.8):
//!
//! * [`alu`] holds the *combinational* decode/execute functions shared by
//!   the spec core and the pipeline — in the paper this sharing is what let
//!   the authors extend the ISA "without needing to touch a line of proof";
//!   here it is what makes the refinement check meaningful rather than
//!   vacuous (control, hazards, and caching are the things that differ).
//! * [`SingleCycle`] is the Kami spec processor: one instruction per cycle,
//!   fetching directly from memory. It doubles as the idealized ~1 IPC
//!   "commercial core" cost model in the §7.2.1 performance reproduction.
//! * [`Pipelined`] is the implementation: IF/ID/EX/WB stages connected by
//!   FIFOs, an eagerly-filled instruction cache that does **not** observe
//!   stores (the §5.6 hazard, on purpose), a branch target buffer, and a
//!   scoreboard interlock. It runs as a [`kami::RuleBased`] module.
//! * [`refinement`] checks that every pipelined run is a legal spec-core
//!   run by replaying the pipeline's observed MMIO inputs into the spec
//!   core — the executable analogue of `kstep1_sound`/`kstep_star_sound`.
//!
//! Hardware has no undefined behavior: where the software contract says UB
//! (misaligned access, out-of-range address, illegal instruction), these
//! models do *something* total (wrap, mask, treat as nop), exactly the
//! situation §5.8 of the paper describes — and why the end-to-end theorem
//! needs the software side to prove UB never happens.

pub mod alu;
pub mod btb;
pub mod icache;
pub mod memsys;
pub mod pipeline;
pub mod refinement;
pub mod spec_core;

pub use btb::Btb;
pub use icache::ICache;
pub use memsys::MemSystem;
pub use pipeline::{PipelineConfig, PipelineStats, Pipelined};
pub use refinement::{
    check_refinement, check_refinement_batch, Divergence, RefinementBatch, RefinementReport,
};
pub use spec_core::SingleCycle;

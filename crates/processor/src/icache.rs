//! The eagerly-filled instruction cache (§5.5, §5.6).
//!
//! At reset the entire BRAM contents are copied into the cache ("we added
//! logic to fetch instructions eagerly from main memory into an
//! interface-compatible instruction cache … upon reset"). The cache does
//! **not** observe later stores — that is the stale-instruction hazard the
//! XAddrs software discipline exists for. `fence.i` refills it.

use kami::BeMemory;

/// A full-image instruction cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ICache {
    words: Vec<u32>,
    /// Number of refills performed (1 at reset, +1 per `fence.i`).
    pub fills: u64,
}

impl ICache {
    /// Reset-time eager fill from RAM.
    pub fn fill(ram: &BeMemory) -> ICache {
        ICache {
            words: ram.words().to_vec(),
            fills: 1,
        }
    }

    /// Fetches the instruction word at `pc` (low bits and high bits masked,
    /// like the backing BRAM).
    pub fn fetch(&self, pc: u32) -> u32 {
        self.words[((pc as usize) / 4) % self.words.len()]
    }

    /// `fence.i`: resynchronize with RAM.
    pub fn refill(&mut self, ram: &BeMemory) {
        self.words.copy_from_slice(ram.words());
        self.fills += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_does_not_observe_stores() {
        let mut ram = BeMemory::with_size(16);
        ram.write(0, 0x11, 0xF);
        let mut ic = ICache::fill(&ram);
        assert_eq!(ic.fetch(0), 0x11);
        ram.write(0, 0x22, 0xF);
        assert_eq!(ic.fetch(0), 0x11, "stale by design until fence.i");
        ic.refill(&ram);
        assert_eq!(ic.fetch(0), 0x22);
        assert_eq!(ic.fills, 2);
    }

    #[test]
    fn fetch_masks_address_bits() {
        let mut ram = BeMemory::with_size(16);
        ram.write(4, 0xAB, 0xF);
        let ic = ICache::fill(&ram);
        assert_eq!(ic.fetch(4), 0xAB);
        assert_eq!(ic.fetch(5), 0xAB);
        assert_eq!(ic.fetch(4 + 16), 0xAB);
    }
}

//! A direct-mapped branch target buffer (§5.5; Perleberg & Smith, the
//! paper's reference \[35\]).
//!
//! The fetch stage asks the BTB for a predicted next pc; the execute stage
//! trains it with resolved control flow: taken branches and jumps insert
//! their target, and a not-taken branch evicts its entry so the default
//! pc+4 prediction returns.

/// Direct-mapped BTB with `2^index_bits` entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Btb {
    entries: Vec<Option<(u32, u32)>>, // (pc tag, target)
    index_mask: u32,
    /// Lookup statistics: predictions served from the table.
    pub hits: u64,
    /// Lookup statistics: default pc+4 predictions.
    pub misses: u64,
}

impl Btb {
    /// Creates a BTB with `2^index_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 16.
    pub fn new(index_bits: u32) -> Btb {
        assert!((1..=16).contains(&index_bits), "unreasonable BTB size");
        Btb {
            entries: vec![None; 1 << index_bits],
            index_mask: (1 << index_bits) - 1,
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) & self.index_mask) as usize
    }

    /// Predicted next pc for a fetch at `pc` (pc+4 when no entry matches).
    pub fn predict(&mut self, pc: u32) -> u32 {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => {
                self.hits += 1;
                target
            }
            _ => {
                self.misses += 1;
                pc.wrapping_add(4)
            }
        }
    }

    /// Trains the BTB with a resolved instruction at `pc` whose actual
    /// next pc was `next`; `taken` marks non-sequential control flow.
    pub fn train(&mut self, pc: u32, next: u32, taken: bool) {
        let i = self.index(pc);
        if taken {
            self.entries[i] = Some((pc, next));
        } else if matches!(self.entries[i], Some((tag, _)) if tag == pc) {
            self.entries[i] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_prediction_is_sequential() {
        let mut b = Btb::new(4);
        assert_eq!(b.predict(0x100), 0x104);
        assert_eq!(b.misses, 1);
    }

    #[test]
    fn trained_branches_predict_their_target() {
        let mut b = Btb::new(4);
        b.train(0x100, 0x80, true);
        assert_eq!(b.predict(0x100), 0x80);
        assert_eq!(b.hits, 1);
    }

    #[test]
    fn not_taken_evicts() {
        let mut b = Btb::new(4);
        b.train(0x100, 0x80, true);
        b.train(0x100, 0x104, false);
        assert_eq!(b.predict(0x100), 0x104);
    }

    #[test]
    fn aliasing_entries_do_not_mispredict() {
        let mut b = Btb::new(2); // 4 entries; 0x100 and 0x110 alias
        b.train(0x100, 0x80, true);
        assert_eq!(
            b.predict(0x110),
            0x114,
            "tag mismatch must fall back to pc+4"
        );
    }

    #[test]
    #[should_panic(expected = "unreasonable BTB size")]
    fn zero_bits_rejected() {
        Btb::new(0);
    }
}

//! The single-cycle specification processor (§5.7).
//!
//! Fetch, decode, execute, memory, and write-back all complete in one
//! cycle; there are no caches, no predictors, and no hazards. This is the
//! model the pipelined processor is checked to refine, and — retiring one
//! instruction per cycle — it doubles as the idealized commercial-core
//! cost model in the §7.2.1 performance reproduction.

use crate::alu;
use crate::memsys::MemSystem;
use kami::{BeMemory, RegFile};
use riscv_spec::{decode, DecodeCache, MmioHandler};

/// The single-cycle core.
#[derive(Clone, Debug)]
pub struct SingleCycle<M> {
    /// Program counter.
    pub pc: u32,
    /// Architectural register file.
    pub rf: RegFile,
    /// Memory + devices + label trace.
    pub mem: MemSystem<M>,
    /// Elapsed cycles (= retired instructions for this core).
    pub cycle: u64,
    /// Retired instruction count.
    pub retired: u64,
    /// Set when `ebreak`/`ecall` retires; the core then refuses to step.
    pub halted: bool,
    /// Predecoded-instruction side table over RAM. Unlike [`SpecMachine`],
    /// this core has no staleness model — fetch always reads current RAM —
    /// so every RAM store invalidates the overlapped slot and the cache is
    /// pure memoization, invisible to all observers.
    ///
    /// [`SpecMachine`]: riscv_spec::SpecMachine
    icache: DecodeCache,
}

impl<M: MmioHandler> SingleCycle<M> {
    /// Builds a core over a boot image placed at address 0 (pc resets to 0,
    /// the paper's no-bootloader bring-up recipe, §5.9).
    pub fn new(image: &[u8], ram_bytes: u32, mmio: M) -> SingleCycle<M> {
        SingleCycle {
            pc: 0,
            rf: RegFile::new(),
            mem: MemSystem::new(BeMemory::from_image(image, ram_bytes), mmio),
            cycle: 0,
            retired: 0,
            halted: false,
            icache: DecodeCache::new(ram_bytes),
        }
    }

    /// Drops every predecoded entry. Required after mutating `mem.ram`
    /// directly (stores issued through [`SingleCycle::step`] invalidate
    /// automatically).
    pub fn flush_icache(&mut self) {
        self.icache.flush();
    }

    #[inline]
    fn fetch_decoded(&mut self) -> riscv_spec::Instruction {
        match self.icache.get(self.pc) {
            Some(inst) => inst,
            None => {
                let inst = decode(self.mem.fetch(self.pc));
                self.icache.fill(self.pc, inst);
                inst
            }
        }
    }

    /// One instruction's datapath, minus the device tick (the caller picks
    /// immediate or deferred ticking).
    #[inline]
    fn step_datapath(&mut self) {
        let inst = self.fetch_decoded();
        let a = inst
            .sources()
            .first()
            .map_or(0, |r| self.rf.read(r.index()));
        let b = inst.sources().get(1).map_or(0, |r| self.rf.read(r.index()));
        let out = alu::execute(&inst, self.pc, a, b);

        let wb = match out.mem {
            Some(op) if op.kind.is_load() => Some(self.mem.load(self.cycle, op)),
            Some(op) => {
                self.mem.store(self.cycle, op);
                if self.mem.is_ram(op.addr) {
                    // The RAM write lands in the single aligned word
                    // op.addr & !3 (byte enables select lanes within it).
                    self.icache.invalidate_range(op.addr & !3, 4);
                }
                None
            }
            None => out.wb_value,
        };
        if let (Some(v), Some(rd)) = (wb, inst.dest()) {
            self.rf.write(rd.index(), v);
        }
        if out.halt {
            self.halted = true;
        }
        self.pc = out.next_pc;
        self.cycle += 1;
        self.retired += 1;
    }

    /// Executes one instruction (one cycle). No-op once halted.
    pub fn step(&mut self) {
        if self.halted {
            return;
        }
        self.step_datapath();
        self.mem.tick();
    }

    /// Runs up to `fuel` instructions with deferred device ticks: the
    /// per-step virtual `tick` is replaced by a counter, flushed in one
    /// `tick_n` before any MMIO interaction and at block exit, so devices
    /// observe identical timing while straight-line runs pay no per-step
    /// dispatch. Returns cycles run.
    pub fn run_block(&mut self, fuel: u64) -> u64 {
        let start = self.cycle;
        while !self.halted && self.cycle - start < fuel {
            self.step_datapath();
            self.mem.tick_deferred();
        }
        self.mem.flush_ticks();
        self.cycle - start
    }

    /// Runs until halted or `max_cycles` elapse; returns cycles run.
    pub fn run(&mut self, max_cycles: u64) -> u64 {
        self.run_block(max_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_spec::{encode, Instruction as I, NoMmio, Reg};

    fn image(prog: &[I]) -> Vec<u8> {
        riscv_spec::encode::encode_to_bytes(prog)
    }

    #[test]
    fn computes_and_halts() {
        let img = image(&[
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 40,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X5,
                imm: 2,
            },
            I::Ebreak,
        ]);
        let mut c = SingleCycle::new(&img, 0x1000, NoMmio);
        c.run(100);
        assert!(c.halted);
        assert_eq!(c.rf.read(6), 42);
        assert_eq!(c.retired, 3); // the ebreak itself retires
        c.step();
        assert_eq!(c.retired, 3, "halted core must not step");
    }

    #[test]
    fn one_instruction_per_cycle() {
        let img = image(&[
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 1,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: 1,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: 1,
            },
            I::Ebreak,
        ]);
        let mut c = SingleCycle::new(&img, 0x1000, NoMmio);
        c.run(100);
        assert_eq!(c.cycle, c.retired);
    }

    #[test]
    fn illegal_instructions_are_nops() {
        let mut img = image(&[I::Addi {
            rd: Reg::X5,
            rs1: Reg::X0,
            imm: 7,
        }]);
        img.extend_from_slice(&0xFFFF_FFFFu32.to_le_bytes()); // undecodable
        img.extend_from_slice(&encode(&I::Ebreak).to_le_bytes());
        let mut c = SingleCycle::new(&img, 0x1000, NoMmio);
        c.run(100);
        assert!(c.halted);
        assert_eq!(c.rf.read(5), 7);
    }

    #[test]
    fn stores_then_loads_roundtrip() {
        let img = image(&[
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: -1,
            },
            I::Sb {
                rs1: Reg::X0,
                rs2: Reg::X5,
                offset: 0x100,
            },
            I::Lbu {
                rd: Reg::X6,
                rs1: Reg::X0,
                offset: 0x100,
            },
            I::Lb {
                rd: Reg::X7,
                rs1: Reg::X0,
                offset: 0x100,
            },
            I::Ebreak,
        ]);
        let mut c = SingleCycle::new(&img, 0x1000, NoMmio);
        c.run(100);
        assert_eq!(c.rf.read(6), 0xFF);
        assert_eq!(c.rf.read(7), u32::MAX);
    }
}

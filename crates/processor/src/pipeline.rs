//! The 4-stage pipelined processor (Figure 4 of the paper).
//!
//! ```text
//!  IF ──■──▶ ID ──■──▶ EX ──■──▶ WB
//!  │BTB│      │RF+scoreboard│
//!  │I$ │
//! ```
//!
//! * **IF** fetches from the eagerly-filled [`crate::ICache`] at the pc the
//!   [`crate::Btb`] predicts, tagging each fetch with the current *epoch*.
//! * **ID** decodes, drops wrong-epoch instructions (squash after a
//!   redirect), stalls while a source or destination register is busy in
//!   the scoreboard, reads the register file, and dispatches.
//! * **EX** runs the shared combinational [`crate::alu`], performs the
//!   memory access (BRAM or MMIO method call), resolves control flow,
//!   trains the BTB, and on a misprediction flips the epoch, redirects the
//!   fetch pc, and flushes the fetch buffer. `fence.i` refills the I$ and
//!   redirects (younger fetches may be stale).
//! * **WB** writes the register file, clears the scoreboard, and retires.
//!
//! The stages are rules of a [`kami::RuleBased`] module, scheduled
//! downstream-first each cycle — one legal one-rule-at-a-time serialization
//! of the concurrent hardware (§5.7).

use crate::alu;
use crate::btb::Btb;
use crate::icache::ICache;
use crate::memsys::MemSystem;
use kami::{BeMemory, Fifo, RegFile, RuleBased, RuleOutcome, Scheduler, Scoreboard};
use obs::{Counters, Event, NullSink, Sink};
use riscv_spec::{decode, Instruction, MmioHandler};

/// Cycles between sampled `pipeline.ipc_x1000` counter events when a
/// tracing sink is attached.
const IPC_SAMPLE_PERIOD: u64 = 4096;

/// Configuration knobs (used by the BTB-ablation benchmark).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// BTB index bits; `None` disables prediction (always pc+4).
    pub btb_bits: Option<u32>,
    /// Fetch-buffer capacity (the IF→ID FIFO).
    pub fetch_buffer: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            btb_bits: Some(6),
            fetch_buffer: 2,
        }
    }
}

/// Performance counters, kept as plain fields so the hot loop pays one
/// integer increment per event; [`PipelineStats::counters`] exports them
/// under the `pipeline.*` naming scheme at reporting time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Cycles ID spent stalled on the scoreboard (any cause).
    pub stalls: u64,
    /// Stalls caused by a busy *source* register (read-after-write).
    pub stalls_raw: u64,
    /// Stalls caused only by a busy *destination* register
    /// (write-after-write; the in-order WB port must not reorder).
    pub stalls_waw: u64,
    /// Control-flow mispredictions (redirects).
    pub mispredicts: u64,
    /// Instructions squashed by epoch mismatch.
    pub squashed: u64,
    /// Fetch-buffer flushes (every redirect clears IF→ID).
    pub flushes: u64,
    /// `fence.i` instruction-cache refills.
    pub fencei_refills: u64,
    /// Control-flow instructions whose predicted next pc was correct.
    pub btb_hits: u64,
    /// Control-flow instructions whose predicted next pc was wrong.
    pub btb_misses: u64,
    /// Instruction-cache fetches issued by IF (the I$ is eagerly filled,
    /// so every fetch hits; refills happen only on `fence.i`).
    pub icache_fetches: u64,
}

impl PipelineStats {
    /// Exports the stats as `pipeline.*` named counters.
    pub fn counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("pipeline.stall.total", self.stalls);
        c.set("pipeline.stall.raw", self.stalls_raw);
        c.set("pipeline.stall.waw", self.stalls_waw);
        c.set("pipeline.flush.mispredict", self.mispredicts);
        c.set("pipeline.flush.total", self.flushes);
        c.set("pipeline.squashed", self.squashed);
        c.set("pipeline.btb.hit", self.btb_hits);
        c.set("pipeline.btb.miss", self.btb_misses);
        c.set("pipeline.icache.fetch", self.icache_fetches);
        c.set("pipeline.icache.refill", self.fencei_refills);
        c
    }
}

#[derive(Clone, Copy, Debug)]
struct Fetched {
    pc: u32,
    word: u32,
    pred_next: u32,
    epoch: bool,
}

#[derive(Clone, Copy, Debug)]
struct Dispatched {
    pc: u32,
    inst: Instruction,
    a: u32,
    b: u32,
    pred_next: u32,
    epoch: bool,
}

#[derive(Clone, Copy, Debug)]
struct Executed {
    rd: Option<u8>,
    value: Option<u32>,
    halt: bool,
}

/// The pipelined core.
///
/// `S` is the telemetry sink; the default [`NullSink`] monomorphizes every
/// instrumentation site away (checked by the `obs_overhead` bench in
/// `crates/bench`). Use [`Pipelined::with_sink`] to attach a recording
/// sink such as [`obs::MemSink`].
#[derive(Clone, Debug)]
pub struct Pipelined<M, S = NullSink> {
    fetch_pc: u32,
    epoch: bool,
    rf: RegFile,
    sb: Scoreboard,
    icache: ICache,
    btb: Option<Btb>,
    f2d: Fifo<Fetched>,
    d2e: Fifo<Dispatched>,
    e2w: Fifo<Executed>,
    /// Memory + devices + label trace.
    pub mem: MemSystem<M>,
    /// Elapsed hardware cycles.
    pub cycle: u64,
    /// Retired instruction count.
    pub retired: u64,
    /// Set when `ebreak`/`ecall` retires.
    pub halted: bool,
    /// Performance counters.
    pub stats: PipelineStats,
    /// Structured-event sink ([`NullSink`] unless built `with_sink`).
    pub sink: S,
}

impl<M: MmioHandler> Pipelined<M> {
    /// Builds a core over a boot image placed at address 0. The instruction
    /// cache is eagerly filled from the image at reset (§5.5).
    pub fn new(image: &[u8], ram_bytes: u32, mmio: M, config: PipelineConfig) -> Pipelined<M> {
        Pipelined::with_sink(image, ram_bytes, mmio, config, NullSink)
    }
}

impl<M: MmioHandler, S: Sink> Pipelined<M, S> {
    /// Like [`Pipelined::new`], but events go to `sink`.
    pub fn with_sink(
        image: &[u8],
        ram_bytes: u32,
        mmio: M,
        config: PipelineConfig,
        sink: S,
    ) -> Pipelined<M, S> {
        let ram = BeMemory::from_image(image, ram_bytes);
        let icache = ICache::fill(&ram);
        Pipelined {
            fetch_pc: 0,
            epoch: false,
            rf: RegFile::new(),
            sb: Scoreboard::new(),
            icache,
            btb: config.btb_bits.map(Btb::new),
            f2d: Fifo::new(config.fetch_buffer),
            d2e: Fifo::new(1),
            e2w: Fifo::new(1),
            mem: MemSystem::new(ram, mmio),
            cycle: 0,
            retired: 0,
            halted: false,
            stats: PipelineStats::default(),
            sink,
        }
    }

    /// Architectural register value (for end-of-run comparison).
    pub fn reg(&self, r: u8) -> u32 {
        self.rf.read(r)
    }

    /// Snapshot of the architectural register file.
    pub fn rf_snapshot(&self) -> [u32; 32] {
        self.rf.snapshot()
    }

    /// Runs one hardware cycle (all four stage rules, downstream first).
    pub fn step_cycle(&mut self) {
        if self.halted {
            return;
        }
        Scheduler::new().cycle(self);
        self.finish_cycle();
        if S::ENABLED && self.cycle.is_multiple_of(IPC_SAMPLE_PERIOD) {
            let ipc_x1000 = (self.retired * 1000) / self.cycle.max(1);
            self.sink.emit(Event::counter(
                self.cycle,
                "pipeline",
                "ipc_x1000",
                ipc_x1000,
            ));
        }
    }

    /// Completes one cycle's bookkeeping (cycle counter, device time) after
    /// rules have been fired manually — for harnesses exploring other legal
    /// rule serializations (one-rule-at-a-time, §5.7).
    pub fn finish_cycle(&mut self) {
        self.cycle += 1;
        self.mem.tick();
    }

    /// Runs until halted or `max_cycles` cycles elapse; returns cycles run.
    pub fn run(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycle;
        while !self.halted && self.cycle - start < max_cycles {
            self.step_cycle();
        }
        self.cycle - start
    }

    /// The pc IF will fetch next — the closest thing a pipelined core has
    /// to "the current pc" (in-flight instructions may be older).
    pub fn fetch_pc(&self) -> u32 {
        self.fetch_pc
    }

    /// Exports the `pipeline.*` counters, including cycle/retired totals.
    pub fn counters(&self) -> Counters {
        let mut c = self.stats.counters();
        c.set("pipeline.cycles", self.cycle);
        c.set("pipeline.retired", self.retired);
        c
    }

    /// Instructions retired per cycle so far.
    pub fn ipc(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycle as f64
        }
    }

    fn rule_writeback(&mut self) -> RuleOutcome {
        if !self.e2w.can_deq() {
            return RuleOutcome::NotReady;
        }
        let e = self.e2w.deq();
        if let (Some(rd), Some(v)) = (e.rd, e.value) {
            self.rf.write(rd, v);
        }
        if let Some(rd) = e.rd {
            self.sb.clear(rd);
        }
        self.retired += 1;
        if e.halt {
            self.halted = true;
            if S::ENABLED {
                self.sink.emit(
                    Event::instant(self.cycle, "pipeline", "halt")
                        .with_arg("retired", self.retired),
                );
            }
        }
        RuleOutcome::Fired
    }

    fn rule_execute(&mut self) -> RuleOutcome {
        if self.halted || !self.d2e.can_deq() || !self.e2w.can_enq() {
            return RuleOutcome::NotReady;
        }
        let d = self.d2e.deq();
        if d.epoch != self.epoch {
            // Squashed after dispatch: release its scoreboard claim.
            if let Some(rd) = d.inst.dest() {
                self.sb.clear(rd.index());
            }
            self.stats.squashed += 1;
            return RuleOutcome::Fired;
        }
        let out = alu::execute(&d.inst, d.pc, d.a, d.b);
        let value = match out.mem {
            Some(op) if op.kind.is_load() => Some(self.mem.load(self.cycle, op)),
            Some(op) => {
                self.mem.store(self.cycle, op);
                None
            }
            None => out.wb_value,
        };

        let taken = out.next_pc != d.pc.wrapping_add(4);
        if d.inst.is_control_flow() {
            if out.next_pc == d.pred_next {
                self.stats.btb_hits += 1;
            } else {
                self.stats.btb_misses += 1;
            }
            if let Some(btb) = &mut self.btb {
                btb.train(d.pc, out.next_pc, taken);
            }
        }
        if out.next_pc != d.pred_next || out.fence_i {
            if out.fence_i {
                self.icache.refill(&self.mem.ram);
                self.stats.fencei_refills += 1;
                if S::ENABLED {
                    self.sink.emit(
                        Event::instant(self.cycle, "pipeline", "fence_i")
                            .with_arg("pc", u64::from(d.pc)),
                    );
                }
            }
            self.stats.mispredicts += 1;
            self.stats.flushes += 1;
            self.epoch = !self.epoch;
            self.fetch_pc = out.next_pc;
            self.f2d.clear();
            if S::ENABLED {
                self.sink.emit(
                    Event::instant(self.cycle, "pipeline", "redirect")
                        .with_arg("next_pc", u64::from(out.next_pc)),
                );
            }
        }

        self.e2w.enq(Executed {
            rd: d.inst.dest().map(|r| r.index()),
            value,
            halt: out.halt,
        });
        RuleOutcome::Fired
    }

    fn rule_decode(&mut self) -> RuleOutcome {
        if self.halted || !self.f2d.can_deq() || !self.d2e.can_enq() {
            return RuleOutcome::NotReady;
        }
        let f = *self.f2d.first().expect("guard checked can_deq");
        if f.epoch != self.epoch {
            self.f2d.deq();
            self.stats.squashed += 1;
            return RuleOutcome::Fired;
        }
        let inst = decode(f.word);
        let raw = inst.sources().iter().any(|r| self.sb.is_busy(r.index()));
        let waw = inst.dest().is_some_and(|r| self.sb.is_busy(r.index()));
        if raw || waw {
            self.stats.stalls += 1;
            if raw {
                self.stats.stalls_raw += 1;
            } else {
                self.stats.stalls_waw += 1;
            }
            return RuleOutcome::NotReady;
        }
        let a = inst
            .sources()
            .first()
            .map_or(0, |r| self.rf.read(r.index()));
        let b = inst.sources().get(1).map_or(0, |r| self.rf.read(r.index()));
        if let Some(rd) = inst.dest() {
            self.sb.set_busy(rd.index());
        }
        self.f2d.deq();
        self.d2e.enq(Dispatched {
            pc: f.pc,
            inst,
            a,
            b,
            pred_next: f.pred_next,
            epoch: f.epoch,
        });
        RuleOutcome::Fired
    }

    fn rule_fetch(&mut self) -> RuleOutcome {
        if self.halted || !self.f2d.can_enq() {
            return RuleOutcome::NotReady;
        }
        let pc = self.fetch_pc;
        let word = self.icache.fetch(pc);
        self.stats.icache_fetches += 1;
        let pred_next = match &mut self.btb {
            Some(btb) => btb.predict(pc),
            None => pc.wrapping_add(4),
        };
        self.f2d.enq(Fetched {
            pc,
            word,
            pred_next,
            epoch: self.epoch,
        });
        self.fetch_pc = pred_next;
        RuleOutcome::Fired
    }
}

impl<M: MmioHandler, S: Sink> RuleBased for Pipelined<M, S> {
    fn rules(&self) -> &'static [&'static str] {
        &["writeback", "execute", "decode", "fetch"]
    }

    fn fire(&mut self, rule: &str) -> RuleOutcome {
        match rule {
            "writeback" => self.rule_writeback(),
            "execute" => self.rule_execute(),
            "decode" => self.rule_decode(),
            "fetch" => self.rule_fetch(),
            other => panic!("unknown rule '{other}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_spec::{Instruction as I, NoMmio, Reg};

    fn image(prog: &[I]) -> Vec<u8> {
        riscv_spec::encode::encode_to_bytes(prog)
    }

    fn run_prog(prog: &[I]) -> Pipelined<NoMmio> {
        let mut p = Pipelined::new(&image(prog), 0x1000, NoMmio, PipelineConfig::default());
        p.run(100_000);
        assert!(p.halted, "program should halt");
        p
    }

    #[test]
    fn straight_line_code_retires_correctly() {
        let p = run_prog(&[
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 40,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X0,
                imm: 2,
            },
            I::Add {
                rd: Reg::X7,
                rs1: Reg::X5,
                rs2: Reg::X6,
            },
            I::Ebreak,
        ]);
        assert_eq!(p.reg(7), 42);
        assert_eq!(p.retired, 4);
    }

    #[test]
    fn data_hazards_stall_but_stay_correct() {
        // Each instruction depends on the previous one.
        let p = run_prog(&[
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 1,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: 1,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: 1,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: 1,
            },
            I::Ebreak,
        ]);
        assert_eq!(p.reg(5), 4);
        assert!(p.stats.stalls > 0, "dependent chain must stall");
    }

    #[test]
    fn taken_branches_squash_wrong_path() {
        // beq x0,x0 over a poison instruction.
        let p = run_prog(&[
            I::Beq {
                rs1: Reg::X0,
                rs2: Reg::X0,
                offset: 8,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 99,
            }, // must be squashed
            I::Ebreak,
        ]);
        assert_eq!(p.reg(5), 0, "wrong-path instruction must not retire");
        assert!(p.stats.mispredicts >= 1);
    }

    #[test]
    fn loop_with_btb_improves_over_no_btb() {
        // A tight 100-iteration countdown loop.
        let prog = [
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 100,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: -1,
            },
            I::Bne {
                rs1: Reg::X5,
                rs2: Reg::X0,
                offset: -4,
            },
            I::Ebreak,
        ];
        let mut with = Pipelined::new(&image(&prog), 0x1000, NoMmio, PipelineConfig::default());
        with.run(1_000_000);
        let mut without = Pipelined::new(
            &image(&prog),
            0x1000,
            NoMmio,
            PipelineConfig {
                btb_bits: None,
                ..PipelineConfig::default()
            },
        );
        without.run(1_000_000);
        assert_eq!(with.reg(5), 0);
        assert_eq!(without.reg(5), 0);
        assert!(
            with.cycle < without.cycle,
            "BTB should speed up the loop: {} vs {} cycles",
            with.cycle,
            without.cycle
        );
    }

    #[test]
    fn stale_instructions_execute_from_the_icache() {
        // Store a different instruction over slot 2, then fall into it.
        // The pipelined core executes the STALE instruction (from the I$),
        // demonstrating the §5.6 hazard the XAddrs discipline guards.
        let addi7 = riscv_spec::encode(&I::Addi {
            rd: Reg::X5,
            rs1: Reg::X0,
            imm: 7,
        });
        // Build: lui/addi x6 <- encode(addi x5,x0,9); sw x6, 16(x0);
        // slot4: addi x5, x0, 7 (stale); ebreak
        let addi9 = riscv_spec::encode(&I::Addi {
            rd: Reg::X5,
            rs1: Reg::X0,
            imm: 9,
        });
        let hi = addi9.wrapping_add(0x800) >> 12;
        let lo = riscv_spec::word::sign_extend(addi9 & 0xFFF, 12) as i32;
        let prog = [
            I::Lui {
                rd: Reg::X6,
                imm20: hi & 0xFFFFF,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X6,
                imm: lo,
            },
            I::Sw {
                rs1: Reg::X0,
                rs2: Reg::X6,
                offset: 16,
            },
            I::NOP,
            I::Invalid { word: addi7 }, // placeholder replaced below
            I::Ebreak,
        ];
        let mut img = image(&prog);
        img[16..20].copy_from_slice(&addi7.to_le_bytes());
        let mut p = Pipelined::new(&img, 0x1000, NoMmio, PipelineConfig::default());
        p.run(100_000);
        assert!(p.halted);
        assert_eq!(p.reg(5), 7, "I$ serves the stale instruction");
        // RAM, however, holds the new instruction.
        assert_eq!(p.mem.ram.read(16), addi9);
    }

    #[test]
    fn fence_i_synchronizes_the_icache() {
        let addi9 = riscv_spec::encode(&I::Addi {
            rd: Reg::X5,
            rs1: Reg::X0,
            imm: 9,
        });
        let hi = addi9.wrapping_add(0x800) >> 12;
        let lo = riscv_spec::word::sign_extend(addi9 & 0xFFF, 12) as i32;
        let prog = [
            I::Lui {
                rd: Reg::X6,
                imm20: hi & 0xFFFFF,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X6,
                imm: lo,
            },
            I::Sw {
                rs1: Reg::X0,
                rs2: Reg::X6,
                offset: 20,
            },
            I::FenceI,
            I::NOP,
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 7,
            }, // overwritten with addi 9
            I::Ebreak,
        ];
        let mut p = Pipelined::new(&image(&prog), 0x1000, NoMmio, PipelineConfig::default());
        p.run(100_000);
        assert!(p.halted);
        assert_eq!(p.reg(5), 9, "fence.i must expose the new instruction");
    }

    #[test]
    fn halted_core_stops_cold() {
        let mut p = run_prog(&[I::Ebreak]);
        let c = p.cycle;
        p.step_cycle();
        assert_eq!(p.cycle, c);
    }
}

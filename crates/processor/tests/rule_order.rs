//! One-rule-at-a-time robustness (§5.7): Kami's semantic guarantee is that
//! any serialization of rule firings is a legal behavior. The pipelined
//! module's stages are rules; scheduling them upstream-first instead of
//! the default downstream-first produces *different timing* (instructions
//! can flow through several stages in one "cycle") but must produce the
//! same architectural results — if it did not, the stages would be relying
//! on scheduling accidents rather than honest rule atomicity.

use kami::{RuleBased, Scheduler};
use proptest::prelude::*;
use riscv_spec::{encode, Instruction, NoMmio, Reg};

use processor::{PipelineConfig, Pipelined, SingleCycle};

fn image(body: &[Instruction]) -> Vec<u8> {
    let mut prog = body.to_vec();
    // Pad so the +8 branches in the stream cannot skip the final ebreak.
    for _ in 0..4 {
        prog.push(Instruction::NOP);
    }
    prog.push(Instruction::Ebreak);
    prog.iter().flat_map(|i| encode(i).to_le_bytes()).collect()
}

/// Runs the pipeline firing rules in the given order each cycle.
fn run_with_order(img: &[u8], order: &[&str], max_cycles: u64) -> Pipelined<NoMmio> {
    let mut p = Pipelined::new(img, 0x1000, NoMmio, PipelineConfig::default());
    let mut cycles = 0;
    while !p.halted && cycles < max_cycles {
        for rule in order {
            if p.halted {
                break;
            }
            let _ = p.fire(rule);
        }
        p.finish_cycle();
        cycles += 1;
    }
    p
}

fn arb_inst() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    (0u8..12, 0u8..12, 0u8..12, 0u8..7).prop_map(|(rd, rs1, rs2, k)| {
        let (rd, rs1, rs2) = (Reg::new(rd), Reg::new(rs1), Reg::new(rs2));
        match k {
            0 => Add { rd, rs1, rs2 },
            1 => Sub { rd, rs1, rs2 },
            2 => Mul { rd, rs1, rs2 },
            3 => Sltu { rd, rs1, rs2 },
            4 => Addi {
                rd,
                rs1,
                imm: rs2.index() as i32 * 3 - 8,
            },
            5 => Beq {
                rs1,
                rs2,
                offset: 8,
            },
            _ => Xor { rd, rs1, rs2 },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Upstream-first scheduling (a different legal serialization) agrees
    /// architecturally with the default downstream-first one and with the
    /// single-cycle spec core.
    #[test]
    fn rule_order_is_architecturally_invisible(
        body in proptest::collection::vec(arb_inst(), 1..40),
    ) {
        let img = image(&body);
        let down = run_with_order(&img, &["writeback", "execute", "decode", "fetch"], 100_000);
        let up = run_with_order(&img, &["fetch", "decode", "execute", "writeback"], 100_000);
        prop_assert!(down.halted && up.halted);
        let mut spec = SingleCycle::new(&img, 0x1000, NoMmio);
        spec.run(100_000);
        for r in 0..32u8 {
            prop_assert_eq!(down.reg(r), spec.rf.read(r), "down x{}", r);
            prop_assert_eq!(up.reg(r), spec.rf.read(r), "up x{}", r);
        }
    }

    /// The standard Scheduler over the declared rule list equals the
    /// manual downstream-first loop.
    #[test]
    fn scheduler_matches_manual_firing(
        body in proptest::collection::vec(arb_inst(), 1..24),
    ) {
        let img = image(&body);
        let manual = run_with_order(&img, &["writeback", "execute", "decode", "fetch"], 100_000);
        let mut scheduled = Pipelined::new(&img, 0x1000, NoMmio, PipelineConfig::default());
        let s = Scheduler::new();
        let mut cycles = 0;
        while !scheduled.halted && cycles < 100_000 {
            s.cycle(&mut scheduled);
            scheduled.finish_cycle();
            cycles += 1;
        }
        prop_assert!(manual.halted && scheduled.halted);
        for r in 0..32u8 {
            prop_assert_eq!(manual.reg(r), scheduled.reg(r), "x{}", r);
        }
    }
}

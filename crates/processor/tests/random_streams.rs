//! Refinement on *raw instruction streams*: beyond compiled programs, the
//! pipelined core must refine the single-cycle core on arbitrary
//! (software-contract-abiding) code. Streams are screened with the
//! `riscv-spec` machine first — exactly the paper's proof structure, where
//! `kstep1_sound` assumes the software side does not reach undefined
//! behavior (§5.8).

use proptest::prelude::*;
use riscv_spec::{encode, Instruction, Memory, NoMmio, Reg, SpecMachine, StepOutcome};

use processor::{check_refinement, PipelineConfig};

const RAM: u32 = 0x1000;
const FUEL: u64 = 5_000;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

/// A constrained instruction: ALU ops, small-offset branches, loads and
/// stores through x1, which a preamble points at a data area well away
/// from the code.
fn arb_stream_inst() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    prop_oneof![
        5 => (arb_reg(), arb_reg(), -64i32..64).prop_map(|(rd, rs1, imm)| Addi { rd, rs1, imm }),
        4 => (arb_reg(), arb_reg(), arb_reg(), 0u8..10).prop_map(|(rd, rs1, rs2, k)| match k {
            0 => Add { rd, rs1, rs2 },
            1 => Sub { rd, rs1, rs2 },
            2 => Xor { rd, rs1, rs2 },
            3 => Or { rd, rs1, rs2 },
            4 => And { rd, rs1, rs2 },
            5 => Sltu { rd, rs1, rs2 },
            6 => Mul { rd, rs1, rs2 },
            7 => Divu { rd, rs1, rs2 },
            8 => Sll { rd, rs1, rs2 },
            _ => Srl { rd, rs1, rs2 },
        }),
        2 => (arb_reg(), 0u32..16).prop_map(|(rd, w)| Lw {
            rd,
            rs1: Reg::X1,
            offset: (w * 4) as i32,
        }),
        2 => (arb_reg(), 0u32..16).prop_map(|(rs2, w)| Sw {
            rs1: Reg::X1,
            rs2,
            offset: (w * 4) as i32,
        }),
        // Short forward branches only: they stay inside the padded stream.
        1 => (arb_reg(), arb_reg(), 1i32..6).prop_map(|(rs1, rs2, k)| Beq {
            rs1,
            rs2,
            offset: k * 4,
        }),
        1 => (arb_reg(), arb_reg(), 1i32..6).prop_map(|(rs1, rs2, k)| Bne {
            rs1,
            rs2,
            offset: k * 4,
        }),
    ]
}

fn image(body: &[Instruction]) -> Vec<u8> {
    // Preamble: x1 = 0x7F8 (the data area, word-aligned, above the code). Epilogue: ebreak, padded so
    // short forward branches always land on real instructions.
    let mut prog = vec![Instruction::Addi {
        rd: Reg::X1,
        rs1: Reg::X0,
        imm: 0x7F8,
    }];
    prog.extend_from_slice(body);
    for _ in 0..8 {
        prog.push(Instruction::NOP);
    }
    prog.push(Instruction::Ebreak);
    prog.iter().flat_map(|i| encode(i).to_le_bytes()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipelined_refines_single_cycle_on_streams(
        body in proptest::collection::vec(arb_stream_inst(), 1..40),
    ) {
        let img = image(&body);
        // Screen with the software-contract checker.
        let mut spec = SpecMachine::new(Memory::with_size(RAM), NoMmio);
        spec.load_program(0, &img.chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect::<Vec<_>>());
        match spec.run_until_ebreak(FUEL) {
            Ok(StepOutcome::Halted { .. }) => {}
            _ => return Ok(()), // outside the contract: nothing to check
        }
        let report = check_refinement(
            &img,
            RAM,
            NoMmio,
            |_| false,
            PipelineConfig::default(),
            200_000,
        );
        prop_assert!(report.is_ok(), "refinement violated: {report:?}");
    }

    #[test]
    fn refinement_holds_without_btb_on_streams(
        body in proptest::collection::vec(arb_stream_inst(), 1..24),
    ) {
        let img = image(&body);
        let mut spec = SpecMachine::new(Memory::with_size(RAM), NoMmio);
        spec.load_program(0, &img.chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect::<Vec<_>>());
        match spec.run_until_ebreak(FUEL) {
            Ok(StepOutcome::Halted { .. }) => {}
            _ => return Ok(()),
        }
        let report = check_refinement(
            &img,
            RAM,
            NoMmio,
            |_| false,
            PipelineConfig { btb_bits: None, fetch_buffer: 3 },
            200_000,
        );
        prop_assert!(report.is_ok(), "refinement violated: {report:?}");
    }
}

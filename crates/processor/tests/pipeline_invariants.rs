//! Structural invariants of the pipelined core on random programs: IPC
//! never exceeds 1 (single issue), retirement counts match the spec core,
//! and the fetch-buffer size changes timing but never architecture.

use proptest::prelude::*;
use riscv_spec::{encode, Instruction, NoMmio, Reg};

use processor::{PipelineConfig, Pipelined, SingleCycle};

fn image(body: &[Instruction]) -> Vec<u8> {
    let mut prog = body.to_vec();
    prog.push(Instruction::Ebreak);
    prog.iter().flat_map(|i| encode(i).to_le_bytes()).collect()
}

fn arb_alu() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    (0u8..16, 0u8..16, 0u8..16, 0u8..6).prop_map(|(rd, rs1, rs2, k)| {
        let (rd, rs1, rs2) = (Reg::new(rd), Reg::new(rs1), Reg::new(rs2));
        match k {
            0 => Add { rd, rs1, rs2 },
            1 => Sub { rd, rs1, rs2 },
            2 => Xor { rd, rs1, rs2 },
            3 => Mul { rd, rs1, rs2 },
            4 => Sltu { rd, rs1, rs2 },
            _ => Addi {
                rd,
                rs1,
                imm: (rs2.index() as i32) - 8,
            },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_issue_means_ipc_at_most_one(
        body in proptest::collection::vec(arb_alu(), 1..64),
    ) {
        let mut p = Pipelined::new(&image(&body), 0x1000, NoMmio, PipelineConfig::default());
        p.run(100_000);
        prop_assert!(p.halted);
        prop_assert!(p.retired <= p.cycle, "retired {} > cycles {}", p.retired, p.cycle);
        prop_assert!(p.ipc() <= 1.0);
    }

    #[test]
    fn both_cores_retire_the_same_instructions(
        body in proptest::collection::vec(arb_alu(), 1..64),
    ) {
        let img = image(&body);
        let mut p = Pipelined::new(&img, 0x1000, NoMmio, PipelineConfig::default());
        p.run(100_000);
        let mut s = SingleCycle::new(&img, 0x1000, NoMmio);
        s.run(100_000);
        prop_assert!(p.halted && s.halted);
        // Straight-line code: no squashes, so retirement counts agree.
        prop_assert_eq!(p.retired, s.retired);
        for r in 0..32u8 {
            prop_assert_eq!(p.reg(r), s.rf.read(r), "x{}", r);
        }
    }

    #[test]
    fn fetch_buffer_size_is_architecturally_invisible(
        body in proptest::collection::vec(arb_alu(), 1..48),
        cap in 1usize..5,
    ) {
        let img = image(&body);
        let mut a = Pipelined::new(&img, 0x1000, NoMmio, PipelineConfig::default());
        a.run(100_000);
        let mut b = Pipelined::new(
            &img,
            0x1000,
            NoMmio,
            PipelineConfig { fetch_buffer: cap, ..PipelineConfig::default() },
        );
        b.run(100_000);
        prop_assert!(a.halted && b.halted);
        for r in 0..32u8 {
            prop_assert_eq!(a.reg(r), b.reg(r), "x{}", r);
        }
    }
}

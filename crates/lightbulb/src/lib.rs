//! The verified-IoT-lightbulb application: drivers and event loop written
//! in Bedrock2, the MMIO bridge that runs them against the device models,
//! and the top-level trace specification `goodHlTrace`.
//!
//! This crate is the software half of the paper's case study (§3, §5.1):
//!
//! * [`layout`] — the platform memory map every layer shares;
//! * [`spi_driver`] / [`lan9250_driver`] / [`app`] — the three Bedrock2
//!   source files of the prototype, with the configuration knobs the
//!   §7.2.1 evaluation varies (timeouts, SPI pipelining);
//! * [`ext`] — the runtime instantiation of the `MMIOREAD`/`MMIOWRITE`
//!   external-call specification, bridging the Bedrock2 interpreter to the
//!   same device models the hardware simulations use;
//! * [`spec`] — `BootSeq`, `Recv b`, `LightbulbCmd b`, `RecvInvalid`,
//!   `PollNone`, and [`spec::good_hl_trace`] (§3.1), extended with the
//!   classified recoverable-failure shapes of the hardened drivers;
//! * [`probe`] — reconstructs driver recovery activity (retries,
//!   re-inits) from an MMIO trace, for observability counters.
//!
//! The `integration` crate compiles [`app::lightbulb_program`] and runs it
//! on the processor models; here the same program runs on the Bedrock2
//! interpreter, so the *source-level* and *machine-level* I/O traces can
//! both be checked against the one specification.

pub mod app;
pub mod ext;
pub mod lan9250_driver;
pub mod layout;
pub mod probe;
pub mod spec;
pub mod spi_driver;

pub use app::{lightbulb_program, DriverOptions};
pub use ext::MmioBridge;
pub use spec::good_hl_trace;

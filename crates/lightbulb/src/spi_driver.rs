//! The SPI driver, written in Bedrock2 (the `SPI` source file of §5.1).
//!
//! Three functions, mirroring the paper's driver:
//!
//! * `spi_xchg(b) -> (r, err)` — one synchronous byte exchange: wait for
//!   the TX queue to have room, enqueue `b`, wait for the response byte.
//!   This is the *interleaved* discipline the verified system uses: "our
//!   verified system instead interleaves one-byte writes and reads, as
//!   captured in the simplest specification we could come up with"
//!   (§7.2.1).
//! * `spi_put(b) -> err` / `spi_get() -> (r, err)` — the halves of an
//!   exchange, used by the *pipelined* driver variant that reproduces the
//!   FE310-style optimization (queue the whole command, then drain the
//!   responses), the 1.4× factor of §7.2.1.
//!
//! With `timeouts` enabled (the verified configuration), every polling
//! loop carries a countdown and reports failure instead of hanging — the
//! logic the paper added "when setting up to prove total correctness for
//! each iteration of the top-level event loop" (1.2× of §7.2.1).

use crate::layout::{DRAIN_QUIET_READS, SPI_DRAIN_BUDGET, SPI_RXDATA, SPI_TIMEOUT, SPI_TXDATA};
use bedrock2::ast::{Expr, Function, Stmt};
use bedrock2::dsl::*;

/// `v >> 31`: the flag bit of a TXDATA/RXDATA read as 0/1.
fn flag(v: Expr) -> Expr {
    sru(v, lit(31))
}

/// Builds a polling loop: read `reg` into `v` until the flag clears,
/// optionally bounded by a timeout counter in `i`.
fn poll_until_clear(reg: u32, timeouts: bool) -> Vec<Stmt> {
    if timeouts {
        vec![
            set("i", lit(SPI_TIMEOUT)),
            interact(&["v"], "MMIOREAD", [lit(reg)]),
            while_(
                and(flag(var("v")), ltu(lit(0), var("i"))),
                block([
                    set("i", sub(var("i"), lit(1))),
                    interact(&["v"], "MMIOREAD", [lit(reg)]),
                ]),
            ),
        ]
    } else {
        vec![
            interact(&["v"], "MMIOREAD", [lit(reg)]),
            while_(flag(var("v")), interact(&["v"], "MMIOREAD", [lit(reg)])),
        ]
    }
}

/// `spi_put(b) -> err`: wait for TX space, enqueue one byte.
pub fn spi_put(timeouts: bool) -> Function {
    let mut body = poll_until_clear(SPI_TXDATA, timeouts);
    body.push(set("err", flag(var("v"))));
    body.push(when(
        eq(var("err"), lit(0)),
        interact(&[], "MMIOWRITE", [lit(SPI_TXDATA), var("b")]),
    ));
    Function::new("spi_put", &["b"], &["err"], block(body))
}

/// `spi_get() -> (r, err)`: wait for and dequeue one response byte.
pub fn spi_get(timeouts: bool) -> Function {
    let mut body = poll_until_clear(SPI_RXDATA, timeouts);
    body.push(set("err", flag(var("v"))));
    body.push(set("r", and(var("v"), lit(0xFF))));
    Function::new("spi_get", &[], &["r", "err"], block(body))
}

/// `spi_drain() -> n`: pop stale response bytes out of the RX queue until
/// the wire is quiet, bounded by [`SPI_DRAIN_BUDGET`] reads in total.
/// After an exchange times out, its response byte can arrive late and
/// desynchronize every subsequent exchange by one byte — and it may still
/// be *in flight* when the drain starts, so a single empty read is not
/// proof the queue will stay empty. The loop therefore only concludes
/// after [`DRAIN_QUIET_READS`] consecutive empties (longer than one byte
/// transfer); any popped byte resets the quiet run. Recovery paths call
/// this before re-running the bring-up sequence.
pub fn spi_drain() -> Function {
    let body = block([
        set("n", lit(0)),
        set("q", lit(0)),
        set("i", lit(SPI_DRAIN_BUDGET)),
        while_(
            and(ltu(var("q"), lit(DRAIN_QUIET_READS)), ltu(lit(0), var("i"))),
            block([
                set("i", sub(var("i"), lit(1))),
                interact(&["v"], "MMIOREAD", [lit(SPI_RXDATA)]),
                if_(
                    flag(var("v")),
                    set("q", add(var("q"), lit(1))),
                    block([set("q", lit(0)), set("n", add(var("n"), lit(1)))]),
                ),
            ]),
        ),
    ]);
    Function::new("spi_drain", &[], &["n"], body)
}

/// `spi_xchg(b) -> (r, err)`: one full-duplex byte exchange.
pub fn spi_xchg(_timeouts: bool) -> Function {
    let body = block([
        set("r", lit(0)),
        call(&["err"], "spi_put", [var("b")]),
        when(
            eq(var("err"), lit(0)),
            block([call(&["r", "err"], "spi_get", [])]),
        ),
    ]);
    Function::new("spi_xchg", &["b"], &["r", "err"], body)
}

/// All SPI driver functions for the given configuration.
pub fn functions(timeouts: bool) -> Vec<Function> {
    vec![
        spi_put(timeouts),
        spi_get(timeouts),
        spi_xchg(timeouts),
        spi_drain(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::MmioBridge;
    use bedrock2::semantics::Interp;
    use bedrock2::Program;
    use devices::Board;
    use riscv_spec::Memory;

    fn program(timeouts: bool) -> Program {
        Program::from_functions(functions(timeouts))
    }

    #[test]
    fn xchg_exchanges_one_byte_with_the_slave() {
        for timeouts in [true, false] {
            let p = program(timeouts);
            let mut board = Board::default();
            for _ in 0..32 {
                riscv_spec::MmioHandler::tick(&mut board); // LAN9250 power-up
            }
            let bridge = MmioBridge::new(board);
            let mut i = Interp::new(&p, Memory::with_size(64), bridge);
            // Select the chip, then exchange a READ command byte — the
            // LAN9250 answers 0xFF during command bytes.
            bedrock2::ExtHandler::call(
                &mut i.ext,
                "MMIOWRITE",
                &[crate::layout::SPI_CSMODE, 1],
                &mut Memory::with_size(4),
            )
            .unwrap();
            let out = i.call("spi_xchg", &[crate::layout::CMD_READ]).unwrap();
            assert_eq!(out, vec![0xFF, 0], "(r, err)");
        }
    }

    #[test]
    fn timeout_reports_error_instead_of_hanging() {
        // A board whose SPI never completes: zero slave progress because we
        // never tick the device. With timeouts the driver returns err = 1;
        // without, it would spin forever (bounded here by fuel).
        let p = program(true);
        let bridge = NoTickBridge;
        let mut i = Interp::new(&p, Memory::with_size(64), bridge);
        let out = i.call("spi_get", &[]).unwrap();
        assert_eq!(out[1], 1, "err must be set on timeout");

        let p = program(false);
        let bridge = NoTickBridge;
        let mut i = Interp::new(&p, Memory::with_size(64), bridge).with_fuel(10_000);
        assert_eq!(
            i.call("spi_get", &[]),
            Err(bedrock2::Ub::OutOfFuel),
            "without timeouts the driver spins"
        );
    }

    /// An environment where RXDATA is permanently empty.
    #[derive(Default)]
    struct NoTickBridge;
    impl bedrock2::ExtHandler for NoTickBridge {
        fn call(
            &mut self,
            action: &str,
            args: &[u32],
            _mem: &mut Memory,
        ) -> Result<Vec<u32>, String> {
            match action {
                "MMIOREAD" if args == [crate::layout::SPI_RXDATA] => {
                    Ok(vec![crate::layout::SPI_FLAG])
                }
                "MMIOREAD" => Ok(vec![0]),
                "MMIOWRITE" => Ok(vec![]),
                _ => Err("unknown".into()),
            }
        }
    }
}

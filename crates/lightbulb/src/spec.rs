//! The top-level trace specification (§3.1 of the paper):
//!
//! ```text
//! goodHlTrace :=
//!   BootSeq +++ ((EX b: bool, Recv b +++ LightbulbCmd b)
//!                ||| RecvInvalid ||| PollNone) ^*
//! ```
//!
//! Every predicate here is a set of MMIO traces at the processor's bus
//! interface — the same `("ld"/"st", addr, value)` triples every machine
//! model in the workspace records — built from the regex-like combinators
//! of `proglogic::trace`.
//!
//! The specification is *lax* where the paper's is lax (it does not parse
//! IP headers out of the byte stream) and precise where safety demands it:
//!
//! * `LightbulbCmd b` only ever appears after `Recv b` with the **same**
//!   `b`, and `Recv b` pins the received command byte — the RXDATA read
//!   delivering byte offset 42 of the frame (word 10, lane 2) — to carry
//!   `b` in its low bit. A trace in which the lightbulb switches without a
//!   matching command, or opposite to the command, does not match.
//! * `RecvInvalid` and `PollNone` contain no GPIO events at all, so
//!   malformed traffic provably (checkably) cannot actuate anything.
//! * `BootSeq` requires the mandated bring-up: a `BYTE_TEST` read
//!   observing the magic value, an `HW_CFG` read observing READY, and the
//!   MAC receive-enable sequence, before any packet interaction.

use crate::app::DriverOptions;
use crate::layout::{self, lan};
use proglogic::trace::{ld_if, st_if, TracePred};

/// `p` repeated at most `n` times (polling loops are bounded by their
/// timeout budget, which also keeps trace matching fast).
fn at_most(p: &TracePred, n: usize) -> TracePred {
    let mut acc = TracePred::eps();
    for _ in 0..n {
        acc = p.then(&acc).or(&TracePred::eps());
    }
    acc.named(&format!("({:?})^{{0..{n}}}", p))
}

/// Maximum polls a driver flag-wait can issue (timeout budget + the
/// initial read).
const MAX_POLLS: usize = layout::SPI_TIMEOUT as usize + 2;

fn tx_busy() -> TracePred {
    ld_if(layout::SPI_TXDATA, "full", |v| v & layout::SPI_FLAG != 0)
}

fn tx_ready() -> TracePred {
    ld_if(layout::SPI_TXDATA, "room", |v| v & layout::SPI_FLAG == 0)
}

fn rx_empty() -> TracePred {
    ld_if(layout::SPI_RXDATA, "empty", |v| v & layout::SPI_FLAG != 0)
}

fn rx_byte(name: &str, f: impl Fn(u8) -> bool + 'static) -> TracePred {
    ld_if(layout::SPI_RXDATA, name, move |v| {
        v & layout::SPI_FLAG == 0 && f(v as u8)
    })
}

fn cs(assert: bool) -> TracePred {
    st_if(
        layout::SPI_CSMODE,
        if assert { "cs+" } else { "cs-" },
        move |v| (v & 1 == 1) == assert,
    )
}

/// `spi_put(b)`: wait for room, write the byte (any byte when `None`).
fn put(byte: Option<u8>) -> TracePred {
    let write = match byte {
        Some(b) => st_if(layout::SPI_TXDATA, &format!("tx={b:#04x}"), move |v| {
            v as u8 == b
        }),
        None => st_if(layout::SPI_TXDATA, "tx", |_| true),
    };
    let name = match byte {
        Some(b) => format!("put({b:#04x})"),
        None => "put(_)".to_string(),
    };
    at_most(&tx_busy(), MAX_POLLS)
        .then(&tx_ready())
        .then(&write)
        .named(&name)
}

/// `spi_get()`: wait for and read one response byte satisfying `f`.
fn get(name: &str, f: impl Fn(u8) -> bool + 'static) -> TracePred {
    at_most(&rx_empty(), MAX_POLLS)
        .then(&rx_byte(name, f))
        .named(&format!("get[{name}]"))
}

fn get_any() -> TracePred {
    get("rx", |_| true)
}

/// A named predicate over one received data byte.
type BytePred = Option<(&'static str, fn(u8) -> bool)>;

/// One LAN9250 register read with per-data-byte predicates.
fn lan_read(opts: DriverOptions, addr: u16, data: [BytePred; 4]) -> TracePred {
    let hi = (addr >> 8) as u8;
    let lo = (addr & 0xFF) as u8;
    let data_gets: Vec<TracePred> = data
        .into_iter()
        .map(|p| match p {
            Some((name, f)) => get(name, f),
            None => get_any(),
        })
        .collect();
    let mut parts = vec![cs(true)];
    if opts.pipelined_spi {
        // Queue the 7 command bytes, then drain 3 junk + 4 data responses.
        parts.push(put(Some(layout::CMD_READ as u8)));
        parts.push(put(Some(hi)));
        parts.push(put(Some(lo)));
        for _ in 0..4 {
            parts.push(put(Some(0)));
        }
        for _ in 0..3 {
            parts.push(get_any());
        }
        parts.extend(data_gets);
    } else {
        // Interleaved: each byte is a put immediately followed by a get.
        parts.push(put(Some(layout::CMD_READ as u8)));
        parts.push(get_any());
        parts.push(put(Some(hi)));
        parts.push(get_any());
        parts.push(put(Some(lo)));
        parts.push(get_any());
        for dg in data_gets {
            parts.push(put(Some(0)));
            parts.push(dg);
        }
    }
    parts.push(cs(false));
    let labels: Vec<String> = data
        .iter()
        .map(|p| p.map_or("_", |(n, _)| n).to_string())
        .collect();
    TracePred::all(parts).named(&format!("lan_read(0x{addr:02x}; {})", labels.join(",")))
}

/// One LAN9250 register write of a known value.
fn lan_write(opts: DriverOptions, addr: u16, value: u32) -> TracePred {
    let bytes = [
        layout::CMD_WRITE as u8,
        (addr >> 8) as u8,
        (addr & 0xFF) as u8,
        value as u8,
        (value >> 8) as u8,
        (value >> 16) as u8,
        (value >> 24) as u8,
    ];
    let mut parts = vec![cs(true)];
    if opts.pipelined_spi {
        for b in bytes {
            parts.push(put(Some(b)));
        }
        for _ in 0..7 {
            parts.push(get_any());
        }
    } else {
        for b in bytes {
            parts.push(put(Some(b)));
            parts.push(get_any());
        }
    }
    parts.push(cs(false));
    TracePred::all(parts).named(&format!("lan_write(0x{addr:02x}, {value:#x})"))
}

fn lan_read_any(opts: DriverOptions, addr: u16) -> TracePred {
    lan_read(opts, addr, [None, None, None, None])
}

/// `BootSeq`: GPIO setup plus the Ethernet controller's mandated
/// bring-up incantations (§3.1).
pub fn boot_seq(opts: DriverOptions) -> TracePred {
    let gpio_en = st_if(layout::GPIO_OUTPUT_EN, "enable-bulb", |v| {
        v == layout::LIGHTBULB_MASK
    });
    // Poll BYTE_TEST until the magic value appears, byte by byte.
    let byte_test_magic = lan_read(
        opts,
        lan::BYTE_TEST,
        [
            Some(("magic0", |b| b == 0x21)),
            Some(("magic1", |b| b == 0x43)),
            Some(("magic2", |b| b == 0x65)),
            Some(("magic3", |b| b == 0x87)),
        ],
    );
    let byte_test_poll = at_most(
        &lan_read_any(opts, lan::BYTE_TEST),
        layout::INIT_TIMEOUT as usize + 1,
    )
    .then(&byte_test_magic);
    // Poll HW_CFG until READY (bit 27 = bit 3 of byte 3).
    let hw_cfg_ready = lan_read(
        opts,
        lan::HW_CFG,
        [None, None, None, Some(("ready", |b| b & 0x08 != 0))],
    );
    let hw_cfg_poll = at_most(
        &lan_read_any(opts, lan::HW_CFG),
        layout::INIT_TIMEOUT as usize + 1,
    )
    .then(&hw_cfg_ready);
    // MAC receive enable through the CSR indirection, then wait not-busy.
    let mac = lan_write(opts, lan::MAC_CSR_DATA, layout::MAC_CR_RXEN).then(&lan_write(
        opts,
        lan::MAC_CSR_CMD,
        layout::MAC_CSR_BUSY | layout::MAC_CR,
    ));
    let cmd_idle = lan_read(
        opts,
        lan::MAC_CSR_CMD,
        [None, None, None, Some(("idle", |b| b & 0x80 == 0))],
    );
    let cmd_poll = at_most(
        &lan_read_any(opts, lan::MAC_CSR_CMD),
        layout::INIT_TIMEOUT as usize + 1,
    )
    .then(&cmd_idle);
    TracePred::all([gpio_en, byte_test_poll, hw_cfg_poll, mac, cmd_poll])
}

/// `PollNone`: the RX FIFO information read reporting no pending frames
/// (status-FIFO count byte — byte 2 — is zero).
pub fn poll_none(opts: DriverOptions) -> TracePred {
    lan_read(
        opts,
        lan::RX_FIFO_INF,
        [None, None, Some(("no-frames", |b| b == 0)), None],
    )
}

fn poll_avail(opts: DriverOptions) -> TracePred {
    lan_read(
        opts,
        lan::RX_FIFO_INF,
        [None, None, Some(("frames>0", |b| b != 0)), None],
    )
}

fn data_word_any(opts: DriverOptions) -> TracePred {
    lan_read_any(opts, lan::RX_DATA_FIFO)
}

/// The data word carrying the command byte: frame byte offset 42 = word
/// 10, lane 2, whose low bit is the on/off command `b`.
fn data_word_cmd(opts: DriverOptions, b: bool) -> TracePred {
    let pred: fn(u8) -> bool = if b { |x| x & 1 == 1 } else { |x| x & 1 == 0 };
    lan_read(
        opts,
        lan::RX_DATA_FIFO,
        [None, None, Some(("cmd", pred)), None],
    )
}

/// Maximum data words per accepted frame (1520-byte buffer).
const MAX_DATA_WORDS: usize = (layout::RX_BUFFER_BYTES as usize).div_ceil(4);

/// `Recv b`: a frame is announced, its status is read, and its contents
/// are streamed out — with the command byte carrying `b`.
pub fn recv(opts: DriverOptions, b: bool) -> TracePred {
    let leading: Vec<TracePred> = (0..10).map(|_| data_word_any(opts)).collect();
    poll_avail(opts)
        .then(&lan_read_any(opts, lan::RX_STATUS_FIFO))
        .then(&TracePred::all(leading))
        .then(&data_word_cmd(opts, b))
        .then(&at_most(&data_word_any(opts), MAX_DATA_WORDS - 11))
}

/// `LightbulbCmd b`: the read-modify-write of the GPIO output register
/// leaving the lightbulb pin equal to `b`.
pub fn lightbulb_cmd(b: bool) -> TracePred {
    let set_pin = st_if(
        layout::GPIO_OUTPUT_VAL,
        if b { "bulb=on" } else { "bulb=off" },
        move |v| (v & layout::LIGHTBULB_MASK != 0) == b,
    );
    ld_if(layout::GPIO_OUTPUT_VAL, "gpio-read", |_| true).then(&set_pin)
}

/// `RecvInvalid`: a frame is announced and then either discarded by the
/// datapath control (length guard) or streamed out and dropped — with no
/// GPIO interaction whatsoever.
pub fn recv_invalid(opts: DriverOptions) -> TracePred {
    let discard = lan_write(opts, lan::RX_DP_CTRL, layout::RX_DP_DISCARD);
    let consume = data_word_any(opts).then(&at_most(&data_word_any(opts), MAX_DATA_WORDS - 1));
    poll_avail(opts)
        .then(&lan_read_any(opts, lan::RX_STATUS_FIFO))
        .then(&discard.or(&consume))
}

/// `goodHlTrace`: the complete top-level specification (§3.1).
pub fn good_hl_trace(opts: DriverOptions) -> TracePred {
    let step = TracePred::ex_bool(move |b| recv(opts, b).then(&lightbulb_cmd(b)))
        .or(&recv_invalid(opts))
        .or(&poll_none(opts));
    boot_seq(opts).then(&step.star())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{lightbulb_program, DriverOptions};
    use crate::ext::MmioBridge;
    use bedrock2::semantics::Interp;
    use devices::workload::{Malformation, TrafficGen};
    use devices::Board;
    use riscv_spec::{Memory, MmioEvent};

    fn run_system(opts: DriverOptions, frames: &[Vec<u8>], loops: usize) -> (Vec<MmioEvent>, bool) {
        let p = lightbulb_program(opts);
        let mut i = Interp::new(
            &p,
            Memory::with_size(0x1_0000),
            MmioBridge::new(Board::default()),
        );
        let out = i.call("lightbulb_init", &[]).unwrap();
        assert_eq!(out, vec![0]);
        for f in frames {
            i.ext.dev.inject_frame(f);
        }
        for _ in 0..loops {
            i.call("lightbulb_loop", &[]).unwrap();
        }
        let on = i.ext.dev.lightbulb_on();
        (i.ext.events, on)
    }

    #[test]
    fn boot_alone_matches() {
        let opts = DriverOptions::default();
        let (trace, _) = run_system(opts, &[], 0);
        assert!(
            boot_seq(opts).matches(&trace),
            "boot trace must match BootSeq"
        );
        assert!(good_hl_trace(opts).matches(&trace));
    }

    #[test]
    fn idle_polling_matches() {
        let opts = DriverOptions::default();
        let (trace, on) = run_system(opts, &[], 3);
        assert!(!on);
        assert!(good_hl_trace(opts).matches(&trace));
    }

    #[test]
    fn valid_command_matches_with_the_right_bit() {
        let opts = DriverOptions::default();
        let mut gen = TrafficGen::new(41);
        let (trace, on) = run_system(opts, &[gen.command(true)], 1);
        assert!(on);
        assert!(good_hl_trace(opts).matches(&trace));
    }

    #[test]
    fn malformed_traffic_matches_as_invalid() {
        let opts = DriverOptions::default();
        let mut gen = TrafficGen::new(43);
        let frames = vec![
            gen.malformed(Malformation::WrongPort),
            gen.malformed(Malformation::TooShort),
        ];
        let (trace, on) = run_system(opts, &frames, 2);
        assert!(!on);
        assert!(good_hl_trace(opts).matches(&trace));
    }

    #[test]
    fn spec_rejects_rogue_actuation() {
        // Take a legitimate boot+poll trace and append a GPIO write that no
        // received command justifies: the spec must refuse it.
        let opts = DriverOptions::default();
        let (mut trace, _) = run_system(opts, &[], 1);
        assert!(good_hl_trace(opts).matches(&trace));
        trace.push(MmioEvent::load(layout::GPIO_OUTPUT_VAL, 0));
        trace.push(MmioEvent::store(
            layout::GPIO_OUTPUT_VAL,
            layout::LIGHTBULB_MASK,
        ));
        assert!(
            !good_hl_trace(opts).matches(&trace),
            "actuation without a command must not match"
        );
        assert!(
            !good_hl_trace(opts).matches_prefix(&trace),
            "…not even as a prefix"
        );
    }

    #[test]
    fn spec_rejects_inverted_commands() {
        // Flip the GPIO write of a real "on" interaction to "off": the
        // EX-bound b no longer matches the received command byte.
        let opts = DriverOptions::default();
        let mut gen = TrafficGen::new(47);
        let (mut trace, on) = run_system(opts, &[gen.command(true)], 1);
        assert!(on);
        let last = trace.len() - 1;
        assert_eq!(trace[last].addr, layout::GPIO_OUTPUT_VAL);
        trace[last].value &= !layout::LIGHTBULB_MASK; // claim we switched off
        assert!(
            !good_hl_trace(opts).matches(&trace),
            "a trace actuating opposite to the command must not match"
        );
    }

    #[test]
    fn prefixes_of_good_traces_match_as_prefixes() {
        let opts = DriverOptions::default();
        let mut gen = TrafficGen::new(53);
        let (trace, _) = run_system(opts, &[gen.command(true)], 1);
        let spec = good_hl_trace(opts);
        // Sample a handful of prefix lengths including mid-interaction.
        for k in [
            1,
            trace.len() / 3,
            trace.len() / 2,
            trace.len() - 1,
            trace.len(),
        ] {
            assert!(spec.matches_prefix(&trace[..k]), "prefix of length {k}");
        }
    }

    #[test]
    fn pipelined_configuration_has_its_own_matching_spec() {
        let opts = DriverOptions {
            timeouts: true,
            pipelined_spi: true,
        };
        let mut gen = TrafficGen::new(59);
        let (trace, on) = run_system(opts, &[gen.command(true)], 1);
        assert!(on);
        assert!(good_hl_trace(opts).matches(&trace));
        // And the interleaved spec must NOT accept the pipelined trace.
        assert!(!good_hl_trace(DriverOptions::default()).matches(&trace));
    }
}

//! The top-level trace specification (§3.1 of the paper):
//!
//! ```text
//! goodHlTrace :=
//!   BootSeq +++ ((EX b: bool, Recv b +++ LightbulbCmd b)
//!                ||| RecvInvalid ||| PollNone) ^*
//! ```
//!
//! Every predicate here is a set of MMIO traces at the processor's bus
//! interface — the same `("ld"/"st", addr, value)` triples every machine
//! model in the workspace records — built from the regex-like combinators
//! of `proglogic::trace`.
//!
//! The specification is *lax* where the paper's is lax (it does not parse
//! IP headers out of the byte stream) and precise where safety demands it:
//!
//! * `LightbulbCmd b` only ever appears after `Recv b` with the **same**
//!   `b`, and `Recv b` pins the received command byte — the RXDATA read
//!   delivering byte offset 42 of the frame (word 10, lane 2) — to carry
//!   `b` in its low bit. A trace in which the lightbulb switches without a
//!   matching command, or opposite to the command, does not match.
//! * `RecvInvalid` and `PollNone` contain no GPIO events at all, so
//!   malformed traffic provably (checkably) cannot actuate anything.
//! * `BootSeq` requires the mandated bring-up: a `BYTE_TEST` read
//!   observing the magic value, an `HW_CFG` read observing READY, and the
//!   MAC receive-enable sequence, before any packet interaction.
//!
//! # Recoverable failures
//!
//! The paper's device spec is nondeterministic — the LAN9250 may answer
//! `BYTE_TEST` with junk forever, which is why the drivers carry timeout
//! loops at all (§4.3). With the hardened drivers (`lan_init_retry`,
//! `lan_recover`) the top-level spec classifies and accepts *recoverable*
//! failure traces as well:
//!
//! * [`boot_seq_robust`] — bring-up as a bounded chain of attempts: each
//!   failed attempt (polls exhausting their budget, exchanges timing out)
//!   is followed by a FIFO drain and a fresh attempt, ending in either a
//!   successful `BootSeq` tail or a final give-up.
//! * [`recv_error`]` ⋅ `[`reinit`] — an RX interaction whose SPI
//!   exchanges time out, followed by drain-and-reinit. The lightbulb GPIO
//!   appears in **none** of the failure predicates, so the safety story is
//!   unchanged: even under faults, actuation requires a received command.
//!
//! The failure predicates are deliberately lax (any values, optional
//! bytes) — laxity can only over-accept GPIO-free wire noise, never a
//! rogue actuation. Prefix closure is preserved: every prefix of an
//! accepted recovery trace is a prefix of the spec.

use crate::app::DriverOptions;
use crate::layout::{self, lan};
use proglogic::trace::{ld_if, st_if, TracePred};

/// `p` repeated at most `n` times (polling loops are bounded by their
/// timeout budget, which also keeps trace matching fast).
fn at_most(p: &TracePred, n: usize) -> TracePred {
    let mut acc = TracePred::eps();
    for _ in 0..n {
        acc = p.then(&acc).or(&TracePred::eps());
    }
    acc.named(&format!("({:?})^{{0..{n}}}", p))
}

/// Maximum polls a driver flag-wait can issue (timeout budget + the
/// initial read).
const MAX_POLLS: usize = layout::SPI_TIMEOUT as usize + 2;

fn tx_busy() -> TracePred {
    ld_if(layout::SPI_TXDATA, "full", |v| v & layout::SPI_FLAG != 0)
}

fn tx_ready() -> TracePred {
    ld_if(layout::SPI_TXDATA, "room", |v| v & layout::SPI_FLAG == 0)
}

fn rx_empty() -> TracePred {
    ld_if(layout::SPI_RXDATA, "empty", |v| v & layout::SPI_FLAG != 0)
}

fn rx_byte(name: &str, f: impl Fn(u8) -> bool + 'static) -> TracePred {
    ld_if(layout::SPI_RXDATA, name, move |v| {
        v & layout::SPI_FLAG == 0 && f(v as u8)
    })
}

fn cs(assert: bool) -> TracePred {
    st_if(
        layout::SPI_CSMODE,
        if assert { "cs+" } else { "cs-" },
        move |v| (v & 1 == 1) == assert,
    )
}

/// `spi_put(b)`: wait for room, write the byte (any byte when `None`).
fn put(byte: Option<u8>) -> TracePred {
    let write = match byte {
        Some(b) => st_if(layout::SPI_TXDATA, &format!("tx={b:#04x}"), move |v| {
            v as u8 == b
        }),
        None => st_if(layout::SPI_TXDATA, "tx", |_| true),
    };
    let name = match byte {
        Some(b) => format!("put({b:#04x})"),
        None => "put(_)".to_string(),
    };
    at_most(&tx_busy(), MAX_POLLS)
        .then(&tx_ready())
        .then(&write)
        .named(&name)
}

/// `spi_get()`: wait for and read one response byte satisfying `f`.
fn get(name: &str, f: impl Fn(u8) -> bool + 'static) -> TracePred {
    at_most(&rx_empty(), MAX_POLLS)
        .then(&rx_byte(name, f))
        .named(&format!("get[{name}]"))
}

fn get_any() -> TracePred {
    get("rx", |_| true)
}

/// A named predicate over one received data byte.
type BytePred = Option<(&'static str, fn(u8) -> bool)>;

/// One LAN9250 register read with per-data-byte predicates.
fn lan_read(opts: DriverOptions, addr: u16, data: [BytePred; 4]) -> TracePred {
    let hi = (addr >> 8) as u8;
    let lo = (addr & 0xFF) as u8;
    let data_gets: Vec<TracePred> = data
        .into_iter()
        .map(|p| match p {
            Some((name, f)) => get(name, f),
            None => get_any(),
        })
        .collect();
    let mut parts = vec![cs(true)];
    if opts.pipelined_spi {
        // Queue the 7 command bytes, then drain 3 junk + 4 data responses.
        parts.push(put(Some(layout::CMD_READ as u8)));
        parts.push(put(Some(hi)));
        parts.push(put(Some(lo)));
        for _ in 0..4 {
            parts.push(put(Some(0)));
        }
        for _ in 0..3 {
            parts.push(get_any());
        }
        parts.extend(data_gets);
    } else {
        // Interleaved: each byte is a put immediately followed by a get.
        parts.push(put(Some(layout::CMD_READ as u8)));
        parts.push(get_any());
        parts.push(put(Some(hi)));
        parts.push(get_any());
        parts.push(put(Some(lo)));
        parts.push(get_any());
        for dg in data_gets {
            parts.push(put(Some(0)));
            parts.push(dg);
        }
    }
    parts.push(cs(false));
    let labels: Vec<String> = data
        .iter()
        .map(|p| p.map_or("_", |(n, _)| n).to_string())
        .collect();
    TracePred::all(parts).named(&format!("lan_read(0x{addr:02x}; {})", labels.join(",")))
}

/// One LAN9250 register write of a known value.
fn lan_write(opts: DriverOptions, addr: u16, value: u32) -> TracePred {
    let bytes = [
        layout::CMD_WRITE as u8,
        (addr >> 8) as u8,
        (addr & 0xFF) as u8,
        value as u8,
        (value >> 8) as u8,
        (value >> 16) as u8,
        (value >> 24) as u8,
    ];
    let mut parts = vec![cs(true)];
    if opts.pipelined_spi {
        for b in bytes {
            parts.push(put(Some(b)));
        }
        for _ in 0..7 {
            parts.push(get_any());
        }
    } else {
        for b in bytes {
            parts.push(put(Some(b)));
            parts.push(get_any());
        }
    }
    parts.push(cs(false));
    TracePred::all(parts).named(&format!("lan_write(0x{addr:02x}, {value:#x})"))
}

fn lan_read_any(opts: DriverOptions, addr: u16) -> TracePred {
    lan_read(opts, addr, [None, None, None, None])
}

/// A fault-tolerant `spi_get`: bounded polling, then either a delivered
/// byte of any value (wire garbage is admissible) or nothing at all (the
/// timeout path).
fn get_ft() -> TracePred {
    at_most(&rx_empty(), MAX_POLLS)
        .then(&rx_byte("rx?", |_| true).or(&TracePred::eps()))
        .named("get_ft")
}

/// A LAN9250 register read whose exchanges may time out: the command bytes
/// still go out (the TX queue never fills), but any response byte may be
/// missing or garbage.
fn lan_read_ft(opts: DriverOptions, addr: u16) -> TracePred {
    let hi = (addr >> 8) as u8;
    let lo = (addr & 0xFF) as u8;
    let mut parts = vec![cs(true)];
    if opts.pipelined_spi {
        for b in [layout::CMD_READ as u8, hi, lo, 0, 0, 0, 0] {
            parts.push(put(Some(b)));
        }
        for _ in 0..7 {
            parts.push(get_ft());
        }
    } else {
        for b in [layout::CMD_READ as u8, hi, lo, 0, 0, 0, 0] {
            parts.push(put(Some(b)));
            parts.push(get_ft());
        }
    }
    parts.push(cs(false));
    TracePred::all(parts).named(&format!("lan_read_ft(0x{addr:02x})"))
}

/// A LAN9250 register write whose junk responses may time out. The written
/// value is still pinned — faults corrupt what the driver *sees*, never
/// what it sends.
fn lan_write_ft(opts: DriverOptions, addr: u16, value: u32) -> TracePred {
    let bytes = [
        layout::CMD_WRITE as u8,
        (addr >> 8) as u8,
        (addr & 0xFF) as u8,
        value as u8,
        (value >> 8) as u8,
        (value >> 16) as u8,
        (value >> 24) as u8,
    ];
    let mut parts = vec![cs(true)];
    if opts.pipelined_spi {
        for b in bytes {
            parts.push(put(Some(b)));
        }
        for _ in 0..7 {
            parts.push(get_ft());
        }
    } else {
        for b in bytes {
            parts.push(put(Some(b)));
            parts.push(get_ft());
        }
    }
    parts.push(cs(false));
    TracePred::all(parts).named(&format!("lan_write_ft(0x{addr:02x}, {value:#x})"))
}

/// The `spi_drain` recovery helper on the wire: a bounded run of RXDATA
/// reads (stale bytes or the terminating empty read).
fn drain_reads() -> TracePred {
    let rx_read = ld_if(layout::SPI_RXDATA, "drain", |_| true);
    at_most(&rx_read, layout::SPI_DRAIN_BUDGET as usize + 1).named("spi_drain")
}

/// `BootSeq`: GPIO setup plus the Ethernet controller's mandated
/// bring-up incantations (§3.1).
pub fn boot_seq(opts: DriverOptions) -> TracePred {
    let gpio_en = st_if(layout::GPIO_OUTPUT_EN, "enable-bulb", |v| {
        v == layout::LIGHTBULB_MASK
    });
    // Poll BYTE_TEST until the magic value appears, byte by byte.
    let byte_test_magic = lan_read(
        opts,
        lan::BYTE_TEST,
        [
            Some(("magic0", |b| b == 0x21)),
            Some(("magic1", |b| b == 0x43)),
            Some(("magic2", |b| b == 0x65)),
            Some(("magic3", |b| b == 0x87)),
        ],
    );
    let byte_test_poll = at_most(
        &lan_read_any(opts, lan::BYTE_TEST),
        layout::INIT_TIMEOUT as usize + 1,
    )
    .then(&byte_test_magic);
    // Poll HW_CFG until READY (bit 27 = bit 3 of byte 3).
    let hw_cfg_ready = lan_read(
        opts,
        lan::HW_CFG,
        [None, None, None, Some(("ready", |b| b & 0x08 != 0))],
    );
    let hw_cfg_poll = at_most(
        &lan_read_any(opts, lan::HW_CFG),
        layout::INIT_TIMEOUT as usize + 1,
    )
    .then(&hw_cfg_ready);
    // MAC receive enable through the CSR indirection, then wait not-busy.
    let mac = lan_write(opts, lan::MAC_CSR_DATA, layout::MAC_CR_RXEN).then(&lan_write(
        opts,
        lan::MAC_CSR_CMD,
        layout::MAC_CSR_BUSY | layout::MAC_CR,
    ));
    let cmd_idle = lan_read(
        opts,
        lan::MAC_CSR_CMD,
        [None, None, None, Some(("idle", |b| b & 0x80 == 0))],
    );
    let cmd_poll = at_most(
        &lan_read_any(opts, lan::MAC_CSR_CMD),
        layout::INIT_TIMEOUT as usize + 1,
    )
    .then(&cmd_idle);
    TracePred::all([
        gpio_en,
        byte_test_poll,
        hw_cfg_poll,
        mac,
        cmd_poll,
        link_check(opts),
    ])
}

/// The bring-up link-integrity check: the nonce written to `MAC_CSR_DATA`
/// and read back byte-for-byte.
fn link_check(opts: DriverOptions) -> TracePred {
    let nonce = layout::LINK_CHECK_NONCE;
    let echo = lan_read(
        opts,
        lan::MAC_CSR_DATA,
        [
            Some(("nonce0", |b| b == layout::LINK_CHECK_NONCE as u8)),
            Some(("nonce1", |b| b == (layout::LINK_CHECK_NONCE >> 8) as u8)),
            Some(("nonce2", |b| b == (layout::LINK_CHECK_NONCE >> 16) as u8)),
            Some(("nonce3", |b| b == (layout::LINK_CHECK_NONCE >> 24) as u8)),
        ],
    );
    lan_write(opts, lan::MAC_CSR_DATA, nonce)
        .then(&echo)
        .named("link_check")
}

/// One *successful* `lan_init` attempt under faults: the polls may cycle
/// through fault-tolerant reads (timed-out exchanges mid-poll are fine —
/// the driver only inspects the final read of each poll), but each phase
/// ends with the strict success read of `boot_seq`, and the MAC writes
/// complete cleanly (a timed-out write would have failed the attempt).
fn init_attempt_ok(opts: DriverOptions) -> TracePred {
    let budget = layout::INIT_TIMEOUT as usize + 1;
    let byte_test_magic = lan_read(
        opts,
        lan::BYTE_TEST,
        [
            Some(("magic0", |b| b == 0x21)),
            Some(("magic1", |b| b == 0x43)),
            Some(("magic2", |b| b == 0x65)),
            Some(("magic3", |b| b == 0x87)),
        ],
    );
    let byte_test_poll = at_most(&lan_read_ft(opts, lan::BYTE_TEST), budget).then(&byte_test_magic);
    let hw_cfg_ready = lan_read(
        opts,
        lan::HW_CFG,
        [None, None, None, Some(("ready", |b| b & 0x08 != 0))],
    );
    let hw_cfg_poll = at_most(&lan_read_ft(opts, lan::HW_CFG), budget).then(&hw_cfg_ready);
    let mac = lan_write(opts, lan::MAC_CSR_DATA, layout::MAC_CR_RXEN).then(&lan_write(
        opts,
        lan::MAC_CSR_CMD,
        layout::MAC_CSR_BUSY | layout::MAC_CR,
    ));
    let cmd_idle = lan_read(
        opts,
        lan::MAC_CSR_CMD,
        [None, None, None, Some(("idle", |b| b & 0x80 == 0))],
    );
    let cmd_poll = at_most(&lan_read_ft(opts, lan::MAC_CSR_CMD), budget).then(&cmd_idle);
    TracePred::all([byte_test_poll, hw_cfg_poll, mac, cmd_poll, link_check(opts)])
        .named("init_attempt_ok")
}

/// One *failed* `lan_init` attempt: phases short-circuit once a poll gives
/// up, so the trace is a (possibly empty) tail of fault-tolerant frames
/// per phase. Deliberately lax — there is no GPIO event anywhere in it.
fn init_attempt_fail(opts: DriverOptions) -> TracePred {
    let budget = layout::INIT_TIMEOUT as usize + 2;
    let opt = |p: &TracePred| p.or(&TracePred::eps());
    TracePred::all([
        at_most(&lan_read_ft(opts, lan::BYTE_TEST), budget),
        at_most(&lan_read_ft(opts, lan::HW_CFG), budget),
        opt(&lan_write_ft(opts, lan::MAC_CSR_DATA, layout::MAC_CR_RXEN)),
        opt(&lan_write_ft(
            opts,
            lan::MAC_CSR_CMD,
            layout::MAC_CSR_BUSY | layout::MAC_CR,
        )),
        at_most(&lan_read_ft(opts, lan::MAC_CSR_CMD), budget),
        opt(&lan_write_ft(
            opts,
            lan::MAC_CSR_DATA,
            layout::LINK_CHECK_NONCE,
        )),
        opt(&lan_read_ft(opts, lan::MAC_CSR_DATA)),
    ])
    .named("init_attempt_fail")
}

/// The `lan_init_retry` shape: up to `LAN_INIT_RETRIES` failed attempts,
/// each followed by a drain, ending in a successful attempt or a final
/// give-up (after which the app loop keeps polling and re-entering
/// recovery — still GPIO-free).
fn init_retry_tail(opts: DriverOptions) -> TracePred {
    let ok = init_attempt_ok(opts);
    let fail = init_attempt_fail(opts);
    let drain = drain_reads();
    let mut tail = ok.or(&fail);
    for _ in 0..layout::LAN_INIT_RETRIES {
        tail = ok.or(&fail.then(&drain).then(&tail));
    }
    tail.named("init_retry_tail")
}

/// `BootSeq` under faults: GPIO setup, then the bounded retry chain. Every
/// clean `boot_seq` trace is also a `boot_seq_robust` trace.
pub fn boot_seq_robust(opts: DriverOptions) -> TracePred {
    let gpio_en = st_if(layout::GPIO_OUTPUT_EN, "enable-bulb", |v| {
        v == layout::LIGHTBULB_MASK
    });
    gpio_en
        .then(&init_retry_tail(opts))
        .named("boot_seq_robust")
}

/// `PollNone`: the RX FIFO information read reporting no pending frames
/// (status-FIFO count byte — byte 2 — is zero).
pub fn poll_none(opts: DriverOptions) -> TracePred {
    lan_read(
        opts,
        lan::RX_FIFO_INF,
        [None, None, Some(("no-frames", |b| b == 0)), None],
    )
}

fn poll_avail(opts: DriverOptions) -> TracePred {
    lan_read(
        opts,
        lan::RX_FIFO_INF,
        [None, None, Some(("frames>0", |b| b != 0)), None],
    )
}

fn data_word_any(opts: DriverOptions) -> TracePred {
    lan_read_any(opts, lan::RX_DATA_FIFO)
}

/// The data word carrying the command byte: frame byte offset 42 = word
/// 10, lane 2, whose low bit is the on/off command `b`.
fn data_word_cmd(opts: DriverOptions, b: bool) -> TracePred {
    let pred: fn(u8) -> bool = if b { |x| x & 1 == 1 } else { |x| x & 1 == 0 };
    lan_read(
        opts,
        lan::RX_DATA_FIFO,
        [None, None, Some(("cmd", pred)), None],
    )
}

/// Maximum data words per accepted frame (1520-byte buffer).
const MAX_DATA_WORDS: usize = (layout::RX_BUFFER_BYTES as usize).div_ceil(4);

/// `Recv b`: a frame is announced, its status is read, and its contents
/// are streamed out — with the command byte carrying `b`.
pub fn recv(opts: DriverOptions, b: bool) -> TracePred {
    let leading: Vec<TracePred> = (0..10).map(|_| data_word_any(opts)).collect();
    poll_avail(opts)
        .then(&lan_read_any(opts, lan::RX_STATUS_FIFO))
        .then(&TracePred::all(leading))
        .then(&data_word_cmd(opts, b))
        .then(&at_most(&data_word_any(opts), MAX_DATA_WORDS - 11))
}

/// `LightbulbCmd b`: the read-modify-write of the GPIO output register
/// leaving the lightbulb pin equal to `b`.
pub fn lightbulb_cmd(b: bool) -> TracePred {
    let set_pin = st_if(
        layout::GPIO_OUTPUT_VAL,
        if b { "bulb=on" } else { "bulb=off" },
        move |v| (v & layout::LIGHTBULB_MASK != 0) == b,
    );
    ld_if(layout::GPIO_OUTPUT_VAL, "gpio-read", |_| true).then(&set_pin)
}

/// `RecvInvalid`: a frame is announced and then either discarded by the
/// datapath control (length guard) or streamed out and dropped — with no
/// GPIO interaction whatsoever. The discard write is fault-tolerant: the
/// driver ignores its error and still reports the frame rejected.
pub fn recv_invalid(opts: DriverOptions) -> TracePred {
    let discard = lan_write_ft(opts, lan::RX_DP_CTRL, layout::RX_DP_DISCARD);
    let consume = data_word_any(opts).then(&at_most(&data_word_any(opts), MAX_DATA_WORDS - 1));
    poll_avail(opts)
        .then(&lan_read_any(opts, lan::RX_STATUS_FIFO))
        .then(&discard.or(&consume))
}

/// `RecvError`: an RX interaction whose SPI exchanges time out — the FIFO
/// information read alone, or with a status read and a bounded run of data
/// words, any of them incomplete. No GPIO events anywhere. The app loop
/// always follows this with [`reinit`].
pub fn recv_error(opts: DriverOptions) -> TracePred {
    let status_and_data = lan_read_ft(opts, lan::RX_STATUS_FIFO).then(&at_most(
        &lan_read_ft(opts, lan::RX_DATA_FIFO),
        MAX_DATA_WORDS,
    ));
    lan_read_ft(opts, lan::RX_FIFO_INF)
        .then(&status_and_data.or(&TracePred::eps()))
        .named("recv_error")
}

/// `Reinit`: the `lan_recover` shape — drain the wire, then the bounded
/// bring-up retry chain.
pub fn reinit(opts: DriverOptions) -> TracePred {
    drain_reads().then(&init_retry_tail(opts)).named("reinit")
}

/// `goodHlTrace`: the complete top-level specification — §3.1 extended
/// with classified recoverable failures:
///
/// ```text
/// goodHlTrace :=
///   BootSeqRobust +++ ((EX b: bool, Recv b +++ LightbulbCmd b)
///                      ||| RecvInvalid ||| PollNone
///                      ||| (RecvError +++ Reinit)) ^*
/// ```
///
/// Every trace the clean §3.1 spec accepts is accepted here, and the
/// safety property is preserved verbatim: `LightbulbCmd b` still only
/// appears immediately after `Recv b` with the same `b`.
pub fn good_hl_trace(opts: DriverOptions) -> TracePred {
    let step = TracePred::ex_bool(move |b| recv(opts, b).then(&lightbulb_cmd(b)))
        .or(&recv_invalid(opts))
        .or(&poll_none(opts))
        .or(&recv_error(opts).then(&reinit(opts)));
    boot_seq_robust(opts).then(&step.star())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{lightbulb_program, DriverOptions};
    use crate::ext::MmioBridge;
    use bedrock2::semantics::Interp;
    use devices::workload::{Malformation, TrafficGen};
    use devices::Board;
    use riscv_spec::{Memory, MmioEvent};

    fn run_system(opts: DriverOptions, frames: &[Vec<u8>], loops: usize) -> (Vec<MmioEvent>, bool) {
        run_faulted(opts, &devices::FaultPlan::none(), frames, loops)
    }

    fn run_faulted(
        opts: DriverOptions,
        plan: &devices::FaultPlan,
        frames: &[Vec<u8>],
        loops: usize,
    ) -> (Vec<MmioEvent>, bool) {
        let p = lightbulb_program(opts);
        let mut i = Interp::new(
            &p,
            Memory::with_size(0x1_0000),
            MmioBridge::new(Board::with_faults(devices::SpiConfig::default(), plan)),
        );
        let out = i
            .call("lightbulb_init", &[])
            .expect("lightbulb_init must run UB-free");
        if plan.is_none() {
            assert_eq!(out, vec![0], "clean init must succeed");
        }
        for f in frames {
            i.ext.dev.inject_frame(f);
        }
        for _ in 0..loops {
            i.call("lightbulb_loop", &[])
                .expect("lightbulb_loop must run UB-free");
        }
        let on = i.ext.dev.lightbulb_on();
        (i.ext.events, on)
    }

    #[test]
    fn boot_alone_matches() {
        let opts = DriverOptions::default();
        let (trace, _) = run_system(opts, &[], 0);
        assert!(
            boot_seq(opts).matches(&trace),
            "boot trace must match BootSeq"
        );
        assert!(good_hl_trace(opts).matches(&trace));
    }

    #[test]
    fn idle_polling_matches() {
        let opts = DriverOptions::default();
        let (trace, on) = run_system(opts, &[], 3);
        assert!(!on);
        assert!(good_hl_trace(opts).matches(&trace));
    }

    #[test]
    fn valid_command_matches_with_the_right_bit() {
        let opts = DriverOptions::default();
        let mut gen = TrafficGen::new(41);
        let (trace, on) = run_system(opts, &[gen.command(true)], 1);
        assert!(on);
        assert!(good_hl_trace(opts).matches(&trace));
    }

    #[test]
    fn malformed_traffic_matches_as_invalid() {
        let opts = DriverOptions::default();
        let mut gen = TrafficGen::new(43);
        let frames = vec![
            gen.malformed(Malformation::WrongPort),
            gen.malformed(Malformation::TooShort),
        ];
        let (trace, on) = run_system(opts, &frames, 2);
        assert!(!on);
        assert!(good_hl_trace(opts).matches(&trace));
    }

    #[test]
    fn spec_rejects_rogue_actuation() {
        // Take a legitimate boot+poll trace and append a GPIO write that no
        // received command justifies: the spec must refuse it.
        let opts = DriverOptions::default();
        let (mut trace, _) = run_system(opts, &[], 1);
        assert!(good_hl_trace(opts).matches(&trace));
        trace.push(MmioEvent::load(layout::GPIO_OUTPUT_VAL, 0));
        trace.push(MmioEvent::store(
            layout::GPIO_OUTPUT_VAL,
            layout::LIGHTBULB_MASK,
        ));
        assert!(
            !good_hl_trace(opts).matches(&trace),
            "actuation without a command must not match"
        );
        assert!(
            !good_hl_trace(opts).matches_prefix(&trace),
            "…not even as a prefix"
        );
    }

    #[test]
    fn spec_rejects_inverted_commands() {
        // Flip the GPIO write of a real "on" interaction to "off": the
        // EX-bound b no longer matches the received command byte.
        let opts = DriverOptions::default();
        let mut gen = TrafficGen::new(47);
        let (mut trace, on) = run_system(opts, &[gen.command(true)], 1);
        assert!(on);
        let last = trace.len() - 1;
        assert_eq!(trace[last].addr, layout::GPIO_OUTPUT_VAL);
        trace[last].value &= !layout::LIGHTBULB_MASK; // claim we switched off
        assert!(
            !good_hl_trace(opts).matches(&trace),
            "a trace actuating opposite to the command must not match"
        );
    }

    #[test]
    fn prefixes_of_good_traces_match_as_prefixes() {
        let opts = DriverOptions::default();
        let mut gen = TrafficGen::new(53);
        let (trace, _) = run_system(opts, &[gen.command(true)], 1);
        let spec = good_hl_trace(opts);
        // Sample a handful of prefix lengths including mid-interaction.
        for k in [
            1,
            trace.len() / 3,
            trace.len() / 2,
            trace.len() - 1,
            trace.len(),
        ] {
            assert!(spec.matches_prefix(&trace[..k]), "prefix of length {k}");
        }
    }

    #[test]
    fn delayed_readiness_recovery_is_classified_and_accepted() {
        // A hard BYTE_TEST fault (more junk reads than one poll budget)
        // forces at least one failed attempt; the retry then succeeds and a
        // command still switches the bulb. The whole trace, failure
        // included, must satisfy the extended spec — and boot_seq alone
        // must NOT accept it (it is genuinely a new trace class).
        let opts = DriverOptions::default();
        let plan = devices::FaultPlan {
            byte_test_junk_reads: 80,
            ..devices::FaultPlan::default()
        };
        let mut gen = TrafficGen::new(61);
        let (trace, on) = run_faulted(opts, &plan, &[gen.command(true)], 1);
        assert!(on, "the bulb must still switch after recovery");
        let spec = good_hl_trace(opts);
        assert!(spec.matches(&trace), "recovery trace must be accepted");
        assert!(
            !boot_seq(opts).matches_prefix(&trace),
            "the clean BootSeq must not absorb a failed attempt"
        );
        // Prefix closure holds on failure traces too.
        for k in [1, trace.len() / 4, trace.len() / 2, trace.len() - 1] {
            assert!(spec.matches_prefix(&trace[..k]), "prefix of length {k}");
        }
    }

    #[test]
    fn rx_stall_reinit_is_classified_and_accepted() {
        // An RX stall long enough to time an exchange out mid-run: the app
        // loop sees code 3, drains, re-inits, and a later command works.
        let opts = DriverOptions::default();
        // Index 400 lands after boot (~50 delivered bytes) and the first
        // command frame (~140 more), inside the later idle polling.
        let plan = devices::FaultPlan {
            rx_stalls: vec![(400, 300)],
            ..devices::FaultPlan::default()
        };
        let mut gen = TrafficGen::new(67);
        let p = lightbulb_program(opts);
        let mut i = Interp::new(
            &p,
            Memory::with_size(0x1_0000),
            MmioBridge::new(Board::with_faults(devices::SpiConfig::default(), &plan)),
        );
        assert_eq!(i.call("lightbulb_init", &[]).unwrap(), vec![0]);
        i.ext.dev.inject_frame(&gen.command(true));
        i.call("lightbulb_loop", &[]).unwrap();
        assert!(i.ext.dev.lightbulb_on());
        // Poll until the stall arms, then a few more loops so its whole
        // budget drains and recovery completes (one stalled status read
        // burns more than the budget). The bulb must hold its state
        // throughout.
        let mut polls = 0;
        while i.ext.dev.faults_injected() == 0 && polls < 120 {
            i.call("lightbulb_loop", &[]).unwrap();
            assert!(i.ext.dev.lightbulb_on(), "bulb must hold state");
            polls += 1;
        }
        for _ in 0..5 {
            i.call("lightbulb_loop", &[]).unwrap();
            assert!(i.ext.dev.lightbulb_on(), "bulb must hold state");
        }
        i.ext.dev.inject_frame(&gen.command(false));
        i.call("lightbulb_loop", &[]).unwrap();
        assert!(!i.ext.dev.lightbulb_on(), "post-recovery command works");
        assert!(i.ext.dev.faults_injected() > 0, "the stall really fired");
        assert!(good_hl_trace(opts).matches(&i.ext.events));
    }

    #[test]
    fn spec_rejects_rogue_actuation_after_recovery() {
        // Even inside a recovery-rich trace, an unjustified GPIO write must
        // not match — the failure predicates contain no GPIO events.
        let opts = DriverOptions::default();
        let plan = devices::FaultPlan {
            byte_test_junk_reads: 80,
            ..devices::FaultPlan::default()
        };
        let (mut trace, _) = run_faulted(opts, &plan, &[], 1);
        assert!(good_hl_trace(opts).matches(&trace));
        trace.push(MmioEvent::load(layout::GPIO_OUTPUT_VAL, 0));
        trace.push(MmioEvent::store(
            layout::GPIO_OUTPUT_VAL,
            layout::LIGHTBULB_MASK,
        ));
        assert!(!good_hl_trace(opts).matches(&trace));
        assert!(!good_hl_trace(opts).matches_prefix(&trace));
    }

    #[test]
    fn pipelined_configuration_has_its_own_matching_spec() {
        let opts = DriverOptions {
            timeouts: true,
            pipelined_spi: true,
        };
        let mut gen = TrafficGen::new(59);
        let (trace, on) = run_system(opts, &[gen.command(true)], 1);
        assert!(on);
        assert!(good_hl_trace(opts).matches(&trace));
        // And the interleaved spec must NOT accept the pipelined trace.
        assert!(!good_hl_trace(DriverOptions::default()).matches(&trace));
    }
}

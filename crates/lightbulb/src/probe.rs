//! Driver-activity probe: derives observability counters from an MMIO
//! trace instead of instrumenting the drivers.
//!
//! The Bedrock2 drivers deliberately carry no instrumentation — they are
//! the verified artifact, and a counter increment would be a trace event
//! the specification would have to account for. But fault-sweep reports
//! want to know *how often* recovery machinery actually ran. This module
//! reconstructs that from the wire protocol itself, the same
//! `("ld"/"st", addr, value)` triples every machine model records, so the
//! numbers are identical whether the trace came from the Bedrock2
//! interpreter, the spec-level RISC-V machine, or the pipelined processor.
//!
//! Recognized shapes:
//!
//! * a **command frame** — the events between a chip-select assert and
//!   deassert; its target register is read out of the three command bytes
//!   written to `SPI_TXDATA`;
//! * a **drain burst** — a maximal run of `SPI_RXDATA` loads *outside*
//!   any command frame. Only `spi_drain` reads the receive queue with the
//!   chip deselected, so every such run is one drain invocation;
//! * a **bring-up attempt** — a maximal run of consecutive `BYTE_TEST`
//!   read frames (the poll that starts every `lan_init`), with drain
//!   bursts breaking runs.
//!
//! A drain burst is classified by the last command frame before it: after
//! an RX-path frame it can only be `lan_recover` reacting to a receive
//! failure (a re-init), after a bring-up frame it is a retry inside
//! `lan_init_retry`.

use crate::layout::{self, lan};
use riscv_spec::{MmioEvent, MmioEventKind};

/// Counters reconstructed from a trace by [`scan`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriverActivity {
    /// Bring-up attempts: maximal runs of consecutive `BYTE_TEST` read
    /// frames. A clean boot has exactly one.
    pub init_attempts: u64,
    /// Drain bursts following a failed bring-up attempt (`lan_init_retry`
    /// looping).
    pub retries: u64,
    /// Drain bursts following an RX-path frame (`lan_recover` after a
    /// `lan_tryrecv` SPI failure).
    pub reinits: u64,
    /// All drain bursts (`retries + reinits`).
    pub drains: u64,
}

/// Which driver path a command frame's target register belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Path {
    Init,
    Rx,
    Other,
}

fn classify(addr: u16) -> Path {
    match addr {
        a if a == lan::BYTE_TEST
            || a == lan::HW_CFG
            || a == lan::MAC_CSR_CMD
            || a == lan::MAC_CSR_DATA =>
        {
            Path::Init
        }
        a if a == lan::RX_FIFO_INF
            || a == lan::RX_STATUS_FIFO
            || a == lan::RX_DATA_FIFO
            || a == lan::RX_DP_CTRL =>
        {
            Path::Rx
        }
        _ => Path::Other,
    }
}

/// Scans a trace for driver recovery activity.
pub fn scan(events: &[MmioEvent]) -> DriverActivity {
    let mut out = DriverActivity::default();
    let mut in_frame = false;
    // Command bytes written so far in the current frame.
    let mut tx: Vec<u8> = Vec::with_capacity(8);
    // Path of the last completed frame with a decodable target.
    let mut last_path = Path::Other;
    // Whether the previous completed item was a BYTE_TEST read frame.
    let mut in_bt_run = false;
    // Whether we are inside a run of deselected RXDATA reads.
    let mut in_drain = false;

    for e in events {
        match (e.kind, e.addr) {
            (MmioEventKind::Store, layout::SPI_CSMODE) => {
                let assert = e.value & 1 == 1;
                if assert {
                    in_frame = true;
                    in_drain = false;
                    tx.clear();
                } else if in_frame {
                    in_frame = false;
                    // Need the command byte and both address bytes.
                    if tx.len() >= 3 {
                        let addr = (tx[1] as u16) << 8 | tx[2] as u16;
                        let is_read = tx[0] == layout::CMD_READ as u8;
                        let bt_read = is_read && addr == lan::BYTE_TEST;
                        if bt_read && !in_bt_run {
                            out.init_attempts += 1;
                        }
                        in_bt_run = bt_read;
                        last_path = classify(addr);
                    } else {
                        in_bt_run = false;
                    }
                }
            }
            (MmioEventKind::Store, layout::SPI_TXDATA) if in_frame => {
                tx.push(e.value as u8);
            }
            (MmioEventKind::Load, layout::SPI_RXDATA) if !in_frame && !in_drain => {
                in_drain = true;
                in_bt_run = false;
                out.drains += 1;
                match last_path {
                    Path::Rx => out.reinits += 1,
                    _ => out.retries += 1,
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{lightbulb_program, DriverOptions};
    use crate::ext::MmioBridge;
    use bedrock2::semantics::Interp;
    use devices::workload::TrafficGen;
    use devices::{Board, FaultPlan};
    use riscv_spec::Memory;

    fn run(plan: &FaultPlan, loops: usize) -> (Vec<MmioEvent>, DriverActivity) {
        let p = lightbulb_program(DriverOptions::default());
        let mut i = Interp::new(
            &p,
            Memory::with_size(0x1_0000),
            MmioBridge::new(Board::with_faults(devices::SpiConfig::default(), plan)),
        );
        i.call("lightbulb_init", &[])
            .expect("init must run UB-free");
        let mut gen = TrafficGen::new(97);
        i.ext.dev.inject_frame(&gen.command(true));
        for _ in 0..loops {
            i.call("lightbulb_loop", &[])
                .expect("loop must run UB-free");
        }
        let activity = scan(&i.ext.events);
        (i.ext.events.clone(), activity)
    }

    #[test]
    fn clean_run_shows_one_attempt_and_no_recovery() {
        let (_, a) = run(&FaultPlan::none(), 3);
        assert_eq!(
            a,
            DriverActivity {
                init_attempts: 1,
                ..DriverActivity::default()
            }
        );
    }

    #[test]
    fn hard_register_fault_shows_retries() {
        // More junk reads than one poll budget: at least one failed
        // attempt, hence at least one drain classified as a retry.
        let plan = FaultPlan {
            byte_test_junk_reads: 80,
            ..FaultPlan::default()
        };
        let (_, a) = run(&plan, 1);
        assert!(a.init_attempts >= 2, "{a:?}");
        assert!(a.retries >= 1, "{a:?}");
        assert_eq!(a.reinits, 0, "{a:?}");
        assert_eq!(a.drains, a.retries + a.reinits);
    }

    #[test]
    fn rx_stall_shows_a_reinit() {
        let plan = FaultPlan {
            rx_stalls: vec![(400, 300)],
            ..FaultPlan::default()
        };
        let (_, a) = run(&plan, 60);
        assert!(a.reinits >= 1, "{a:?}");
        assert_eq!(a.drains, a.retries + a.reinits);
    }
}

//! The LAN9250 Ethernet driver, written in Bedrock2 (the `LAN9250` source
//! file of §5.1).
//!
//! * `lan_readword(addr) -> (w, err)` / `lan_writeword(addr, w) -> err` —
//!   one register access over the SPI command protocol (command byte,
//!   2-byte big-endian address, 4 data bytes little-endian), framed by
//!   chip-select writes. Two build flavors: interleaved byte exchanges
//!   (the verified configuration) or the pipelined FIFO discipline
//!   (the §7.2.1 baseline optimization).
//! * `lan_init() -> err` — the bring-up incantations `BootSeq` describes:
//!   poll `BYTE_TEST` for the magic value, poll `HW_CFG` for READY, then
//!   enable reception through the MAC CSR indirection.
//! * `lan_tryrecv(buf) -> (len, code)` — poll for a frame; `code` is
//!   0 = frame of `len` bytes copied into `buf`, 1 = nothing pending,
//!   2 = frame rejected by the *length guard* (too short to hold a
//!   command, or too big for the 1520-byte buffer — the check whose
//!   absence let the paper's first prototype be exploited), 3 = SPI error.

use crate::layout::{self, lan};
use bedrock2::ast::{Expr, Function, Stmt};
use bedrock2::dsl::*;

/// Interleaved register read: 7 `spi_xchg` calls under one chip select.
fn readword_interleaved() -> Function {
    let body = block([
        interact(&[], "MMIOWRITE", [lit(layout::SPI_CSMODE), lit(1)]),
        call(&["d", "e0"], "spi_xchg", [lit(layout::CMD_READ)]),
        call(&["d", "e1"], "spi_xchg", [sru(var("a"), lit(8))]),
        call(&["d", "e2"], "spi_xchg", [and(var("a"), lit(0xFF))]),
        call(&["b0", "e3"], "spi_xchg", [lit(0)]),
        call(&["b1", "e4"], "spi_xchg", [lit(0)]),
        call(&["b2", "e5"], "spi_xchg", [lit(0)]),
        call(&["b3", "e6"], "spi_xchg", [lit(0)]),
        interact(&[], "MMIOWRITE", [lit(layout::SPI_CSMODE), lit(0)]),
        set(
            "w",
            or(
                or(var("b0"), slu(var("b1"), lit(8))),
                or(slu(var("b2"), lit(16)), slu(var("b3"), lit(24))),
            ),
        ),
        set(
            "err",
            or(
                or(or(var("e0"), var("e1")), or(var("e2"), var("e3"))),
                or(or(var("e4"), var("e5")), var("e6")),
            ),
        ),
    ]);
    Function::new("lan_readword", &["a"], &["w", "err"], body)
}

/// Pipelined register read: queue the whole 7-byte command, then drain the
/// 7 responses (the FE310 pipelining pattern of §7.2.1).
fn readword_pipelined() -> Function {
    let body = block([
        interact(&[], "MMIOWRITE", [lit(layout::SPI_CSMODE), lit(1)]),
        call(&["e0"], "spi_put", [lit(layout::CMD_READ)]),
        call(&["e1"], "spi_put", [sru(var("a"), lit(8))]),
        call(&["e2"], "spi_put", [and(var("a"), lit(0xFF))]),
        call(&["e3"], "spi_put", [lit(0)]),
        call(&["e4"], "spi_put", [lit(0)]),
        call(&["e5"], "spi_put", [lit(0)]),
        call(&["e6"], "spi_put", [lit(0)]),
        call(&["d", "f0"], "spi_get", []),
        call(&["d", "f1"], "spi_get", []),
        call(&["d", "f2"], "spi_get", []),
        call(&["b0", "f3"], "spi_get", []),
        call(&["b1", "f4"], "spi_get", []),
        call(&["b2", "f5"], "spi_get", []),
        call(&["b3", "f6"], "spi_get", []),
        interact(&[], "MMIOWRITE", [lit(layout::SPI_CSMODE), lit(0)]),
        set(
            "w",
            or(
                or(var("b0"), slu(var("b1"), lit(8))),
                or(slu(var("b2"), lit(16)), slu(var("b3"), lit(24))),
            ),
        ),
        set(
            "err",
            or(
                or(
                    or(or(var("e0"), var("e1")), or(var("e2"), var("e3"))),
                    or(or(var("e4"), var("e5")), var("e6")),
                ),
                or(
                    or(or(var("f0"), var("f1")), or(var("f2"), var("f3"))),
                    or(or(var("f4"), var("f5")), var("f6")),
                ),
            ),
        ),
    ]);
    Function::new("lan_readword", &["a"], &["w", "err"], body)
}

/// Interleaved register write.
fn writeword_interleaved() -> Function {
    let body = block([
        interact(&[], "MMIOWRITE", [lit(layout::SPI_CSMODE), lit(1)]),
        call(&["d", "e0"], "spi_xchg", [lit(layout::CMD_WRITE)]),
        call(&["d", "e1"], "spi_xchg", [sru(var("a"), lit(8))]),
        call(&["d", "e2"], "spi_xchg", [and(var("a"), lit(0xFF))]),
        call(&["d", "e3"], "spi_xchg", [and(var("w"), lit(0xFF))]),
        call(
            &["d", "e4"],
            "spi_xchg",
            [and(sru(var("w"), lit(8)), lit(0xFF))],
        ),
        call(
            &["d", "e5"],
            "spi_xchg",
            [and(sru(var("w"), lit(16)), lit(0xFF))],
        ),
        call(&["d", "e6"], "spi_xchg", [sru(var("w"), lit(24))]),
        interact(&[], "MMIOWRITE", [lit(layout::SPI_CSMODE), lit(0)]),
        set(
            "err",
            or(
                or(or(var("e0"), var("e1")), or(var("e2"), var("e3"))),
                or(or(var("e4"), var("e5")), var("e6")),
            ),
        ),
    ]);
    Function::new("lan_writeword", &["a", "w"], &["err"], body)
}

/// Pipelined register write: queue everything, then drain the junk
/// responses to keep the RX queue aligned.
fn writeword_pipelined() -> Function {
    let mut stmts = vec![
        interact(&[], "MMIOWRITE", [lit(layout::SPI_CSMODE), lit(1)]),
        call(&["e0"], "spi_put", [lit(layout::CMD_WRITE)]),
        call(&["e1"], "spi_put", [sru(var("a"), lit(8))]),
        call(&["e2"], "spi_put", [and(var("a"), lit(0xFF))]),
        call(&["e3"], "spi_put", [and(var("w"), lit(0xFF))]),
        call(&["e4"], "spi_put", [and(sru(var("w"), lit(8)), lit(0xFF))]),
        call(&["e5"], "spi_put", [and(sru(var("w"), lit(16)), lit(0xFF))]),
        call(&["e6"], "spi_put", [sru(var("w"), lit(24))]),
    ];
    for k in 0..7 {
        stmts.push(call(&["d", &format!("f{k}")], "spi_get", []));
    }
    stmts.push(interact(
        &[],
        "MMIOWRITE",
        [lit(layout::SPI_CSMODE), lit(0)],
    ));
    stmts.push(set(
        "err",
        or(
            or(
                or(or(var("e0"), var("e1")), or(var("e2"), var("e3"))),
                or(or(var("e4"), var("e5")), var("e6")),
            ),
            or(
                or(or(var("f0"), var("f1")), or(var("f2"), var("f3"))),
                or(or(var("f4"), var("f5")), var("f6")),
            ),
        ),
    ));
    Function::new("lan_writeword", &["a", "w"], &["err"], block(stmts))
}

/// A bring-up polling loop: `lan_readword(reg)` until `done(v)` or the
/// timeout budget runs out; leaves the last value in `v` and accumulates
/// SPI errors in `e`.
fn init_poll(reg: u16, done: impl Fn(Expr) -> Expr, timeouts: bool) -> Vec<Stmt> {
    let not_done = |v: Expr| eq(done(v), lit(0));
    if timeouts {
        vec![
            set("i", lit(layout::INIT_TIMEOUT)),
            call(&["v", "e"], "lan_readword", [lit(reg as u32)]),
            while_(
                and(not_done(var("v")), ltu(lit(0), var("i"))),
                block([
                    set("i", sub(var("i"), lit(1))),
                    call(&["v", "e"], "lan_readword", [lit(reg as u32)]),
                ]),
            ),
            set("err", or(var("err"), or(var("e"), not_done(var("v"))))),
        ]
    } else {
        vec![
            call(&["v", "e"], "lan_readword", [lit(reg as u32)]),
            while_(
                not_done(var("v")),
                call(&["v", "e"], "lan_readword", [lit(reg as u32)]),
            ),
            set("err", or(var("err"), var("e"))),
        ]
    }
}

/// `lan_init() -> err`: the BootSeq incantations. Phases short-circuit on
/// failure — once a poll gives up there is no point hammering the rest of
/// the bring-up sequence; `lan_init_retry` drains the wire and starts over
/// instead. On the success path the trace is exactly the `BootSeq` shape.
///
/// The final phase is a link-integrity check: write a nonce to
/// `MAC_CSR_DATA` and read it back. The polling phases cannot detect a
/// receive queue that is desynchronized by exactly one register frame
/// (every readword then returns the *previous* readword's value, and a
/// poll simply takes one extra iteration), but no byte lag can echo the
/// nonce back, so a desynchronized bring-up fails here and the retry path
/// drains the wire before the next attempt.
pub fn lan_init(timeouts: bool) -> Function {
    // 5. Link-integrity check: the nonce must read back exactly.
    let phase5 = vec![
        call(
            &["e"],
            "lan_writeword",
            [lit(lan::MAC_CSR_DATA as u32), lit(layout::LINK_CHECK_NONCE)],
        ),
        set("err", or(var("err"), var("e"))),
        when(
            eq(var("err"), lit(0)),
            block([
                call(&["v", "e"], "lan_readword", [lit(lan::MAC_CSR_DATA as u32)]),
                set(
                    "err",
                    or(
                        var("err"),
                        or(var("e"), ne(var("v"), lit(layout::LINK_CHECK_NONCE))),
                    ),
                ),
            ]),
        ),
    ];
    // 4. Wait for the CSR command to complete.
    let mut phase4 = init_poll(lan::MAC_CSR_CMD, |v| eq(sru(v, lit(31)), lit(0)), timeouts);
    phase4.push(when(eq(var("err"), lit(0)), block(phase5)));
    // 3. Enable reception: MAC_CR.RXEN via the CSR indirection.
    let mut phase3 = vec![
        call(
            &["e"],
            "lan_writeword",
            [lit(lan::MAC_CSR_DATA as u32), lit(layout::MAC_CR_RXEN)],
        ),
        set("err", or(var("err"), var("e"))),
        call(
            &["e"],
            "lan_writeword",
            [
                lit(lan::MAC_CSR_CMD as u32),
                lit(layout::MAC_CSR_BUSY | layout::MAC_CR),
            ],
        ),
        set("err", or(var("err"), var("e"))),
    ];
    phase3.push(when(eq(var("err"), lit(0)), block(phase4)));
    // 2. Wait for HW_CFG READY.
    let mut phase2 = init_poll(
        lan::HW_CFG,
        |v| ne(and(v, lit(layout::HW_CFG_READY)), lit(0)),
        timeouts,
    );
    phase2.push(when(eq(var("err"), lit(0)), block(phase3)));
    // 1. Wait for the chip to answer with the BYTE_TEST magic.
    let mut body = vec![set("err", lit(0))];
    body.extend(init_poll(
        lan::BYTE_TEST,
        |v| eq(v, lit(layout::BYTE_TEST_MAGIC)),
        timeouts,
    ));
    body.push(when(eq(var("err"), lit(0)), block(phase2)));
    Function::new("lan_init", &[], &["err"], block(body))
}

/// `lan_init_retry() -> err`: bounded retry-with-backoff around
/// `lan_init`. Each retry first drains stale SPI response bytes (a timed
/// out exchange leaves its answer in the queue, desynchronizing every
/// later exchange), then busy-waits — doubling the wait each attempt —
/// before bringing the chip up again. The backoff is pure spinning, so
/// retries are visible on the trace only as drain reads plus a fresh
/// bring-up attempt.
pub fn lan_init_retry() -> Function {
    let body = block([
        call(&["err"], "lan_init", []),
        set("attempts", lit(layout::LAN_INIT_RETRIES)),
        set("delay", lit(layout::INIT_BACKOFF_BASE)),
        while_(
            and(ne(var("err"), lit(0)), ltu(lit(0), var("attempts"))),
            block([
                set("attempts", sub(var("attempts"), lit(1))),
                call(&["n"], "spi_drain", []),
                set("j", var("delay")),
                while_(ltu(lit(0), var("j")), set("j", sub(var("j"), lit(1)))),
                set("delay", mul(var("delay"), lit(2))),
                call(&["err"], "lan_init", []),
            ]),
        ),
    ]);
    Function::new("lan_init_retry", &[], &["err"], body)
}

/// `lan_recover() -> err`: the app loop's reaction to a persistent RX
/// failure (`lan_tryrecv` code 3): drain the wire, then re-run the whole
/// bounded bring-up. The lightbulb itself is untouched — it holds the last
/// commanded state while the network heals.
pub fn lan_recover() -> Function {
    let body = block([
        call(&["n"], "spi_drain", []),
        call(&["err"], "lan_init_retry", []),
    ]);
    Function::new("lan_recover", &[], &["err"], body)
}

/// `lan_tryrecv(buf) -> (len, code)`.
pub fn lan_tryrecv() -> Function {
    let body = block([
        set("code", lit(0)),
        set("len", lit(0)),
        call(
            &["info", "e"],
            "lan_readword",
            [lit(lan::RX_FIFO_INF as u32)],
        ),
        if_(
            var("e"),
            set("code", lit(3)),
            if_(
                eq(and(sru(var("info"), lit(16)), lit(0xFF)), lit(0)),
                set("code", lit(1)),
                block([
                    call(
                        &["st", "e"],
                        "lan_readword",
                        [lit(lan::RX_STATUS_FIFO as u32)],
                    ),
                    if_(
                        var("e"),
                        set("code", lit(3)),
                        block([
                            set("len", and(sru(var("st"), lit(16)), lit(0x3FFF))),
                            if_(
                                or(
                                    ltu(var("len"), lit(layout::MIN_FRAME_BYTES)),
                                    ltu(lit(layout::RX_BUFFER_BYTES), var("len")),
                                ),
                                block([
                                    // Reject without copying: discard in
                                    // the device (the length guard that
                                    // prevents the buffer overrun).
                                    call(
                                        &["e"],
                                        "lan_writeword",
                                        [lit(lan::RX_DP_CTRL as u32), lit(layout::RX_DP_DISCARD)],
                                    ),
                                    set("code", lit(2)),
                                ]),
                                block([
                                    set("n", divu(add(var("len"), lit(3)), lit(4))),
                                    set("i", lit(0)),
                                    set("eacc", lit(0)),
                                    while_(
                                        ltu(var("i"), var("n")),
                                        block([
                                            call(
                                                &["w", "e"],
                                                "lan_readword",
                                                [lit(lan::RX_DATA_FIFO as u32)],
                                            ),
                                            store4(
                                                add(var("buf"), mul(var("i"), lit(4))),
                                                var("w"),
                                            ),
                                            set("eacc", or(var("eacc"), var("e"))),
                                            set("i", add(var("i"), lit(1))),
                                        ]),
                                    ),
                                    when(var("eacc"), set("code", lit(3))),
                                ]),
                            ),
                        ]),
                    ),
                ]),
            ),
        ),
    ]);
    Function::new("lan_tryrecv", &["buf"], &["len", "code"], body)
}

/// All LAN9250 driver functions for the given configuration.
pub fn functions(timeouts: bool, pipelined: bool) -> Vec<Function> {
    let (rd, wr) = if pipelined {
        (readword_pipelined(), writeword_pipelined())
    } else {
        (readword_interleaved(), writeword_interleaved())
    };
    vec![
        rd,
        wr,
        lan_init(timeouts),
        lan_init_retry(),
        lan_recover(),
        lan_tryrecv(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::MmioBridge;
    use bedrock2::semantics::Interp;
    use bedrock2::Program;
    use devices::Board;
    use riscv_spec::Memory;

    fn program(timeouts: bool, pipelined: bool) -> Program {
        let mut fns = crate::spi_driver::functions(timeouts);
        fns.extend(functions(timeouts, pipelined));
        Program::from_functions(fns)
    }

    fn fresh_interp(p: &Program, pipelined: bool) -> Interp<'_, MmioBridge<Board>> {
        let _ = pipelined;
        let board = Board::default();
        Interp::new(p, Memory::with_size(0x1000), MmioBridge::new(board))
    }

    #[test]
    fn init_then_readback_works_in_both_flavors() {
        for pipelined in [false, true] {
            let p = program(true, pipelined);
            let mut i = fresh_interp(&p, pipelined);
            let out = i
                .call("lan_init", &[])
                .expect("lan_init is UB-free on a healthy board");
            assert_eq!(out, vec![0], "init must succeed (pipelined={pipelined})");
            assert!(i.ext.dev.spi.slave.rx_enabled());
            let out = i
                .call("lan_readword", &[lan::BYTE_TEST as u32])
                .expect("lan_readword is UB-free after bring-up");
            assert_eq!(out, vec![layout::BYTE_TEST_MAGIC, 0]);
        }
    }

    #[test]
    fn tryrecv_reports_nothing_pending() {
        let p = program(true, false);
        let mut i = fresh_interp(&p, false);
        i.call("lan_init", &[])
            .expect("lan_init is UB-free on a healthy board");
        let out = i
            .call("lan_tryrecv", &[0x100])
            .expect("lan_tryrecv is UB-free with an empty RX queue");
        assert_eq!(out, vec![0, 1], "(len, code=1 nothing)");
    }

    #[test]
    fn tryrecv_copies_a_frame_into_the_buffer() {
        let p = program(true, false);
        let mut i = fresh_interp(&p, false);
        i.call("lan_init", &[])
            .expect("lan_init is UB-free on a healthy board");
        let frame: Vec<u8> = (0..50u8).collect();
        i.ext.dev.inject_frame(&frame);
        let out = i
            .call("lan_tryrecv", &[0x100])
            .expect("lan_tryrecv is UB-free with a well-formed frame pending");
        assert_eq!(out, vec![50, 0]);
        let copied = i
            .mem
            .load_bytes(0x100, 50)
            .expect("the 50-byte copy target lies inside test memory");
        assert_eq!(copied, &frame[..]);
    }

    #[test]
    fn tryrecv_rejects_giant_frames_without_copying() {
        let p = program(true, false);
        let mut i = fresh_interp(&p, false);
        i.call("lan_init", &[])
            .expect("lan_init is UB-free on a healthy board");
        i.ext.dev.inject_frame(&vec![0xAA; 1600]);
        let out = i
            .call("lan_tryrecv", &[0x100])
            .expect("lan_tryrecv is UB-free even on an oversized frame");
        assert_eq!(out[1], 2, "code=2 rejected");
        assert_eq!(i.ext.dev.spi.slave.frames_discarded, 1);
        // Nothing was copied: the buffer area is untouched.
        let untouched = i
            .mem
            .load_bytes(0x100, 16)
            .expect("the probe window lies inside test memory");
        assert!(untouched.iter().all(|b| *b == 0));
    }

    #[test]
    fn tryrecv_rejects_too_short_frames() {
        let p = program(true, false);
        let mut i = fresh_interp(&p, false);
        i.call("lan_init", &[])
            .expect("lan_init is UB-free on a healthy board");
        i.ext.dev.inject_frame(&[1, 2, 3]);
        let out = i
            .call("lan_tryrecv", &[0x100])
            .expect("lan_tryrecv is UB-free on a runt frame");
        assert_eq!(out[1], 2);
    }

    #[test]
    fn init_times_out_on_a_dead_chip() {
        // A board whose LAN9250 never becomes ready: no ticks ever happen
        // beyond the per-call one, but BYTE_TEST needs 16 — make the chip
        // unreachable instead by not asserting... simplest: run init with
        // the device brand new and a tiny SPI so polling dominates; the
        // readiness countdown elapses during SPI polling, so instead use a
        // bridge that never ticks.
        #[derive(Clone)]
        struct DeadSpi;
        impl riscv_spec::MmioHandler for DeadSpi {
            fn is_mmio(&self, addr: u32, _s: riscv_spec::AccessSize) -> bool {
                devices::Board::claims(addr)
            }
            fn load(&mut self, addr: u32, _s: riscv_spec::AccessSize) -> u32 {
                if addr == crate::layout::SPI_RXDATA {
                    crate::layout::SPI_FLAG //forever empty: the chip never answers
                } else {
                    0
                }
            }
            fn store(&mut self, _a: u32, _s: riscv_spec::AccessSize, _v: u32) {}
        }
        let p = program(true, false);
        let mut i = Interp::new(&p, Memory::with_size(0x1000), MmioBridge::new(DeadSpi));
        let out = i
            .call("lan_init", &[])
            .expect("timeouts turn a dead chip into an error code, not UB");
        assert_eq!(out, vec![1], "err must be reported, not a hang");
    }
}

//! The lightbulb application (the `lightbulb` source file of §5.1): an
//! infinite loop that polls the network card for packets, validates them,
//! and switches the lightbulb.
//!
//! Validation is deliberately simple and lax, like the paper's: frame
//! length bounds (enforced in the driver), EtherType = IPv4, IP protocol =
//! UDP, and the configured destination port. Anything else — "no matter
//! how maliciously malformed at any layer" — falls through without
//! touching the GPIO.

use crate::layout;
use bedrock2::ast::{Function, Program};
use bedrock2::dsl::*;

/// Options selecting which variant of the stack to build — the §7.2.1
/// configuration space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DriverOptions {
    /// Bounded polling loops that report errors instead of hanging (the
    /// verified configuration; disabling reproduces the paper's unverified
    /// prototype, 1.2× faster).
    pub timeouts: bool,
    /// FE310-style SPI pipelining (disabled in the verified configuration,
    /// 1.4× slower).
    pub pipelined_spi: bool,
}

impl Default for DriverOptions {
    /// The verified configuration: timeouts on, pipelining off.
    fn default() -> DriverOptions {
        DriverOptions {
            timeouts: true,
            pipelined_spi: false,
        }
    }
}

/// `lightbulb_init()`: enable the GPIO output and bring up the Ethernet
/// controller, with bounded retries if the chip is slow to answer.
pub fn lightbulb_init() -> Function {
    let body = block([
        interact(
            &[],
            "MMIOWRITE",
            [lit(layout::GPIO_OUTPUT_EN), lit(layout::LIGHTBULB_MASK)],
        ),
        call(&["err"], "lan_init_retry", []),
    ]);
    Function::new("lightbulb_init", &[], &["err"], body)
}

/// `lightbulb_loop()`: one event-loop iteration.
///
/// On a persistent RX failure (`code` 3: SPI exchanges timing out) the
/// loop degrades gracefully — the bulb keeps its last commanded state (no
/// GPIO access on this path) and the driver re-enters the bounded
/// bring-up sequence via `lan_recover` before the next poll.
pub fn lightbulb_loop() -> Function {
    let body = stackalloc(
        "buf",
        layout::RX_BUFFER_BYTES,
        block([
            call(&["len", "code"], "lan_tryrecv", [var("buf")]),
            when(
                eq(var("code"), lit(3)),
                block([call(&["e"], "lan_recover", [])]),
            ),
            when(
                eq(var("code"), lit(0)),
                block([
                    set(
                        "ethertype",
                        or(
                            slu(load1(add(var("buf"), lit(12))), lit(8)),
                            load1(add(var("buf"), lit(13))),
                        ),
                    ),
                    set("proto", load1(add(var("buf"), lit(23)))),
                    set(
                        "port",
                        or(
                            slu(load1(add(var("buf"), lit(36))), lit(8)),
                            load1(add(var("buf"), lit(37))),
                        ),
                    ),
                    set(
                        "ok",
                        and(
                            and(eq(var("ethertype"), lit(0x0800)), eq(var("proto"), lit(17))),
                            eq(var("port"), lit(layout::LIGHTBULB_PORT)),
                        ),
                    ),
                    when(
                        var("ok"),
                        block([
                            set("cmd", load1(add(var("buf"), lit(layout::CMD_BYTE_OFFSET)))),
                            interact(&["v"], "MMIOREAD", [lit(layout::GPIO_OUTPUT_VAL)]),
                            if_(
                                and(var("cmd"), lit(1)),
                                set("v2", or(var("v"), lit(layout::LIGHTBULB_MASK))),
                                set("v2", and(var("v"), lit(!layout::LIGHTBULB_MASK))),
                            ),
                            interact(&[], "MMIOWRITE", [lit(layout::GPIO_OUTPUT_VAL), var("v2")]),
                        ]),
                    ),
                ]),
            ),
        ]),
    );
    Function::new("lightbulb_loop", &[], &[], body)
}

/// The complete lightbulb program: SPI driver, LAN9250 driver, and
/// application, in the selected configuration.
pub fn lightbulb_program(opts: DriverOptions) -> Program {
    let mut fns = crate::spi_driver::functions(opts.timeouts);
    fns.extend(crate::lan9250_driver::functions(
        opts.timeouts,
        opts.pipelined_spi,
    ));
    fns.push(lightbulb_init());
    fns.push(lightbulb_loop());
    Program::from_functions(fns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::MmioBridge;
    use bedrock2::semantics::Interp;
    use devices::workload::{Malformation, TrafficGen};
    use devices::Board;
    use riscv_spec::Memory;

    fn booted_interp(p: &Program) -> Interp<'_, MmioBridge<Board>> {
        let mut i = Interp::new(
            p,
            Memory::with_size(0x1_0000),
            MmioBridge::new(Board::default()),
        );
        let out = i
            .call("lightbulb_init", &[])
            .expect("lightbulb_init is UB-free on a healthy board");
        assert_eq!(out, vec![0], "init must succeed");
        i
    }

    #[test]
    fn program_is_well_formed() {
        for opts in [
            DriverOptions::default(),
            DriverOptions {
                timeouts: false,
                pipelined_spi: true,
            },
        ] {
            assert!(lightbulb_program(opts).check().is_empty());
        }
    }

    #[test]
    fn valid_commands_switch_the_lightbulb() {
        let p = lightbulb_program(DriverOptions::default());
        let mut i = booted_interp(&p);
        let mut gen = TrafficGen::new(11);
        for on in [true, false, true] {
            i.ext.dev.inject_frame(&gen.command(on));
            i.call("lightbulb_loop", &[])
                .expect("lightbulb_loop is UB-free");
            assert_eq!(i.ext.dev.lightbulb_on(), on);
        }
    }

    #[test]
    fn polling_with_no_traffic_does_nothing() {
        let p = lightbulb_program(DriverOptions::default());
        let mut i = booted_interp(&p);
        for _ in 0..3 {
            i.call("lightbulb_loop", &[])
                .expect("lightbulb_loop is UB-free");
        }
        assert!(!i.ext.dev.lightbulb_on());
        assert!(i.ext.dev.gpio.writes.is_empty());
    }

    #[test]
    fn every_malformation_is_ignored() {
        let p = lightbulb_program(DriverOptions::default());
        let mut i = booted_interp(&p);
        let mut gen = TrafficGen::new(23);
        // Turn it on first so we'd notice an accidental turn-off too.
        i.ext.dev.inject_frame(&gen.command(true));
        i.call("lightbulb_loop", &[])
            .expect("lightbulb_loop is UB-free");
        assert!(i.ext.dev.lightbulb_on());
        let writes_before = i.ext.dev.gpio.writes.len();
        for kind in Malformation::ALL {
            i.ext.dev.inject_frame(&gen.malformed(kind));
            i.call("lightbulb_loop", &[])
                .expect("lightbulb_loop is UB-free");
            assert!(
                i.ext.dev.lightbulb_on(),
                "{kind:?} must not switch the bulb"
            );
        }
        assert_eq!(
            i.ext.dev.gpio.writes.len(),
            writes_before,
            "malformed traffic must cause no GPIO writes at all"
        );
    }

    #[test]
    fn giant_frames_never_overrun_the_buffer() {
        // The interpreter turns any out-of-bounds store into a Ub error,
        // so simply *finishing* this run is the overrun check.
        let p = lightbulb_program(DriverOptions::default());
        let mut i = booted_interp(&p);
        let mut gen = TrafficGen::new(29);
        for _ in 0..5 {
            i.ext
                .dev
                .inject_frame(&gen.malformed(Malformation::GiantFrame));
            i.call("lightbulb_loop", &[])
                .expect("lightbulb_loop is UB-free");
        }
        assert_eq!(i.ext.dev.spi.slave.frames_discarded, 5);
    }

    #[test]
    fn pipelined_driver_behaves_identically() {
        let p = lightbulb_program(DriverOptions {
            timeouts: true,
            pipelined_spi: true,
        });
        let mut i = booted_interp(&p);
        let mut gen = TrafficGen::new(31);
        i.ext.dev.inject_frame(&gen.command(true));
        i.call("lightbulb_loop", &[])
            .expect("lightbulb_loop is UB-free");
        assert!(i.ext.dev.lightbulb_on());
        i.ext
            .dev
            .inject_frame(&gen.malformed(Malformation::WrongPort));
        i.call("lightbulb_loop", &[])
            .expect("lightbulb_loop is UB-free");
        assert!(i.ext.dev.lightbulb_on());
    }

    #[test]
    fn pipelined_and_interleaved_agree_on_behavior() {
        // At interpreter granularity device time advances one tick per MMIO
        // call, so both drivers are SPI-throughput-bound and take the same
        // wall time; the 1.4× of §7.2.1 appears at the cycle-accurate level
        // (see the e2e_latency bench). Here we check the two schedules are
        // genuinely different on the wire yet behaviorally identical.
        let mut ticks = Vec::new();
        let mut events = Vec::new();
        for pipelined_spi in [false, true] {
            let p = lightbulb_program(DriverOptions {
                timeouts: true,
                pipelined_spi,
            });
            let mut i = booted_interp(&p);
            let mut gen = TrafficGen::new(37);
            let t0 = i.ext.dev.ticks;
            let e0 = i.ext.events.len();
            i.ext.dev.inject_frame(&gen.command(true));
            i.call("lightbulb_loop", &[])
                .expect("lightbulb_loop is UB-free");
            assert!(i.ext.dev.lightbulb_on());
            ticks.push(i.ext.dev.ticks - t0);
            events.push(i.ext.events[e0..].to_vec());
        }
        assert!(
            ticks[1] <= ticks[0],
            "pipelining must not be slower: {ticks:?}"
        );
        assert_ne!(events[0], events[1], "the wire schedules must differ");
    }
}

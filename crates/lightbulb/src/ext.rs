//! The bridge from Bedrock2 external calls to MMIO devices.
//!
//! At the source level, I/O is the external procedures `MMIOREAD` and
//! `MMIOWRITE` (§6.1). This bridge *is* the runtime instantiation of their
//! specification: it refuses calls outside the platform's MMIO ranges or
//! with misaligned addresses (the obligations `vcextern` imposes on the
//! programmer) and otherwise forwards to an [`MmioHandler`] — the very
//! device models the hardware runs against — recording the event trace in
//! the `("ld"/"st", addr, value)` form the top-level specification
//! constrains.
//!
//! One bridge call advances device time by one tick, which is the
//! interpreter-level stand-in for cycles elapsing between I/O operations.

use bedrock2::semantics::ExtHandler;
use riscv_spec::{AccessSize, Memory, MmioEvent, MmioHandler};

/// Wraps a device as a Bedrock2 external environment.
#[derive(Clone, Debug)]
pub struct MmioBridge<M> {
    /// The device (e.g. [`devices::Board`]).
    pub dev: M,
    /// The MMIO event trace, oldest first.
    pub events: Vec<MmioEvent>,
}

impl<M: MmioHandler> MmioBridge<M> {
    /// Creates a bridge over `dev`.
    pub fn new(dev: M) -> MmioBridge<M> {
        MmioBridge {
            dev,
            events: Vec::new(),
        }
    }

    fn check(&self, addr: u32) -> Result<(), String> {
        if !addr.is_multiple_of(4) {
            return Err(format!("misaligned MMIO address 0x{addr:08x}"));
        }
        if !self.dev.is_mmio(addr, AccessSize::Word) {
            return Err(format!("address 0x{addr:08x} is not MMIO"));
        }
        Ok(())
    }
}

impl<M: MmioHandler> ExtHandler for MmioBridge<M> {
    fn call(&mut self, action: &str, args: &[u32], _mem: &mut Memory) -> Result<Vec<u32>, String> {
        let out = match (action, args) {
            ("MMIOREAD", [addr]) => {
                self.check(*addr)?;
                let v = self.dev.load(*addr, AccessSize::Word);
                self.events.push(MmioEvent::load(*addr, v));
                Ok(vec![v])
            }
            ("MMIOWRITE", [addr, value]) => {
                self.check(*addr)?;
                self.dev.store(*addr, AccessSize::Word, *value);
                self.events.push(MmioEvent::store(*addr, *value));
                Ok(vec![])
            }
            _ => Err(format!("unknown external procedure '{action}'")),
        };
        self.dev.tick();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::Board;

    #[test]
    fn bridge_enforces_the_mmio_contract() {
        let mut b = MmioBridge::new(Board::default());
        let mut mem = Memory::with_size(16);
        assert!(b
            .call("MMIOREAD", &[crate::layout::SPI_RXDATA], &mut mem)
            .is_ok());
        assert!(b
            .call("MMIOREAD", &[crate::layout::SPI_RXDATA + 1], &mut mem)
            .is_err());
        assert!(b.call("MMIOREAD", &[0x4000_0000], &mut mem).is_err());
        assert!(b.call("FROBNICATE", &[], &mut mem).is_err());
    }

    #[test]
    fn bridge_records_the_trace() {
        let mut b = MmioBridge::new(Board::default());
        let mut mem = Memory::with_size(16);
        b.call("MMIOWRITE", &[crate::layout::GPIO_OUTPUT_EN, 2], &mut mem)
            .unwrap();
        let v = b
            .call("MMIOREAD", &[crate::layout::GPIO_OUTPUT_EN], &mut mem)
            .unwrap();
        assert_eq!(v, vec![2]);
        assert_eq!(
            b.events,
            vec![
                MmioEvent::store(crate::layout::GPIO_OUTPUT_EN, 2),
                MmioEvent::load(crate::layout::GPIO_OUTPUT_EN, 2),
            ]
        );
    }

    #[test]
    fn each_call_ticks_the_device() {
        let mut b = MmioBridge::new(Board::default());
        let mut mem = Memory::with_size(16);
        for _ in 0..5 {
            let _ = b.call("MMIOREAD", &[crate::layout::SPI_RXDATA], &mut mem);
        }
        assert_eq!(b.dev.ticks, 5);
    }
}

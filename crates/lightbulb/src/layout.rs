//! The platform memory map and protocol constants, shared by the drivers
//! (Bedrock2 code), the device models, and the trace specifications.
//!
//! Keeping one module that all three read is itself an integration-bug
//! counter-measure: the classic failure mode this paper targets is two
//! layers agreeing "in spirit" on an interface while differing in a
//! constant.

use devices::{GPIO_BASE, SPI_BASE};

/// SPI serial-clock divisor register.
pub const SPI_SCKDIV: u32 = SPI_BASE + devices::spi::SCKDIV;
/// SPI chip-select control register.
pub const SPI_CSMODE: u32 = SPI_BASE + devices::spi::CSMODE;
/// SPI transmit-data register (bit 31 = full on read).
pub const SPI_TXDATA: u32 = SPI_BASE + devices::spi::TXDATA;
/// SPI receive-data register (bit 31 = empty on read).
pub const SPI_RXDATA: u32 = SPI_BASE + devices::spi::RXDATA;
/// The full/empty flag bit of the SPI data registers.
pub const SPI_FLAG: u32 = devices::spi::FLAG;

/// GPIO output-enable register.
pub const GPIO_OUTPUT_EN: u32 = GPIO_BASE + devices::gpio::OUTPUT_EN;
/// GPIO output-value register.
pub const GPIO_OUTPUT_VAL: u32 = GPIO_BASE + devices::gpio::OUTPUT_VAL;
/// The lightbulb's pin mask.
pub const LIGHTBULB_MASK: u32 = 1 << devices::gpio::LIGHTBULB_PIN;

/// LAN9250 register addresses (within its SPI-visible space).
pub mod lan {
    /// RX data FIFO.
    pub const RX_DATA_FIFO: u16 = devices::lan9250::RX_DATA_FIFO;
    /// RX status FIFO.
    pub const RX_STATUS_FIFO: u16 = devices::lan9250::RX_STATUS_FIFO;
    /// Liveness/endianness test register.
    pub const BYTE_TEST: u16 = devices::lan9250::BYTE_TEST;
    /// Hardware configuration (READY bit).
    pub const HW_CFG: u16 = devices::lan9250::HW_CFG;
    /// RX FIFO usage information.
    pub const RX_FIFO_INF: u16 = devices::lan9250::RX_FIFO_INF;
    /// MAC CSR command register.
    pub const MAC_CSR_CMD: u16 = devices::lan9250::MAC_CSR_CMD;
    /// MAC CSR data register.
    pub const MAC_CSR_DATA: u16 = devices::lan9250::MAC_CSR_DATA;
    /// RX datapath control (discard).
    pub const RX_DP_CTRL: u16 = devices::lan9250::RX_DP_CTRL;
}

/// `BYTE_TEST` expected value.
pub const BYTE_TEST_MAGIC: u32 = devices::lan9250::BYTE_TEST_MAGIC;
/// `HW_CFG` READY bit.
pub const HW_CFG_READY: u32 = devices::lan9250::HW_CFG_READY;
/// MAC CSR busy/strobe bit.
pub const MAC_CSR_BUSY: u32 = devices::lan9250::MAC_CSR_BUSY;
/// MAC control register index.
pub const MAC_CR: u32 = devices::lan9250::MAC_CR;
/// MAC receive-enable bit.
pub const MAC_CR_RXEN: u32 = devices::lan9250::MAC_CR_RXEN;
/// RX datapath discard bit.
pub const RX_DP_DISCARD: u32 = devices::lan9250::RX_DP_DISCARD;
/// LAN9250 SPI read command byte.
pub const CMD_READ: u32 = devices::lan9250::CMD_READ as u32;
/// LAN9250 SPI write command byte.
pub const CMD_WRITE: u32 = devices::lan9250::CMD_WRITE as u32;

/// The driver's receive buffer size in bytes.
pub const RX_BUFFER_BYTES: u32 = 1520;
/// Minimum acceptable frame: Ethernet+IPv4+UDP headers plus one command
/// byte.
pub const MIN_FRAME_BYTES: u32 = 43;
/// The UDP port the application accepts commands on.
pub const LIGHTBULB_PORT: u32 = devices::workload::LIGHTBULB_PORT as u32;
/// Byte offset of the command byte within a frame (first UDP payload byte).
pub const CMD_BYTE_OFFSET: u32 = devices::ethernet::HEADERS_LEN as u32;

/// Polling budget for SPI flag loops.
pub const SPI_TIMEOUT: u32 = 64;
/// Polling budget for device bring-up loops.
pub const INIT_TIMEOUT: u32 = 64;
/// How many times `lan_init_retry` re-attempts a failed bring-up. With the
/// fault layer capping register misbehaviour at two poll budgets, three
/// retries always suffice (see `devices::faults`).
pub const LAN_INIT_RETRIES: u32 = 3;
/// Initial busy-wait between retry attempts; doubles on every retry. The
/// wait is pure spinning (no MMIO), so it is invisible on the trace.
pub const INIT_BACKOFF_BASE: u32 = 32;
/// Total RXDATA reads `spi_drain` may issue. Sized for the worst case:
/// popping a full 8-deep receive queue, waiting out one in-flight byte,
/// popping it, and then observing [`DRAIN_QUIET_READS`] empties.
pub const SPI_DRAIN_BUDGET: u32 = 40;
/// Consecutive empty RXDATA reads `spi_drain` needs before it may conclude
/// the wire is quiet. Must exceed the SPI transfer time in device ticks
/// (`SpiConfig::cycles_per_byte`, 8 by default): a byte whose exchange
/// already happened but whose response has not yet landed in the receive
/// queue reads as a run of at most `cycles_per_byte` empties — giving up
/// sooner would let that straggler desynchronize every later exchange.
pub const DRAIN_QUIET_READS: u32 = 12;
/// Link-integrity nonce: written to `MAC_CSR_DATA` at the end of bring-up
/// and read back. A desynchronized SPI link (stale response bytes shifting
/// every readback) cannot echo it: the bytes are distinct and never 0xFF,
/// so any byte lag returns a different word. In particular a lag of one
/// whole register frame makes every readword return the *previous*
/// readword's value — which fools every polling loop (they just take one
/// extra iteration) but not this write-then-read-back check.
pub const LINK_CHECK_NONCE: u32 = 0x6996_C35A;

/// The MMIO ranges software may touch — the `isMMIOAddr` of §6.2, used by
/// both the external-call specification and the runtime bridge.
pub fn mmio_ranges() -> Vec<(u32, u32)> {
    devices::Board::mmio_ranges().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_land_in_their_windows() {
        assert!(devices::Board::claims(SPI_TXDATA));
        assert!(devices::Board::claims(SPI_RXDATA));
        assert!(devices::Board::claims(GPIO_OUTPUT_VAL));
        for (lo, hi) in mmio_ranges() {
            assert!(lo < hi);
            assert_eq!(lo % 4, 0);
        }
    }

    #[test]
    fn command_byte_offset_is_past_all_headers() {
        assert_eq!(CMD_BYTE_OFFSET, 42);
        assert_eq!(MIN_FRAME_BYTES, CMD_BYTE_OFFSET + 1);
        // Word 10, lane 2 — the position the trace spec pins down.
        assert_eq!(CMD_BYTE_OFFSET / 4, 10);
        assert_eq!(CMD_BYTE_OFFSET % 4, 2);
    }
}

//! Program-logic verification of the real driver code (§4.1, §6.1): the
//! symbolic executor discharges, for the actual `spi_put`/`spi_get`
//! sources, the MMIO external-call preconditions (`vcextern`) — address in
//! range, word aligned — for **all** inputs, not just tested ones. This is
//! the fragment of the paper's driver proofs our prover can carry; the
//! rest of the stack is covered differentially.

use bedrock2::Program;
use lightbulb::layout;
use lightbulb::spi_driver;
use proglogic::symexec::{Invariant, MmioExtSpec, SymExec, VcError};
use proglogic::{Formula, Term};
use std::rc::Rc;

fn mmio_spec() -> MmioExtSpec {
    MmioExtSpec {
        ranges: layout::mmio_ranges(),
    }
}

fn trivial_invariant(havoc: &[&str]) -> Invariant {
    Invariant {
        havoc: havoc.iter().map(|s| s.to_string()).collect(),
        holds: Rc::new(|_| vec![]),
    }
}

#[test]
fn spi_put_mmio_accesses_verify_for_all_inputs() {
    // spi_put(b): every MMIOREAD/MMIOWRITE it performs must hit a legal
    // word-aligned platform address, whatever b is. The polling loop gets
    // the trivial invariant with its modified locals havoced.
    let p = Program::from_functions([spi_driver::spi_put(true)]);
    let mut se = SymExec::new(&p, mmio_spec());
    se.set_invariant(0, trivial_invariant(&["v", "i"]));
    let report = se
        .check_function("spi_put", |st| vec![st.fresh("b")], |_st, _rets| vec![])
        .expect("spi_put must satisfy the MMIO contract");
    assert!(
        report.obligations >= 4,
        "reads and the write each carry obligations"
    );
    assert!(report.paths >= 2, "err and ok paths both explored");
}

#[test]
fn spi_get_result_is_a_byte() {
    // spi_get() -> (r, err): besides the MMIO contract, on every path the
    // result r fits in a byte — the guarantee the LAN9250 driver's word
    // reassembly (b0 | b1<<8 | …) silently relies on.
    let p = Program::from_functions([spi_driver::spi_get(true)]);
    let mut se = SymExec::new(&p, mmio_spec());
    se.set_invariant(0, trivial_invariant(&["v", "i"]));
    se.check_function(
        "spi_get",
        |_st| vec![],
        |_st, rets| vec![Formula::ltu(&rets[0], &Term::constant(256))],
    )
    .expect("spi_get returns a byte on every path");
}

#[test]
fn spi_get_error_flag_is_boolean() {
    let p = Program::from_functions([spi_driver::spi_get(true)]);
    let mut se = SymExec::new(&p, mmio_spec());
    se.set_invariant(0, trivial_invariant(&["v", "i"]));
    se.check_function(
        "spi_get",
        |_st| vec![],
        |_st, rets| vec![Formula::ltu(&rets[1], &Term::constant(2))],
    )
    .expect("err is 0 or 1");
}

#[test]
fn an_unguarded_mmio_access_would_fail_verification() {
    // Negative control for the harness: a driver writing to an arbitrary
    // address must be rejected by the same machinery.
    use bedrock2::dsl::*;
    use bedrock2::Function;
    let evil = Function::new(
        "evil",
        &["a"],
        &[],
        interact(&[], "MMIOWRITE", [var("a"), lit(1)]),
    );
    let p = Program::from_functions([evil]);
    let se = SymExec::new(&p, mmio_spec());
    let err = se.check_function("evil", |st| vec![st.fresh("a")], |_, _| vec![]);
    assert!(matches!(err, Err(VcError::ProofFailed { .. })), "{err:?}");
}

#[test]
fn the_no_timeout_variant_fails_only_for_want_of_an_invariant_budget() {
    // Without timeouts the polling loop is unbounded; with the trivial
    // invariant it still verifies (the invariant machinery does not need
    // termination for the safety obligations).
    let p = Program::from_functions([spi_driver::spi_put(false)]);
    let mut se = SymExec::new(&p, mmio_spec());
    se.set_invariant(0, trivial_invariant(&["v"]));
    se.check_function("spi_put", |st| vec![st.fresh("b")], |_, _| vec![])
        .expect("safety holds even for the non-total variant");
}

/// The headline driver proof (§3's buffer-overrun story, as a ∀ check):
/// `lan_tryrecv` is memory-safe for **every** frame length the device
/// could report — the symbolic executor explores the length guard both
/// ways, proves every buffer access in bounds and aligned (including the
/// symbolic-index stores `buf + 4·i` of the copy loop, using the loop
/// condition `i < n` and the guard `43 ≤ len ≤ 1520`), and proves every
/// MMIO access within the platform ranges.
#[test]
fn lan_tryrecv_is_memory_safe_for_all_frame_lengths() {
    let mut fns = lightbulb::spi_driver::functions(true);
    fns.extend(lightbulb::lan9250_driver::functions(true, false));
    let p = Program::from_functions(fns);
    let mut se = SymExec::new(&p, mmio_spec());
    se.auto_invariants = true;
    let report = se
        .check_function(
            "lan_tryrecv",
            |st| vec![st.add_region("buf", lightbulb::layout::RX_BUFFER_BYTES)],
            |_st, rets| {
                // The result code is one of 0..=3 on every path.
                vec![proglogic::Formula::ltu(
                    &rets[1],
                    &proglogic::Term::constant(4),
                )]
            },
        )
        .expect("lan_tryrecv must be safe for all frame lengths");
    assert!(report.paths >= 4, "guard and error paths all explored");
    assert!(
        report.obligations > 50,
        "MMIO + buffer obligations discharged"
    );
}

/// Negative control — the exact bug class the paper's first prototype had
/// ("a large frame overrunning a statically allocated buffer in the
/// driver"): remove the length guard and verification must fail on the
/// copy loop's bounds obligation, just as the paper reports "an
/// unprovable Coq goal during the development of our Ethernet driver".
#[test]
fn removing_the_length_guard_is_caught() {
    use bedrock2::ast::Stmt;

    fn strip_guard(s: &Stmt) -> Stmt {
        match s {
            // The guard is the `if (len < MIN) | (MAX < len)` branch whose
            // then-arm discards the frame: replace the whole conditional
            // with its else-arm (always copy — the overrun).
            Stmt::If(c, t, e) => {
                let is_guard = format!("{c:?}").contains("1520");
                if is_guard {
                    (**e).clone()
                } else {
                    Stmt::If(
                        c.clone(),
                        Box::new(strip_guard(t)),
                        Box::new(strip_guard(e)),
                    )
                }
            }
            Stmt::Block(ss) => Stmt::Block(ss.iter().map(strip_guard).collect()),
            Stmt::While(c, b) => Stmt::While(c.clone(), Box::new(strip_guard(b))),
            Stmt::Stackalloc(x, n, b) => Stmt::Stackalloc(x.clone(), *n, Box::new(strip_guard(b))),
            other => other.clone(),
        }
    }

    let mut fns = lightbulb::spi_driver::functions(true);
    fns.extend(lightbulb::lan9250_driver::functions(true, false));
    let mut p = Program::from_functions(fns);
    let buggy = {
        let f = p.functions.get_mut("lan_tryrecv").unwrap();
        f.body = strip_guard(&f.body);
        p
    };
    let mut se = SymExec::new(&buggy, mmio_spec());
    se.auto_invariants = true;
    let err = se.check_function(
        "lan_tryrecv",
        |st| vec![st.add_region("buf", lightbulb::layout::RX_BUFFER_BYTES)],
        |_, _| vec![],
    );
    assert!(
        matches!(err, Err(VcError::ProofFailed { ref context, .. }) if context.contains("bounds")),
        "the overrun must be unprovable: {err:?}"
    );
}

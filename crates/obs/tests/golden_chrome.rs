//! Golden-file test for the Chrome trace-event exporter.
//!
//! The exporter's output is consumed by external viewers (Perfetto,
//! `chrome://tracing`), so its exact shape is a compatibility contract,
//! not an implementation detail: field order, phase letters, and the
//! counter `args` convention must not drift. The expected text lives in
//! `tests/golden/chrome_trace.json`; if a change is intentional, update
//! the golden file and re-check it loads in Perfetto.

use obs::{chrome, json, Event};

fn fixture() -> Vec<Event> {
    vec![
        Event::instant(100, "pipeline", "redirect").with_arg("next_pc", 0x104),
        Event::instant(250, "pipeline", "fence_i"),
        Event::span(300, 42, "compiler", "regalloc"),
        Event::counter(4096, "pipeline", "ipc_x1000", 770),
        Event::instant(5000, "pipeline", "halt").with_arg("retired", 3500),
    ]
}

#[test]
fn chrome_trace_matches_the_golden_file() {
    let got = chrome::render(&fixture());
    let want = include_str!("golden/chrome_trace.json");
    assert_eq!(
        got,
        want.trim_end(),
        "Chrome trace output drifted from tests/golden/chrome_trace.json"
    );
}

#[test]
fn the_golden_file_itself_is_valid_json_with_the_expected_shape() {
    let doc = json::parse(include_str!("golden/chrome_trace.json").trim_end()).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), fixture().len());
    for ev in events {
        assert!(ev.get("name").unwrap().as_str().is_some());
        assert!(ev.get("ts").unwrap().as_f64().is_some());
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        assert!(matches!(ph, "i" | "X" | "C"), "unknown phase {ph:?}");
    }
    assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), Some("ns"));
}

//! The named-counter registry.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

/// Interns a counter name, returning the `&'static str` the registry
/// needs. Names born in the binary are already `'static`; this is for
/// names that arrive from *outside* — parsed back from a checkpoint or
/// report file — where each distinct name is leaked exactly once into a
/// process-global cache (bounded by the number of distinct counter names,
/// a few dozen in practice).
pub fn intern(name: &str) -> &'static str {
    static CACHE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("name interner poisoned: a previous intern call panicked mid-insert");
    if let Some(&s) = cache.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    cache.insert(leaked);
    leaked
}

/// A registry of named monotonic counters.
///
/// Names follow the `layer.component.metric` scheme (see the crate docs).
/// The registry is deliberately *not* designed for hot paths — lookups
/// hash/compare strings — so instrumented components keep plain `u64`
/// fields in their own stats structs and dump them here at reporting time
/// via [`Counters::set`]. A `BTreeMap` keeps iteration (and therefore
/// every exported report) deterministically ordered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds `delta` to `name`, creating it at zero first if absent.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.values.entry(name).or_insert(0) += delta;
    }

    /// Sets `name` to exactly `value`.
    pub fn set(&mut self, name: &'static str, value: u64) {
        self.values.insert(name, value);
    }

    /// The current value of `name`, or 0 if it was never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Whether any counter has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Folds every counter of `other` into `self` (summing on collision).
    pub fn merge(&mut self, other: &Counters) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }

    /// Iterates `(name, value)` in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_set_get() {
        let mut c = Counters::new();
        assert!(c.is_empty());
        assert_eq!(c.get("pipeline.stall.raw"), 0);
        c.add("pipeline.stall.raw", 3);
        c.add("pipeline.stall.raw", 4);
        c.set("pipeline.flush.total", 9);
        assert_eq!(c.get("pipeline.stall.raw"), 7);
        assert_eq!(c.get("pipeline.flush.total"), 9);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn merge_sums_collisions_and_keeps_order() {
        let mut a = Counters::new();
        a.add("b.x", 1);
        a.add("a.y", 2);
        let mut b = Counters::new();
        b.add("b.x", 10);
        b.add("c.z", 5);
        a.merge(&b);
        let got: Vec<_> = a.iter().collect();
        assert_eq!(got, vec![("a.y", 2), ("b.x", 11), ("c.z", 5)]);
    }
}

//! The event sink interface and its two standard implementations.

use crate::event::Event;

/// Receives structured events from instrumented components.
///
/// Instrumentation is **statically dispatched**: components take `S: Sink`
/// as a type parameter (defaulting to [`NullSink`]) and guard any
/// non-trivial event construction with `if S::ENABLED { .. }`. With
/// `NullSink` the guard is a compile-time constant `false`, so the entire
/// instrumentation block is dead code the optimizer removes — hot loops
/// pay nothing. The `obs_overhead` criterion bench in `crates/bench`
/// asserts this empirically (≤ 2% on the pipeline hot loop).
pub trait Sink {
    /// `false` only for sinks that discard everything, letting
    /// instrumentation sites skip event construction entirely.
    const ENABLED: bool;

    /// Accepts one event.
    fn emit(&mut self, ev: Event);
}

/// The default sink: discards everything, costs nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _ev: Event) {}
}

/// Records every event in memory, for export after the run.
#[derive(Clone, Debug, Default)]
pub struct MemSink {
    /// The recorded events, oldest first.
    pub events: Vec<Event>,
}

impl Sink for MemSink {
    const ENABLED: bool = true;

    #[inline]
    fn emit(&mut self, ev: Event) {
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_sink_records_null_sink_discards() {
        let ev = Event::instant(1, "test", "e");
        let mut m = MemSink::default();
        m.emit(ev);
        m.emit(ev);
        assert_eq!(m.events.len(), 2);
        const { assert!(MemSink::ENABLED) };

        let mut n = NullSink;
        n.emit(ev);
        const { assert!(!NullSink::ENABLED) };
    }
}

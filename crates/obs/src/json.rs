//! A dependency-free JSON document model: build + render + parse.
//!
//! The container has no network access, so the usual serde stack is out;
//! this is the minimal subset the repo needs — the Chrome exporter and the
//! bench `--json` mode *render* documents, and CI *parses* the emitted
//! files back to validate them. Objects keep insertion order so rendered
//! output is deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer, rendered without a decimal point.
    UInt(u64),
    /// A negative integer, rendered without a decimal point.
    Int(i64),
    /// Any other number. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Appends a field to an object; panics on non-objects
    /// (builder misuse, not data-dependent).
    #[must_use]
    pub fn field(mut self, key: &str, value: Value) -> Value {
        match &mut self {
            Value::Obj(pairs) => pairs.push((key.to_string(), value)),
            _ => panic!("Value::field on non-object"),
        }
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value as f64, if this is any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(n) => Some(n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(n) if n.is_finite() => {
                // `{}` on f64 keeps enough digits to round-trip; integral
                // floats like 2.0 render as "2", still valid JSON.
                let _ = write!(out, "{n}");
            }
            Value::Float(_) => out.push_str("null"),
            Value::Str(s) => escape_into(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable reason.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':', "expected ':'")?;
                    self.skip_ws();
                    pairs.push((key, self.value(depth + 1)?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by anything
                            // this repo emits; map them to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digits"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| ParseError {
                at: start,
                msg: "invalid number",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_then_parse_round_trips() {
        let doc = Value::obj()
            .field("name", Value::Str("bench \"x\"\n".into()))
            .field("cycles", Value::UInt(u64::MAX))
            .field("delta", Value::Int(-3))
            .field("ratio", Value::Float(0.5))
            .field("ok", Value::Bool(true))
            .field(
                "samples",
                Value::Arr(vec![Value::UInt(1), Value::Null, Value::Float(2.25)]),
            );
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parser_accepts_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\x\"", "01x"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_keep_integer_precision() {
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse("-9").unwrap(), Value::Int(-9));
        assert_eq!(parse("2.5e1").unwrap().as_f64(), Some(25.0));
    }
}

//! Chrome trace-event exporter.
//!
//! Renders recorded [`Event`]s as the JSON Object Format understood by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: a top-level
//! object with a `traceEvents` array. Timestamps pass through as the
//! viewer's native microseconds, so one viewer microsecond equals one
//! simulated cycle.

use crate::event::{Event, Phase};
use crate::json::Value;

/// Process id used for all emitted events.
const PID: u64 = 0;

fn one(ev: &Event) -> Value {
    let mut v = Value::obj()
        .field("name", Value::Str(ev.name.to_string()))
        .field("cat", Value::Str(ev.cat.to_string()))
        .field("pid", Value::UInt(PID))
        .field("tid", Value::UInt(0))
        .field("ts", Value::UInt(ev.ts));
    match ev.phase {
        Phase::Instant => {
            // "s":"t" scopes the instant marker to its thread track.
            v = v
                .field("ph", Value::Str("i".into()))
                .field("s", Value::Str("t".into()));
        }
        Phase::Complete { dur } => {
            v = v
                .field("ph", Value::Str("X".into()))
                .field("dur", Value::UInt(dur));
        }
        Phase::Counter { value } => {
            v = v
                .field("ph", Value::Str("C".into()))
                .field("args", Value::obj().field(ev.name, Value::UInt(value)));
        }
    }
    if let Some((key, value)) = ev.arg {
        // Counter events already consumed `args` for their sample.
        if !matches!(ev.phase, Phase::Counter { .. }) {
            v = v.field("args", Value::obj().field(key, Value::UInt(value)));
        }
    }
    v
}

/// Builds the trace document for `events`.
pub fn document(events: &[Event]) -> Value {
    Value::obj()
        .field("traceEvents", Value::Arr(events.iter().map(one).collect()))
        .field("displayTimeUnit", Value::Str("ns".into()))
}

/// Renders `events` as a complete Chrome trace JSON string.
pub fn render(events: &[Event]) -> String {
    document(events).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn every_phase_renders_and_parses_back() {
        let events = [
            Event::instant(10, "pipeline", "redirect").with_arg("pc", 0x80),
            Event::span(20, 5, "compiler", "regalloc"),
            Event::counter(30, "pipeline", "ipc_x1000", 770),
        ];
        let text = render(&events);
        let doc = json::parse(&text).expect("exporter must emit valid JSON");
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(items[1].get("dur").unwrap().as_f64(), Some(5.0));
        assert_eq!(
            items[2]
                .get("args")
                .unwrap()
                .get("ipc_x1000")
                .unwrap()
                .as_f64(),
            Some(770.0)
        );
    }
}

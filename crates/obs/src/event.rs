//! Structured trace events.

/// What kind of mark an [`Event`] is, mirroring the Chrome trace-event
/// phases the exporter emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A point in time (`ph: "i"`).
    Instant,
    /// A span with an explicit duration (`ph: "X"`).
    Complete {
        /// Span length in timestamp units.
        dur: u64,
    },
    /// A sampled counter value (`ph: "C"`).
    Counter {
        /// The sampled value.
        value: u64,
    },
}

/// One structured event.
///
/// Timestamps are whatever clock the emitting layer has — simulated cycles
/// for the hardware models, retired instructions for the spec machine.
/// The Chrome exporter reports them as microseconds (the trace viewer's
/// native unit), which makes one viewer microsecond equal one cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in the emitting layer's time unit.
    pub ts: u64,
    /// Event name (shown on the timeline). Static so that emitting an
    /// event never allocates.
    pub name: &'static str,
    /// Category — by convention the layer prefix of the counter naming
    /// scheme (`pipeline`, `spec`, `board`, `compiler`, `proglogic`).
    pub cat: &'static str,
    /// The phase/kind.
    pub phase: Phase,
    /// Optional numeric argument (e.g. an address, a stall length),
    /// rendered into `args` by the exporter.
    pub arg: Option<(&'static str, u64)>,
}

impl Event {
    /// An instant event.
    pub fn instant(ts: u64, cat: &'static str, name: &'static str) -> Event {
        Event {
            ts,
            name,
            cat,
            phase: Phase::Instant,
            arg: None,
        }
    }

    /// A complete span `[ts, ts+dur]`.
    pub fn span(ts: u64, dur: u64, cat: &'static str, name: &'static str) -> Event {
        Event {
            ts,
            name,
            cat,
            phase: Phase::Complete { dur },
            arg: None,
        }
    }

    /// A counter sample.
    pub fn counter(ts: u64, cat: &'static str, name: &'static str, value: u64) -> Event {
        Event {
            ts,
            name,
            cat,
            phase: Phase::Counter { value },
            arg: None,
        }
    }

    /// Attaches a numeric argument.
    #[must_use]
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Event {
        self.arg = Some((key, value));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_the_phases() {
        let i = Event::instant(5, "pipeline", "redirect");
        assert_eq!(i.phase, Phase::Instant);
        let s = Event::span(5, 10, "compiler", "regalloc");
        assert_eq!(s.phase, Phase::Complete { dur: 10 });
        let c = Event::counter(5, "pipeline", "ipc_x1000", 770).with_arg("window", 8192);
        assert_eq!(c.phase, Phase::Counter { value: 770 });
        assert_eq!(c.arg, Some(("window", 8192)));
    }
}

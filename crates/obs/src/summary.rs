//! Plain-text counter report, grouped by layer.

use crate::counters::Counters;

/// Renders `counters` as an aligned text table, one section per layer
/// prefix (the part of the name before the first `.`).
///
/// ```text
/// [pipeline]
///   pipeline.flush.redirect        3
///   pipeline.stall.raw           120
/// ```
pub fn render(counters: &Counters) -> String {
    if counters.is_empty() {
        return "(no counters recorded)\n".to_string();
    }
    let width = counters
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    let mut current_layer = "";
    for (name, value) in counters.iter() {
        let layer = name.split('.').next().unwrap_or(name);
        if layer != current_layer {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("[{layer}]\n"));
            current_layer = layer;
        }
        out.push_str(&format!("  {name:<width$} {value:>12}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_by_layer_prefix() {
        let mut c = Counters::new();
        c.add("pipeline.stall.raw", 120);
        c.add("pipeline.flush.redirect", 3);
        c.add("spec.retired.total", 900);
        let text = render(&c);
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines[0], "[pipeline]");
        assert!(lines[1].contains("pipeline.flush.redirect"));
        assert!(lines[2].contains("pipeline.stall.raw"));
        assert!(lines.contains(&""));
        assert!(text.contains("[spec]"));
        let last = lines.last().unwrap();
        assert!(last.starts_with("  spec.retired.total"));
        assert!(last.ends_with(" 900"));
    }

    #[test]
    fn empty_registry_renders_placeholder() {
        assert_eq!(render(&Counters::new()), "(no counters recorded)\n");
    }
}

//! A fast, deterministic multiply-mix hasher (FxHash-style).
//!
//! The default `SipHash` is DoS-resistant but dominates profile time in
//! memo tables whose keys are already well-distributed (pointers, interned
//! ids, structural fingerprints). This module centralizes the multiply-mix
//! scheme the trace matcher grew in `proglogic::trace` so every layer
//! hashes memo keys the same way:
//!
//! * [`FxHasher64`] — a `std::hash::Hasher` for `HashMap` memo tables
//!   (plug in via [`FxBuild`]).
//! * [`mix64`] / [`mix64b`] — the raw one-word mixing steps, exposed for
//!   code that folds *structural fingerprints* incrementally (the
//!   hash-consed term DAG in `proglogic` combines both lanes into a
//!   128-bit fingerprint so obligation-cache keys can treat fingerprint
//!   equality as structural equality).
//!
//! Determinism matters more than speed here: fingerprints are persisted in
//! `verif-cache/v1` files and compared across processes, so the constants
//! below are part of the on-disk format and must never change silently.

/// Golden-ratio multiplier used by the primary mixing lane.
pub const K1: u64 = 0x9E37_79B9_7F4A_7C15;

/// Second multiplier (an xxHash prime) for the independent lane.
pub const K2: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// One mixing step of the primary lane: rotate, xor in the word, multiply.
#[inline]
pub fn mix64(h: u64, x: u64) -> u64 {
    (h.rotate_left(23) ^ x).wrapping_mul(K1)
}

/// One mixing step of the second lane, with a different rotation and
/// multiplier so the two lanes fail independently on adversarial inputs.
#[inline]
pub fn mix64b(h: u64, x: u64) -> u64 {
    (h.rotate_left(13) ^ x).wrapping_mul(K2)
}

/// Folds both lanes over `x`, treating the halves of `h` as independent
/// 64-bit states. The workhorse for 128-bit structural fingerprints.
#[inline]
pub fn mix128(h: u128, x: u64) -> u128 {
    let lo = mix64(h as u64, x);
    let hi = mix64b((h >> 64) as u64, x);
    ((hi as u128) << 64) | lo as u128
}

/// An FxHash-style [`std::hash::Hasher`] for memo tables with
/// well-distributed keys (pointers, fingerprints, small integers).
#[derive(Default)]
pub struct FxHasher64(u64);

impl std::hash::Hasher for FxHasher64 {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a for the byte-stream fallback (strings, odd tails).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u32(&mut self, i: u32) {
        self.0 = mix64(self.0, i as u64);
    }
    fn write_u64(&mut self, i: u64) {
        self.0 = mix64(self.0, i);
    }
    fn write_u128(&mut self, i: u128) {
        self.0 = mix64(mix64(self.0, i as u64), (i >> 64) as u64);
    }
    fn write_usize(&mut self, i: usize) {
        self.0 = mix64(self.0, i as u64);
    }
}

/// `BuildHasher` alias: `HashMap<K, V, FxBuild>` gets the fast hasher.
pub type FxBuild = std::hash::BuildHasherDefault<FxHasher64>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher64::default();
        let mut b = FxHasher64::default();
        (42u64, "lightbulb").hash(&mut a);
        (42u64, "lightbulb").hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn lanes_differ() {
        // The two lanes must not collapse to the same function, or the
        // 128-bit fingerprint would degrade to 64 bits of entropy. Both
        // lanes fix (h=0, x=0) — xor and multiply preserve zero — which is
        // why every fingerprint in `proglogic` folds from a nonzero seed;
        // the lanes are compared the same way here.
        for x in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_ne!(mix64(1, x), mix64b(1, x), "lanes collided on {x:#x}");
        }
    }

    #[test]
    fn mix128_combines_both_lanes() {
        let h = mix128(0, 7);
        assert_eq!(h as u64, mix64(0, 7));
        assert_eq!((h >> 64) as u64, mix64b(0, 7));
        assert_ne!(mix128(h, 1), mix128(h, 2));
    }
}

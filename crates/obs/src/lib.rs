//! Cross-layer telemetry for the lightbulb stack.
//!
//! The paper's end-to-end theorem ties every layer together through one
//! MMIO trace; this crate gives the *executable* stack the matching
//! observability story, so a slow run or a diverging differential test can
//! be localized to a layer without a debugger:
//!
//! * [`Sink`] — the structured-event interface. Instrumented components
//!   take a `S: Sink` type parameter; the default [`NullSink`] has
//!   `ENABLED == false` and empty inlined methods, so the disabled path
//!   monomorphizes to *nothing* (the `obs_overhead` bench in
//!   `crates/bench` checks this stays under 2%).
//! * [`Counters`] — a named-counter registry. Hot paths keep plain `u64`
//!   fields in their own stats structs (e.g. `PipelineStats`) and dump
//!   them into a registry at reporting time; the registry is for
//!   aggregation and export, never for per-cycle increments.
//! * [`Histogram`] — power-of-two bucketed latency/size histogram.
//! * [`chrome`] — Chrome trace-event JSON (open in Perfetto or
//!   `chrome://tracing`).
//! * [`summary`] — plain-text counter report.
//! * [`json`] — a dependency-free JSON writer and validating parser (used
//!   by the `--json` bench mode and CI validation).
//! * [`fx`] — deterministic FxHash-style mixing, shared by memo tables and
//!   the hash-consed term fingerprints in `proglogic`.
//!
//! # Counter naming scheme
//!
//! `layer.component.metric`, all lowercase, dot-separated:
//! `pipeline.stall.raw`, `spec.retired.load`, `board.spi.bytes_rx`,
//! `compiler.pass.regalloc_micros`, `proglogic.solver.queries`. The layer
//! prefix is what [`summary::render`] groups by.

pub mod chrome;
pub mod fx;
pub mod json;
pub mod summary;

mod counters;
mod event;
mod hist;
mod sink;

pub use counters::{intern, Counters};
pub use event::{Event, Phase};
pub use hist::Histogram;
pub use sink::{MemSink, NullSink, Sink};

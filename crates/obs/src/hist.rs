//! A power-of-two bucketed histogram for latencies and sizes.

/// Histogram with buckets `[0], [1], [2,3], [4,7], … [2^63, u64::MAX]`.
///
/// Bucket `i` (for `i >= 1`) covers values whose bit length is `i`, i.e.
/// `2^(i-1) ..= 2^i - 1`; bucket 0 holds exact zeros. Recording is a
/// `leading_zeros` and an array increment, cheap enough for per-event use
/// (MMIO gaps, frame sizes), and the fixed 65-slot footprint (bit lengths
/// 0 through 64) keeps the struct allocation-free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Iterates non-empty buckets as `(lower_bound_inclusive, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_split_on_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        let got: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(
            got,
            vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (1 << 63, 1)]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn mean_is_exact_when_no_saturation() {
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }
}

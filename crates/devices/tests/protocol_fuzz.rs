//! Protocol fuzzing for the device models: arbitrary byte sequences on the
//! SPI wire and arbitrary MMIO traffic on the bus must never wedge or
//! panic a device, and must never fabricate a frame. This is the device
//! half of the paper's "no matter how maliciously malformed" promise — the
//! *models* must be total so that every machine model can run any software
//! against them.

use devices::lan9250::{BYTE_TEST, BYTE_TEST_MAGIC, CMD_READ};
use devices::spi::SpiSlave;
use devices::{Board, Lan9250};
use proptest::prelude::*;
use riscv_spec::{AccessSize, MmioHandler};

fn settle(dev: &mut Lan9250) {
    for _ in 0..32 {
        dev.tick();
    }
}

fn spi_read(dev: &mut Lan9250, addr: u16) -> u32 {
    dev.exchange(CMD_READ);
    dev.exchange((addr >> 8) as u8);
    dev.exchange((addr & 0xFF) as u8);
    let mut v = 0u32;
    for lane in 0..4 {
        v |= (dev.exchange(0) as u32) << (8 * lane);
    }
    dev.cs_high();
    v
}

proptest! {
    /// Arbitrary wire garbage (with arbitrary CS toggles) never panics the
    /// LAN9250 and never delivers a frame that was not injected.
    #[test]
    fn lan9250_survives_wire_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
        cs_toggles in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut dev = Lan9250::new();
        settle(&mut dev);
        for (i, b) in bytes.iter().enumerate() {
            dev.exchange(*b);
            if cs_toggles.get(i).copied().unwrap_or(false) {
                dev.cs_high();
            }
            dev.tick();
        }
        prop_assert_eq!(dev.frames_delivered, 0, "no frame was injected");
        // After any garbage, a clean command still works.
        dev.cs_high();
        prop_assert_eq!(spi_read(&mut dev, BYTE_TEST), BYTE_TEST_MAGIC);
    }

    /// Arbitrary MMIO traffic never panics the board and never actuates
    /// the lightbulb unless the GPIO registers were actually written with
    /// the right bits.
    #[test]
    fn board_survives_mmio_garbage(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u32..0x30000u32, any::<u32>()),
            0..300,
        ),
    ) {
        let mut board = Board::default();
        let mut wrote_bulb_bits = false;
        for (is_store, off, value) in ops {
            // Spray over all three windows plus unmapped space.
            let addr = 0x1001_0000 + (off & !3);
            if board.is_mmio(addr, AccessSize::Word) {
                if is_store {
                    board.store(addr, AccessSize::Word, value);
                    if addr == devices::GPIO_BASE + devices::gpio::OUTPUT_VAL
                        || addr == devices::GPIO_BASE + devices::gpio::OUTPUT_EN
                    {
                        wrote_bulb_bits = true;
                    }
                } else {
                    let _ = board.load(addr, AccessSize::Word);
                }
            }
            board.tick();
        }
        if !wrote_bulb_bits {
            prop_assert!(!board.lightbulb_on(), "bulb on without GPIO writes");
        }
    }

    /// Injected frames are delivered byte-exactly, whatever padding the
    /// word protocol adds.
    #[test]
    fn frames_roundtrip_through_the_rx_path(
        frame in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        use devices::lan9250::{MAC_CR, MAC_CSR_BUSY, MAC_CSR_CMD, MAC_CSR_DATA,
                               MAC_CR_RXEN, RX_DATA_FIFO, RX_STATUS_FIFO};
        let mut dev = Lan9250::new();
        settle(&mut dev);
        // Enable RX through the CSR interface.
        let spi_write = |dev: &mut Lan9250, addr: u16, value: u32| {
            dev.exchange(devices::lan9250::CMD_WRITE);
            dev.exchange((addr >> 8) as u8);
            dev.exchange((addr & 0xFF) as u8);
            for lane in 0..4 {
                dev.exchange((value >> (8 * lane)) as u8);
            }
            dev.cs_high();
        };
        spi_write(&mut dev, MAC_CSR_DATA, MAC_CR_RXEN);
        spi_write(&mut dev, MAC_CSR_CMD, MAC_CSR_BUSY | MAC_CR);

        dev.inject_frame(&frame);
        let status = spi_read(&mut dev, RX_STATUS_FIFO);
        prop_assert_eq!((status >> 16 & 0x3FFF) as usize, frame.len());
        let words = frame.len().div_ceil(4);
        let mut data = Vec::new();
        for _ in 0..words {
            let w = spi_read(&mut dev, RX_DATA_FIFO);
            data.extend_from_slice(&w.to_le_bytes());
        }
        prop_assert_eq!(&data[..frame.len()], &frame[..]);
    }
}

//! An FE310-flavored SPI controller.
//!
//! The register map follows the SiFive FE310's SPI peripheral where the
//! lightbulb stack uses it (§5.1 of the paper): `TXDATA` exposes a send
//! queue whose read view carries a *full* flag in bit 31, `RXDATA` exposes
//! a receive queue whose read view carries an *empty* flag in bit 31, and
//! software detects peripheral-initiated changes purely by polling. One
//! deliberate simplification is chip-select control: instead of the
//! FE310's `csmode` AUTO/HOLD/OFF encoding, writing 1/0 to [`CSMODE`]
//! asserts/deasserts the (single) chip select, which is what the LAN9250
//! driver needs for command framing.
//!
//! Transfers take [`SpiConfig::cycles_per_byte`] device ticks per byte, so
//! polling loops in drivers actually spin — giving the latency that the
//! §7.2.1 performance reproduction measures.

use std::collections::VecDeque;

use crate::faults::{FaultPlan, WireFaults};

/// Register offsets within the SPI controller's MMIO window.
/// Serial clock divisor (accepted and ignored by the model).
pub const SCKDIV: u32 = 0x00;
/// Chip-select control: write 1 to assert, 0 to deassert.
pub const CSMODE: u32 = 0x18;
/// Transmit data: write a byte to enqueue; read for the full flag (bit 31).
pub const TXDATA: u32 = 0x48;
/// Receive data: read pops a byte; bit 31 set means empty.
pub const RXDATA: u32 = 0x4C;

/// Bit 31: the flag bit in `TXDATA` (full) and `RXDATA` (empty) reads.
pub const FLAG: u32 = 0x8000_0000;

const FIFO_DEPTH: usize = 8;

/// The device on the other end of the SPI wires.
///
/// SPI is synchronous and bidirectional: each exchanged byte clocks one
/// byte in each direction.
pub trait SpiSlave {
    /// Exchanges one byte (full duplex): consumes `mosi`, returns MISO.
    fn exchange(&mut self, mosi: u8) -> u8;

    /// Chip select was deasserted: the current command frame ends.
    fn cs_high(&mut self) {}

    /// One device-time tick.
    fn tick(&mut self) {}

    /// `n` device-time ticks at once. Only called while the SPI wire is
    /// idle (no byte in flight, nothing queued), so a slave whose tick is a
    /// plain countdown can batch it; the default replays [`SpiSlave::tick`].
    fn tick_n(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }
}

/// SPI timing configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpiConfig {
    /// Device ticks one byte transfer occupies (8 models one bit per tick).
    pub cycles_per_byte: u32,
}

impl Default for SpiConfig {
    fn default() -> SpiConfig {
        SpiConfig { cycles_per_byte: 8 }
    }
}

/// Wire-level statistics, exported as `board.spi.*` counters by
/// [`crate::Board::counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpiStats {
    /// Bytes software enqueued into TXDATA (accepted, not dropped).
    pub bytes_tx: u64,
    /// Bytes software popped out of RXDATA.
    pub bytes_rx: u64,
    /// TXDATA writes dropped because the queue was full.
    pub bytes_dropped: u64,
    /// Device ticks the wire spent occupied by a transfer.
    pub busy_ticks: u64,
}

/// The SPI controller with an attached slave.
#[derive(Clone, Debug)]
pub struct Spi<S> {
    /// The attached peripheral (the LAN9250 in the lightbulb system).
    pub slave: S,
    /// Wire-level statistics.
    pub stats: SpiStats,
    tx: VecDeque<u8>,
    rx: VecDeque<u8>,
    in_flight: Option<u8>,
    busy: u32,
    cs_active: bool,
    sckdiv: u32,
    config: SpiConfig,
    faults: WireFaults,
}

impl<S: SpiSlave> Spi<S> {
    /// Creates a controller over `slave`.
    pub fn new(slave: S, config: SpiConfig) -> Spi<S> {
        Spi::with_faults(slave, config, &FaultPlan::none())
    }

    /// Creates a controller that injects the wire-level half of `plan`:
    /// MISO garbage on scheduled exchanges and receive-queue stalls after
    /// scheduled delivery counts. With [`FaultPlan::none`] this is exactly
    /// [`Spi::new`].
    pub fn with_faults(slave: S, config: SpiConfig, plan: &FaultPlan) -> Spi<S> {
        Spi {
            slave,
            stats: SpiStats::default(),
            tx: VecDeque::new(),
            rx: VecDeque::new(),
            in_flight: None,
            busy: 0,
            cs_active: false,
            sckdiv: 0,
            config,
            faults: plan.wire_faults(),
        }
    }

    /// Wire-level fault events injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.injected
    }

    /// MMIO register read.
    pub fn read(&mut self, offset: u32) -> u32 {
        match offset {
            SCKDIV => self.sckdiv,
            CSMODE => self.cs_active as u32,
            TXDATA if self.tx.len() >= FIFO_DEPTH => FLAG,
            RXDATA => {
                if self.faults.is_active() && self.faults.stall_read() {
                    return FLAG; // stalled: empty regardless of contents
                }
                match self.rx.pop_front() {
                    Some(b) => {
                        self.stats.bytes_rx += 1;
                        if self.faults.is_active() {
                            self.faults.on_delivered();
                        }
                        b as u32
                    }
                    None => FLAG,
                }
            }
            _ => 0,
        }
    }

    /// MMIO register write.
    pub fn write(&mut self, offset: u32, value: u32) {
        match offset {
            SCKDIV => self.sckdiv = value,
            CSMODE => {
                let assert = value & 1 == 1;
                if self.cs_active && !assert {
                    self.slave.cs_high();
                }
                self.cs_active = assert;
            }
            TXDATA if self.tx.len() < FIFO_DEPTH => {
                self.tx.push_back(value as u8);
                self.stats.bytes_tx += 1;
            }
            // Writes while full are dropped, as on real queues.
            TXDATA => self.stats.bytes_dropped += 1,
            _ => {}
        }
    }

    /// One device tick: progress the current transfer or start a new one.
    /// A byte's response appears exactly [`SpiConfig::cycles_per_byte`]
    /// ticks after its transfer begins — the wire is genuinely occupied for
    /// that long, which is what makes the system SPI-bound when the wire is
    /// slow (§7.2.1).
    pub fn tick(&mut self) {
        self.slave.tick();
        if self.in_flight.is_none() {
            if let Some(mosi) = self.tx.pop_front() {
                self.in_flight = Some(mosi);
                self.busy = self.config.cycles_per_byte.max(1);
            }
        }
        if let Some(mosi) = self.in_flight {
            self.stats.busy_ticks += 1;
            self.busy -= 1;
            if self.busy == 0 {
                let mut miso = if self.cs_active {
                    self.slave.exchange(mosi)
                } else {
                    0xFF // nothing selected: the bus floats high
                };
                if self.faults.is_active() {
                    miso = self.faults.on_exchange(miso);
                }
                if self.rx.len() < FIFO_DEPTH {
                    self.rx.push_back(miso);
                }
                self.in_flight = None;
            }
        }
    }

    /// `n` ticks at once — exactly `n` calls of [`Spi::tick`], but O(1)
    /// while the wire is idle: with nothing in flight and an empty send
    /// queue, a tick only advances the slave's own time.
    pub fn tick_n(&mut self, n: u64) {
        if self.in_flight.is_none() && self.tx.is_empty() {
            self.slave.tick_n(n);
            return;
        }
        for _ in 0..n {
            self.tick();
        }
    }

    /// True while a transfer is in flight or queued.
    pub fn busy(&self) -> bool {
        self.in_flight.is_some() || !self.tx.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo slave: returns the previous MOSI byte (classic SPI behavior).
    #[derive(Default)]
    struct Echo {
        last: u8,
        deselects: u32,
    }
    impl SpiSlave for Echo {
        fn exchange(&mut self, mosi: u8) -> u8 {
            let out = self.last;
            self.last = mosi;
            out
        }
        fn cs_high(&mut self) {
            self.deselects += 1;
        }
    }

    fn ticked(spi: &mut Spi<Echo>, n: u32) {
        for _ in 0..n {
            spi.tick();
        }
    }

    #[test]
    fn transfer_takes_time_and_echoes() {
        let mut spi = Spi::new(Echo::default(), SpiConfig { cycles_per_byte: 4 });
        spi.write(CSMODE, 1);
        spi.write(TXDATA, 0xAB);
        assert_eq!(spi.read(RXDATA), FLAG, "nothing received yet");
        ticked(&mut spi, 3);
        assert_eq!(spi.read(RXDATA), FLAG, "the wire is still busy");
        ticked(&mut spi, 1);
        assert_eq!(spi.read(RXDATA) & 0xFF, 0x00, "echo of initial state");
        spi.write(TXDATA, 0xCD);
        ticked(&mut spi, 4);
        assert_eq!(spi.read(RXDATA), 0xAB, "echo of the first byte");
        assert!(!spi.busy());
    }

    #[test]
    fn rxdata_reports_empty_with_flag() {
        let mut spi = Spi::new(Echo::default(), SpiConfig::default());
        assert_eq!(spi.read(RXDATA), FLAG);
    }

    #[test]
    fn txdata_full_flag() {
        let mut spi = Spi::new(Echo::default(), SpiConfig::default());
        for i in 0..FIFO_DEPTH {
            assert_eq!(spi.read(TXDATA), 0, "not full at {i}");
            spi.write(TXDATA, i as u32);
        }
        assert_eq!(spi.read(TXDATA), FLAG, "now full");
        // Excess writes are dropped, not wrapped.
        spi.write(TXDATA, 0x99);
        assert_eq!(spi.read(TXDATA), FLAG);
    }

    #[test]
    fn deassert_notifies_slave() {
        let mut spi = Spi::new(Echo::default(), SpiConfig::default());
        spi.write(CSMODE, 1);
        spi.write(CSMODE, 0);
        spi.write(CSMODE, 0); // no edge, no extra notification
        assert_eq!(spi.slave.deselects, 1);
        assert_eq!(spi.read(CSMODE), 0);
    }

    #[test]
    fn unselected_transfers_read_ones() {
        let mut spi = Spi::new(Echo::default(), SpiConfig { cycles_per_byte: 1 });
        spi.write(TXDATA, 0x55);
        ticked(&mut spi, 1);
        assert_eq!(spi.read(RXDATA), 0xFF);
        assert_eq!(spi.slave.last, 0, "slave never saw the byte");
    }

    #[test]
    fn stall_forces_empty_reads_then_delivers() {
        let plan = FaultPlan {
            rx_stalls: vec![(1, 2)],
            ..FaultPlan::default()
        };
        let mut spi = Spi::with_faults(Echo::default(), SpiConfig { cycles_per_byte: 1 }, &plan);
        spi.write(CSMODE, 1);
        spi.write(TXDATA, 0x11);
        ticked(&mut spi, 1);
        assert_eq!(spi.read(RXDATA) & 0xFF, 0x00, "first byte delivered");
        // The stall armed after delivery #1: the next two reads are forced
        // empty even though the echo of 0x11 is already queued.
        spi.write(TXDATA, 0x22);
        ticked(&mut spi, 1);
        assert_eq!(spi.read(RXDATA), FLAG);
        assert_eq!(spi.read(RXDATA), FLAG);
        assert_eq!(spi.read(RXDATA), 0x11, "stall over, byte still there");
        assert_eq!(spi.faults_injected(), 2);
    }

    #[test]
    fn miso_garbage_flips_only_the_scheduled_exchange() {
        let plan = FaultPlan {
            wire_garbage: vec![(1, 0xFF)],
            ..FaultPlan::default()
        };
        let mut spi = Spi::with_faults(Echo::default(), SpiConfig { cycles_per_byte: 1 }, &plan);
        spi.write(CSMODE, 1);
        for b in [0x10u8, 0x20, 0x30] {
            spi.write(TXDATA, b as u32);
            ticked(&mut spi, 1);
        }
        let got: Vec<u32> = (0..3).map(|_| spi.read(RXDATA)).collect();
        // Echo would be [0x00, 0x10, 0x20]; exchange #1's MISO is xored.
        assert_eq!(got, vec![0x00, 0x10 ^ 0xFF, 0x20]);
        assert_eq!(spi.slave.last, 0x30, "MOSI side never corrupted");
    }

    #[test]
    fn pipelined_use_queues_multiple_bytes() {
        // The FE310 pipelining pattern (§7.2.1): enqueue several TX bytes,
        // then drain the responses.
        let mut spi = Spi::new(Echo::default(), SpiConfig { cycles_per_byte: 2 });
        spi.write(CSMODE, 1);
        for b in [1u8, 2, 3, 4] {
            spi.write(TXDATA, b as u32);
        }
        ticked(&mut spi, 8); // 4 bytes × 2 cycles, fully overlapped
        let got: Vec<u32> = (0..4).map(|_| spi.read(RXDATA)).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}

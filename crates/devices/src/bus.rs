//! The board: all peripherals behind one MMIO handler.
//!
//! Base addresses replicate the FE310 memory map the paper's stack used
//! (§5.1): GPIO at `0x1001_2000`, SPI1 at `0x1002_4000`. The [`Board`]
//! plugs into every machine model in the workspace — the `riscv-spec`
//! machine, both processor models, and (via the `lightbulb` crate's
//! bridge) the Bedrock2 interpreter — which is what lets one device model
//! stand behind every layer's testing.

use crate::faults::FaultPlan;
use crate::gpio::Gpio;
use crate::lan9250::Lan9250;
use crate::spi::{Spi, SpiConfig};
use obs::Counters;
use riscv_spec::{AccessSize, MmioHandler};

/// Base address of the GPIO block.
pub const GPIO_BASE: u32 = 0x1001_2000;
/// Base address of the SPI controller.
pub const SPI_BASE: u32 = 0x1002_4000;
/// Size of each peripheral's MMIO window.
pub const WINDOW: u32 = 0x1000;

/// The lightbulb platform: SPI-attached LAN9250 plus GPIO.
#[derive(Clone, Debug)]
pub struct Board {
    /// SPI controller with the Ethernet controller behind it.
    pub spi: Spi<Lan9250>,
    /// The GPIO block driving the lightbulb.
    pub gpio: Gpio,
    /// Total device ticks elapsed.
    pub ticks: u64,
}

impl Default for Board {
    fn default() -> Board {
        Board::new(SpiConfig::default())
    }
}

impl Board {
    /// A freshly powered-on board.
    pub fn new(spi_config: SpiConfig) -> Board {
        Board::with_faults(spi_config, &FaultPlan::none())
    }

    /// A board whose devices misbehave according to `plan`: the wire-level
    /// faults go to the SPI controller, the chip-level ones to the LAN9250.
    /// With [`FaultPlan::none`] this is exactly [`Board::new`].
    pub fn with_faults(spi_config: SpiConfig, plan: &FaultPlan) -> Board {
        Board {
            spi: Spi::with_faults(Lan9250::with_faults(plan), spi_config, plan),
            gpio: Gpio::new(),
            ticks: 0,
        }
    }

    /// Fault events actually injected so far, across both device layers.
    pub fn faults_injected(&self) -> u64 {
        self.spi.faults_injected() + self.spi.slave.faults_injected()
    }

    /// Queues an Ethernet frame at the network interface.
    pub fn inject_frame(&mut self, frame: &[u8]) {
        self.spi.slave.inject_frame(frame);
    }

    /// Whether the lightbulb is currently on.
    pub fn lightbulb_on(&self) -> bool {
        self.gpio.lightbulb_on()
    }

    /// The MMIO address ranges this board claims, for specifications and
    /// replay handlers.
    pub fn mmio_ranges() -> [(u32, u32); 2] {
        [
            (GPIO_BASE, GPIO_BASE + WINDOW),
            (SPI_BASE, SPI_BASE + WINDOW),
        ]
    }

    /// Exports the board's activity as `board.*` named counters.
    pub fn counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("board.ticks", self.ticks);
        c.set("board.spi.bytes_tx", self.spi.stats.bytes_tx);
        c.set("board.spi.bytes_rx", self.spi.stats.bytes_rx);
        c.set("board.spi.bytes_dropped", self.spi.stats.bytes_dropped);
        c.set("board.spi.busy_ticks", self.spi.stats.busy_ticks);
        c.set(
            "board.lan9250.frames_delivered",
            self.spi.slave.frames_delivered,
        );
        c.set(
            "board.lan9250.frames_discarded",
            self.spi.slave.frames_discarded,
        );
        c.set(
            "board.lan9250.frames_pending",
            self.spi.slave.frames_pending() as u64,
        );
        c.set("devices.faults.injected", self.faults_injected());
        c
    }

    /// True when `addr` is inside one of the board's windows.
    pub fn claims(addr: u32) -> bool {
        Board::mmio_ranges()
            .iter()
            .any(|(lo, hi)| (*lo..*hi).contains(&addr))
    }
}

impl MmioHandler for Board {
    fn is_mmio(&self, addr: u32, _size: AccessSize) -> bool {
        Board::claims(addr)
    }

    fn load(&mut self, addr: u32, _size: AccessSize) -> u32 {
        if (GPIO_BASE..GPIO_BASE + WINDOW).contains(&addr) {
            self.gpio.read(addr - GPIO_BASE)
        } else if (SPI_BASE..SPI_BASE + WINDOW).contains(&addr) {
            self.spi.read(addr - SPI_BASE)
        } else {
            0
        }
    }

    fn store(&mut self, addr: u32, _size: AccessSize, value: u32) {
        if (GPIO_BASE..GPIO_BASE + WINDOW).contains(&addr) {
            self.gpio.write(addr - GPIO_BASE, value);
        } else if (SPI_BASE..SPI_BASE + WINDOW).contains(&addr) {
            self.spi.write(addr - SPI_BASE, value);
        }
    }

    fn tick(&mut self) {
        self.ticks += 1;
        self.spi.tick();
    }

    fn tick_n(&mut self, n: u64) {
        self.ticks += n;
        self.spi.tick_n(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpio;
    use crate::spi;

    #[test]
    fn routing_reaches_both_devices() {
        let mut b = Board::default();
        b.store(GPIO_BASE + gpio::OUTPUT_EN, AccessSize::Word, 2);
        b.store(GPIO_BASE + gpio::OUTPUT_VAL, AccessSize::Word, 2);
        assert!(b.lightbulb_on());
        assert_eq!(b.load(SPI_BASE + spi::RXDATA, AccessSize::Word), spi::FLAG);
    }

    #[test]
    fn claims_exactly_the_windows() {
        assert!(Board::claims(GPIO_BASE));
        assert!(Board::claims(SPI_BASE + 0xFFF));
        assert!(!Board::claims(SPI_BASE + 0x1000));
        assert!(!Board::claims(0));
        assert!(!Board::claims(0x2000_0000));
    }

    #[test]
    fn spi_transfer_end_to_end_through_the_bus() {
        let mut b = Board::default();
        for _ in 0..32 {
            b.tick(); // LAN9250 power-up
        }
        // Read BYTE_TEST through SPI MMIO, byte by byte.
        b.store(SPI_BASE + spi::CSMODE, AccessSize::Word, 1);
        let mut xchg = |byte: u8| -> u8 {
            b.store(SPI_BASE + spi::TXDATA, AccessSize::Word, byte as u32);
            loop {
                b.tick();
                let v = b.load(SPI_BASE + spi::RXDATA, AccessSize::Word);
                if v & spi::FLAG == 0 {
                    return v as u8;
                }
            }
        };
        xchg(0x03);
        xchg(0x00);
        xchg(0x64);
        let mut v = 0u32;
        for lane in 0..4 {
            v |= (xchg(0) as u32) << (8 * lane);
        }
        b.store(SPI_BASE + spi::CSMODE, AccessSize::Word, 0);
        assert_eq!(v, crate::lan9250::BYTE_TEST_MAGIC);
    }
}

//! Traffic generation: valid lightbulb commands and adversarial frames.
//!
//! The end-to-end theorem promises that "any unexpected packet, no matter
//! how maliciously malformed at any layer, is ignored" (§3). This module
//! produces those packets: well-formed on/off commands, plus a frame
//! malformed at each protocol layer — including the oversized frame that
//! exploited the buffer overrun in the paper's unverified prototype
//! (§1, §3).

use crate::ethernet::{build_udp_frame, FrameSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The UDP port the lightbulb application listens on.
pub const LIGHTBULB_PORT: u16 = 4040;

/// Ways a frame can be malformed, one per protocol layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Malformation {
    /// Shorter than the Ethernet+IP+UDP headers.
    TooShort,
    /// EtherType is not IPv4.
    BadEthertype,
    /// IP protocol is not UDP.
    NotUdp,
    /// Correct UDP packet to the wrong port.
    WrongPort,
    /// No payload at all (no command byte to read).
    EmptyPayload,
    /// Larger than the driver's receive buffer (the overrun attack).
    GiantFrame,
    /// Uniformly random bytes.
    RandomJunk,
}

impl Malformation {
    /// Every malformation, for exhaustive sweeps.
    pub const ALL: [Malformation; 7] = [
        Malformation::TooShort,
        Malformation::BadEthertype,
        Malformation::NotUdp,
        Malformation::WrongPort,
        Malformation::EmptyPayload,
        Malformation::GiantFrame,
        Malformation::RandomJunk,
    ];
}

/// A deterministic, seedable traffic generator.
#[derive(Debug)]
pub struct TrafficGen {
    rng: StdRng,
}

impl TrafficGen {
    /// Creates a generator from a seed (same seed ⇒ same traffic).
    pub fn new(seed: u64) -> TrafficGen {
        TrafficGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn base_spec(&mut self) -> FrameSpec {
        FrameSpec {
            src_port: self.rng.random_range(1024..u16::MAX),
            dst_port: LIGHTBULB_PORT,
            ..FrameSpec::default()
        }
    }

    /// A valid lightbulb command: payload byte 0 carries the on/off bit,
    /// followed by a little random padding.
    pub fn command(&mut self, on: bool) -> Vec<u8> {
        let mut payload = vec![on as u8 | (self.rng.random::<u8>() & 0xFE)];
        let extra = self.rng.random_range(0..16);
        for _ in 0..extra {
            payload.push(self.rng.random());
        }
        build_udp_frame(&FrameSpec {
            payload,
            ..self.base_spec()
        })
    }

    /// A frame malformed in the given way.
    pub fn malformed(&mut self, kind: Malformation) -> Vec<u8> {
        match kind {
            Malformation::TooShort => {
                let n = self.rng.random_range(1..crate::ethernet::HEADERS_LEN);
                let f = self.command(true);
                f[..n].to_vec()
            }
            Malformation::BadEthertype => {
                let mut f = self.command(true);
                f[12] = 0x86;
                f[13] = 0xDD; // IPv6
                f
            }
            Malformation::NotUdp => {
                let mut f = self.command(true);
                f[23] = 6; // TCP
                f
            }
            Malformation::WrongPort => {
                let spec = FrameSpec {
                    dst_port: LIGHTBULB_PORT + 1,
                    payload: vec![1],
                    ..self.base_spec()
                };
                build_udp_frame(&spec)
            }
            Malformation::EmptyPayload => build_udp_frame(&FrameSpec {
                payload: vec![],
                ..self.base_spec()
            }),
            Malformation::GiantFrame => {
                let len = self.rng.random_range(1521..4000usize);
                let mut payload = vec![1u8];
                payload.resize(len - crate::ethernet::HEADERS_LEN, 0x41);
                build_udp_frame(&FrameSpec {
                    payload,
                    ..self.base_spec()
                })
            }
            Malformation::RandomJunk => {
                let n = self.rng.random_range(1..200usize);
                (0..n).map(|_| self.rng.random()).collect()
            }
        }
    }

    /// A random mixture of valid and malformed frames, with the list of
    /// expected lightbulb states for the valid ones in order.
    pub fn mixed(&mut self, count: usize) -> (Vec<Vec<u8>>, Vec<bool>) {
        let mut frames = Vec::with_capacity(count);
        let mut expected = Vec::new();
        for _ in 0..count {
            if self.rng.random_bool(0.5) {
                let on = self.rng.random_bool(0.5);
                frames.push(self.command(on));
                expected.push(on);
            } else {
                let kind = Malformation::ALL[self.rng.random_range(0..Malformation::ALL.len())];
                frames.push(self.malformed(kind));
            }
        }
        (frames, expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::{parse_udp_frame, ParseError};

    #[test]
    fn commands_parse_and_carry_the_bit() {
        let mut g = TrafficGen::new(7);
        for on in [true, false] {
            let f = g.command(on);
            let p = parse_udp_frame(&f).unwrap();
            assert_eq!(p.dst_port, LIGHTBULB_PORT);
            assert_eq!(p.payload[0] & 1, on as u8);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = TrafficGen::new(42).command(true);
        let b = TrafficGen::new(42).command(true);
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_frames_fail_reference_validation() {
        let mut g = TrafficGen::new(1);
        for kind in Malformation::ALL {
            let f = g.malformed(kind);
            let ok_for_lightbulb = match parse_udp_frame(&f) {
                Ok(p) => p.dst_port == LIGHTBULB_PORT && !p.payload.is_empty() && f.len() <= 1520,
                Err(_) => false,
            };
            assert!(!ok_for_lightbulb, "{kind:?} should not be acceptable");
        }
    }

    #[test]
    fn giant_frames_exceed_the_buffer() {
        let mut g = TrafficGen::new(3);
        let f = g.malformed(Malformation::GiantFrame);
        assert!(f.len() > 1520);
        // And they are otherwise VALID udp — the length is the only issue,
        // which is exactly what makes them dangerous.
        assert!(parse_udp_frame(&f).is_ok());
    }

    #[test]
    fn too_short_really_is_short() {
        let mut g = TrafficGen::new(4);
        for _ in 0..20 {
            let f = g.malformed(Malformation::TooShort);
            assert_eq!(parse_udp_frame(&f), Err(ParseError::TooShort));
        }
    }

    #[test]
    fn mixed_reports_expected_states() {
        let mut g = TrafficGen::new(5);
        let (frames, expected) = g.mixed(50);
        assert_eq!(frames.len(), 50);
        let valid = frames
            .iter()
            .filter(|f| {
                parse_udp_frame(f).is_ok_and(|p| {
                    p.dst_port == LIGHTBULB_PORT && !p.payload.is_empty() && f.len() <= 1520
                })
            })
            .count();
        assert_eq!(valid, expected.len());
    }
}

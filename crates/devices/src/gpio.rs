//! The GPIO output port: the lightbulb's power switch.
//!
//! Register map follows the FE310 GPIO block for the three registers the
//! stack touches. The model additionally records every `OUTPUT_VAL` write
//! so tests and the latency benchmarks can observe *when* the lightbulb
//! was actuated.

/// Input pin values (constant 0 in this platform).
pub const INPUT_VAL: u32 = 0x00;
/// Output-enable mask.
pub const OUTPUT_EN: u32 = 0x08;
/// Output pin values.
pub const OUTPUT_VAL: u32 = 0x0C;

/// The GPIO pin wired to the lightbulb's power switch.
pub const LIGHTBULB_PIN: u32 = 1;

/// The GPIO block.
#[derive(Clone, Debug, Default)]
pub struct Gpio {
    /// Current output-enable mask.
    pub output_en: u32,
    /// Current output values.
    pub output_val: u32,
    /// Every value ever written to `OUTPUT_VAL`, oldest first.
    pub writes: Vec<u32>,
}

impl Gpio {
    /// Creates a GPIO block with all outputs low and disabled.
    pub fn new() -> Gpio {
        Gpio::default()
    }

    /// MMIO register read.
    pub fn read(&mut self, offset: u32) -> u32 {
        match offset {
            INPUT_VAL => 0,
            OUTPUT_EN => self.output_en,
            OUTPUT_VAL => self.output_val,
            _ => 0,
        }
    }

    /// MMIO register write.
    pub fn write(&mut self, offset: u32, value: u32) {
        match offset {
            OUTPUT_EN => self.output_en = value,
            OUTPUT_VAL => {
                self.output_val = value;
                self.writes.push(value);
            }
            _ => {}
        }
    }

    /// Whether the lightbulb is currently on (pin driven high and enabled).
    pub fn lightbulb_on(&self) -> bool {
        let mask = 1 << LIGHTBULB_PIN;
        self.output_en & mask != 0 && self.output_val & mask != 0
    }

    /// The lightbulb states produced by successive `OUTPUT_VAL` writes.
    pub fn lightbulb_history(&self) -> Vec<bool> {
        let mask = 1 << LIGHTBULB_PIN;
        self.writes.iter().map(|v| v & mask != 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightbulb_needs_enable_and_value() {
        let mut g = Gpio::new();
        g.write(OUTPUT_VAL, 1 << LIGHTBULB_PIN);
        assert!(!g.lightbulb_on(), "not enabled yet");
        g.write(OUTPUT_EN, 1 << LIGHTBULB_PIN);
        assert!(g.lightbulb_on());
        g.write(OUTPUT_VAL, 0);
        assert!(!g.lightbulb_on());
    }

    #[test]
    fn writes_are_recorded() {
        let mut g = Gpio::new();
        g.write(OUTPUT_VAL, 2);
        g.write(OUTPUT_VAL, 0);
        g.write(OUTPUT_VAL, 2);
        assert_eq!(g.lightbulb_history(), vec![true, false, true]);
    }

    #[test]
    fn reads_reflect_state() {
        let mut g = Gpio::new();
        g.write(OUTPUT_EN, 0xF0);
        g.write(OUTPUT_VAL, 0x30);
        assert_eq!(g.read(OUTPUT_EN), 0xF0);
        assert_eq!(g.read(OUTPUT_VAL), 0x30);
        assert_eq!(g.read(INPUT_VAL), 0);
        assert_eq!(g.read(0xFF), 0, "unmapped offsets read zero");
    }
}

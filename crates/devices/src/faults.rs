//! Seeded, deterministic fault injection for the device stack.
//!
//! The paper's driver proofs are stated against a *nondeterministic* device
//! spec: `lan_init`'s timeout loops exist because the LAN9250 is allowed to
//! answer `BYTE_TEST` with junk forever, and the correctness theorem only
//! promises good behaviour on traces the device spec admits (§3, §4.3).
//! Our executable models are normally maximally well-behaved, which leaves
//! every recovery path in the drivers untested. A [`FaultPlan`] closes that
//! gap: it is a pure-data schedule of device misbehaviour, derived from a
//! seed, that `Spi`/`Lan9250`/`Board` consult at well-defined points.
//!
//! Two properties are load-bearing:
//!
//! - **Determinism.** A plan is a function of its seed alone, and every
//!   trigger is keyed on an *interaction count* (the Nth completed wire
//!   exchange, the Nth byte actually delivered to the CPU, the Nth read of
//!   a specific register, the Nth injected frame) — never on device ticks
//!   or wall time. Interaction counts are reproducible run-to-run and
//!   shard-count-invariant, which is what lets `differential::fault_sweep`
//!   replay the same plan against the spec machine and the pipelined
//!   processor.
//! - **Zero cost when absent.** [`FaultPlan::none`] compiles down to a
//!   single `bool` test on the device hot paths, so the fault layer cannot
//!   regress the throughput numbers in `BENCH_spec_throughput.json`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// What happens to one injected Ethernet frame on its way into the RX FIFO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// The frame is silently lost (never enters the FIFO).
    Drop,
    /// Only the first `n` bytes arrive.
    Truncate(usize),
    /// One byte at `offset % len` is flipped with `xor`.
    Corrupt { offset: usize, xor: u8 },
}

/// A deterministic schedule of device misbehaviour.
///
/// All index fields are sorted ascending by their trigger count. The plan
/// is split into [`WireFaults`] (owned by the SPI controller) and
/// [`LanFaults`] (owned by the LAN9250 model) when a board is built with
/// [`crate::Board::with_faults`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed this plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// `BYTE_TEST` answers junk (`0xFFFF_FFFF`) for this many reads.
    pub byte_test_junk_reads: u32,
    /// `HW_CFG` reports not-ready for this many reads.
    pub hw_cfg_notready_reads: u32,
    /// `MAC_CSR_CMD` reports busy for this many reads.
    pub mac_busy_reads: u32,
    /// `RX_FIFO_INF` read indices that report a phantom pending frame
    /// (a spurious RX-pending flag with nothing behind it).
    pub spurious_rx_reads: Vec<u64>,
    /// `(exchange index, xor)`: the MISO byte of that completed wire
    /// exchange is corrupted. MOSI is never touched — the chip still sees
    /// what the driver sent.
    pub wire_garbage: Vec<(u64, u8)>,
    /// `(delivered-byte index, extra reads)`: once that many RX bytes have
    /// been delivered to the CPU, the next `extra reads` of `RXDATA` are
    /// forced empty (the controller stalls).
    pub rx_stalls: Vec<(u64, u32)>,
    /// `(injection index, fault)`: what happens to the Nth injected frame.
    pub frame_faults: Vec<(u64, FrameFault)>,
}

/// The `lan_init` per-phase poll budget is `layout::INIT_TIMEOUT + 1 = 65`
/// reads; register-fault magnitudes below are calibrated against it so a
/// plan forces at most two failed init attempts on one register, which a
/// driver with `LAN_INIT_RETRIES = 3` always survives.
const INIT_POLL_BUDGET: u32 = 65;

/// Longest stall a plan may schedule. Must stay below one full timed-out
/// pipelined readword (7 gets x 65 polls = 455 reads) so stalled bytes
/// never pile past the 8-deep RX FIFO and start dropping — drops would be
/// timing- (and therefore model-) dependent.
const MAX_STALL_READS: u32 = 400;

impl FaultPlan {
    /// The empty plan: no faults, and (via [`FaultPlan::is_none`]) a
    /// single-branch check on the device hot paths.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing at all.
    pub fn is_none(&self) -> bool {
        self.byte_test_junk_reads == 0
            && self.hw_cfg_notready_reads == 0
            && self.mac_busy_reads == 0
            && self.spurious_rx_reads.is_empty()
            && self.wire_garbage.is_empty()
            && self.rx_stalls.is_empty()
            && self.frame_faults.is_empty()
    }

    /// Total number of scheduled fault events (an upper bound on what a
    /// run can actually inject).
    pub fn scheduled(&self) -> u64 {
        (self.byte_test_junk_reads + self.hw_cfg_notready_reads + self.mac_busy_reads) as u64
            + self.spurious_rx_reads.len() as u64
            + self.wire_garbage.len() as u64
            + self.rx_stalls.iter().map(|(_, n)| *n as u64).sum::<u64>()
            + self.frame_faults.len() as u64
    }

    /// Derives a plan from a seed. Same seed ⇒ same plan, on every model.
    ///
    /// The distribution is calibrated so every plan is *recoverable* by the
    /// hardened drivers: at most one register gets a "hard" fault (longer
    /// than one poll budget, forcing failed init attempts), capped at two
    /// budgets' worth; stalls are bounded by [`MAX_STALL_READS`].
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };

        // One register misbehaves per plan: softly (absorbed by a single
        // poll loop) or hard (needs retry), or not at all.
        let soft = 1..=(INIT_POLL_BUDGET - 5);
        let hard = (INIT_POLL_BUDGET + 1)..=(2 * INIT_POLL_BUDGET);
        match rng.random_range(0..7u32) {
            0 => plan.byte_test_junk_reads = rng.random_range(soft),
            1 => plan.byte_test_junk_reads = rng.random_range(hard),
            2 => plan.hw_cfg_notready_reads = rng.random_range(soft),
            3 => plan.hw_cfg_notready_reads = rng.random_range(hard),
            4 => plan.mac_busy_reads = rng.random_range(soft),
            5 => plan.mac_busy_reads = rng.random_range(hard),
            _ => {}
        }

        // Transient MISO garbage on a few wire exchanges.
        for _ in 0..rng.random_range(0..=5u32) {
            plan.wire_garbage
                .push((rng.random_range(0..3000), rng.random_range(1..=255u8)));
        }
        plan.wire_garbage.sort_unstable();

        // At most two RX stalls, far enough apart that they never overlap
        // (a stall only arms after deliveries resume).
        for _ in 0..rng.random_range(0..=2u32) {
            plan.rx_stalls.push((
                rng.random_range(0..1200),
                rng.random_range(1..=MAX_STALL_READS),
            ));
        }
        plan.rx_stalls.sort_unstable();
        plan.rx_stalls.dedup_by_key(|(i, _)| *i);

        // Spurious RX-pending flags early in the run.
        for _ in 0..rng.random_range(0..=2u32) {
            plan.spurious_rx_reads.push(rng.random_range(0..80));
        }
        plan.spurious_rx_reads.sort_unstable();
        plan.spurious_rx_reads.dedup();

        // Frame-level faults on the first few injected frames.
        for idx in 0..4u64 {
            if rng.random_range(0..4u32) == 0 {
                let fault = match rng.random_range(0..3u32) {
                    0 => FrameFault::Drop,
                    1 => FrameFault::Truncate(rng.random_range(0..60)),
                    _ => FrameFault::Corrupt {
                        offset: rng.random_range(0..64),
                        xor: rng.random_range(1..=255u8),
                    },
                };
                plan.frame_faults.push((idx, fault));
            }
        }

        plan
    }

    /// The wire-level half of the plan, for the SPI controller.
    pub(crate) fn wire_faults(&self) -> WireFaults {
        WireFaults {
            active: !self.wire_garbage.is_empty() || !self.rx_stalls.is_empty(),
            garbage: self.wire_garbage.clone(),
            stalls: self.rx_stalls.clone(),
            next_garbage: 0,
            next_stall: 0,
            stall_left: 0,
            exchanges: 0,
            delivered: 0,
            injected: 0,
        }
        .armed()
    }

    /// The chip-level half of the plan, for the LAN9250 model.
    pub(crate) fn lan_faults(&self) -> LanFaults {
        LanFaults {
            active: self.byte_test_junk_reads != 0
                || self.hw_cfg_notready_reads != 0
                || self.mac_busy_reads != 0
                || !self.spurious_rx_reads.is_empty()
                || !self.frame_faults.is_empty(),
            byte_test_junk: self.byte_test_junk_reads,
            hw_cfg_notready: self.hw_cfg_notready_reads,
            mac_busy: self.mac_busy_reads,
            spurious_rx: self.spurious_rx_reads.clone(),
            frame_faults: self.frame_faults.clone(),
            next_spurious: 0,
            next_frame_fault: 0,
            byte_test_reads: 0,
            hw_cfg_reads: 0,
            mac_cmd_reads: 0,
            fifo_inf_reads: 0,
            frames_seen: 0,
            injected: 0,
        }
    }
}

/// Runtime state for the wire-level faults, owned by [`crate::Spi`].
#[derive(Clone, Debug)]
pub(crate) struct WireFaults {
    active: bool,
    garbage: Vec<(u64, u8)>,
    stalls: Vec<(u64, u32)>,
    next_garbage: usize,
    next_stall: usize,
    stall_left: u32,
    exchanges: u64,
    delivered: u64,
    /// Fault events actually injected so far.
    pub(crate) injected: u64,
}

impl WireFaults {
    /// True when any wire fault is scheduled; the *only* check on the SPI
    /// hot paths.
    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        self.active
    }

    /// Arms a stall scheduled at delivered-index 0 (before any delivery).
    fn armed(mut self) -> WireFaults {
        self.check_arm();
        self
    }

    fn check_arm(&mut self) {
        if let Some((at, reads)) = self.stalls.get(self.next_stall).copied() {
            if at == self.delivered {
                self.stall_left = reads;
                self.next_stall += 1;
            }
        }
    }

    /// Filters the MISO byte of a completed exchange. Called once per
    /// exchange, in wire order, so the exchange index is model-invariant.
    pub(crate) fn on_exchange(&mut self, miso: u8) -> u8 {
        let idx = self.exchanges;
        self.exchanges += 1;
        let mut out = miso;
        while let Some((at, xor)) = self.garbage.get(self.next_garbage).copied() {
            if at != idx {
                break;
            }
            out ^= xor;
            self.next_garbage += 1;
            self.injected += 1;
        }
        out
    }

    /// True when a stall forces this `RXDATA` read to come back empty
    /// regardless of FIFO contents. Each forced read consumes stall budget,
    /// so consumption is keyed on reads-while-stalled — identical across
    /// models because no model can pop a byte while the stall holds.
    pub(crate) fn stall_read(&mut self) -> bool {
        if self.stall_left > 0 {
            self.stall_left -= 1;
            self.injected += 1;
            true
        } else {
            false
        }
    }

    /// Records a byte actually delivered to the CPU and arms any stall
    /// scheduled at the new delivered count.
    pub(crate) fn on_delivered(&mut self) {
        self.delivered += 1;
        self.check_arm();
    }
}

/// Runtime state for the chip-level faults, owned by [`crate::Lan9250`].
#[derive(Clone, Debug)]
pub(crate) struct LanFaults {
    active: bool,
    byte_test_junk: u32,
    hw_cfg_notready: u32,
    mac_busy: u32,
    spurious_rx: Vec<u64>,
    frame_faults: Vec<(u64, FrameFault)>,
    next_spurious: usize,
    next_frame_fault: usize,
    byte_test_reads: u64,
    hw_cfg_reads: u64,
    mac_cmd_reads: u64,
    fifo_inf_reads: u64,
    frames_seen: u64,
    /// Fault events actually injected so far.
    pub(crate) injected: u64,
}

impl LanFaults {
    /// True when any chip fault is scheduled; the *only* check on the
    /// register-read hot path.
    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        self.active
    }

    /// `Some(junk)` when this `BYTE_TEST` read is still in the junk window.
    pub(crate) fn byte_test(&mut self) -> Option<u32> {
        self.byte_test_reads += 1;
        if self.byte_test_reads <= self.byte_test_junk as u64 {
            self.injected += 1;
            Some(0xFFFF_FFFF)
        } else {
            None
        }
    }

    /// `Some(0)` when this `HW_CFG` read still reports not-ready.
    pub(crate) fn hw_cfg(&mut self) -> Option<u32> {
        self.hw_cfg_reads += 1;
        if self.hw_cfg_reads <= self.hw_cfg_notready as u64 {
            self.injected += 1;
            Some(0)
        } else {
            None
        }
    }

    /// `Some(busy)` when this `MAC_CSR_CMD` read still reports busy.
    pub(crate) fn mac_csr_cmd(&mut self, busy: u32) -> Option<u32> {
        self.mac_cmd_reads += 1;
        if self.mac_cmd_reads <= self.mac_busy as u64 {
            self.injected += 1;
            Some(busy)
        } else {
            None
        }
    }

    /// True when this `RX_FIFO_INF` read should report a phantom frame.
    /// The schedule slot is consumed whether or not the phantom fires (a
    /// real frame pending at that read masks it), keeping counts seeded.
    pub(crate) fn spurious_rx(&mut self, really_pending: bool) -> bool {
        let idx = self.fifo_inf_reads;
        self.fifo_inf_reads += 1;
        match self.spurious_rx.get(self.next_spurious) {
            Some(&at) if at == idx => {
                self.next_spurious += 1;
                if really_pending {
                    false
                } else {
                    self.injected += 1;
                    true
                }
            }
            _ => false,
        }
    }

    /// The fault (if any) scheduled for the frame being injected now.
    pub(crate) fn frame_fault(&mut self) -> Option<FrameFault> {
        let idx = self.frames_seen;
        self.frames_seen += 1;
        match self.frame_faults.get(self.next_frame_fault) {
            Some(&(at, fault)) if at == idx => {
                self.next_frame_fault += 1;
                self.injected += 1;
                Some(fault)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultPlan::none().is_none());
        assert_eq!(FaultPlan::none().scheduled(), 0);
        assert!(!FaultPlan::none().wire_faults().is_active());
        assert!(!FaultPlan::none().lan_faults().is_active());
    }

    #[test]
    fn from_seed_is_deterministic() {
        for seed in 0..256u64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
    }

    #[test]
    fn schedules_are_sorted_and_bounded() {
        for seed in 0..512u64 {
            let p = FaultPlan::from_seed(seed);
            assert!(p.wire_garbage.windows(2).all(|w| w[0].0 <= w[1].0));
            assert!(p.rx_stalls.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(p.spurious_rx_reads.windows(2).all(|w| w[0] < w[1]));
            assert!(p.frame_faults.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(p.rx_stalls.iter().all(|(_, n)| *n <= MAX_STALL_READS));
            // At most one register fault, capped at two poll budgets, so
            // bounded retries always recover.
            let regs = [
                p.byte_test_junk_reads,
                p.hw_cfg_notready_reads,
                p.mac_busy_reads,
            ];
            assert!(regs.iter().filter(|r| **r != 0).count() <= 1);
            assert!(regs.iter().all(|r| *r <= 2 * INIT_POLL_BUDGET));
        }
    }

    #[test]
    fn stall_budget_counts_reads() {
        let plan = FaultPlan {
            rx_stalls: vec![(0, 3)],
            ..FaultPlan::default()
        };
        let mut w = plan.wire_faults();
        assert!(w.is_active());
        assert!(w.stall_read());
        assert!(w.stall_read());
        assert!(w.stall_read());
        assert!(!w.stall_read());
        assert_eq!(w.injected, 3);
    }

    #[test]
    fn garbage_composes_at_one_index() {
        let plan = FaultPlan {
            wire_garbage: vec![(1, 0x0F), (1, 0xF0)],
            ..FaultPlan::default()
        };
        let mut w = plan.wire_faults();
        assert_eq!(w.on_exchange(0x00), 0x00);
        assert_eq!(w.on_exchange(0x00), 0xFF);
        assert_eq!(w.on_exchange(0x00), 0x00);
    }
}

//! Seeded, deterministic fault injection for the device stack.
//!
//! The paper's driver proofs are stated against a *nondeterministic* device
//! spec: `lan_init`'s timeout loops exist because the LAN9250 is allowed to
//! answer `BYTE_TEST` with junk forever, and the correctness theorem only
//! promises good behaviour on traces the device spec admits (§3, §4.3).
//! Our executable models are normally maximally well-behaved, which leaves
//! every recovery path in the drivers untested. A [`FaultPlan`] closes that
//! gap: it is a pure-data schedule of device misbehaviour, derived from a
//! seed, that `Spi`/`Lan9250`/`Board` consult at well-defined points.
//!
//! Two properties are load-bearing:
//!
//! - **Determinism.** A plan is a function of its seed alone, and every
//!   trigger is keyed on an *interaction count* (the Nth completed wire
//!   exchange, the Nth byte actually delivered to the CPU, the Nth read of
//!   a specific register, the Nth injected frame) — never on device ticks
//!   or wall time. Interaction counts are reproducible run-to-run and
//!   shard-count-invariant, which is what lets `differential::fault_sweep`
//!   replay the same plan against the spec machine and the pipelined
//!   processor.
//! - **Zero cost when absent.** [`FaultPlan::none`] compiles down to a
//!   single `bool` test on the device hot paths, so the fault layer cannot
//!   regress the throughput numbers in `BENCH_spec_throughput.json`.

use obs::json::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// What happens to one injected Ethernet frame on its way into the RX FIFO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// The frame is silently lost (never enters the FIFO).
    Drop,
    /// Only the first `n` bytes arrive.
    Truncate(usize),
    /// One byte at `offset % len` is flipped with `xor`.
    Corrupt { offset: usize, xor: u8 },
}

/// A deterministic schedule of device misbehaviour.
///
/// All index fields are sorted ascending by their trigger count. The plan
/// is split into [`WireFaults`] (owned by the SPI controller) and
/// [`LanFaults`] (owned by the LAN9250 model) when a board is built with
/// [`crate::Board::with_faults`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed this plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// `BYTE_TEST` answers junk (`0xFFFF_FFFF`) for this many reads.
    pub byte_test_junk_reads: u32,
    /// `HW_CFG` reports not-ready for this many reads.
    pub hw_cfg_notready_reads: u32,
    /// `MAC_CSR_CMD` reports busy for this many reads.
    pub mac_busy_reads: u32,
    /// `RX_FIFO_INF` read indices that report a phantom pending frame
    /// (a spurious RX-pending flag with nothing behind it).
    pub spurious_rx_reads: Vec<u64>,
    /// `(exchange index, xor)`: the MISO byte of that completed wire
    /// exchange is corrupted. MOSI is never touched — the chip still sees
    /// what the driver sent.
    pub wire_garbage: Vec<(u64, u8)>,
    /// `(delivered-byte index, extra reads)`: once that many RX bytes have
    /// been delivered to the CPU, the next `extra reads` of `RXDATA` are
    /// forced empty (the controller stalls).
    pub rx_stalls: Vec<(u64, u32)>,
    /// `(injection index, fault)`: what happens to the Nth injected frame.
    pub frame_faults: Vec<(u64, FrameFault)>,
}

/// The `lan_init` per-phase poll budget is `layout::INIT_TIMEOUT + 1 = 65`
/// reads; register-fault magnitudes below are calibrated against it so a
/// plan forces at most two failed init attempts on one register, which a
/// driver with `LAN_INIT_RETRIES = 3` always survives.
const INIT_POLL_BUDGET: u32 = 65;

/// Longest stall a plan may schedule. Must stay below one full timed-out
/// pipelined readword (7 gets x 65 polls = 455 reads) so stalled bytes
/// never pile past the 8-deep RX FIFO and start dropping — drops would be
/// timing- (and therefore model-) dependent.
const MAX_STALL_READS: u32 = 400;

impl FaultPlan {
    /// The empty plan: no faults, and (via [`FaultPlan::is_none`]) a
    /// single-branch check on the device hot paths.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing at all.
    pub fn is_none(&self) -> bool {
        self.byte_test_junk_reads == 0
            && self.hw_cfg_notready_reads == 0
            && self.mac_busy_reads == 0
            && self.spurious_rx_reads.is_empty()
            && self.wire_garbage.is_empty()
            && self.rx_stalls.is_empty()
            && self.frame_faults.is_empty()
    }

    /// Total number of scheduled fault events (an upper bound on what a
    /// run can actually inject).
    pub fn scheduled(&self) -> u64 {
        (self.byte_test_junk_reads + self.hw_cfg_notready_reads + self.mac_busy_reads) as u64
            + self.spurious_rx_reads.len() as u64
            + self.wire_garbage.len() as u64
            + self.rx_stalls.iter().map(|(_, n)| *n as u64).sum::<u64>()
            + self.frame_faults.len() as u64
    }

    /// Derives a plan from a seed. Same seed ⇒ same plan, on every model.
    ///
    /// The distribution is calibrated so every plan is *recoverable* by the
    /// hardened drivers: at most one register gets a "hard" fault (longer
    /// than one poll budget, forcing failed init attempts), capped at two
    /// budgets' worth; stalls are bounded by [`MAX_STALL_READS`].
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };

        // One register misbehaves per plan: softly (absorbed by a single
        // poll loop) or hard (needs retry), or not at all.
        let soft = 1..=(INIT_POLL_BUDGET - 5);
        let hard = (INIT_POLL_BUDGET + 1)..=(2 * INIT_POLL_BUDGET);
        match rng.random_range(0..7u32) {
            0 => plan.byte_test_junk_reads = rng.random_range(soft),
            1 => plan.byte_test_junk_reads = rng.random_range(hard),
            2 => plan.hw_cfg_notready_reads = rng.random_range(soft),
            3 => plan.hw_cfg_notready_reads = rng.random_range(hard),
            4 => plan.mac_busy_reads = rng.random_range(soft),
            5 => plan.mac_busy_reads = rng.random_range(hard),
            _ => {}
        }

        // Transient MISO garbage on a few wire exchanges.
        for _ in 0..rng.random_range(0..=5u32) {
            plan.wire_garbage
                .push((rng.random_range(0..3000), rng.random_range(1..=255u8)));
        }
        plan.wire_garbage.sort_unstable();

        // At most two RX stalls, far enough apart that they never overlap
        // (a stall only arms after deliveries resume).
        for _ in 0..rng.random_range(0..=2u32) {
            plan.rx_stalls.push((
                rng.random_range(0..1200),
                rng.random_range(1..=MAX_STALL_READS),
            ));
        }
        plan.rx_stalls.sort_unstable();
        plan.rx_stalls.dedup_by_key(|(i, _)| *i);

        // Spurious RX-pending flags early in the run.
        for _ in 0..rng.random_range(0..=2u32) {
            plan.spurious_rx_reads.push(rng.random_range(0..80));
        }
        plan.spurious_rx_reads.sort_unstable();
        plan.spurious_rx_reads.dedup();

        // Frame-level faults on the first few injected frames.
        for idx in 0..4u64 {
            if rng.random_range(0..4u32) == 0 {
                let fault = match rng.random_range(0..3u32) {
                    0 => FrameFault::Drop,
                    1 => FrameFault::Truncate(rng.random_range(0..60)),
                    _ => FrameFault::Corrupt {
                        offset: rng.random_range(0..64),
                        xor: rng.random_range(1..=255u8),
                    },
                };
                plan.frame_faults.push((idx, fault));
            }
        }

        plan
    }

    /// Decomposes the plan into its independent triggers, in a canonical
    /// order (register faults first, then each scheduled list in field
    /// order). Every atom can be removed without disturbing the others —
    /// triggers are keyed on interaction counts the *drivers* produce, not
    /// on one another — which is what makes delta-debugging over sub-plans
    /// sound: `from_atoms` of any subset is a well-formed plan whose
    /// remaining triggers fire exactly as they did in the original.
    pub fn atoms(&self) -> Vec<FaultAtom> {
        let mut out = Vec::new();
        if self.byte_test_junk_reads != 0 {
            out.push(FaultAtom::ByteTestJunk(self.byte_test_junk_reads));
        }
        if self.hw_cfg_notready_reads != 0 {
            out.push(FaultAtom::HwCfgNotReady(self.hw_cfg_notready_reads));
        }
        if self.mac_busy_reads != 0 {
            out.push(FaultAtom::MacBusy(self.mac_busy_reads));
        }
        out.extend(
            self.spurious_rx_reads
                .iter()
                .map(|&i| FaultAtom::SpuriousRx(i)),
        );
        out.extend(
            self.wire_garbage
                .iter()
                .map(|&(i, x)| FaultAtom::WireGarbage(i, x)),
        );
        out.extend(
            self.rx_stalls
                .iter()
                .map(|&(i, n)| FaultAtom::RxStall(i, n)),
        );
        out.extend(
            self.frame_faults
                .iter()
                .map(|&(i, f)| FaultAtom::Frame(i, f)),
        );
        out
    }

    /// Recomposes a plan from a subset of another plan's [`FaultPlan::atoms`]
    /// (delta debugging's "apply this candidate"). Schedules are re-sorted
    /// into the field invariants (ascending trigger indices); duplicate
    /// register atoms keep the largest magnitude, and duplicate scheduled
    /// indices are dropped where the originating field dedups them.
    /// `from_atoms(p.seed, &p.atoms()) == p` holds for every seeded plan.
    pub fn from_atoms(seed: u64, atoms: &[FaultAtom]) -> FaultPlan {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        for atom in atoms {
            match *atom {
                FaultAtom::ByteTestJunk(n) => {
                    plan.byte_test_junk_reads = plan.byte_test_junk_reads.max(n)
                }
                FaultAtom::HwCfgNotReady(n) => {
                    plan.hw_cfg_notready_reads = plan.hw_cfg_notready_reads.max(n)
                }
                FaultAtom::MacBusy(n) => plan.mac_busy_reads = plan.mac_busy_reads.max(n),
                FaultAtom::SpuriousRx(i) => plan.spurious_rx_reads.push(i),
                FaultAtom::WireGarbage(i, x) => plan.wire_garbage.push((i, x)),
                FaultAtom::RxStall(i, n) => plan.rx_stalls.push((i, n)),
                FaultAtom::Frame(i, f) => plan.frame_faults.push((i, f)),
            }
        }
        plan.spurious_rx_reads.sort_unstable();
        plan.spurious_rx_reads.dedup();
        plan.wire_garbage.sort_unstable();
        plan.rx_stalls.sort_unstable();
        plan.rx_stalls.dedup_by_key(|(i, _)| *i);
        plan.frame_faults.sort_by_key(|(i, _)| *i);
        plan
    }

    /// Serializes the plan as a dependency-free JSON object (the format
    /// triage artifacts and `fault_sweep --replay-plan` exchange).
    pub fn to_json(&self) -> Value {
        let pair = |a: u64, b: u64| Value::Arr(vec![Value::UInt(a), Value::UInt(b)]);
        let frame = |(at, fault): &(u64, FrameFault)| {
            let obj = Value::obj().field("at", Value::UInt(*at));
            match fault {
                FrameFault::Drop => obj.field("kind", Value::Str("drop".into())),
                FrameFault::Truncate(n) => obj
                    .field("kind", Value::Str("truncate".into()))
                    .field("len", Value::UInt(*n as u64)),
                FrameFault::Corrupt { offset, xor } => obj
                    .field("kind", Value::Str("corrupt".into()))
                    .field("offset", Value::UInt(*offset as u64))
                    .field("xor", Value::UInt(*xor as u64)),
            }
        };
        Value::obj()
            .field("seed", Value::UInt(self.seed))
            .field(
                "byte_test_junk_reads",
                Value::UInt(self.byte_test_junk_reads as u64),
            )
            .field(
                "hw_cfg_notready_reads",
                Value::UInt(self.hw_cfg_notready_reads as u64),
            )
            .field("mac_busy_reads", Value::UInt(self.mac_busy_reads as u64))
            .field(
                "spurious_rx_reads",
                Value::Arr(
                    self.spurious_rx_reads
                        .iter()
                        .map(|&i| Value::UInt(i))
                        .collect(),
                ),
            )
            .field(
                "wire_garbage",
                Value::Arr(
                    self.wire_garbage
                        .iter()
                        .map(|&(i, x)| pair(i, x as u64))
                        .collect(),
                ),
            )
            .field(
                "rx_stalls",
                Value::Arr(
                    self.rx_stalls
                        .iter()
                        .map(|&(i, n)| pair(i, n as u64))
                        .collect(),
                ),
            )
            .field(
                "frame_faults",
                Value::Arr(self.frame_faults.iter().map(frame).collect()),
            )
    }

    /// Parses a plan back from [`FaultPlan::to_json`] output.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed field.
    pub fn from_json(v: &Value) -> Result<FaultPlan, String> {
        fn uint(v: &Value, field: &str) -> Result<u64, String> {
            match v.get(field) {
                Some(&Value::UInt(n)) => Ok(n),
                other => Err(format!(
                    "fault plan field {field}: expected uint, got {other:?}"
                )),
            }
        }
        fn uint_of(v: &Value, what: &str) -> Result<u64, String> {
            match v {
                Value::UInt(n) => Ok(*n),
                other => Err(format!("{what}: expected uint, got {other:?}")),
            }
        }
        fn arr<'a>(v: &'a Value, field: &str) -> Result<&'a [Value], String> {
            v.get(field)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("fault plan field {field}: expected array"))
        }
        fn pairs(v: &Value, field: &str) -> Result<Vec<(u64, u64)>, String> {
            arr(v, field)?
                .iter()
                .map(|p| match p.as_arr() {
                    Some([a, b]) => Ok((uint_of(a, field)?, uint_of(b, field)?)),
                    _ => Err(format!("fault plan field {field}: expected [uint, uint]")),
                })
                .collect()
        }
        let mut plan = FaultPlan {
            seed: uint(v, "seed")?,
            byte_test_junk_reads: uint(v, "byte_test_junk_reads")? as u32,
            hw_cfg_notready_reads: uint(v, "hw_cfg_notready_reads")? as u32,
            mac_busy_reads: uint(v, "mac_busy_reads")? as u32,
            ..FaultPlan::default()
        };
        for i in arr(v, "spurious_rx_reads")? {
            plan.spurious_rx_reads
                .push(uint_of(i, "spurious_rx_reads")?);
        }
        for (i, x) in pairs(v, "wire_garbage")? {
            plan.wire_garbage.push((i, x as u8));
        }
        for (i, n) in pairs(v, "rx_stalls")? {
            plan.rx_stalls.push((i, n as u32));
        }
        for f in arr(v, "frame_faults")? {
            let at = uint(f, "at")?;
            let fault = match f.get("kind").and_then(Value::as_str) {
                Some("drop") => FrameFault::Drop,
                Some("truncate") => FrameFault::Truncate(uint(f, "len")? as usize),
                Some("corrupt") => FrameFault::Corrupt {
                    offset: uint(f, "offset")? as usize,
                    xor: uint(f, "xor")? as u8,
                },
                other => return Err(format!("frame fault kind: {other:?}")),
            };
            plan.frame_faults.push((at, fault));
        }
        Ok(plan)
    }

    /// The wire-level half of the plan, for the SPI controller.
    pub(crate) fn wire_faults(&self) -> WireFaults {
        WireFaults {
            active: !self.wire_garbage.is_empty() || !self.rx_stalls.is_empty(),
            garbage: self.wire_garbage.clone(),
            stalls: self.rx_stalls.clone(),
            next_garbage: 0,
            next_stall: 0,
            stall_left: 0,
            exchanges: 0,
            delivered: 0,
            injected: 0,
        }
        .armed()
    }

    /// The chip-level half of the plan, for the LAN9250 model.
    pub(crate) fn lan_faults(&self) -> LanFaults {
        LanFaults {
            active: self.byte_test_junk_reads != 0
                || self.hw_cfg_notready_reads != 0
                || self.mac_busy_reads != 0
                || !self.spurious_rx_reads.is_empty()
                || !self.frame_faults.is_empty(),
            byte_test_junk: self.byte_test_junk_reads,
            hw_cfg_notready: self.hw_cfg_notready_reads,
            mac_busy: self.mac_busy_reads,
            spurious_rx: self.spurious_rx_reads.clone(),
            frame_faults: self.frame_faults.clone(),
            next_spurious: 0,
            next_frame_fault: 0,
            byte_test_reads: 0,
            hw_cfg_reads: 0,
            mac_cmd_reads: 0,
            fifo_inf_reads: 0,
            frames_seen: 0,
            injected: 0,
        }
    }
}

/// One independently removable trigger of a [`FaultPlan`] — the unit the
/// triage minimizer subsets over ([`FaultPlan::atoms`] /
/// [`FaultPlan::from_atoms`]). A register fault is one atom carrying its
/// whole magnitude; scheduled lists contribute one atom per entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAtom {
    /// `BYTE_TEST` answers junk for this many reads.
    ByteTestJunk(u32),
    /// `HW_CFG` reports not-ready for this many reads.
    HwCfgNotReady(u32),
    /// `MAC_CSR_CMD` reports busy for this many reads.
    MacBusy(u32),
    /// A phantom RX-pending flag at this `RX_FIFO_INF` read index.
    SpuriousRx(u64),
    /// `(exchange index, xor)` MISO corruption.
    WireGarbage(u64, u8),
    /// `(delivered-byte index, forced-empty reads)` RX stall.
    RxStall(u64, u32),
    /// `(injection index, fault)` frame-level fault.
    Frame(u64, FrameFault),
}

/// Runtime state for the wire-level faults, owned by [`crate::Spi`].
#[derive(Clone, Debug)]
pub(crate) struct WireFaults {
    active: bool,
    garbage: Vec<(u64, u8)>,
    stalls: Vec<(u64, u32)>,
    next_garbage: usize,
    next_stall: usize,
    stall_left: u32,
    exchanges: u64,
    delivered: u64,
    /// Fault events actually injected so far.
    pub(crate) injected: u64,
}

impl WireFaults {
    /// True when any wire fault is scheduled; the *only* check on the SPI
    /// hot paths.
    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        self.active
    }

    /// Arms a stall scheduled at delivered-index 0 (before any delivery).
    fn armed(mut self) -> WireFaults {
        self.check_arm();
        self
    }

    fn check_arm(&mut self) {
        if let Some((at, reads)) = self.stalls.get(self.next_stall).copied() {
            if at == self.delivered {
                self.stall_left = reads;
                self.next_stall += 1;
            }
        }
    }

    /// Filters the MISO byte of a completed exchange. Called once per
    /// exchange, in wire order, so the exchange index is model-invariant.
    pub(crate) fn on_exchange(&mut self, miso: u8) -> u8 {
        let idx = self.exchanges;
        self.exchanges += 1;
        let mut out = miso;
        while let Some((at, xor)) = self.garbage.get(self.next_garbage).copied() {
            if at != idx {
                break;
            }
            out ^= xor;
            self.next_garbage += 1;
            self.injected += 1;
        }
        out
    }

    /// True when a stall forces this `RXDATA` read to come back empty
    /// regardless of FIFO contents. Each forced read consumes stall budget,
    /// so consumption is keyed on reads-while-stalled — identical across
    /// models because no model can pop a byte while the stall holds.
    pub(crate) fn stall_read(&mut self) -> bool {
        if self.stall_left > 0 {
            self.stall_left -= 1;
            self.injected += 1;
            true
        } else {
            false
        }
    }

    /// Records a byte actually delivered to the CPU and arms any stall
    /// scheduled at the new delivered count.
    pub(crate) fn on_delivered(&mut self) {
        self.delivered += 1;
        self.check_arm();
    }
}

/// Runtime state for the chip-level faults, owned by [`crate::Lan9250`].
#[derive(Clone, Debug)]
pub(crate) struct LanFaults {
    active: bool,
    byte_test_junk: u32,
    hw_cfg_notready: u32,
    mac_busy: u32,
    spurious_rx: Vec<u64>,
    frame_faults: Vec<(u64, FrameFault)>,
    next_spurious: usize,
    next_frame_fault: usize,
    byte_test_reads: u64,
    hw_cfg_reads: u64,
    mac_cmd_reads: u64,
    fifo_inf_reads: u64,
    frames_seen: u64,
    /// Fault events actually injected so far.
    pub(crate) injected: u64,
}

impl LanFaults {
    /// True when any chip fault is scheduled; the *only* check on the
    /// register-read hot path.
    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        self.active
    }

    /// `Some(junk)` when this `BYTE_TEST` read is still in the junk window.
    pub(crate) fn byte_test(&mut self) -> Option<u32> {
        self.byte_test_reads += 1;
        if self.byte_test_reads <= self.byte_test_junk as u64 {
            self.injected += 1;
            Some(0xFFFF_FFFF)
        } else {
            None
        }
    }

    /// `Some(0)` when this `HW_CFG` read still reports not-ready.
    pub(crate) fn hw_cfg(&mut self) -> Option<u32> {
        self.hw_cfg_reads += 1;
        if self.hw_cfg_reads <= self.hw_cfg_notready as u64 {
            self.injected += 1;
            Some(0)
        } else {
            None
        }
    }

    /// `Some(busy)` when this `MAC_CSR_CMD` read still reports busy.
    pub(crate) fn mac_csr_cmd(&mut self, busy: u32) -> Option<u32> {
        self.mac_cmd_reads += 1;
        if self.mac_cmd_reads <= self.mac_busy as u64 {
            self.injected += 1;
            Some(busy)
        } else {
            None
        }
    }

    /// True when this `RX_FIFO_INF` read should report a phantom frame.
    /// The schedule slot is consumed whether or not the phantom fires (a
    /// real frame pending at that read masks it), keeping counts seeded.
    pub(crate) fn spurious_rx(&mut self, really_pending: bool) -> bool {
        let idx = self.fifo_inf_reads;
        self.fifo_inf_reads += 1;
        match self.spurious_rx.get(self.next_spurious) {
            Some(&at) if at == idx => {
                self.next_spurious += 1;
                if really_pending {
                    false
                } else {
                    self.injected += 1;
                    true
                }
            }
            _ => false,
        }
    }

    /// The fault (if any) scheduled for the frame being injected now.
    pub(crate) fn frame_fault(&mut self) -> Option<FrameFault> {
        let idx = self.frames_seen;
        self.frames_seen += 1;
        match self.frame_faults.get(self.next_frame_fault) {
            Some(&(at, fault)) if at == idx => {
                self.next_frame_fault += 1;
                self.injected += 1;
                Some(fault)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultPlan::none().is_none());
        assert_eq!(FaultPlan::none().scheduled(), 0);
        assert!(!FaultPlan::none().wire_faults().is_active());
        assert!(!FaultPlan::none().lan_faults().is_active());
    }

    #[test]
    fn from_seed_is_deterministic() {
        for seed in 0..256u64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
    }

    #[test]
    fn schedules_are_sorted_and_bounded() {
        for seed in 0..512u64 {
            let p = FaultPlan::from_seed(seed);
            assert!(p.wire_garbage.windows(2).all(|w| w[0].0 <= w[1].0));
            assert!(p.rx_stalls.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(p.spurious_rx_reads.windows(2).all(|w| w[0] < w[1]));
            assert!(p.frame_faults.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(p.rx_stalls.iter().all(|(_, n)| *n <= MAX_STALL_READS));
            // At most one register fault, capped at two poll budgets, so
            // bounded retries always recover.
            let regs = [
                p.byte_test_junk_reads,
                p.hw_cfg_notready_reads,
                p.mac_busy_reads,
            ];
            assert!(regs.iter().filter(|r| **r != 0).count() <= 1);
            assert!(regs.iter().all(|r| *r <= 2 * INIT_POLL_BUDGET));
        }
    }

    #[test]
    fn stall_budget_counts_reads() {
        let plan = FaultPlan {
            rx_stalls: vec![(0, 3)],
            ..FaultPlan::default()
        };
        let mut w = plan.wire_faults();
        assert!(w.is_active());
        assert!(w.stall_read());
        assert!(w.stall_read());
        assert!(w.stall_read());
        assert!(!w.stall_read());
        assert_eq!(w.injected, 3);
    }

    #[test]
    fn atoms_round_trip_for_seeded_plans() {
        for seed in 0..512u64 {
            let p = FaultPlan::from_seed(seed);
            let atoms = p.atoms();
            assert!(!atoms.is_empty() || p.is_none());
            assert_eq!(FaultPlan::from_atoms(p.seed, &atoms), p, "seed {seed}");
        }
    }

    #[test]
    fn from_atoms_of_a_subset_is_a_sub_plan() {
        let p = FaultPlan::from_seed(42);
        let atoms = p.atoms();
        for skip in 0..atoms.len() {
            let subset: Vec<FaultAtom> = atoms
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, a)| *a)
                .collect();
            let sub = FaultPlan::from_atoms(p.seed, &subset);
            assert_eq!(sub.atoms(), subset, "subsets re-decompose to themselves");
            assert!(sub.scheduled() <= p.scheduled());
        }
    }

    #[test]
    fn json_round_trips_seeded_and_hand_plans() {
        let hand = FaultPlan {
            seed: 7,
            byte_test_junk_reads: 3,
            frame_faults: vec![
                (0, FrameFault::Drop),
                (1, FrameFault::Truncate(9)),
                (
                    2,
                    FrameFault::Corrupt {
                        offset: 5,
                        xor: 0xA5,
                    },
                ),
            ],
            rx_stalls: vec![(10, 20)],
            wire_garbage: vec![(3, 0xFF)],
            spurious_rx_reads: vec![1, 2],
            ..FaultPlan::default()
        };
        for p in (0..64).map(FaultPlan::from_seed).chain([hand]) {
            let text = p.to_json().render();
            let back = FaultPlan::from_json(&obs::json::parse(&text).expect("valid JSON"))
                .expect("plan parses back");
            assert_eq!(back, p);
        }
    }

    #[test]
    fn garbage_composes_at_one_index() {
        let plan = FaultPlan {
            wire_garbage: vec![(1, 0x0F), (1, 0xF0)],
            ..FaultPlan::default()
        };
        let mut w = plan.wire_faults();
        assert_eq!(w.on_exchange(0x00), 0x00);
        assert_eq!(w.on_exchange(0x00), 0xFF);
        assert_eq!(w.on_exchange(0x00), 0x00);
    }
}

//! Ethernet/IPv4/UDP frame building and parsing.
//!
//! The builder produces the frames the traffic generator injects into the
//! LAN9250 model; the parser is the *reference* validator the lightbulb
//! driver's hand-rolled byte checks are tested against (the driver itself,
//! like the paper's, uses a deliberately simple and lax notion of a valid
//! packet — see the `lightbulb` crate).

use std::fmt;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// Ethernet + IPv4 + UDP header bytes before the payload.
pub const HEADERS_LEN: usize = 14 + 20 + 8;

/// Everything needed to build a UDP-in-IPv4-in-Ethernet frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameSpec {
    /// Destination MAC.
    pub dst_mac: [u8; 6],
    /// Source MAC.
    pub src_mac: [u8; 6],
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// UDP payload.
    pub payload: Vec<u8>,
}

impl Default for FrameSpec {
    fn default() -> FrameSpec {
        FrameSpec {
            dst_mac: [0x02, 0, 0, 0, 0, 0x01],
            src_mac: [0x02, 0, 0, 0, 0, 0x02],
            src_ip: [10, 0, 0, 2],
            dst_ip: [10, 0, 0, 1],
            src_port: 51000,
            dst_port: 4040,
            payload: Vec::new(),
        }
    }
}

/// RFC 1071 ones'-complement checksum over 16-bit words.
pub fn internet_checksum(bytes: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in bytes.chunks(2) {
        let word = (chunk[0] as u32) << 8 | chunk.get(1).copied().unwrap_or(0) as u32;
        sum += word;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Builds a complete frame from a [`FrameSpec`].
pub fn build_udp_frame(spec: &FrameSpec) -> Vec<u8> {
    let ip_len = 20 + 8 + spec.payload.len();
    let udp_len = 8 + spec.payload.len();
    let mut f = Vec::with_capacity(14 + ip_len);
    // Ethernet header.
    f.extend_from_slice(&spec.dst_mac);
    f.extend_from_slice(&spec.src_mac);
    f.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
    // IPv4 header.
    let ip_start = f.len();
    f.push(0x45); // version 4, IHL 5
    f.push(0); // DSCP/ECN
    f.extend_from_slice(&(ip_len as u16).to_be_bytes());
    f.extend_from_slice(&[0, 0]); // identification
    f.extend_from_slice(&[0x40, 0]); // don't fragment
    f.push(64); // TTL
    f.push(PROTO_UDP);
    f.extend_from_slice(&[0, 0]); // checksum placeholder
    f.extend_from_slice(&spec.src_ip);
    f.extend_from_slice(&spec.dst_ip);
    let csum = internet_checksum(&f[ip_start..ip_start + 20]);
    f[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());
    // UDP header (checksum 0 = none, legal for IPv4).
    f.extend_from_slice(&spec.src_port.to_be_bytes());
    f.extend_from_slice(&spec.dst_port.to_be_bytes());
    f.extend_from_slice(&(udp_len as u16).to_be_bytes());
    f.extend_from_slice(&[0, 0]);
    f.extend_from_slice(&spec.payload);
    f
}

/// Why a frame failed to parse as UDP-in-IPv4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Shorter than the three headers.
    TooShort,
    /// EtherType is not IPv4.
    NotIpv4,
    /// IP version/IHL field is not the plain `0x45`.
    BadIpHeader,
    /// Bad IPv4 header checksum.
    BadChecksum,
    /// IP protocol is not UDP.
    NotUdp,
    /// Lengths in the headers disagree with the frame.
    LengthMismatch,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseError::TooShort => "frame too short",
            ParseError::NotIpv4 => "not IPv4",
            ParseError::BadIpHeader => "unsupported IP header",
            ParseError::BadChecksum => "bad IPv4 checksum",
            ParseError::NotUdp => "not UDP",
            ParseError::LengthMismatch => "header lengths disagree with frame",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// A successfully parsed frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedUdp {
    /// UDP destination port.
    pub dst_port: u16,
    /// UDP source port.
    pub src_port: u16,
    /// The UDP payload.
    pub payload: Vec<u8>,
}

/// Strictly parses a frame as UDP-in-IPv4-in-Ethernet.
///
/// # Errors
///
/// The first [`ParseError`] encountered, outermost layer first.
pub fn parse_udp_frame(frame: &[u8]) -> Result<ParsedUdp, ParseError> {
    if frame.len() < HEADERS_LEN {
        return Err(ParseError::TooShort);
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return Err(ParseError::NotIpv4);
    }
    let ip = &frame[14..];
    if ip[0] != 0x45 {
        return Err(ParseError::BadIpHeader);
    }
    if internet_checksum(&ip[..20]) != 0 {
        return Err(ParseError::BadChecksum);
    }
    if ip[9] != PROTO_UDP {
        return Err(ParseError::NotUdp);
    }
    let ip_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if ip_len < 28 || 14 + ip_len > frame.len() {
        return Err(ParseError::LengthMismatch);
    }
    let udp = &ip[20..];
    let udp_len = u16::from_be_bytes([udp[4], udp[5]]) as usize;
    if udp_len < 8 || udp_len != ip_len - 20 {
        return Err(ParseError::LengthMismatch);
    }
    Ok(ParsedUdp {
        src_port: u16::from_be_bytes([udp[0], udp[1]]),
        dst_port: u16::from_be_bytes([udp[2], udp[3]]),
        payload: udp[8..udp_len].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parse_roundtrip() {
        let spec = FrameSpec {
            payload: vec![1, 0xAB, 0xCD],
            ..FrameSpec::default()
        };
        let frame = build_udp_frame(&spec);
        assert_eq!(frame.len(), HEADERS_LEN + 3);
        let parsed = parse_udp_frame(&frame).unwrap();
        assert_eq!(parsed.dst_port, 4040);
        assert_eq!(parsed.payload, vec![1, 0xAB, 0xCD]);
    }

    #[test]
    fn checksum_self_verifies() {
        let frame = build_udp_frame(&FrameSpec::default());
        assert_eq!(internet_checksum(&frame[14..34]), 0);
    }

    #[test]
    fn known_checksum_vector() {
        // Example from RFC 1071 discussions.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn rejects_each_layer() {
        let good = build_udp_frame(&FrameSpec {
            payload: vec![1],
            ..FrameSpec::default()
        });

        assert_eq!(parse_udp_frame(&good[..20]), Err(ParseError::TooShort));

        let mut bad = good.clone();
        bad[12] = 0x86; // IPv6 ethertype
        assert_eq!(parse_udp_frame(&bad), Err(ParseError::NotIpv4));

        let mut bad = good.clone();
        bad[14] = 0x46; // IHL 6
        assert_eq!(parse_udp_frame(&bad), Err(ParseError::BadIpHeader));

        let mut bad = good.clone();
        bad[30] ^= 0xFF; // corrupt source IP → checksum fails
        assert_eq!(parse_udp_frame(&bad), Err(ParseError::BadChecksum));

        let mut bad = good.clone();
        bad[23] = 6; // TCP
                     // Fix the checksum so the protocol check is what fires.
        bad[24..26].copy_from_slice(&[0, 0]);
        let c = internet_checksum(&bad[14..34]);
        bad[24..26].copy_from_slice(&c.to_be_bytes());
        assert_eq!(parse_udp_frame(&bad), Err(ParseError::NotUdp));

        let mut bad = good.clone();
        bad[38..40].copy_from_slice(&100u16.to_be_bytes()); // UDP len lies
        assert_eq!(parse_udp_frame(&bad), Err(ParseError::LengthMismatch));
    }

    #[test]
    fn odd_length_checksum() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00);
    }
}

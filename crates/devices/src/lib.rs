//! Peripheral models for the verified-lightbulb platform.
//!
//! The paper's demo system (Figure 2) connects the FPGA to a LAN9250
//! Ethernet controller over SPI and to a power switch over GPIO; the
//! SPI/GPIO register interfaces replicate the commercial FE310
//! microcontroller's so hardware and software could be tested separately
//! against off-the-shelf parts (§5.1). This crate provides the simulated
//! equivalents:
//!
//! * [`spi`] — an FE310-flavored SPI controller with TX/RX queues exposed
//!   over MMIO and a pluggable [`spi::SpiSlave`] on the other side;
//! * [`gpio`] — the output port driving the lightbulb's power switch;
//! * [`lan9250`] — a register-level model of the LAN9250: SPI command
//!   framing, `BYTE_TEST`/`HW_CFG` bring-up, MAC CSR indirection, RX
//!   status/data FIFOs, and frame injection for tests;
//! * [`ethernet`] — Ethernet/IPv4/UDP frame building and parsing;
//! * [`workload`] — traffic generation: valid lightbulb commands and
//!   frames malformed at every layer (the packets the end-to-end theorem
//!   says are *ignored*, no matter how malicious);
//! * [`bus`] — the [`Board`]: both peripherals behind one
//!   [`riscv_spec::MmioHandler`], pluggable into every machine model in
//!   the workspace;
//! * [`faults`] — a seeded, deterministic [`FaultPlan`] of device
//!   misbehaviour (delayed readiness, wire garbage, RX stalls, frame
//!   drops/truncation/corruption), threaded through SPI, LAN9250 and
//!   [`Board`] behind a zero-cost default.

pub mod bus;
pub mod ethernet;
pub mod faults;
pub mod gpio;
pub mod lan9250;
pub mod spi;
pub mod workload;

pub use bus::{Board, GPIO_BASE, SPI_BASE};
pub use ethernet::{build_udp_frame, parse_udp_frame, FrameSpec, ParseError, ParsedUdp};
pub use faults::{FaultAtom, FaultPlan, FrameFault};
pub use gpio::Gpio;
pub use lan9250::Lan9250;
pub use spi::{Spi, SpiConfig, SpiSlave, SpiStats};
pub use workload::{Malformation, TrafficGen};

//! A register-level model of the LAN9250 Ethernet controller.
//!
//! The LAN9250's API is "a range of SPI-accessible address space where
//! reads and writes to different addresses correspond to different
//! operations" (§5.1). This model implements the slice of that address
//! space the lightbulb stack uses:
//!
//! * command framing over SPI: a `0x03` (read) or `0x02` (write) command
//!   byte, a 16-bit big-endian address, then data bytes, little-endian
//!   within each 32-bit register, auto-incrementing across registers
//!   (except the RX data FIFO, which streams);
//! * bring-up: `BYTE_TEST` reads `0x87654321` once the chip answers, and
//!   `HW_CFG` advertises READY after a power-up delay — the "incantations
//!   mandated by the Ethernet controller" that `BootSeq` describes (§3.1);
//! * MAC CSR indirection (`MAC_CSR_CMD`/`MAC_CSR_DATA`) used to enable
//!   packet reception;
//! * the RX path: `RX_FIFO_INF` advertises queued frames,
//!   `RX_STATUS_FIFO` pops a frame's status word (length in bits 16–29),
//!   `RX_DATA_FIFO` streams its bytes, and `RX_DP_CTRL` can discard the
//!   remainder (how the driver skips oversized frames *without* copying
//!   them into its fixed buffer — the overrun the paper's initial
//!   prototype got wrong).
//!
//! Tests inject frames with [`Lan9250::inject_frame`]; nothing is visible
//! to software until the MAC's receive enable is set.

use crate::faults::{FaultPlan, FrameFault, LanFaults};
use crate::spi::SpiSlave;
use std::collections::VecDeque;

/// RX data FIFO (streaming; no auto-increment).
pub const RX_DATA_FIFO: u16 = 0x00;
/// RX status FIFO: pops the next frame's status word.
pub const RX_STATUS_FIFO: u16 = 0x40;
/// Endianness/liveness test register.
pub const BYTE_TEST: u16 = 0x64;
/// Hardware configuration; bit 27 = READY.
pub const HW_CFG: u16 = 0x74;
/// RX FIFO information: status words used (bits 16–23).
pub const RX_FIFO_INF: u16 = 0x7C;
/// MAC CSR command register.
pub const MAC_CSR_CMD: u16 = 0xA4;
/// MAC CSR data register.
pub const MAC_CSR_DATA: u16 = 0xA8;
/// RX datapath control; bit 31 discards the current frame.
pub const RX_DP_CTRL: u16 = 0xB4;

/// The value `BYTE_TEST` always reads.
pub const BYTE_TEST_MAGIC: u32 = 0x8765_4321;
/// READY bit in `HW_CFG`.
pub const HW_CFG_READY: u32 = 1 << 27;
/// Busy/strobe bit in `MAC_CSR_CMD`.
pub const MAC_CSR_BUSY: u32 = 1 << 31;
/// Read (vs write) bit in `MAC_CSR_CMD`.
pub const MAC_CSR_READ: u32 = 1 << 30;
/// Index of the MAC control register in the CSR space.
pub const MAC_CR: u32 = 1;
/// Receive-enable bit in `MAC_CR`.
pub const MAC_CR_RXEN: u32 = 1 << 2;
/// Discard bit in `RX_DP_CTRL`.
pub const RX_DP_DISCARD: u32 = 1 << 31;

/// SPI read command byte.
pub const CMD_READ: u8 = 0x03;
/// SPI write command byte.
pub const CMD_WRITE: u8 = 0x02;

#[derive(Clone, Debug)]
enum SpiState {
    Idle,
    Addr1 { write: bool },
    Addr2 { write: bool, hi: u8 },
    Read { addr: u16, lane: u32, latch: u32 },
    Write { addr: u16, lane: u32, acc: u32 },
}

/// The LAN9250 model.
#[derive(Clone, Debug)]
pub struct Lan9250 {
    state: SpiState,
    ready_countdown: u32,
    mac: [u32; 16],
    csr_data: u32,
    pending: VecDeque<Vec<u8>>,
    current: VecDeque<u8>,
    /// Frames handed over to software (fully read or discarded).
    pub frames_delivered: u64,
    /// Frames discarded via `RX_DP_CTRL`.
    pub frames_discarded: u64,
    faults: LanFaults,
}

impl Default for Lan9250 {
    fn default() -> Lan9250 {
        Lan9250::new()
    }
}

impl Lan9250 {
    /// A powered-up controller that becomes READY after a short delay.
    pub fn new() -> Lan9250 {
        Lan9250::with_faults(&FaultPlan::none())
    }

    /// A controller that injects the chip-level half of `plan`: delayed
    /// register readiness, spurious RX-pending flags, and frame-level
    /// faults. With [`FaultPlan::none`] this is exactly [`Lan9250::new`].
    pub fn with_faults(plan: &FaultPlan) -> Lan9250 {
        Lan9250 {
            state: SpiState::Idle,
            ready_countdown: 16,
            mac: [0; 16],
            csr_data: 0,
            pending: VecDeque::new(),
            current: VecDeque::new(),
            frames_delivered: 0,
            frames_discarded: 0,
            faults: plan.lan_faults(),
        }
    }

    /// Chip-level fault events injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.injected
    }

    /// Queues an Ethernet frame for reception. It becomes visible to
    /// software once the MAC receive enable is on. A scheduled frame fault
    /// may drop, truncate, or corrupt it on the way in.
    pub fn inject_frame(&mut self, frame: &[u8]) {
        if self.faults.is_active() {
            match self.faults.frame_fault() {
                Some(FrameFault::Drop) => return,
                Some(FrameFault::Truncate(n)) => {
                    self.pending.push_back(frame[..n.min(frame.len())].to_vec());
                    return;
                }
                Some(FrameFault::Corrupt { offset, xor }) => {
                    let mut bytes = frame.to_vec();
                    if !bytes.is_empty() {
                        let at = offset % bytes.len();
                        bytes[at] ^= xor;
                    }
                    self.pending.push_back(bytes);
                    return;
                }
                None => {}
            }
        }
        self.pending.push_back(frame.to_vec());
    }

    /// True once software has enabled reception via the MAC CSRs.
    pub fn rx_enabled(&self) -> bool {
        self.mac[MAC_CR as usize] & MAC_CR_RXEN != 0
    }

    /// Frames queued but not yet handed to software.
    pub fn frames_pending(&self) -> usize {
        self.pending.len()
    }

    /// Scheduled register-read faults; `Some(v)` overrides the true value.
    /// Per-register read counts advance here, so fault windows are keyed on
    /// how often software looked — identical across machine models.
    fn fault_reg_read(&mut self, addr: u16) -> Option<u32> {
        match addr {
            BYTE_TEST => self.faults.byte_test(),
            HW_CFG => self.faults.hw_cfg(),
            MAC_CSR_CMD => self.faults.mac_csr_cmd(MAC_CSR_BUSY),
            RX_FIFO_INF => {
                let really_pending = !self.pending.is_empty();
                if self.faults.spurious_rx(really_pending) {
                    // Phantom frame: one status word advertised, no data.
                    Some(1 << 16 | (self.current.len() as u32 & 0xFFFF))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn reg_read(&mut self, addr: u16) -> u32 {
        if self.faults.is_active() {
            if let Some(v) = self.fault_reg_read(addr) {
                return v;
            }
        }
        match addr {
            RX_STATUS_FIFO => {
                if !self.rx_enabled() {
                    return 0;
                }
                match self.pending.pop_front() {
                    Some(frame) => {
                        let len = frame.len() as u32;
                        self.current = frame.into();
                        // Pad the data FIFO to a word multiple.
                        while !self.current.len().is_multiple_of(4) {
                            self.current.push_back(0);
                        }
                        self.frames_delivered += 1;
                        (len & 0x3FFF) << 16
                    }
                    None => 0,
                }
            }
            BYTE_TEST => {
                if self.ready_countdown == 0 {
                    BYTE_TEST_MAGIC
                } else {
                    0xFFFF_FFFF // bus not ready: reads float
                }
            }
            HW_CFG if self.ready_countdown == 0 => HW_CFG_READY,
            RX_FIFO_INF if self.rx_enabled() => {
                ((self.pending.len() as u32) & 0xFF) << 16 | (self.current.len() as u32 & 0xFFFF)
            }
            MAC_CSR_CMD => 0, // commands complete immediately: never busy
            MAC_CSR_DATA => self.csr_data,
            _ => 0,
        }
    }

    fn reg_write(&mut self, addr: u16, value: u32) {
        match addr {
            MAC_CSR_DATA => self.csr_data = value,
            MAC_CSR_CMD if value & MAC_CSR_BUSY != 0 => {
                let idx = (value & 0xF) as usize;
                if value & MAC_CSR_READ != 0 {
                    self.csr_data = self.mac[idx];
                } else {
                    self.mac[idx] = self.csr_data;
                }
            }
            RX_DP_CTRL if value & RX_DP_DISCARD != 0 && !self.current.is_empty() => {
                self.current.clear();
                self.frames_discarded += 1;
            }
            _ => {}
        }
    }

    fn data_fifo_pop(&mut self) -> u8 {
        self.current.pop_front().unwrap_or(0)
    }
}

impl SpiSlave for Lan9250 {
    fn exchange(&mut self, mosi: u8) -> u8 {
        match self.state.clone() {
            SpiState::Idle => {
                match mosi {
                    CMD_READ => self.state = SpiState::Addr1 { write: false },
                    CMD_WRITE => self.state = SpiState::Addr1 { write: true },
                    _ => {} // unknown command: ignored until CS toggles
                }
                0xFF
            }
            SpiState::Addr1 { write } => {
                self.state = SpiState::Addr2 { write, hi: mosi };
                0xFF
            }
            SpiState::Addr2 { write, hi } => {
                let addr = (hi as u16) << 8 | mosi as u16;
                self.state = if write {
                    SpiState::Write {
                        addr,
                        lane: 0,
                        acc: 0,
                    }
                } else {
                    SpiState::Read {
                        addr,
                        lane: 0,
                        latch: 0,
                    }
                };
                0xFF
            }
            SpiState::Read { addr, lane, latch } => {
                if addr == RX_DATA_FIFO {
                    // Streaming: one fresh byte per exchange, no
                    // auto-increment.
                    let byte = self.data_fifo_pop();
                    self.state = SpiState::Read {
                        addr,
                        lane: 0,
                        latch: 0,
                    };
                    byte
                } else {
                    // Latch the word at the first byte so all four lanes
                    // come from one coherent register read.
                    let word = if lane == 0 {
                        self.reg_read(addr)
                    } else {
                        latch
                    };
                    let byte = (word >> (8 * lane) & 0xFF) as u8;
                    let next_lane = (lane + 1) % 4;
                    let next_addr = if next_lane == 0 {
                        addr.wrapping_add(4)
                    } else {
                        addr
                    };
                    self.state = SpiState::Read {
                        addr: next_addr,
                        lane: next_lane,
                        latch: word,
                    };
                    byte
                }
            }
            SpiState::Write { addr, lane, acc } => {
                let acc = acc | (mosi as u32) << (8 * lane);
                if lane == 3 {
                    self.reg_write(addr, acc);
                    self.state = SpiState::Write {
                        addr: addr.wrapping_add(4),
                        lane: 0,
                        acc: 0,
                    };
                } else {
                    self.state = SpiState::Write {
                        addr,
                        lane: lane + 1,
                        acc,
                    };
                }
                0xFF
            }
        }
    }

    fn cs_high(&mut self) {
        self.state = SpiState::Idle;
    }

    fn tick(&mut self) {
        self.ready_countdown = self.ready_countdown.saturating_sub(1);
    }

    fn tick_n(&mut self, n: u64) {
        let n = u32::try_from(n).unwrap_or(u32::MAX);
        self.ready_countdown = self.ready_countdown.saturating_sub(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a full read command over the SPI byte protocol.
    fn spi_read(dev: &mut Lan9250, addr: u16) -> u32 {
        dev.exchange(CMD_READ);
        dev.exchange((addr >> 8) as u8);
        dev.exchange((addr & 0xFF) as u8);
        let mut v = 0u32;
        for lane in 0..4 {
            v |= (dev.exchange(0) as u32) << (8 * lane);
        }
        dev.cs_high();
        v
    }

    fn spi_write(dev: &mut Lan9250, addr: u16, value: u32) {
        dev.exchange(CMD_WRITE);
        dev.exchange((addr >> 8) as u8);
        dev.exchange((addr & 0xFF) as u8);
        for lane in 0..4 {
            dev.exchange((value >> (8 * lane)) as u8);
        }
        dev.cs_high();
    }

    fn ready(dev: &mut Lan9250) {
        for _ in 0..32 {
            dev.tick();
        }
    }

    fn enable_rx(dev: &mut Lan9250) {
        spi_write(dev, MAC_CSR_DATA, MAC_CR_RXEN);
        spi_write(dev, MAC_CSR_CMD, MAC_CSR_BUSY | MAC_CR);
    }

    #[test]
    fn byte_test_magic_after_powerup() {
        let mut dev = Lan9250::new();
        assert_ne!(
            spi_read(&mut dev, BYTE_TEST),
            BYTE_TEST_MAGIC,
            "not ready yet"
        );
        ready(&mut dev);
        assert_eq!(spi_read(&mut dev, BYTE_TEST), BYTE_TEST_MAGIC);
        assert_eq!(spi_read(&mut dev, HW_CFG) & HW_CFG_READY, HW_CFG_READY);
    }

    #[test]
    fn mac_csr_roundtrip() {
        let mut dev = Lan9250::new();
        ready(&mut dev);
        enable_rx(&mut dev);
        assert!(dev.rx_enabled());
        // Read it back through the CSR interface.
        spi_write(&mut dev, MAC_CSR_CMD, MAC_CSR_BUSY | MAC_CSR_READ | MAC_CR);
        assert_eq!(spi_read(&mut dev, MAC_CSR_DATA), MAC_CR_RXEN);
    }

    #[test]
    fn frames_invisible_until_rx_enabled() {
        let mut dev = Lan9250::new();
        ready(&mut dev);
        dev.inject_frame(&[1, 2, 3, 4, 5]);
        assert_eq!(spi_read(&mut dev, RX_FIFO_INF), 0);
        enable_rx(&mut dev);
        assert_eq!(spi_read(&mut dev, RX_FIFO_INF) >> 16 & 0xFF, 1);
    }

    #[test]
    fn rx_flow_status_then_data() {
        let mut dev = Lan9250::new();
        ready(&mut dev);
        enable_rx(&mut dev);
        dev.inject_frame(&[0xAA, 0xBB, 0xCC, 0xDD, 0xEE]);
        let status = spi_read(&mut dev, RX_STATUS_FIFO);
        assert_eq!(status >> 16 & 0x3FFF, 5);
        // Data: two words (padded).
        let w0 = spi_read(&mut dev, RX_DATA_FIFO);
        let w1 = spi_read(&mut dev, RX_DATA_FIFO);
        assert_eq!(w0, 0xDDCC_BBAA);
        assert_eq!(w1, 0x0000_00EE);
        assert_eq!(dev.frames_delivered, 1);
        // FIFO now empty.
        assert_eq!(spi_read(&mut dev, RX_STATUS_FIFO), 0);
    }

    #[test]
    fn discard_skips_remaining_data() {
        let mut dev = Lan9250::new();
        ready(&mut dev);
        enable_rx(&mut dev);
        dev.inject_frame(&vec![0x55; 2000]); // oversized for the driver
        let status = spi_read(&mut dev, RX_STATUS_FIFO);
        assert_eq!(status >> 16 & 0x3FFF, 2000);
        spi_write(&mut dev, RX_DP_CTRL, RX_DP_DISCARD);
        assert_eq!(dev.frames_discarded, 1);
        assert_eq!(spi_read(&mut dev, RX_FIFO_INF) & 0xFFFF, 0, "data gone");
    }

    #[test]
    fn cs_aborts_partial_commands() {
        let mut dev = Lan9250::new();
        ready(&mut dev);
        dev.exchange(CMD_READ);
        dev.exchange(0x00);
        dev.cs_high(); // abort before the address completes
                       // A fresh, complete read still works.
        assert_eq!(spi_read(&mut dev, BYTE_TEST), BYTE_TEST_MAGIC);
    }

    #[test]
    fn unknown_commands_are_ignored() {
        let mut dev = Lan9250::new();
        ready(&mut dev);
        assert_eq!(dev.exchange(0x99), 0xFF);
        dev.cs_high();
        assert_eq!(spi_read(&mut dev, BYTE_TEST), BYTE_TEST_MAGIC);
    }

    #[test]
    fn delayed_byte_test_answers_junk_then_magic() {
        let plan = FaultPlan {
            byte_test_junk_reads: 2,
            ..FaultPlan::default()
        };
        let mut dev = Lan9250::with_faults(&plan);
        ready(&mut dev);
        assert_eq!(spi_read(&mut dev, BYTE_TEST), 0xFFFF_FFFF);
        assert_eq!(spi_read(&mut dev, BYTE_TEST), 0xFFFF_FFFF);
        assert_eq!(spi_read(&mut dev, BYTE_TEST), BYTE_TEST_MAGIC);
        assert_eq!(dev.faults_injected(), 2);
    }

    #[test]
    fn mac_csr_needs_extra_polls() {
        let plan = FaultPlan {
            mac_busy_reads: 3,
            ..FaultPlan::default()
        };
        let mut dev = Lan9250::with_faults(&plan);
        ready(&mut dev);
        enable_rx(&mut dev); // the strobe itself still lands
        for _ in 0..3 {
            assert_eq!(spi_read(&mut dev, MAC_CSR_CMD) & MAC_CSR_BUSY, MAC_CSR_BUSY);
        }
        assert_eq!(spi_read(&mut dev, MAC_CSR_CMD) & MAC_CSR_BUSY, 0);
        assert!(dev.rx_enabled());
    }

    #[test]
    fn spurious_rx_pending_advertises_a_phantom_frame() {
        let plan = FaultPlan {
            spurious_rx_reads: vec![0],
            ..FaultPlan::default()
        };
        let mut dev = Lan9250::with_faults(&plan);
        ready(&mut dev);
        enable_rx(&mut dev);
        assert_eq!(spi_read(&mut dev, RX_FIFO_INF) >> 16 & 0xFF, 1, "phantom");
        // The status FIFO has nothing behind it; a zero-length status is
        // what the driver's length check rejects.
        assert_eq!(spi_read(&mut dev, RX_STATUS_FIFO), 0);
        assert_eq!(spi_read(&mut dev, RX_FIFO_INF) >> 16 & 0xFF, 0);
    }

    #[test]
    fn frame_faults_drop_truncate_corrupt() {
        let plan = FaultPlan {
            frame_faults: vec![
                (0, FrameFault::Drop),
                (1, FrameFault::Truncate(2)),
                (
                    2,
                    FrameFault::Corrupt {
                        offset: 1,
                        xor: 0x80,
                    },
                ),
            ],
            ..FaultPlan::default()
        };
        let mut dev = Lan9250::with_faults(&plan);
        ready(&mut dev);
        enable_rx(&mut dev);
        dev.inject_frame(&[1, 2, 3, 4]); // dropped
        assert_eq!(dev.frames_pending(), 0);
        dev.inject_frame(&[1, 2, 3, 4]); // truncated to 2 bytes
        let status = spi_read(&mut dev, RX_STATUS_FIFO);
        assert_eq!(status >> 16 & 0x3FFF, 2);
        assert_eq!(spi_read(&mut dev, RX_DATA_FIFO) & 0xFFFF, 0x0201);
        dev.inject_frame(&[1, 2, 3, 4]); // byte 1 flipped
        spi_read(&mut dev, RX_STATUS_FIFO);
        assert_eq!(spi_read(&mut dev, RX_DATA_FIFO), 0x0403_8201);
        dev.inject_frame(&[9, 9, 9, 9]); // past the schedule: untouched
        spi_read(&mut dev, RX_STATUS_FIFO);
        assert_eq!(spi_read(&mut dev, RX_DATA_FIFO), 0x0909_0909);
        assert_eq!(dev.faults_injected(), 3);
    }

    #[test]
    fn register_reads_auto_increment() {
        let mut dev = Lan9250::new();
        ready(&mut dev);
        // One 8-byte read starting at BYTE_TEST covers BYTE_TEST then the
        // next word (0x68, unmapped → 0).
        dev.exchange(CMD_READ);
        dev.exchange(0x00);
        dev.exchange(0x64);
        let mut first = 0u32;
        for lane in 0..4 {
            first |= (dev.exchange(0) as u32) << (8 * lane);
        }
        let mut second = 0u32;
        for lane in 0..4 {
            second |= (dev.exchange(0) as u32) << (8 * lane);
        }
        dev.cs_high();
        assert_eq!(first, BYTE_TEST_MAGIC);
        assert_eq!(second, 0);
    }
}

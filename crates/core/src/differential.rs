//! The proof-shaped interface checks, as differential tests.
//!
//! Each function here corresponds to one proof in the paper's stack
//! (Figure 3), restated as "run both sides of the interface and compare
//! the observables":
//!
//! | paper proof                         | here                              |
//! |-------------------------------------|-----------------------------------|
//! | compiler correctness (§5.3)         | [`check_compiler_differential`]   |
//! | compiler phase 1 simulation         | `check_flattening_differential`   |
//! | optimizer soundness (our §7.2.1 baseline) | [`check_optimizer_differential`] |
//! | processor–ISA consistency (§5.8)    | [`check_isa_consistency`]         |
//! | pipelined ⊑ single-cycle (§5.7)     | re-exported `processor::refinement` |
//!
//! Source-level runs that hit undefined behavior or fuel exhaustion prove
//! nothing (the compiler promises nothing about them) and are reported as
//! [`DiffError::SourceUb`] so harnesses can discard them.

use crate::debug_dev::DebugDevice;
use crate::progen::ProgGen;
use crate::system::LightbulbRun;
use crate::system::{build_image, ProcessorKind, SystemConfig};
use bedrock2::ast::Program;
use bedrock2::semantics::Interp;
use bedrock2_compiler::{compile, CompileOptions, CompiledProgram, MmioExtCompiler};
use devices::{Board, FaultPlan, FrameFault, TrafficGen};
use lightbulb::{good_hl_trace, probe, MmioBridge};
use obs::Counters;
use processor::refinement::ReplayHandler;
use processor::{Divergence, SingleCycle};
use riscv_spec::{Memory, MmioEvent, SpecMachine, StepOutcome};
use std::ops::Range;

/// Fuel for source-level runs.
const SOURCE_FUEL: u64 = 4_000_000;
/// Instruction budget for machine-level runs.
const MACHINE_FUEL: u64 = 40_000_000;
/// RAM for machine-level runs.
const RAM: u32 = 0x1_0000;

/// A differential-check failure.
#[derive(Clone, Debug)]
pub enum DiffError {
    /// The source run hit UB or ran out of fuel: the run is inconclusive
    /// (not a compiler bug).
    SourceUb(String),
    /// The program failed to compile.
    CompileError(String),
    /// The compiled program hit a machine error although the source ran
    /// clean — a compiler or machine bug.
    MachineError(String),
    /// The compiled program did not halt within the budget.
    MachineTimeout,
    /// The observable traces differ.
    TraceMismatch {
        /// First differing index.
        index: usize,
        /// Source-side event (if any).
        source: Option<MmioEvent>,
        /// Machine-side event (if any).
        machine: Option<MmioEvent>,
    },
    /// A run's MMIO trace fell outside the top-level trace specification —
    /// a driver-hardening bug, or a fault shape the spec does not classify.
    SpecViolation {
        /// Events matched before the trace left the specification.
        matched: usize,
        /// Total events in the trace.
        total: usize,
        /// Which machine model produced the trace.
        model: &'static str,
    },
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::SourceUb(e) => write!(f, "source run inconclusive: {e}"),
            DiffError::CompileError(e) => write!(f, "compile error: {e}"),
            DiffError::MachineError(e) => write!(f, "machine error on clean source: {e}"),
            DiffError::MachineTimeout => write!(f, "compiled program did not halt"),
            DiffError::TraceMismatch {
                index,
                source,
                machine,
            } => write!(
                f,
                "trace mismatch at {index}: source {source:?} vs machine {machine:?}"
            ),
            DiffError::SpecViolation {
                matched,
                total,
                model,
            } => write!(
                f,
                "spec violation on the {model} model: trace leaves goodHlTrace \
                 after {matched} of {total} events"
            ),
        }
    }
}

impl std::error::Error for DiffError {}

/// Runs `main` at the source level, returning its observation trace.
///
/// # Errors
///
/// [`DiffError::SourceUb`] when the run is inconclusive.
pub fn run_source(prog: &Program) -> Result<Vec<MmioEvent>, DiffError> {
    let mut interp = Interp::new(
        prog,
        Memory::with_size(RAM),
        MmioBridge::new(DebugDevice::new()),
    )
    .with_fuel(SOURCE_FUEL);
    interp
        .call("main", &[])
        .map_err(|e| DiffError::SourceUb(e.to_string()))?;
    Ok(interp.ext.events)
}

/// Compiles `main` and runs it on the ISA spec machine, returning the
/// observation trace.
///
/// # Errors
///
/// Compilation failures, machine errors, and timeouts.
pub fn run_compiled(prog: &Program, optimize: bool) -> Result<Vec<MmioEvent>, DiffError> {
    run_compiled_with(
        prog,
        CompileOptions {
            optimize,
            ..CompileOptions::default()
        },
    )
}

/// Like [`run_compiled`] with explicit options (used by the spill-all
/// ablation sweep).
///
/// # Errors
///
/// Compilation failures, machine errors, and timeouts.
pub fn run_compiled_with(
    prog: &Program,
    opts: CompileOptions,
) -> Result<Vec<MmioEvent>, DiffError> {
    let image = compile(prog, &MmioExtCompiler, &opts)
        .map_err(|e| DiffError::CompileError(e.to_string()))?;
    let mut m = SpecMachine::new(Memory::with_size(RAM), DebugDevice::new());
    m.load_program(0, &image.words());
    match m.run_until_ebreak(MACHINE_FUEL) {
        Ok(StepOutcome::Halted { .. }) => Ok(m.trace),
        Ok(StepOutcome::OutOfFuel) => Err(DiffError::MachineTimeout),
        Err(e) => Err(DiffError::MachineError(e.to_string())),
    }
}

fn compare(a: &[MmioEvent], b: &[MmioEvent]) -> Result<(), DiffError> {
    let n = a.len().max(b.len());
    for i in 0..n {
        if a.get(i) != b.get(i) {
            return Err(DiffError::TraceMismatch {
                index: i,
                source: a.get(i).copied(),
                machine: b.get(i).copied(),
            });
        }
    }
    Ok(())
}

/// Compiler correctness on one program: the compiled code's I/O trace on
/// the ISA spec machine equals the interpreter's.
///
/// # Errors
///
/// [`DiffError::SourceUb`] for inconclusive runs; any other variant is a
/// genuine bug.
pub fn check_compiler_differential(prog: &Program, optimize: bool) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let machine = run_compiled(prog, optimize)?;
    compare(&source, &machine)
}

/// Compiler correctness with the spill-everything ablation: the degenerate
/// no-register allocation must still be correct (it exercises every spill
/// path of the code generator).
///
/// # Errors
///
/// Like [`check_compiler_differential`].
pub fn check_spill_all_differential(prog: &Program) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let machine = run_compiled_with(
        prog,
        CompileOptions {
            spill_everything: true,
            ..CompileOptions::default()
        },
    )?;
    compare(&source, &machine)
}

/// Phase-1 (flattening) correctness on one program.
///
/// # Errors
///
/// Like [`check_compiler_differential`], at the FlatImp level.
pub fn check_flattening_differential(prog: &Program) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let flat = bedrock2_compiler::flatten::flatten_program(prog);
    let mut fi = bedrock2_compiler::flatimp::FlatInterp::new(
        &flat,
        Memory::with_size(RAM),
        MmioBridge::new(DebugDevice::new()),
    );
    fi.call("main", &[])
        .map_err(|e| DiffError::MachineError(format!("{e:?}")))?;
    let flat_events: Vec<MmioEvent> = fi
        .trace
        .iter()
        .map(|io| match io.action.as_str() {
            "MMIOREAD" => MmioEvent::load(io.args[0], io.rets[0]),
            "MMIOWRITE" => MmioEvent::store(io.args[0], io.args[1]),
            other => panic!("unexpected action {other}"),
        })
        .collect();
    compare(&source, &flat_events)
}

/// Optimizer soundness on one program: optimized and unoptimized binaries
/// produce the same trace.
///
/// # Errors
///
/// Like [`check_compiler_differential`].
pub fn check_optimizer_differential(prog: &Program) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let optimized = run_compiled(prog, true)?;
    compare(&source, &optimized)
}

/// ISA consistency (§5.8) on one program: the single-cycle Kami spec core
/// agrees with the riscv-spec machine on every observable, provided the
/// software contract holds (which the spec-machine run itself checks).
///
/// # Errors
///
/// [`DiffError::SourceUb`] when even the spec machine flags the program;
/// mismatches otherwise.
pub fn check_isa_consistency(prog: &Program, optimize: bool) -> Result<(), DiffError> {
    let opts = CompileOptions {
        optimize,
        ..CompileOptions::default()
    };
    let image = compile(prog, &MmioExtCompiler, &opts)
        .map_err(|e| DiffError::CompileError(e.to_string()))?;

    let mut m = SpecMachine::new(Memory::with_size(RAM), DebugDevice::new());
    m.load_program(0, &image.words());
    match m.run_until_ebreak(MACHINE_FUEL) {
        Ok(StepOutcome::Halted { .. }) => {}
        // Fuel exhaustion and UB are both outside the consistency
        // statement (§5.8): the run proves nothing about the cores.
        Ok(StepOutcome::OutOfFuel) => {
            return Err(DiffError::SourceUb("machine fuel exhausted".to_string()))
        }
        Err(e) => return Err(DiffError::SourceUb(e.to_string())),
    }

    let mut core = processor::SingleCycle::new(&image.bytes(), RAM, DebugDevice::new());
    core.run(MACHINE_FUEL);
    if !core.halted {
        return Err(DiffError::MachineTimeout);
    }
    compare(&m.trace, &core.mem.events())?;

    // Architectural state must agree too.
    for r in 1..32u8 {
        let (a, b) = (m.regs[r as usize], core.rf.read(r));
        if a != b {
            return Err(DiffError::TraceMismatch {
                index: usize::MAX,
                source: Some(MmioEvent::load(r as u32, a)),
                machine: Some(MmioEvent::load(r as u32, b)),
            });
        }
    }
    Ok(())
}

/// The outcome of a sharded seed sweep ([`parallel_sweep`]).
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Seeds swept.
    pub total: u64,
    /// Runs where both sides completed and agreed.
    pub conclusive: u64,
    /// Runs discarded as [`DiffError::SourceUb`] (outside every theorem).
    pub inconclusive: u64,
    /// Genuine disagreements, in ascending-seed order.
    pub failures: Vec<(u64, DiffError)>,
    /// `core.diff.*` counters, merged from the per-shard registries in
    /// shard order (summed counters make the merge order-insensitive, so
    /// reports are identical across shard counts).
    pub counters: Counters,
    /// Shards the sweep actually used.
    pub shards: usize,
    /// First seed of the sweep.
    pub start: u64,
    /// Seeds per shard (the last shard may run fewer).
    pub chunk: u64,
}

impl SweepReport {
    /// Which shard a seed ran in: seeds are split into contiguous chunks,
    /// shard 0 first.
    pub fn shard_of(&self, seed: u64) -> usize {
        seed.saturating_sub(self.start)
            .checked_div(self.chunk)
            .unwrap_or(0) as usize
    }

    /// Panics with the first failing seed — and the shard it ran in — if
    /// any: the sweep analogue of `Result::unwrap` for test harnesses.
    /// The message carries everything a one-liner reproduction needs:
    /// rerun the named check on exactly that seed (a single-seed range
    /// with 1 shard), e.g. `check(&ProgGen::new(seed).gen_program())` for
    /// program sweeps or `fault_check(seed, ..)` for fault sweeps.
    pub fn expect_clean(&self, name: &str) {
        if let Some((seed, e)) = self.failures.first() {
            panic!(
                "{name}: {} of {} seeds failed; first is seed {seed} in shard {}/{} \
                 (reproduce: rerun the check on seed range {seed}..{} with 1 shard): {e}",
                self.failures.len(),
                self.total,
                self.shard_of(*seed),
                self.shards,
                seed + 1,
            );
        }
    }
}

/// Shard count matching the host: one per available hardware thread.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sweeps `seeds` through `check` on programs from the default
/// [`ProgGen`], sharded across `shards` OS threads.
///
/// Results are deterministic regardless of `shards`: seeds are split into
/// contiguous chunks, each shard reports into its own [`Counters`], and
/// shard results are merged in shard (= ascending seed) order.
pub fn parallel_sweep<C>(seeds: Range<u64>, shards: usize, check: C) -> SweepReport
where
    C: Fn(&Program) -> Result<(), DiffError> + Sync,
{
    parallel_sweep_with(
        seeds,
        shards,
        |seed| ProgGen::new(seed).gen_program(),
        check,
    )
}

/// [`parallel_sweep`] with a custom seed-to-program generator (e.g. a
/// [`ProgGen`] with a non-default `GenConfig`).
pub fn parallel_sweep_with<G, C>(
    seeds: Range<u64>,
    shards: usize,
    generate: G,
    check: C,
) -> SweepReport
where
    G: Fn(u64) -> Program + Sync,
    C: Fn(&Program) -> Result<(), DiffError> + Sync,
{
    sweep_seeds(seeds, shards, |seed, _| check(&generate(seed)))
}

/// The sharding engine behind every sweep: runs `check` once per seed,
/// split into contiguous chunks across OS threads. `check` may record
/// per-seed telemetry into the shard's [`Counters`]; summed counters merge
/// order-insensitively, so reports stay identical across shard counts.
fn sweep_seeds<C>(seeds: Range<u64>, shards: usize, check: C) -> SweepReport
where
    C: Fn(u64, &mut Counters) -> Result<(), DiffError> + Sync,
{
    let start = seeds.start;
    let all: Vec<u64> = seeds.collect();
    let shards = shards.clamp(1, all.len().max(1));
    let chunk = all.len().div_ceil(shards);

    struct Shard {
        conclusive: u64,
        inconclusive: u64,
        failures: Vec<(u64, DiffError)>,
        counters: Counters,
    }

    let run_shard = |seeds: &[u64]| -> Shard {
        let mut shard = Shard {
            conclusive: 0,
            inconclusive: 0,
            failures: Vec::new(),
            counters: Counters::new(),
        };
        for &seed in seeds {
            match check(seed, &mut shard.counters) {
                Ok(()) => shard.conclusive += 1,
                Err(DiffError::SourceUb(_)) => shard.inconclusive += 1,
                Err(e) => shard.failures.push((seed, e)),
            }
        }
        shard.counters.set("core.diff.seeds", seeds.len() as u64);
        shard.counters.set("core.diff.conclusive", shard.conclusive);
        shard
            .counters
            .set("core.diff.inconclusive", shard.inconclusive);
        shard
            .counters
            .set("core.diff.failures", shard.failures.len() as u64);
        shard
    };

    let results: Vec<Shard> = if shards == 1 || all.is_empty() {
        vec![run_shard(&all)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = all
                .chunks(chunk)
                .map(|c| s.spawn(|| run_shard(c)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep shard panicked"))
                .collect()
        })
    };

    let shards_used = results.len();
    let mut report = SweepReport {
        total: all.len() as u64,
        conclusive: 0,
        inconclusive: 0,
        failures: Vec::new(),
        counters: Counters::new(),
        shards: shards_used,
        start,
        chunk: chunk as u64,
    };
    for shard in results {
        report.conclusive += shard.conclusive;
        report.inconclusive += shard.inconclusive;
        report.failures.extend(shard.failures);
        report.counters.merge(&shard.counters);
    }
    report.counters.set("core.diff.shards", shards_used as u64);
    report
}

/// Configuration for [`fault_sweep`]: the system under test and the
/// per-seed workload.
#[derive(Clone, Debug)]
pub struct FaultSweepConfig {
    /// Base system configuration — driver options, SPI wire speed,
    /// pipeline shape. The sweep runs it on both the pipelined core and
    /// the ISA spec machine regardless of its `processor` field.
    pub system: SystemConfig,
    /// Command frames injected per run (alternating on/off), each subject
    /// to the plan's frame faults.
    pub frames: usize,
    /// First-pass cycle budget. Most plans finish their whole workload
    /// well within it; spec-checking cost is linear in trace length, so
    /// keeping easy runs short is what makes thousand-seed sweeps cheap.
    pub quick_cycles: u64,
    /// Full cycle budget, used only when the quick pass did not consume
    /// the workload (hard register faults and long stalls). Sized so a
    /// plan's worst case — two failed bring-up attempts plus an RX stall
    /// and re-initialization — still reaches steady state.
    pub max_cycles: u64,
}

impl Default for FaultSweepConfig {
    fn default() -> FaultSweepConfig {
        FaultSweepConfig {
            system: SystemConfig::default(),
            frames: 3,
            quick_cycles: 250_000,
            max_cycles: 800_000,
        }
    }
}

/// Checks one seeded fault plan end to end (one [`fault_sweep`] unit):
///
/// 1. the **pipelined processor** runs the image against a board faulted
///    by `FaultPlan::from_seed(seed)`; its trace must stay a prefix of
///    `goodHlTrace` (the hardened drivers must classify every injected
///    fault as a recoverable-failure shape);
/// 2. the **ISA spec machine** runs against a fresh, identically faulted
///    board; the run must be UB-free and its trace must also satisfy the
///    spec (faults are interaction-keyed, so the same plan is meaningful
///    on both models even though their tick rates differ);
/// 3. the pipelined trace is **replayed** into the single-cycle spec core
///    ([`ReplayHandler`]): under the same input nondeterminism the spec
///    core must produce the identical trace, so the faulted run still
///    refines the ISA.
///
/// Driver-recovery telemetry (`devices.faults.injected`, `driver.retries`,
/// `driver.reinit`) is added to `counters`. Reproduce a sweep failure with
/// `fault_check(seed, &cfg, &build_image(&cfg.system), &mut Counters::new())`.
///
/// # Errors
///
/// [`DiffError::SpecViolation`] when a trace leaves the specification,
/// [`DiffError::MachineError`] when the spec machine flags UB, and
/// [`DiffError::TraceMismatch`] when the replay diverges.
pub fn fault_check(
    seed: u64,
    cfg: &FaultSweepConfig,
    image: &CompiledProgram,
    counters: &mut Counters,
) -> Result<(), DiffError> {
    let plan = FaultPlan::from_seed(seed);
    let mut gen = TrafficGen::new(seed);
    let frames: Vec<Vec<u8>> = (0..cfg.frames).map(|i| gen.command(i % 2 == 0)).collect();
    let spec = good_hl_trace(cfg.system.driver);

    // Frames the plan drops never reach the chip; everything else must be
    // consumed (status popped, pending queue empty) for a run to count as
    // "workload done".
    let expected_arrivals = cfg.frames as u64
        - plan
            .frame_faults
            .iter()
            .filter(|(i, f)| (*i as usize) < cfg.frames && matches!(f, FrameFault::Drop))
            .count() as u64;
    let done = |run: &LightbulbRun| {
        run.report.counters.get("board.lan9250.frames_delivered") >= expected_arrivals
            && run.report.counters.get("board.lan9250.frames_pending") == 0
    };
    // Adaptive budget: a quick pass suffices for most plans; rerun from
    // scratch with the full budget when faults kept the workload from
    // finishing. Both passes are pure functions of the seed, so results
    // stay deterministic across runs and shard counts.
    let run_on = |kind: ProcessorKind| {
        let mut sys = cfg.system;
        sys.processor = kind;
        let quick = sys.run_faulted(image, &plan, &frames, cfg.quick_cycles);
        if done(&quick) || cfg.max_cycles <= cfg.quick_cycles {
            quick
        } else {
            sys.run_faulted(image, &plan, &frames, cfg.max_cycles)
        }
    };

    let pipe = run_on(ProcessorKind::Pipelined);
    let activity = probe::scan(&pipe.events);
    counters.add(
        "devices.faults.injected",
        pipe.report.counters.get("devices.faults.injected"),
    );
    counters.add("driver.retries", activity.retries);
    counters.add("driver.reinit", activity.reinits);
    if !spec.matches_prefix(&pipe.events) {
        return Err(DiffError::SpecViolation {
            matched: spec.longest_matching_prefix(&pipe.events),
            total: pipe.events.len(),
            model: "pipelined",
        });
    }

    let sm = run_on(ProcessorKind::SpecMachine);
    if let Some(e) = sm.error {
        return Err(DiffError::MachineError(format!(
            "spec machine under fault plan {seed}: {e}"
        )));
    }
    if !spec.matches_prefix(&sm.events) {
        return Err(DiffError::SpecViolation {
            matched: spec.longest_matching_prefix(&sm.events),
            total: sm.events.len(),
            model: "spec machine",
        });
    }

    replay_into_spec_core(image, cfg.system.ram_bytes, &pipe.events, cfg.max_cycles)
}

/// Replays a recorded MMIO trace into the single-cycle spec core and
/// requires it to reproduce the trace exactly (the §5.7 refinement
/// statement, applied to a faulted run whose trace we already hold).
fn replay_into_spec_core(
    image: &CompiledProgram,
    ram_bytes: u32,
    events: &[MmioEvent],
    max_cycles: u64,
) -> Result<(), DiffError> {
    let replay = ReplayHandler::new(events.to_vec(), Board::claims);
    let mut core = SingleCycle::new(&image.bytes(), ram_bytes, replay);
    // The event loop never halts: run until the core has consumed every
    // recorded event (running further would overrun the replay queue,
    // which is not a divergence) or diverges. One instruction consumes at
    // most one event, so an event-bounded block cannot overrun, and
    // divergence is sticky inside `ReplayHandler`.
    while !core.halted && core.cycle < max_cycles {
        let remaining = events.len() - core.mem.mmio.consumed();
        if remaining == 0 {
            break;
        }
        let block = (max_cycles - core.cycle).min(1024).min(remaining as u64);
        core.run_block(block);
        if core.mem.mmio.divergence().is_some() {
            break;
        }
    }
    if let Some(d) = core.mem.mmio.divergence() {
        return match d {
            Divergence::TraceMismatch {
                index,
                implementation,
                spec,
            } => Err(DiffError::TraceMismatch {
                index: *index,
                source: *implementation,
                machine: Some(*spec),
            }),
            other => Err(DiffError::MachineError(format!(
                "replay divergence: {other:?}"
            ))),
        };
    }
    let replayed = core.mem.events();
    let n = replayed.len().min(events.len());
    if let Some(i) = (0..n).find(|&i| replayed[i] != events[i]) {
        return Err(DiffError::TraceMismatch {
            index: i,
            source: Some(events[i]),
            machine: Some(replayed[i]),
        });
    }
    Ok(())
}

/// Sweeps seeded fault plans through [`fault_check`], sharded like
/// [`parallel_sweep`]. The boot image is compiled once and shared across
/// shards; each seed builds its own trace predicate (they are `Rc`-based
/// and stay thread-local). The report's counters carry the sweep's
/// aggregate fault/recovery telemetry.
pub fn fault_sweep(seeds: Range<u64>, shards: usize, cfg: &FaultSweepConfig) -> SweepReport {
    let image = build_image(&cfg.system);
    sweep_seeds(seeds, shards, |seed, counters| {
        fault_check(seed, cfg, &image, counters)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One seed sweep shared by the in-crate smoke tests; the heavyweight
    /// sweeps live in `tests/` and the bench harness.
    fn sweep(
        check: impl Fn(&Program) -> Result<(), DiffError> + Sync,
        seeds: std::ops::Range<u64>,
    ) {
        let r = parallel_sweep(seeds, default_shards(), check);
        r.expect_clean("smoke sweep");
        assert!(
            r.conclusive * 2 >= r.total,
            "too few conclusive runs: {}/{}",
            r.conclusive,
            r.total
        );
    }

    #[test]
    fn compiler_differential_smoke() {
        sweep(|p| check_compiler_differential(p, false), 0..15);
    }

    #[test]
    fn optimizer_differential_smoke() {
        sweep(check_optimizer_differential, 100..115);
    }

    #[test]
    fn flattening_differential_smoke() {
        sweep(check_flattening_differential, 200..215);
    }

    #[test]
    fn isa_consistency_smoke() {
        sweep(|p| check_isa_consistency(p, false), 300..315);
    }

    #[test]
    fn sweep_reports_are_shard_count_invariant() {
        let serial = parallel_sweep(0..12, 1, |p| check_compiler_differential(p, false));
        let sharded = parallel_sweep(0..12, 4, |p| check_compiler_differential(p, false));
        assert_eq!(serial.total, sharded.total);
        assert_eq!(serial.conclusive, sharded.conclusive);
        assert_eq!(serial.inconclusive, sharded.inconclusive);
        let strip = |c: &Counters| {
            c.iter()
                .filter(|(k, _)| *k != "core.diff.shards")
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&serial.counters), strip(&sharded.counters));
        assert_eq!(sharded.shards, 4);
    }

    #[test]
    fn a_planted_compiler_bug_is_caught() {
        // "Compile" a different program than we interpret: the traces must
        // differ, proving the harness has teeth.
        use bedrock2::dsl::*;
        use bedrock2::Function;
        let honest = Program::from_functions([Function::new(
            "main",
            &[],
            &[],
            interact(
                &[],
                "MMIOWRITE",
                [lit(crate::debug_dev::DEBUG_BASE), lit(1)],
            ),
        )]);
        let crooked = Program::from_functions([Function::new(
            "main",
            &[],
            &[],
            interact(
                &[],
                "MMIOWRITE",
                [lit(crate::debug_dev::DEBUG_BASE), lit(2)],
            ),
        )]);
        let source = run_source(&honest).unwrap();
        let machine = run_compiled(&crooked, false).unwrap();
        assert!(compare(&source, &machine).is_err());
    }
}

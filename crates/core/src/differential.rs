//! The proof-shaped interface checks, as differential tests.
//!
//! Each function here corresponds to one proof in the paper's stack
//! (Figure 3), restated as "run both sides of the interface and compare
//! the observables":
//!
//! | paper proof                         | here                              |
//! |-------------------------------------|-----------------------------------|
//! | compiler correctness (§5.3)         | [`check_compiler_differential`]   |
//! | compiler phase 1 simulation         | `check_flattening_differential`   |
//! | optimizer soundness (our §7.2.1 baseline) | [`check_optimizer_differential`] |
//! | processor–ISA consistency (§5.8)    | [`check_isa_consistency`]         |
//! | pipelined ⊑ single-cycle (§5.7)     | re-exported `processor::refinement` |
//!
//! Source-level runs that hit undefined behavior or fuel exhaustion prove
//! nothing (the compiler promises nothing about them) and are reported as
//! [`DiffError::SourceUb`] so harnesses can discard them.

use crate::debug_dev::DebugDevice;
use crate::progen::ProgGen;
use bedrock2::ast::Program;
use bedrock2::semantics::Interp;
use bedrock2_compiler::{compile, CompileOptions, MmioExtCompiler};
use lightbulb::MmioBridge;
use obs::Counters;
use riscv_spec::{Memory, MmioEvent, SpecMachine, StepOutcome};
use std::ops::Range;

/// Fuel for source-level runs.
const SOURCE_FUEL: u64 = 4_000_000;
/// Instruction budget for machine-level runs.
const MACHINE_FUEL: u64 = 40_000_000;
/// RAM for machine-level runs.
const RAM: u32 = 0x1_0000;

/// A differential-check failure.
#[derive(Clone, Debug)]
pub enum DiffError {
    /// The source run hit UB or ran out of fuel: the run is inconclusive
    /// (not a compiler bug).
    SourceUb(String),
    /// The program failed to compile.
    CompileError(String),
    /// The compiled program hit a machine error although the source ran
    /// clean — a compiler or machine bug.
    MachineError(String),
    /// The compiled program did not halt within the budget.
    MachineTimeout,
    /// The observable traces differ.
    TraceMismatch {
        /// First differing index.
        index: usize,
        /// Source-side event (if any).
        source: Option<MmioEvent>,
        /// Machine-side event (if any).
        machine: Option<MmioEvent>,
    },
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::SourceUb(e) => write!(f, "source run inconclusive: {e}"),
            DiffError::CompileError(e) => write!(f, "compile error: {e}"),
            DiffError::MachineError(e) => write!(f, "machine error on clean source: {e}"),
            DiffError::MachineTimeout => write!(f, "compiled program did not halt"),
            DiffError::TraceMismatch {
                index,
                source,
                machine,
            } => write!(
                f,
                "trace mismatch at {index}: source {source:?} vs machine {machine:?}"
            ),
        }
    }
}

impl std::error::Error for DiffError {}

/// Runs `main` at the source level, returning its observation trace.
///
/// # Errors
///
/// [`DiffError::SourceUb`] when the run is inconclusive.
pub fn run_source(prog: &Program) -> Result<Vec<MmioEvent>, DiffError> {
    let mut interp = Interp::new(
        prog,
        Memory::with_size(RAM),
        MmioBridge::new(DebugDevice::new()),
    )
    .with_fuel(SOURCE_FUEL);
    interp
        .call("main", &[])
        .map_err(|e| DiffError::SourceUb(e.to_string()))?;
    Ok(interp.ext.events)
}

/// Compiles `main` and runs it on the ISA spec machine, returning the
/// observation trace.
///
/// # Errors
///
/// Compilation failures, machine errors, and timeouts.
pub fn run_compiled(prog: &Program, optimize: bool) -> Result<Vec<MmioEvent>, DiffError> {
    run_compiled_with(
        prog,
        CompileOptions {
            optimize,
            ..CompileOptions::default()
        },
    )
}

/// Like [`run_compiled`] with explicit options (used by the spill-all
/// ablation sweep).
///
/// # Errors
///
/// Compilation failures, machine errors, and timeouts.
pub fn run_compiled_with(
    prog: &Program,
    opts: CompileOptions,
) -> Result<Vec<MmioEvent>, DiffError> {
    let image = compile(prog, &MmioExtCompiler, &opts)
        .map_err(|e| DiffError::CompileError(e.to_string()))?;
    let mut m = SpecMachine::new(Memory::with_size(RAM), DebugDevice::new());
    m.load_program(0, &image.words());
    match m.run_until_ebreak(MACHINE_FUEL) {
        Ok(StepOutcome::Halted { .. }) => Ok(m.trace),
        Ok(StepOutcome::OutOfFuel) => Err(DiffError::MachineTimeout),
        Err(e) => Err(DiffError::MachineError(e.to_string())),
    }
}

fn compare(a: &[MmioEvent], b: &[MmioEvent]) -> Result<(), DiffError> {
    let n = a.len().max(b.len());
    for i in 0..n {
        if a.get(i) != b.get(i) {
            return Err(DiffError::TraceMismatch {
                index: i,
                source: a.get(i).copied(),
                machine: b.get(i).copied(),
            });
        }
    }
    Ok(())
}

/// Compiler correctness on one program: the compiled code's I/O trace on
/// the ISA spec machine equals the interpreter's.
///
/// # Errors
///
/// [`DiffError::SourceUb`] for inconclusive runs; any other variant is a
/// genuine bug.
pub fn check_compiler_differential(prog: &Program, optimize: bool) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let machine = run_compiled(prog, optimize)?;
    compare(&source, &machine)
}

/// Compiler correctness with the spill-everything ablation: the degenerate
/// no-register allocation must still be correct (it exercises every spill
/// path of the code generator).
///
/// # Errors
///
/// Like [`check_compiler_differential`].
pub fn check_spill_all_differential(prog: &Program) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let machine = run_compiled_with(
        prog,
        CompileOptions {
            spill_everything: true,
            ..CompileOptions::default()
        },
    )?;
    compare(&source, &machine)
}

/// Phase-1 (flattening) correctness on one program.
///
/// # Errors
///
/// Like [`check_compiler_differential`], at the FlatImp level.
pub fn check_flattening_differential(prog: &Program) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let flat = bedrock2_compiler::flatten::flatten_program(prog);
    let mut fi = bedrock2_compiler::flatimp::FlatInterp::new(
        &flat,
        Memory::with_size(RAM),
        MmioBridge::new(DebugDevice::new()),
    );
    fi.call("main", &[])
        .map_err(|e| DiffError::MachineError(format!("{e:?}")))?;
    let flat_events: Vec<MmioEvent> = fi
        .trace
        .iter()
        .map(|io| match io.action.as_str() {
            "MMIOREAD" => MmioEvent::load(io.args[0], io.rets[0]),
            "MMIOWRITE" => MmioEvent::store(io.args[0], io.args[1]),
            other => panic!("unexpected action {other}"),
        })
        .collect();
    compare(&source, &flat_events)
}

/// Optimizer soundness on one program: optimized and unoptimized binaries
/// produce the same trace.
///
/// # Errors
///
/// Like [`check_compiler_differential`].
pub fn check_optimizer_differential(prog: &Program) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let optimized = run_compiled(prog, true)?;
    compare(&source, &optimized)
}

/// ISA consistency (§5.8) on one program: the single-cycle Kami spec core
/// agrees with the riscv-spec machine on every observable, provided the
/// software contract holds (which the spec-machine run itself checks).
///
/// # Errors
///
/// [`DiffError::SourceUb`] when even the spec machine flags the program;
/// mismatches otherwise.
pub fn check_isa_consistency(prog: &Program, optimize: bool) -> Result<(), DiffError> {
    let opts = CompileOptions {
        optimize,
        ..CompileOptions::default()
    };
    let image = compile(prog, &MmioExtCompiler, &opts)
        .map_err(|e| DiffError::CompileError(e.to_string()))?;

    let mut m = SpecMachine::new(Memory::with_size(RAM), DebugDevice::new());
    m.load_program(0, &image.words());
    match m.run_until_ebreak(MACHINE_FUEL) {
        Ok(StepOutcome::Halted { .. }) => {}
        // Fuel exhaustion and UB are both outside the consistency
        // statement (§5.8): the run proves nothing about the cores.
        Ok(StepOutcome::OutOfFuel) => {
            return Err(DiffError::SourceUb("machine fuel exhausted".to_string()))
        }
        Err(e) => return Err(DiffError::SourceUb(e.to_string())),
    }

    let mut core = processor::SingleCycle::new(&image.bytes(), RAM, DebugDevice::new());
    core.run(MACHINE_FUEL);
    if !core.halted {
        return Err(DiffError::MachineTimeout);
    }
    compare(&m.trace, &core.mem.events())?;

    // Architectural state must agree too.
    for r in 1..32u8 {
        let (a, b) = (m.regs[r as usize], core.rf.read(r));
        if a != b {
            return Err(DiffError::TraceMismatch {
                index: usize::MAX,
                source: Some(MmioEvent::load(r as u32, a)),
                machine: Some(MmioEvent::load(r as u32, b)),
            });
        }
    }
    Ok(())
}

/// The outcome of a sharded seed sweep ([`parallel_sweep`]).
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Seeds swept.
    pub total: u64,
    /// Runs where both sides completed and agreed.
    pub conclusive: u64,
    /// Runs discarded as [`DiffError::SourceUb`] (outside every theorem).
    pub inconclusive: u64,
    /// Genuine disagreements, in ascending-seed order.
    pub failures: Vec<(u64, DiffError)>,
    /// `core.diff.*` counters, merged from the per-shard registries in
    /// shard order (summed counters make the merge order-insensitive, so
    /// reports are identical across shard counts).
    pub counters: Counters,
    /// Shards the sweep actually used.
    pub shards: usize,
}

impl SweepReport {
    /// Panics with the first failing seed, if any — the sweep analogue of
    /// `Result::unwrap` for test harnesses. Reproduce a reported seed with
    /// `check(&ProgGen::new(seed).gen_program())`.
    pub fn expect_clean(&self, name: &str) {
        if let Some((seed, e)) = self.failures.first() {
            panic!(
                "{name}: {} of {} seeds failed; first is seed {seed}: {e}",
                self.failures.len(),
                self.total
            );
        }
    }
}

/// Shard count matching the host: one per available hardware thread.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sweeps `seeds` through `check` on programs from the default
/// [`ProgGen`], sharded across `shards` OS threads.
///
/// Results are deterministic regardless of `shards`: seeds are split into
/// contiguous chunks, each shard reports into its own [`Counters`], and
/// shard results are merged in shard (= ascending seed) order.
pub fn parallel_sweep<C>(seeds: Range<u64>, shards: usize, check: C) -> SweepReport
where
    C: Fn(&Program) -> Result<(), DiffError> + Sync,
{
    parallel_sweep_with(
        seeds,
        shards,
        |seed| ProgGen::new(seed).gen_program(),
        check,
    )
}

/// [`parallel_sweep`] with a custom seed-to-program generator (e.g. a
/// [`ProgGen`] with a non-default `GenConfig`).
pub fn parallel_sweep_with<G, C>(
    seeds: Range<u64>,
    shards: usize,
    generate: G,
    check: C,
) -> SweepReport
where
    G: Fn(u64) -> Program + Sync,
    C: Fn(&Program) -> Result<(), DiffError> + Sync,
{
    let all: Vec<u64> = seeds.collect();
    let shards = shards.clamp(1, all.len().max(1));
    let chunk = all.len().div_ceil(shards);

    struct Shard {
        conclusive: u64,
        inconclusive: u64,
        failures: Vec<(u64, DiffError)>,
        counters: Counters,
    }

    let run_shard = |seeds: &[u64]| -> Shard {
        let mut shard = Shard {
            conclusive: 0,
            inconclusive: 0,
            failures: Vec::new(),
            counters: Counters::new(),
        };
        for &seed in seeds {
            let prog = generate(seed);
            match check(&prog) {
                Ok(()) => shard.conclusive += 1,
                Err(DiffError::SourceUb(_)) => shard.inconclusive += 1,
                Err(e) => shard.failures.push((seed, e)),
            }
        }
        shard.counters.set("core.diff.seeds", seeds.len() as u64);
        shard.counters.set("core.diff.conclusive", shard.conclusive);
        shard
            .counters
            .set("core.diff.inconclusive", shard.inconclusive);
        shard
            .counters
            .set("core.diff.failures", shard.failures.len() as u64);
        shard
    };

    let results: Vec<Shard> = if shards == 1 || all.is_empty() {
        vec![run_shard(&all)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = all
                .chunks(chunk)
                .map(|c| s.spawn(|| run_shard(c)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep shard panicked"))
                .collect()
        })
    };

    let shards_used = results.len();
    let mut report = SweepReport {
        total: all.len() as u64,
        conclusive: 0,
        inconclusive: 0,
        failures: Vec::new(),
        counters: Counters::new(),
        shards: shards_used,
    };
    for shard in results {
        report.conclusive += shard.conclusive;
        report.inconclusive += shard.inconclusive;
        report.failures.extend(shard.failures);
        report.counters.merge(&shard.counters);
    }
    report.counters.set("core.diff.shards", shards_used as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One seed sweep shared by the in-crate smoke tests; the heavyweight
    /// sweeps live in `tests/` and the bench harness.
    fn sweep(
        check: impl Fn(&Program) -> Result<(), DiffError> + Sync,
        seeds: std::ops::Range<u64>,
    ) {
        let r = parallel_sweep(seeds, default_shards(), check);
        r.expect_clean("smoke sweep");
        assert!(
            r.conclusive * 2 >= r.total,
            "too few conclusive runs: {}/{}",
            r.conclusive,
            r.total
        );
    }

    #[test]
    fn compiler_differential_smoke() {
        sweep(|p| check_compiler_differential(p, false), 0..15);
    }

    #[test]
    fn optimizer_differential_smoke() {
        sweep(check_optimizer_differential, 100..115);
    }

    #[test]
    fn flattening_differential_smoke() {
        sweep(check_flattening_differential, 200..215);
    }

    #[test]
    fn isa_consistency_smoke() {
        sweep(|p| check_isa_consistency(p, false), 300..315);
    }

    #[test]
    fn sweep_reports_are_shard_count_invariant() {
        let serial = parallel_sweep(0..12, 1, |p| check_compiler_differential(p, false));
        let sharded = parallel_sweep(0..12, 4, |p| check_compiler_differential(p, false));
        assert_eq!(serial.total, sharded.total);
        assert_eq!(serial.conclusive, sharded.conclusive);
        assert_eq!(serial.inconclusive, sharded.inconclusive);
        let strip = |c: &Counters| {
            c.iter()
                .filter(|(k, _)| *k != "core.diff.shards")
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&serial.counters), strip(&sharded.counters));
        assert_eq!(sharded.shards, 4);
    }

    #[test]
    fn a_planted_compiler_bug_is_caught() {
        // "Compile" a different program than we interpret: the traces must
        // differ, proving the harness has teeth.
        use bedrock2::dsl::*;
        use bedrock2::Function;
        let honest = Program::from_functions([Function::new(
            "main",
            &[],
            &[],
            interact(
                &[],
                "MMIOWRITE",
                [lit(crate::debug_dev::DEBUG_BASE), lit(1)],
            ),
        )]);
        let crooked = Program::from_functions([Function::new(
            "main",
            &[],
            &[],
            interact(
                &[],
                "MMIOWRITE",
                [lit(crate::debug_dev::DEBUG_BASE), lit(2)],
            ),
        )]);
        let source = run_source(&honest).unwrap();
        let machine = run_compiled(&crooked, false).unwrap();
        assert!(compare(&source, &machine).is_err());
    }
}

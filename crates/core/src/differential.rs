//! The proof-shaped interface checks, as differential tests.
//!
//! Each function here corresponds to one proof in the paper's stack
//! (Figure 3), restated as "run both sides of the interface and compare
//! the observables":
//!
//! | paper proof                         | here                              |
//! |-------------------------------------|-----------------------------------|
//! | compiler correctness (§5.3)         | [`check_compiler_differential`]   |
//! | compiler phase 1 simulation         | `check_flattening_differential`   |
//! | optimizer soundness (our §7.2.1 baseline) | [`check_optimizer_differential`] |
//! | processor–ISA consistency (§5.8)    | [`check_isa_consistency`]         |
//! | pipelined ⊑ single-cycle (§5.7)     | re-exported `processor::refinement` |
//!
//! Source-level runs that hit undefined behavior or fuel exhaustion prove
//! nothing (the compiler promises nothing about them) and are reported as
//! [`DiffError::SourceUb`] so harnesses can discard them.

use crate::debug_dev::DebugDevice;
use crate::progen::ProgGen;
use crate::system::LightbulbRun;
use crate::system::{build_image, ProcessorKind, SystemConfig};
use bedrock2::ast::Program;
use bedrock2::semantics::Interp;
use bedrock2_compiler::{compile, CompileOptions, CompiledProgram, MmioExtCompiler};
use devices::{Board, FaultPlan, FrameFault, TrafficGen};
use lightbulb::{good_hl_trace, probe, MmioBridge};
use obs::json::Value;
use obs::Counters;
use processor::refinement::ReplayHandler;
use processor::{Divergence, SingleCycle};
use riscv_spec::{Memory, MmioEvent, SpecMachine, StepOutcome};
use std::fmt::Write as _;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// Fuel for source-level runs.
const SOURCE_FUEL: u64 = 4_000_000;
/// Instruction budget for machine-level runs.
const MACHINE_FUEL: u64 = 40_000_000;
/// RAM for machine-level runs.
const RAM: u32 = 0x1_0000;

/// A differential-check failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffError {
    /// The source run hit UB or ran out of fuel: the run is inconclusive
    /// (not a compiler bug).
    SourceUb(String),
    /// The program failed to compile.
    CompileError(String),
    /// The compiled program hit a machine error although the source ran
    /// clean — a compiler or machine bug.
    MachineError(String),
    /// The compiled program did not halt within the budget.
    MachineTimeout,
    /// The observable traces differ.
    TraceMismatch {
        /// First differing index.
        index: usize,
        /// Source-side event (if any).
        source: Option<MmioEvent>,
        /// Machine-side event (if any).
        machine: Option<MmioEvent>,
    },
    /// A run's MMIO trace fell outside the top-level trace specification —
    /// a driver-hardening bug, or a fault shape the spec does not classify.
    SpecViolation {
        /// Events matched before the trace left the specification.
        matched: usize,
        /// Total events in the trace.
        total: usize,
        /// Which machine model produced the trace.
        model: &'static str,
    },
    /// The run stayed inside the spec but the workload did not complete
    /// within the cycle budget. Transient under a bigger budget; a
    /// liveness failure once retries exhaust the escalation schedule.
    /// Produced only when [`FaultSweepConfig::require_done`] is set.
    WorkloadIncomplete {
        /// Frames the board delivered before the budget ran out.
        delivered: u64,
        /// Frames the plan lets through (injected minus dropped).
        expected: u64,
    },
}

impl DiffError {
    /// True for failures a bigger budget might clear (fuel/cycle
    /// exhaustion): the sweep engine retries these with escalating budgets
    /// before classifying the seed as failed. Everything else is a hard
    /// disagreement and retrying would only reproduce it.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DiffError::MachineTimeout | DiffError::WorkloadIncomplete { .. }
        )
    }
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::SourceUb(e) => write!(f, "source run inconclusive: {e}"),
            DiffError::CompileError(e) => write!(f, "compile error: {e}"),
            DiffError::MachineError(e) => write!(f, "machine error on clean source: {e}"),
            DiffError::MachineTimeout => write!(f, "compiled program did not halt"),
            DiffError::TraceMismatch {
                index,
                source,
                machine,
            } => write!(
                f,
                "trace mismatch at {index}: source {source:?} vs machine {machine:?}"
            ),
            DiffError::SpecViolation {
                matched,
                total,
                model,
            } => write!(
                f,
                "spec violation on the {model} model: trace leaves goodHlTrace \
                 after {matched} of {total} events"
            ),
            DiffError::WorkloadIncomplete {
                delivered,
                expected,
            } => write!(
                f,
                "workload incomplete: {delivered} of {expected} frames delivered \
                 within the cycle budget"
            ),
        }
    }
}

impl std::error::Error for DiffError {}

/// Runs `main` at the source level, returning its observation trace.
///
/// # Errors
///
/// [`DiffError::SourceUb`] when the run is inconclusive.
pub fn run_source(prog: &Program) -> Result<Vec<MmioEvent>, DiffError> {
    let mut interp = Interp::new(
        prog,
        Memory::with_size(RAM),
        MmioBridge::new(DebugDevice::new()),
    )
    .with_fuel(SOURCE_FUEL);
    interp
        .call("main", &[])
        .map_err(|e| DiffError::SourceUb(e.to_string()))?;
    Ok(interp.ext.events)
}

/// Compiles `main` and runs it on the ISA spec machine, returning the
/// observation trace.
///
/// # Errors
///
/// Compilation failures, machine errors, and timeouts.
pub fn run_compiled(prog: &Program, optimize: bool) -> Result<Vec<MmioEvent>, DiffError> {
    run_compiled_with(
        prog,
        CompileOptions {
            optimize,
            ..CompileOptions::default()
        },
    )
}

/// Like [`run_compiled`] with explicit options (used by the spill-all
/// ablation sweep).
///
/// # Errors
///
/// Compilation failures, machine errors, and timeouts.
pub fn run_compiled_with(
    prog: &Program,
    opts: CompileOptions,
) -> Result<Vec<MmioEvent>, DiffError> {
    let image = compile(prog, &MmioExtCompiler, &opts)
        .map_err(|e| DiffError::CompileError(e.to_string()))?;
    let mut m = SpecMachine::new(Memory::with_size(RAM), DebugDevice::new());
    m.load_program(0, &image.words());
    match m.run_until_ebreak(MACHINE_FUEL) {
        Ok(StepOutcome::Halted { .. }) => Ok(m.trace),
        Ok(StepOutcome::OutOfFuel) => Err(DiffError::MachineTimeout),
        Err(e) => Err(DiffError::MachineError(e.to_string())),
    }
}

fn compare(a: &[MmioEvent], b: &[MmioEvent]) -> Result<(), DiffError> {
    let n = a.len().max(b.len());
    for i in 0..n {
        if a.get(i) != b.get(i) {
            return Err(DiffError::TraceMismatch {
                index: i,
                source: a.get(i).copied(),
                machine: b.get(i).copied(),
            });
        }
    }
    Ok(())
}

/// Compiler correctness on one program: the compiled code's I/O trace on
/// the ISA spec machine equals the interpreter's.
///
/// # Errors
///
/// [`DiffError::SourceUb`] for inconclusive runs; any other variant is a
/// genuine bug.
pub fn check_compiler_differential(prog: &Program, optimize: bool) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let machine = run_compiled(prog, optimize)?;
    compare(&source, &machine)
}

/// Compiler correctness with the spill-everything ablation: the degenerate
/// no-register allocation must still be correct (it exercises every spill
/// path of the code generator).
///
/// # Errors
///
/// Like [`check_compiler_differential`].
pub fn check_spill_all_differential(prog: &Program) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let machine = run_compiled_with(
        prog,
        CompileOptions {
            spill_everything: true,
            ..CompileOptions::default()
        },
    )?;
    compare(&source, &machine)
}

/// Phase-1 (flattening) correctness on one program.
///
/// # Errors
///
/// Like [`check_compiler_differential`], at the FlatImp level.
pub fn check_flattening_differential(prog: &Program) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let flat = bedrock2_compiler::flatten::flatten_program(prog);
    let mut fi = bedrock2_compiler::flatimp::FlatInterp::new(
        &flat,
        Memory::with_size(RAM),
        MmioBridge::new(DebugDevice::new()),
    );
    fi.call("main", &[])
        .map_err(|e| DiffError::MachineError(format!("{e:?}")))?;
    let flat_events: Vec<MmioEvent> = fi
        .trace
        .iter()
        .map(|io| match io.action.as_str() {
            "MMIOREAD" => MmioEvent::load(io.args[0], io.rets[0]),
            "MMIOWRITE" => MmioEvent::store(io.args[0], io.args[1]),
            other => panic!("unexpected action {other}"),
        })
        .collect();
    compare(&source, &flat_events)
}

/// Optimizer soundness on one program: optimized and unoptimized binaries
/// produce the same trace.
///
/// # Errors
///
/// Like [`check_compiler_differential`].
pub fn check_optimizer_differential(prog: &Program) -> Result<(), DiffError> {
    let source = run_source(prog)?;
    let optimized = run_compiled(prog, true)?;
    compare(&source, &optimized)
}

/// ISA consistency (§5.8) on one program: the single-cycle Kami spec core
/// agrees with the riscv-spec machine on every observable, provided the
/// software contract holds (which the spec-machine run itself checks).
///
/// # Errors
///
/// [`DiffError::SourceUb`] when even the spec machine flags the program;
/// mismatches otherwise.
pub fn check_isa_consistency(prog: &Program, optimize: bool) -> Result<(), DiffError> {
    let opts = CompileOptions {
        optimize,
        ..CompileOptions::default()
    };
    let image = compile(prog, &MmioExtCompiler, &opts)
        .map_err(|e| DiffError::CompileError(e.to_string()))?;

    let mut m = SpecMachine::new(Memory::with_size(RAM), DebugDevice::new());
    m.load_program(0, &image.words());
    match m.run_until_ebreak(MACHINE_FUEL) {
        Ok(StepOutcome::Halted { .. }) => {}
        // Fuel exhaustion and UB are both outside the consistency
        // statement (§5.8): the run proves nothing about the cores.
        Ok(StepOutcome::OutOfFuel) => {
            return Err(DiffError::SourceUb("machine fuel exhausted".to_string()))
        }
        Err(e) => return Err(DiffError::SourceUb(e.to_string())),
    }

    let mut core = processor::SingleCycle::new(&image.bytes(), RAM, DebugDevice::new());
    core.run(MACHINE_FUEL);
    if !core.halted {
        return Err(DiffError::MachineTimeout);
    }
    compare(&m.trace, &core.mem.events())?;

    // Architectural state must agree too.
    for r in 1..32u8 {
        let (a, b) = (m.regs[r as usize], core.rf.read(r));
        if a != b {
            return Err(DiffError::TraceMismatch {
                index: usize::MAX,
                source: Some(MmioEvent::load(r as u32, a)),
                machine: Some(MmioEvent::load(r as u32, b)),
            });
        }
    }
    Ok(())
}

/// The classified result of one seed, after panic isolation and retries.
/// The engine folds these into the [`SweepReport`] aggregates; the enum is
/// public so custom harnesses can pattern-match checkpoint/triage output.
#[derive(Clone, Debug)]
pub enum SeedOutcome {
    /// The check passed (possibly after retries).
    Passed {
        /// The seed that passed.
        seed: u64,
    },
    /// Discarded as [`DiffError::SourceUb`] (outside every theorem).
    Inconclusive {
        /// The seed discarded.
        seed: u64,
        /// Why the run proves nothing.
        reason: String,
    },
    /// A genuine disagreement (transient errors already retried).
    Failed {
        /// The failing seed.
        seed: u64,
        /// What went wrong.
        error: DiffError,
    },
    /// The check panicked; the panic was caught, the seed recorded, and
    /// the rest of the sweep continued.
    Panicked {
        /// The seed whose check panicked.
        seed: u64,
        /// The panic payload (message), when it was a string.
        payload: String,
    },
}

/// How the sweep engine retries transiently-failing seeds
/// ([`DiffError::is_transient`]): up to `attempts` tries per seed, the
/// attempt index passed to the check so it can escalate its budget, with
/// a bounded exponential backoff between tries.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per seed (≥ 1; 1 means no retry).
    pub attempts: u32,
    /// Backoff before the first retry, in milliseconds (doubles per
    /// retry).
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff, in milliseconds — the schedule is
    /// bounded by `attempts * backoff_cap_ms` total sleep.
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    /// No retries: every error classifies immediately.
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base_backoff_ms: 0,
            backoff_cap_ms: 0,
        }
    }
}

impl RetryPolicy {
    /// The fault-sweep default: three attempts (quick, escalated,
    /// escalated-again budgets) with a short bounded backoff.
    pub fn escalating() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base_backoff_ms: 2,
            backoff_cap_ms: 20,
        }
    }

    /// The sleep before retry number `retry` (1-based), capped.
    fn backoff(&self, retry: u32) -> std::time::Duration {
        let ms = self
            .base_backoff_ms
            .saturating_mul(1u64 << (retry - 1).min(16))
            .min(self.backoff_cap_ms);
        std::time::Duration::from_millis(ms)
    }
}

/// Knobs for [`resilient_sweep`] beyond the seed range and shard count.
#[derive(Clone, Debug, Default)]
pub struct SweepOptions {
    /// Retry schedule for transient failures.
    pub retry: RetryPolicy,
    /// Write a [`crate::checkpoint::SweepCheckpoint`] to this path as the
    /// sweep progresses.
    pub checkpoint: Option<CheckpointConfig>,
    /// Resume from a previously written checkpoint: completed seeds are
    /// skipped and their recorded outcomes merged as if just computed.
    pub resume: Option<crate::checkpoint::SweepCheckpoint>,
    /// Cooperative cancellation: when set to `true` mid-sweep, every shard
    /// stops at its next seed boundary, a final checkpoint is written, and
    /// the report comes back with `interrupted = true`.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

/// Where and how often checkpoints are written.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Checkpoint file path (written atomically: temp file + rename).
    pub path: std::path::PathBuf,
    /// Write after every N completed seeds (across all shards).
    pub every: u64,
    /// Workload tag recorded in the file; resume refuses a tag mismatch so
    /// a checkpoint can never silently resume a different sweep.
    pub tag: String,
}

/// The outcome of a sharded seed sweep ([`parallel_sweep`],
/// [`resilient_sweep`]).
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Seeds swept.
    pub total: u64,
    /// Runs where both sides completed and agreed.
    pub conclusive: u64,
    /// Runs discarded as [`DiffError::SourceUb`] (outside every theorem).
    pub inconclusive: u64,
    /// Genuine disagreements, in ascending-seed order.
    pub failures: Vec<(u64, DiffError)>,
    /// Seeds whose check panicked (caught per seed; the sweep completed
    /// without them), in ascending-seed order.
    pub panicked: Vec<(u64, String)>,
    /// `core.diff.*` counters, merged from the per-shard registries in
    /// shard order (summed counters make the merge order-insensitive, so
    /// reports are identical across shard counts).
    pub counters: Counters,
    /// Shards the sweep actually used.
    pub shards: usize,
    /// First seed of the sweep.
    pub start: u64,
    /// Seeds per shard (the last shard may run fewer).
    pub chunk: u64,
    /// True when the sweep was cancelled before covering every seed; the
    /// checkpoint (if configured) holds the exact resume point.
    pub interrupted: bool,
    /// Path of the last checkpoint written, for error messages.
    pub checkpoint_path: Option<String>,
    /// Shrunken counterexamples for failing seeds (filled by
    /// [`fault_sweep_with`] when triage is enabled).
    pub triage: Vec<crate::triage::TriageSummary>,
}

impl SweepReport {
    /// Which shard a seed ran in: seeds are split into contiguous chunks,
    /// shard 0 first.
    pub fn shard_of(&self, seed: u64) -> usize {
        seed.saturating_sub(self.start)
            .checked_div(self.chunk)
            .unwrap_or(0) as usize
    }

    /// True when nothing failed, nothing panicked, and the sweep ran to
    /// completion.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.panicked.is_empty() && !self.interrupted
    }

    /// Panics with the first failing seed — and the shard it ran in — if
    /// any: the sweep analogue of `Result::unwrap` for test harnesses.
    /// The message carries everything a reproduction needs: the one-liner
    /// seed-range repro, the checkpoint path when one was written, and the
    /// triage summaries (minimal plan size + divergence site) when
    /// shrinking ran. Panicked seeds and interrupted sweeps fail too —
    /// a sweep that did not cover its range proves nothing.
    pub fn expect_clean(&self, name: &str) {
        if self.is_clean() {
            return;
        }
        let mut msg = String::new();
        if let Some((seed, e)) = self.failures.first() {
            let _ = write!(
                msg,
                "{name}: {} of {} seeds failed; first is seed {seed} in shard {}/{} \
                 (reproduce: rerun the check on seed range {seed}..{} with 1 shard): {e}",
                self.failures.len(),
                self.total,
                self.shard_of(*seed),
                self.shards,
                seed + 1,
            );
        } else if let Some((seed, payload)) = self.panicked.first() {
            let _ = write!(
                msg,
                "{name}: {} of {} seeds panicked; first is seed {seed} in shard {}/{}: {payload}",
                self.panicked.len(),
                self.total,
                self.shard_of(*seed),
                self.shards,
            );
        } else {
            let _ = write!(
                msg,
                "{name}: sweep interrupted after {} of {} seeds",
                self.conclusive + self.inconclusive,
                self.total,
            );
        }
        if !self.failures.is_empty() && !self.panicked.is_empty() {
            let _ = write!(msg, "; plus {} panicked seed(s)", self.panicked.len());
        }
        for t in &self.triage {
            let _ = write!(
                msg,
                "\n  triage: seed {} shrank {} -> {} fault atoms; {}",
                t.seed, t.original_atoms, t.minimal_atoms, t.divergence
            );
        }
        if let Some(path) = &self.checkpoint_path {
            let _ = write!(msg, "\n  checkpoint: {path}");
        }
        panic!("{msg}");
    }

    /// The canonical JSON rendering of the report (`sweep-report/v1`).
    /// Two sweeps over the same seeds with the same check render
    /// byte-identically, regardless of shard count and regardless of
    /// whether either was interrupted and resumed — the property the
    /// checkpoint tests pin down. `checkpoint_path` is deliberately
    /// excluded: it describes how the sweep was driven, not what it found.
    pub fn to_json(&self) -> Value {
        Value::obj()
            .field("schema", Value::Str("sweep-report/v1".into()))
            .field("total", Value::UInt(self.total))
            .field("conclusive", Value::UInt(self.conclusive))
            .field("inconclusive", Value::UInt(self.inconclusive))
            .field("interrupted", Value::Bool(self.interrupted))
            .field(
                "failures",
                Value::Arr(
                    self.failures
                        .iter()
                        .map(|(seed, e)| {
                            Value::obj()
                                .field("seed", Value::UInt(*seed))
                                .field("error", crate::checkpoint::error_to_json(e))
                        })
                        .collect(),
                ),
            )
            .field(
                "panicked",
                Value::Arr(
                    self.panicked
                        .iter()
                        .map(|(seed, payload)| {
                            Value::obj()
                                .field("seed", Value::UInt(*seed))
                                .field("payload", Value::Str(payload.clone()))
                        })
                        .collect(),
                ),
            )
            .field("shards", Value::UInt(self.shards as u64))
            .field("start", Value::UInt(self.start))
            .field("chunk", Value::UInt(self.chunk))
            .field(
                "triage",
                Value::Arr(self.triage.iter().map(|t| t.to_json()).collect()),
            )
            .field(
                "counters",
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), Value::UInt(v)))
                        .collect(),
                ),
            )
    }
}

/// Shard count matching the host: one per available hardware thread.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sweeps `seeds` through `check` on programs from the default
/// [`ProgGen`], sharded across `shards` OS threads.
///
/// Results are deterministic regardless of `shards`: seeds are split into
/// contiguous chunks, each shard reports into its own [`Counters`], and
/// shard results are merged in shard (= ascending seed) order.
pub fn parallel_sweep<C>(seeds: Range<u64>, shards: usize, check: C) -> SweepReport
where
    C: Fn(&Program) -> Result<(), DiffError> + Sync,
{
    parallel_sweep_with(
        seeds,
        shards,
        |seed| ProgGen::new(seed).gen_program(),
        check,
    )
}

/// [`parallel_sweep`] with a custom seed-to-program generator (e.g. a
/// [`ProgGen`] with a non-default `GenConfig`).
pub fn parallel_sweep_with<G, C>(
    seeds: Range<u64>,
    shards: usize,
    generate: G,
    check: C,
) -> SweepReport
where
    G: Fn(u64) -> Program + Sync,
    C: Fn(&Program) -> Result<(), DiffError> + Sync,
{
    sweep_seeds(seeds, shards, |seed, _| check(&generate(seed)))
}

/// The sharding engine behind the legacy sweeps: [`resilient_sweep`] with
/// default options (no retry, no checkpointing) and the attempt index
/// hidden from the check.
fn sweep_seeds<C>(seeds: Range<u64>, shards: usize, check: C) -> SweepReport
where
    C: Fn(u64, &mut Counters) -> Result<(), DiffError> + Sync,
{
    resilient_sweep(seeds, shards, &SweepOptions::default(), |seed, _, c| {
        check(seed, c)
    })
}

/// Extracts a printable message from a caught panic payload.
fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one seed to a classified [`SeedOutcome`]: the check is guarded by
/// `catch_unwind` (a panicking seed is an outcome, not a poisoned sweep),
/// and transient failures are retried up to the policy's attempt budget
/// with the attempt index passed through so the check can escalate fuel.
fn run_seed<C>(seed: u64, retry: &RetryPolicy, counters: &mut Counters, check: &C) -> SeedOutcome
where
    C: Fn(u64, u32, &mut Counters) -> Result<(), DiffError> + Sync,
{
    let attempts = retry.attempts.max(1);
    let mut attempt = 0;
    loop {
        // The closure touches the shard's counters across the unwind
        // boundary; a panicking seed may leave partial telemetry behind,
        // which stays deterministic because the same partial work happens
        // at every shard count.
        let result = catch_unwind(AssertUnwindSafe(|| check(seed, attempt, &mut *counters)));
        match result {
            Err(payload) => {
                // Panics are deterministic here (no I/O, no wall-clock in
                // the checks), so retrying would only panic again.
                return SeedOutcome::Panicked {
                    seed,
                    payload: panic_payload(payload),
                };
            }
            Ok(Ok(())) => {
                if attempt > 0 {
                    counters.add("core.diff.recovered_seeds", 1);
                }
                return SeedOutcome::Passed { seed };
            }
            Ok(Err(DiffError::SourceUb(reason))) => {
                return SeedOutcome::Inconclusive { seed, reason }
            }
            Ok(Err(e)) if e.is_transient() && attempt + 1 < attempts => {
                if attempt == 0 {
                    counters.add("core.diff.retried_seeds", 1);
                }
                counters.add("core.diff.retry_attempts", 1);
                attempt += 1;
                let backoff = retry.backoff(attempt);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            Ok(Err(error)) => return SeedOutcome::Failed { seed, error },
        }
    }
}

/// The crash-resilient sharding engine behind every sweep: runs `check`
/// once per seed (attempt index second), split into contiguous chunks
/// across OS threads. Per seed, panics are caught and recorded
/// ([`SeedOutcome::Panicked`]) and transient failures retried
/// ([`RetryPolicy`]); per sweep, progress can be checkpointed atomically
/// and resumed ([`SweepOptions::checkpoint`] / [`SweepOptions::resume`]),
/// with the resumed report byte-identical to an uninterrupted run's.
///
/// `check` may record per-seed telemetry into the shard's [`Counters`];
/// summed counters merge order-insensitively, so reports stay identical
/// across shard counts.
///
/// # Panics
///
/// Panics when `opts.resume` carries a checkpoint whose geometry or tag
/// does not match this sweep — resuming a different sweep would silently
/// fabricate results. CLI frontends validate first via
/// [`crate::checkpoint::SweepCheckpoint::validate`].
pub fn resilient_sweep<C>(
    seeds: Range<u64>,
    shards: usize,
    opts: &SweepOptions,
    check: C,
) -> SweepReport
where
    C: Fn(u64, u32, &mut Counters) -> Result<(), DiffError> + Sync,
{
    use crate::checkpoint::{ShardProgress, SweepCheckpoint};

    let start = seeds.start;
    let all: Vec<u64> = seeds.collect();
    let shards = shards.clamp(1, all.len().max(1));
    let chunk = all.len().div_ceil(shards);
    let shards_used = if all.is_empty() {
        1
    } else {
        all.chunks(chunk).count()
    };

    if let Some(cp) = &opts.resume {
        let tag = opts.checkpoint.as_ref().map(|c| c.tag.as_str());
        cp.validate(start, all.len() as u64, shards_used, chunk as u64, tag)
            .unwrap_or_else(|e| panic!("cannot resume this sweep from the checkpoint: {e}"));
    }

    // One live progress record per shard, shared with the checkpoint
    // writer. Writes go through a temp-file rename, so a kill at any
    // moment leaves either the previous or the next complete checkpoint.
    let progress: Mutex<SweepCheckpoint> = Mutex::new(match &opts.resume {
        Some(cp) => cp.clone(),
        None => SweepCheckpoint::fresh(
            opts.checkpoint.as_ref().map_or("", |c| c.tag.as_str()),
            start,
            all.len() as u64,
            shards_used,
            chunk as u64,
        ),
    });
    let written = std::sync::atomic::AtomicU64::new(0);

    let checkpoint_tick = |shard_idx: usize, state: &ShardProgress, force: bool| {
        let Some(cfg) = &opts.checkpoint else { return };
        let mut cp = progress
            .lock()
            .expect("checkpoint mutex poisoned: a previous tick panicked while writing");
        cp.shard_states[shard_idx] = state.clone();
        let n = written.fetch_add(1, Ordering::Relaxed) + 1;
        if force || n.is_multiple_of(cfg.every.max(1)) {
            if let Err(e) = cp.write_atomic(&cfg.path) {
                // A failed checkpoint write must not kill the sweep it
                // exists to protect; the sweep still completes, only
                // resumability degrades to the previous snapshot.
                eprintln!(
                    "warning: checkpoint write to {} failed: {e}",
                    cfg.path.display()
                );
            }
        }
    };

    let cancelled = || {
        opts.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    };

    let run_shard = |shard_idx: usize, seeds: &[u64]| -> ShardProgress {
        let mut state = match &opts.resume {
            Some(cp) => cp.shard_states[shard_idx].clone(),
            None => ShardProgress::default(),
        };
        for &seed in seeds.iter().skip(state.done as usize) {
            if cancelled() {
                checkpoint_tick(shard_idx, &state, true);
                return state;
            }
            match run_seed(seed, &opts.retry, &mut state.counters, &check) {
                SeedOutcome::Passed { .. } => state.conclusive += 1,
                SeedOutcome::Inconclusive { .. } => state.inconclusive += 1,
                SeedOutcome::Failed { seed, error } => state.failures.push((seed, error)),
                SeedOutcome::Panicked { seed, payload } => {
                    state.counters.add("core.diff.panicked", 1);
                    state.panicked.push((seed, payload));
                }
            }
            state.done += 1;
            checkpoint_tick(shard_idx, &state, false);
        }
        state
    };

    let results: Vec<ShardProgress> = if shards == 1 || all.is_empty() {
        vec![run_shard(0, &all)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = all
                .chunks(chunk)
                .enumerate()
                .map(|(i, c)| s.spawn(move || run_shard(i, c)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // The per-seed check is unwind-guarded, so a shard
                    // thread can only die if the engine's own bookkeeping
                    // panicked — that is a bug worth aborting on, with a
                    // message saying whose fault it is.
                    h.join()
                        .expect("sweep shard thread died outside the guarded check (engine bug)")
                })
                .collect()
        })
    };

    let done: u64 = results.iter().map(|s| s.done).sum();
    let mut report = SweepReport {
        total: all.len() as u64,
        shards: shards_used,
        start,
        chunk: chunk as u64,
        interrupted: done < all.len() as u64,
        checkpoint_path: opts
            .checkpoint
            .as_ref()
            .map(|c| c.path.display().to_string()),
        ..SweepReport::default()
    };
    for state in &results {
        let mut counters = state.counters.clone();
        counters.set("core.diff.seeds", state.done);
        counters.set("core.diff.conclusive", state.conclusive);
        counters.set("core.diff.inconclusive", state.inconclusive);
        counters.set("core.diff.failures", state.failures.len() as u64);
        report.conclusive += state.conclusive;
        report.inconclusive += state.inconclusive;
        report.failures.extend(state.failures.iter().cloned());
        report.panicked.extend(state.panicked.iter().cloned());
        report.counters.merge(&counters);
    }
    report.counters.set("core.diff.shards", shards_used as u64);
    // Seal the checkpoint with every shard's final state so a resume of a
    // finished sweep is a no-op that reproduces the same report.
    if let Some(last) = results.len().checked_sub(1) {
        checkpoint_tick(last, &results[last], true);
    }
    report
}

/// Configuration for [`fault_sweep`]: the system under test and the
/// per-seed workload.
#[derive(Clone, Debug)]
pub struct FaultSweepConfig {
    /// Base system configuration — driver options, SPI wire speed,
    /// pipeline shape. The sweep runs it on both the pipelined core and
    /// the ISA spec machine regardless of its `processor` field.
    pub system: SystemConfig,
    /// Command frames injected per run (alternating on/off), each subject
    /// to the plan's frame faults.
    pub frames: usize,
    /// First-pass cycle budget. Most plans finish their whole workload
    /// well within it; spec-checking cost is linear in trace length, so
    /// keeping easy runs short is what makes thousand-seed sweeps cheap.
    pub quick_cycles: u64,
    /// Full cycle budget, used only when the quick pass did not consume
    /// the workload (hard register faults and long stalls). Sized so a
    /// plan's worst case — two failed bring-up attempts plus an RX stall
    /// and re-initialization — still reaches steady state.
    pub max_cycles: u64,
    /// Additionally require the workload to *finish* (every non-dropped
    /// frame delivered, pending queue drained) within the full budget,
    /// reporting [`DiffError::WorkloadIncomplete`] otherwise. Off by
    /// default: the base sweep checks safety (spec satisfaction and
    /// refinement), and recoverable plans are calibrated for that; this
    /// flag turns the sweep into a liveness check, the mode the triage
    /// demo uses to plant a deliberate failure.
    pub require_done: bool,
}

impl Default for FaultSweepConfig {
    fn default() -> FaultSweepConfig {
        FaultSweepConfig {
            system: SystemConfig::default(),
            frames: 3,
            quick_cycles: 250_000,
            max_cycles: 800_000,
            require_done: false,
        }
    }
}

/// Checks one seeded fault plan end to end (one [`fault_sweep`] unit):
///
/// 1. the **pipelined processor** runs the image against a board faulted
///    by `FaultPlan::from_seed(seed)`; its trace must stay a prefix of
///    `goodHlTrace` (the hardened drivers must classify every injected
///    fault as a recoverable-failure shape);
/// 2. the **ISA spec machine** runs against a fresh, identically faulted
///    board; the run must be UB-free and its trace must also satisfy the
///    spec (faults are interaction-keyed, so the same plan is meaningful
///    on both models even though their tick rates differ);
/// 3. the pipelined trace is **replayed** into the single-cycle spec core
///    ([`ReplayHandler`]): under the same input nondeterminism the spec
///    core must produce the identical trace, so the faulted run still
///    refines the ISA.
///
/// Driver-recovery telemetry (`devices.faults.injected`, `driver.retries`,
/// `driver.reinit`) is added to `counters`. Reproduce a sweep failure with
/// `fault_check(seed, &cfg, &build_image(&cfg.system), &mut Counters::new())`.
///
/// # Errors
///
/// [`DiffError::SpecViolation`] when a trace leaves the specification,
/// [`DiffError::MachineError`] when the spec machine flags UB, and
/// [`DiffError::TraceMismatch`] when the replay diverges.
pub fn fault_check(
    seed: u64,
    cfg: &FaultSweepConfig,
    image: &CompiledProgram,
    counters: &mut Counters,
) -> Result<(), DiffError> {
    fault_check_plan(&FaultPlan::from_seed(seed), cfg, image, counters)
}

/// [`fault_check`] on an explicit plan instead of a seeded one: the unit
/// the triage minimizer probes with candidate sub-plans, and what
/// `fault_sweep --replay-plan` runs on a minimized artifact. The traffic
/// workload is still derived from `plan.seed`, so a sub-plan faces the
/// same frames its parent did.
///
/// # Errors
///
/// Like [`fault_check`], plus [`DiffError::WorkloadIncomplete`] when
/// [`FaultSweepConfig::require_done`] is set and the workload stalls.
pub fn fault_check_plan(
    plan: &FaultPlan,
    cfg: &FaultSweepConfig,
    image: &CompiledProgram,
    counters: &mut Counters,
) -> Result<(), DiffError> {
    let seed = plan.seed;
    let mut gen = TrafficGen::new(seed);
    let frames: Vec<Vec<u8>> = (0..cfg.frames).map(|i| gen.command(i % 2 == 0)).collect();
    let spec = good_hl_trace(cfg.system.driver);

    // Frames the plan drops never reach the chip; everything else must be
    // consumed (status popped, pending queue empty) for a run to count as
    // "workload done".
    let expected_arrivals = cfg.frames as u64
        - plan
            .frame_faults
            .iter()
            .filter(|(i, f)| (*i as usize) < cfg.frames && matches!(f, FrameFault::Drop))
            .count() as u64;
    let done = |run: &LightbulbRun| {
        run.report.counters.get("board.lan9250.frames_delivered") >= expected_arrivals
            && run.report.counters.get("board.lan9250.frames_pending") == 0
    };
    // Adaptive budget: a quick pass suffices for most plans; rerun from
    // scratch with the full budget when faults kept the workload from
    // finishing. Both passes are pure functions of the seed, so results
    // stay deterministic across runs and shard counts.
    let run_on = |kind: ProcessorKind| {
        let mut sys = cfg.system;
        sys.processor = kind;
        let quick = sys.run_faulted(image, plan, &frames, cfg.quick_cycles);
        if done(&quick) || cfg.max_cycles <= cfg.quick_cycles {
            quick
        } else {
            sys.run_faulted(image, plan, &frames, cfg.max_cycles)
        }
    };

    let pipe = run_on(ProcessorKind::Pipelined);
    let activity = probe::scan(&pipe.events);
    counters.add(
        "devices.faults.injected",
        pipe.report.counters.get("devices.faults.injected"),
    );
    counters.add("driver.retries", activity.retries);
    counters.add("driver.reinit", activity.reinits);
    if !spec.matches_prefix(&pipe.events) {
        return Err(DiffError::SpecViolation {
            matched: spec.longest_matching_prefix(&pipe.events),
            total: pipe.events.len(),
            model: "pipelined",
        });
    }

    let sm = run_on(ProcessorKind::SpecMachine);
    if let Some(e) = sm.error {
        return Err(DiffError::MachineError(format!(
            "spec machine under fault plan {seed}: {e}"
        )));
    }
    if !spec.matches_prefix(&sm.events) {
        return Err(DiffError::SpecViolation {
            matched: spec.longest_matching_prefix(&sm.events),
            total: sm.events.len(),
            model: "spec machine",
        });
    }

    if cfg.require_done && (!done(&pipe) || !done(&sm)) {
        let delivered = pipe
            .report
            .counters
            .get("board.lan9250.frames_delivered")
            .min(sm.report.counters.get("board.lan9250.frames_delivered"));
        return Err(DiffError::WorkloadIncomplete {
            delivered,
            expected: expected_arrivals,
        });
    }

    replay_into_spec_core(image, cfg.system.ram_bytes, &pipe.events, cfg.max_cycles)
}

/// Replays a recorded MMIO trace into the single-cycle spec core and
/// requires it to reproduce the trace exactly (the §5.7 refinement
/// statement, applied to a faulted run whose trace we already hold).
fn replay_into_spec_core(
    image: &CompiledProgram,
    ram_bytes: u32,
    events: &[MmioEvent],
    max_cycles: u64,
) -> Result<(), DiffError> {
    let replay = ReplayHandler::new(events.to_vec(), Board::claims);
    let mut core = SingleCycle::new(&image.bytes(), ram_bytes, replay);
    // The event loop never halts: run until the core has consumed every
    // recorded event (running further would overrun the replay queue,
    // which is not a divergence) or diverges. One instruction consumes at
    // most one event, so an event-bounded block cannot overrun, and
    // divergence is sticky inside `ReplayHandler`.
    while !core.halted && core.cycle < max_cycles {
        let remaining = events.len() - core.mem.mmio.consumed();
        if remaining == 0 {
            break;
        }
        let block = (max_cycles - core.cycle).min(1024).min(remaining as u64);
        core.run_block(block);
        if core.mem.mmio.divergence().is_some() {
            break;
        }
    }
    if let Some(d) = core.mem.mmio.divergence() {
        return match d {
            Divergence::TraceMismatch {
                index,
                implementation,
                spec,
            } => Err(DiffError::TraceMismatch {
                index: *index,
                source: *implementation,
                machine: Some(*spec),
            }),
            other => Err(DiffError::MachineError(format!(
                "replay divergence: {other:?}"
            ))),
        };
    }
    let replayed = core.mem.events();
    let n = replayed.len().min(events.len());
    if let Some(i) = (0..n).find(|&i| replayed[i] != events[i]) {
        return Err(DiffError::TraceMismatch {
            index: i,
            source: Some(events[i]),
            machine: Some(replayed[i]),
        });
    }
    Ok(())
}

/// Knobs for [`fault_sweep_with`] beyond the sweep itself.
#[derive(Clone, Debug)]
pub struct FaultSweepOptions {
    /// Engine options (retry schedule, checkpoint/resume, cancellation).
    pub sweep: SweepOptions,
    /// Shrink up to this many failing seeds into
    /// [`crate::triage::TriageReport`]s after the sweep (0 disables).
    pub triage: usize,
    /// Directory where full `TRIAGE_fault_sweep_seed<N>.json` artifacts
    /// are written (`None`: summaries only, no files).
    pub triage_dir: Option<std::path::PathBuf>,
}

impl Default for FaultSweepOptions {
    /// Escalating retries, triage of the first three failures, no
    /// checkpointing, no artifact files.
    fn default() -> FaultSweepOptions {
        FaultSweepOptions {
            sweep: SweepOptions {
                retry: RetryPolicy::escalating(),
                ..SweepOptions::default()
            },
            triage: 3,
            triage_dir: None,
        }
    }
}

/// The per-attempt budget escalation: each retry of a transiently-failing
/// seed doubles the full budget, capped at two doublings — bounded, like
/// the backoff schedule, so a genuinely dead seed classifies quickly.
pub fn escalate_budget(cfg: &FaultSweepConfig, attempt: u32) -> FaultSweepConfig {
    let mut out = cfg.clone();
    out.max_cycles = cfg.max_cycles << attempt.min(2);
    out
}

/// Sweeps seeded fault plans through [`fault_check`], sharded like
/// [`parallel_sweep`]. The boot image is compiled once and shared across
/// shards; each seed builds its own trace predicate (they are `Rc`-based
/// and stay thread-local). The report's counters carry the sweep's
/// aggregate fault/recovery telemetry. This is [`fault_sweep_with`] under
/// default options: escalating retries, automatic triage of the first few
/// failures, no checkpointing.
pub fn fault_sweep(seeds: Range<u64>, shards: usize, cfg: &FaultSweepConfig) -> SweepReport {
    fault_sweep_with(seeds, shards, cfg, &FaultSweepOptions::default())
}

/// [`fault_sweep`] with explicit [`FaultSweepOptions`]: panic-isolated,
/// retrying, checkpointable, and self-triaging. After the sweep, each
/// failing seed (up to `opts.triage`) is shrunk to a locally-minimal
/// fault plan with a named divergence site; summaries land in
/// [`SweepReport::triage`] (and in [`SweepReport::expect_clean`]'s panic
/// message), full reports in `opts.triage_dir` when set.
pub fn fault_sweep_with(
    seeds: Range<u64>,
    shards: usize,
    cfg: &FaultSweepConfig,
    opts: &FaultSweepOptions,
) -> SweepReport {
    let image = build_image(&cfg.system);
    let mut report = resilient_sweep(seeds, shards, &opts.sweep, |seed, attempt, counters| {
        fault_check_plan(
            &FaultPlan::from_seed(seed),
            &escalate_budget(cfg, attempt),
            &image,
            counters,
        )
    });

    // Failing seeds were classified at full escalation; triage probes the
    // same (deterministic) configuration the failure was confirmed at.
    let final_cfg = escalate_budget(cfg, opts.sweep.retry.attempts.saturating_sub(1));
    for (seed, _) in report.failures.iter().take(opts.triage) {
        let Some(tr) = crate::triage::triage_seed(*seed, &final_cfg, &image) else {
            continue;
        };
        let artifact = opts.triage_dir.as_ref().and_then(|dir| {
            let path = dir.join(format!("TRIAGE_fault_sweep_seed{seed}.json"));
            match crate::checkpoint::write_atomic(&path, &tr.to_json().render()) {
                Ok(()) => Some(path.display().to_string()),
                Err(e) => {
                    eprintln!("warning: could not write {}: {e}", path.display());
                    None
                }
            }
        });
        report.triage.push(tr.summary(artifact));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One seed sweep shared by the in-crate smoke tests; the heavyweight
    /// sweeps live in `tests/` and the bench harness.
    fn sweep(
        check: impl Fn(&Program) -> Result<(), DiffError> + Sync,
        seeds: std::ops::Range<u64>,
    ) {
        let r = parallel_sweep(seeds, default_shards(), check);
        r.expect_clean("smoke sweep");
        assert!(
            r.conclusive * 2 >= r.total,
            "too few conclusive runs: {}/{}",
            r.conclusive,
            r.total
        );
    }

    #[test]
    fn compiler_differential_smoke() {
        sweep(|p| check_compiler_differential(p, false), 0..15);
    }

    #[test]
    fn optimizer_differential_smoke() {
        sweep(check_optimizer_differential, 100..115);
    }

    #[test]
    fn flattening_differential_smoke() {
        sweep(check_flattening_differential, 200..215);
    }

    #[test]
    fn isa_consistency_smoke() {
        sweep(|p| check_isa_consistency(p, false), 300..315);
    }

    #[test]
    fn sweep_reports_are_shard_count_invariant() {
        let serial = parallel_sweep(0..12, 1, |p| check_compiler_differential(p, false));
        let sharded = parallel_sweep(0..12, 4, |p| check_compiler_differential(p, false));
        assert_eq!(serial.total, sharded.total);
        assert_eq!(serial.conclusive, sharded.conclusive);
        assert_eq!(serial.inconclusive, sharded.inconclusive);
        let strip = |c: &Counters| {
            c.iter()
                .filter(|(k, _)| *k != "core.diff.shards")
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&serial.counters), strip(&sharded.counters));
        assert_eq!(sharded.shards, 4);
    }

    #[test]
    fn a_planted_compiler_bug_is_caught() {
        // "Compile" a different program than we interpret: the traces must
        // differ, proving the harness has teeth.
        use bedrock2::dsl::*;
        use bedrock2::Function;
        let honest = Program::from_functions([Function::new(
            "main",
            &[],
            &[],
            interact(
                &[],
                "MMIOWRITE",
                [lit(crate::debug_dev::DEBUG_BASE), lit(1)],
            ),
        )]);
        let crooked = Program::from_functions([Function::new(
            "main",
            &[],
            &[],
            interact(
                &[],
                "MMIOWRITE",
                [lit(crate::debug_dev::DEBUG_BASE), lit(2)],
            ),
        )]);
        let source = run_source(&honest).unwrap();
        let machine = run_compiled(&crooked, false).unwrap();
        assert!(compare(&source, &machine).is_err());
    }
}

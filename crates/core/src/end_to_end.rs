//! The executable analogue of `end2end_lightbulb` (§5.9).
//!
//! The paper's theorem: for any memory holding the lightbulb binary at
//! address 0, every trace of the pipelined processor is (related to) a
//! *prefix* of a trace satisfying `goodHlTrace`. The prefix closure
//! matters because the theorem holds at every moment of execution, with no
//! notion of a loop iteration having "completed".
//!
//! [`end_to_end_lightbulb`] checks exactly that statement on a concrete
//! run: build the image, run the chosen processor against the board under
//! a traffic workload, and test the recorded MMIO trace with
//! `matches_prefix`. On failure it reports *where* the trace stopped
//! matching — the debugging affordance a failed `Qed` never gives you.

use crate::system::{LightbulbRun, SystemConfig};
use lightbulb::good_hl_trace;
use riscv_spec::MmioEvent;

/// Why an end-to-end check failed.
#[derive(Clone, Debug)]
pub enum EndToEndError {
    /// The machine aborted (software-contract violation on the spec
    /// machine).
    MachineError {
        /// The spec machine's error message.
        error: String,
        /// Cycles (retired instructions) executed before the abort.
        cycles: u64,
        /// The pc at the abort.
        pc: u32,
    },
    /// The trace is not a prefix of any `goodHlTrace` member.
    SpecViolation {
        /// Length of the longest matching prefix.
        matched: usize,
        /// Total events recorded.
        total: usize,
        /// The first few events after the match point.
        tail: Vec<MmioEvent>,
    },
    /// The lightbulb history differs from what the workload commands.
    WrongActuation {
        /// Expected on/off sequence.
        expected: Vec<bool>,
        /// Observed sequence.
        observed: Vec<bool>,
    },
}

impl std::fmt::Display for EndToEndError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EndToEndError::MachineError { error, cycles, pc } => {
                write!(
                    f,
                    "machine error after {cycles} cycles at pc 0x{pc:08x}: {error}"
                )
            }
            EndToEndError::SpecViolation {
                matched,
                total,
                tail,
            } => write!(
                f,
                "trace stops matching goodHlTrace at event {matched} of {total}; next: {tail:?}"
            ),
            EndToEndError::WrongActuation { expected, observed } => {
                write!(
                    f,
                    "actuation mismatch: expected {expected:?}, observed {observed:?}"
                )
            }
        }
    }
}

impl std::error::Error for EndToEndError {}

/// A successful end-to-end check.
#[derive(Clone, Debug)]
pub struct IntegrationReport {
    /// The run itself.
    pub run: LightbulbRun,
    /// Events checked against the specification.
    pub events_checked: usize,
    /// Whether the whole trace (not merely a prefix) is a member — true
    /// when the run stopped between interactions.
    pub complete_member: bool,
}

/// Runs the system under `frames` for `max_cycles` and checks the
/// end-to-end statement.
///
/// `expected` — when `Some`, additionally requires the lightbulb's write
/// history to equal the given on/off sequence (what the valid commands in
/// the workload demand).
///
/// # Errors
///
/// See [`EndToEndError`].
pub fn end_to_end_lightbulb(
    config: &SystemConfig,
    frames: &[Vec<u8>],
    max_cycles: u64,
    expected: Option<&[bool]>,
) -> Result<IntegrationReport, EndToEndError> {
    let run = config.run(frames, max_cycles);
    if let Some(e) = &run.error {
        return Err(EndToEndError::MachineError {
            error: e.clone(),
            cycles: run.cycles,
            pc: run.report.final_pc,
        });
    }
    let spec = good_hl_trace(config.driver);
    if !spec.matches_prefix(&run.events) {
        let matched = spec.longest_matching_prefix(&run.events);
        let tail = run.events[matched..run.events.len().min(matched + 8)].to_vec();
        return Err(EndToEndError::SpecViolation {
            matched,
            total: run.events.len(),
            tail,
        });
    }
    if let Some(expected) = expected {
        if run.bulb_history != expected {
            return Err(EndToEndError::WrongActuation {
                expected: expected.to_vec(),
                observed: run.bulb_history.clone(),
            });
        }
    }
    let complete_member = spec.matches(&run.events);
    Ok(IntegrationReport {
        events_checked: run.events.len(),
        complete_member,
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ProcessorKind;
    use devices::workload::{Malformation, TrafficGen};

    // Cycle budgets: boot completes within ~100k pipelined cycles and each
    // small packet costs ~70k more; keeping budgets tight also keeps the
    // recorded traces short enough for fast spec matching.
    const BOOT: u64 = 250_000;

    #[test]
    fn the_end_to_end_theorem_holds_on_a_quiet_network() {
        let report = end_to_end_lightbulb(&SystemConfig::default(), &[], BOOT, Some(&[])).unwrap();
        assert!(report.events_checked > 100);
    }

    #[test]
    fn the_end_to_end_theorem_holds_under_valid_commands() {
        let mut gen = TrafficGen::new(71);
        let frames = vec![gen.command(true), gen.command(false)];
        let report = end_to_end_lightbulb(
            &SystemConfig::default(),
            &frames,
            BOOT + 200_000,
            Some(&[true, false]),
        )
        .unwrap();
        assert!(!report.run.bulb_on);
    }

    #[test]
    fn the_end_to_end_theorem_holds_under_attack() {
        let mut gen = TrafficGen::new(73);
        let frames: Vec<Vec<u8>> = Malformation::ALL
            .iter()
            .map(|k| gen.malformed(*k))
            .collect();
        let report =
            end_to_end_lightbulb(&SystemConfig::default(), &frames, BOOT + 400_000, Some(&[]))
                .unwrap();
        assert!(!report.run.bulb_on, "no attack may touch the bulb");
    }

    #[test]
    fn the_check_also_passes_on_the_spec_machine() {
        // The spec machine additionally verifies the software contract
        // (alignment, XAddrs, MMIO ranges) at every instruction.
        let mut gen = TrafficGen::new(79);
        let config = SystemConfig {
            processor: ProcessorKind::SpecMachine,
            ..SystemConfig::default()
        };
        end_to_end_lightbulb(&config, &[gen.command(true)], 400_000, Some(&[true])).unwrap();
    }

    #[test]
    fn a_corrupted_trace_is_rejected_with_a_location() {
        // Sanity-check the checker itself: inject a rogue GPIO event into
        // an otherwise good trace.
        let config = SystemConfig::default();
        let mut run = config.run(&[], BOOT);
        assert!(run.error.is_none());
        run.events.push(MmioEvent::store(
            lightbulb::layout::GPIO_OUTPUT_VAL,
            lightbulb::layout::LIGHTBULB_MASK,
        ));
        let spec = good_hl_trace(config.driver);
        assert!(!spec.matches_prefix(&run.events));
        let matched = spec.longest_matching_prefix(&run.events);
        assert_eq!(
            matched,
            run.events.len() - 1,
            "violation localized to the rogue event"
        );
    }
}

//! Automatic failure triage: fault-plan shrinking and divergence location.
//!
//! A red [`crate::differential::fault_sweep`] seed hands the investigator a
//! [`devices::FaultPlan`] with a dozen-odd scheduled faults and a trace
//! thousands of events long — almost all of it irrelevant. This module
//! automates the first hour of that investigation, mirroring how the
//! paper's authors worked: a failed end-to-end proof attempt was reduced
//! to the smallest lemma-level counterexample before anyone stared at a
//! trace (§6's integration bugs were all found this way).
//!
//! * [`shrink_plan`] — delta debugging (ddmin) over the plan's
//!   [`devices::FaultAtom`]s: repeatedly re-check sub-plans, keeping any
//!   subset that still fails, until the plan is 1-minimal (removing any
//!   single remaining atom makes the failure disappear). Atoms are
//!   interaction-count-keyed and independent, so any subset is a valid
//!   plan ([`devices::FaultPlan::from_atoms`]).
//! * [`triage_seed`] / [`triage_plan`] — run the minimizer on a failing
//!   seed, then rerun both machine models under the minimal plan to name
//!   the divergence site: the first MMIO event index where the models (or
//!   the trace and its spec) part ways, with a trace-suffix window from
//!   each model around that index.
//!
//! The output is a [`TriageReport`]: minimal plan, named divergence site,
//! both suffixes, and a one-line repro command — everything
//! `SweepReport::expect_clean` quotes and `fault_sweep --triage-dir`
//! writes to disk.

use crate::checkpoint::{error_to_json, event_to_json};
use crate::differential::{fault_check_plan, DiffError, FaultSweepConfig};
use crate::system::ProcessorKind;
use bedrock2_compiler::CompiledProgram;
use devices::{FaultPlan, TrafficGen};
use lightbulb::good_hl_trace;
use obs::json::Value;
use obs::Counters;
use riscv_spec::MmioEvent;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Events shown before the divergence index in each suffix window.
const SUFFIX_BEFORE: usize = 4;
/// Events shown from the divergence index onward.
const SUFFIX_AFTER: usize = 8;

/// The one-line form of a [`TriageReport`], carried inside
/// [`crate::differential::SweepReport`] and quoted by `expect_clean`.
#[derive(Clone, Debug)]
pub struct TriageSummary {
    /// The failing seed.
    pub seed: u64,
    /// Fault atoms in the original seeded plan.
    pub original_atoms: usize,
    /// Fault atoms left after shrinking.
    pub minimal_atoms: usize,
    /// Human-readable divergence site (see [`DivergenceSite`]).
    pub divergence: String,
    /// Path of the full JSON artifact, when one was written.
    pub artifact: Option<String>,
}

impl TriageSummary {
    /// The summary as JSON (embedded in `sweep-report/v1`).
    pub fn to_json(&self) -> Value {
        Value::obj()
            .field("seed", Value::UInt(self.seed))
            .field("original_atoms", Value::UInt(self.original_atoms as u64))
            .field("minimal_atoms", Value::UInt(self.minimal_atoms as u64))
            .field("divergence", Value::Str(self.divergence.clone()))
            .field(
                "artifact",
                match &self.artifact {
                    Some(p) => Value::Str(p.clone()),
                    None => Value::Null,
                },
            )
    }
}

/// Where a failing run leaves the specification (or the models leave each
/// other), located by rerunning both machine models under the *minimal*
/// plan.
#[derive(Clone, Debug)]
pub struct DivergenceSite {
    /// MMIO-event index of the first disagreement.
    pub index: usize,
    /// What diverged from what, in words.
    pub description: String,
    /// The pipelined model's events around `index`
    /// (a few events before, several from it on).
    pub pipelined_suffix: Vec<MmioEvent>,
    /// The ISA spec machine's events around the same window.
    pub spec_suffix: Vec<MmioEvent>,
}

/// Everything the minimizer learned about one failing seed.
#[derive(Clone, Debug)]
pub struct TriageReport {
    /// The failing seed.
    pub seed: u64,
    /// The seeded plan as the sweep ran it.
    pub original: FaultPlan,
    /// The 1-minimal failing sub-plan.
    pub minimal: FaultPlan,
    /// Checks the minimizer spent (original confirmation included).
    pub probes: u64,
    /// The error the minimal plan produces.
    pub error: DiffError,
    /// The located divergence.
    pub site: DivergenceSite,
}

impl TriageReport {
    /// The one-line reproduction command for the minimal counterexample.
    pub fn repro(&self) -> String {
        format!(
            "cargo run --release --bin fault_sweep -- --replay-plan \
             TRIAGE_fault_sweep_seed{}.json",
            self.seed
        )
    }

    /// Collapses the report to its summary line.
    pub fn summary(&self, artifact: Option<String>) -> TriageSummary {
        TriageSummary {
            seed: self.seed,
            original_atoms: self.original.atoms().len(),
            minimal_atoms: self.minimal.atoms().len(),
            divergence: self.site.description.clone(),
            artifact,
        }
    }

    /// The full report as JSON (`triage-report/v1`). The `minimal` field
    /// is a complete `fault-plan/v1` document, so `--replay-plan` can
    /// consume the artifact directly.
    pub fn to_json(&self) -> Value {
        let suffix = |events: &[MmioEvent]| Value::Arr(events.iter().map(event_to_json).collect());
        Value::obj()
            .field("schema", Value::Str("triage-report/v1".into()))
            .field("seed", Value::UInt(self.seed))
            .field("original", self.original.to_json())
            .field("minimal", self.minimal.to_json())
            .field(
                "original_atoms",
                Value::UInt(self.original.atoms().len() as u64),
            )
            .field(
                "minimal_atoms",
                Value::UInt(self.minimal.atoms().len() as u64),
            )
            .field("probes", Value::UInt(self.probes))
            .field("error", error_to_json(&self.error))
            .field(
                "site",
                Value::obj()
                    .field("index", Value::UInt(self.site.index as u64))
                    .field("description", Value::Str(self.site.description.clone()))
                    .field("pipelined_suffix", suffix(&self.site.pipelined_suffix))
                    .field("spec_suffix", suffix(&self.site.spec_suffix)),
            )
            .field("repro", Value::Str(self.repro()))
    }
}

/// Delta-debugs `original` down to a 1-minimal failing plan under `fails`
/// (`Some(error)` = still fails). Returns `(minimal, its error, probes)`,
/// or `None` when `original` itself does not fail — there is nothing to
/// shrink, and "minimizing" a passing plan would fabricate a
/// counterexample.
///
/// This is Zeller's ddmin restricted to complement testing: partition the
/// atoms into `n` chunks, try dropping one chunk at a time, restart at
/// coarse granularity whenever a drop sticks, refine to single atoms
/// otherwise. Termination at `n == len` with no successful drop is
/// exactly 1-minimality. Probe count is `O(len²)` checks worst case, on
/// plans of at most a few dozen atoms.
pub fn shrink_plan<F>(original: &FaultPlan, mut fails: F) -> Option<(FaultPlan, DiffError, u64)>
where
    F: FnMut(&FaultPlan) -> Option<DiffError>,
{
    let mut probes = 1u64;
    let mut error = fails(original)?;
    let mut atoms = original.atoms();
    let mut n = 2usize;
    while atoms.len() >= 2 {
        let chunk = atoms.len().div_ceil(n);
        let mut dropped = false;
        for i in 0..atoms.len().div_ceil(chunk) {
            let (lo, hi) = (i * chunk, ((i + 1) * chunk).min(atoms.len()));
            let complement: Vec<_> = atoms[..lo].iter().chain(&atoms[hi..]).copied().collect();
            let candidate = FaultPlan::from_atoms(original.seed, &complement);
            probes += 1;
            if let Some(e) = fails(&candidate) {
                atoms = complement;
                error = e;
                // Back to coarse granularity over the smaller set: big
                // drops first keeps the probe count near-linear when
                // most atoms are noise.
                n = 2.max(n - 1).min(atoms.len().max(1));
                dropped = true;
                break;
            }
        }
        if !dropped {
            if n >= atoms.len() {
                break; // single-atom removals all pass: 1-minimal
            }
            n = (n * 2).min(atoms.len());
        }
    }
    Some((FaultPlan::from_atoms(original.seed, &atoms), error, probes))
}

/// Triages one failing sweep seed: shrink its seeded plan, then locate the
/// divergence under the minimal plan. Returns `None` when the seed does
/// not actually fail under `cfg` (e.g. it only failed at a smaller budget).
pub fn triage_seed(
    seed: u64,
    cfg: &FaultSweepConfig,
    image: &CompiledProgram,
) -> Option<TriageReport> {
    triage_plan(&FaultPlan::from_seed(seed), cfg, image)
}

/// [`triage_seed`] on an explicit plan (hand-built plans included).
pub fn triage_plan(
    plan: &FaultPlan,
    cfg: &FaultSweepConfig,
    image: &CompiledProgram,
) -> Option<TriageReport> {
    // A probe that panics still "fails" — the minimizer must be able to
    // shrink panicking counterexamples, and an unwinding probe would
    // otherwise tear down the triage pass itself.
    let fails = |candidate: &FaultPlan| -> Option<DiffError> {
        match catch_unwind(AssertUnwindSafe(|| {
            fault_check_plan(candidate, cfg, image, &mut Counters::new())
        })) {
            Ok(result) => result.err(),
            Err(_) => Some(DiffError::MachineError(
                "check panicked under this plan".to_string(),
            )),
        }
    };
    let (minimal, error, probes) = shrink_plan(plan, fails)?;
    let site = locate_divergence(&minimal, &error, cfg, image);
    Some(TriageReport {
        seed: plan.seed,
        original: plan.clone(),
        minimal,
        probes,
        error,
        site,
    })
}

/// Runs both machine models under `plan` at the full budget and names the
/// first MMIO event where the failure manifests, with a context window
/// from each model's trace.
fn locate_divergence(
    plan: &FaultPlan,
    error: &DiffError,
    cfg: &FaultSweepConfig,
    image: &CompiledProgram,
) -> DivergenceSite {
    let seed = plan.seed;
    let mut gen = TrafficGen::new(seed);
    let frames: Vec<Vec<u8>> = (0..cfg.frames).map(|i| gen.command(i % 2 == 0)).collect();
    let run = |kind: ProcessorKind| {
        let mut sys = cfg.system;
        sys.processor = kind;
        catch_unwind(AssertUnwindSafe(|| {
            sys.run_faulted(image, plan, &frames, cfg.max_cycles).events
        }))
        .unwrap_or_default()
    };
    let pipe = run(ProcessorKind::Pipelined);
    let sm = run(ProcessorKind::SpecMachine);

    let first_model_mismatch = || {
        (0..pipe.len().max(sm.len()))
            .find(|&i| pipe.get(i) != sm.get(i))
            .unwrap_or(pipe.len().min(sm.len()))
    };
    let (index, description) = match error {
        DiffError::TraceMismatch { index, .. } => (
            *index,
            format!("single-cycle replay diverges from the pipelined trace at event {index}"),
        ),
        DiffError::SpecViolation { matched, model, .. } => (
            *matched,
            format!("the {model} trace leaves goodHlTrace after event {matched}"),
        ),
        DiffError::WorkloadIncomplete {
            delivered,
            expected,
        } => {
            // Liveness failure: neither trace is wrong, one just stops
            // making progress. Point at where the models' traces part
            // ways (or at the shorter trace's end when they agree).
            let i = first_model_mismatch();
            (
                i,
                format!(
                    "workload stalls after event {i} with {delivered} of {expected} \
                     frames delivered"
                ),
            )
        }
        other => {
            // Machine errors and the like have no intrinsic index; fall
            // back to where the spec stops matching the pipelined trace,
            // then to the model mismatch point.
            let spec = good_hl_trace(cfg.system.driver);
            let i = if spec.matches_prefix(&pipe) {
                first_model_mismatch()
            } else {
                spec.longest_matching_prefix(&pipe)
            };
            (i, format!("fails at event {i}: {other}"))
        }
    };
    let window = |events: &[MmioEvent]| {
        let lo = index.saturating_sub(SUFFIX_BEFORE).min(events.len());
        let hi = index.saturating_add(SUFFIX_AFTER).min(events.len());
        events[lo..hi].to_vec()
    };
    DivergenceSite {
        index,
        description,
        pipelined_suffix: window(&pipe),
        spec_suffix: window(&sm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::FaultAtom;

    /// A synthetic predicate: fails iff the plan still schedules garbage
    /// on wires ≥ `threshold` interactions in. Atom-local, so ddmin must
    /// keep exactly the offending atoms.
    fn garbage_after(threshold: u64) -> impl FnMut(&FaultPlan) -> Option<DiffError> {
        move |p: &FaultPlan| {
            p.wire_garbage
                .iter()
                .any(|&(at, _)| at >= threshold)
                .then_some(DiffError::MachineTimeout)
        }
    }

    fn noisy_plan() -> FaultPlan {
        let atoms = [
            FaultAtom::ByteTestJunk(3),
            FaultAtom::SpuriousRx(5),
            FaultAtom::WireGarbage(10, 0xAA),
            FaultAtom::WireGarbage(90, 0x55),
            FaultAtom::RxStall(40, 7),
        ];
        FaultPlan::from_atoms(7, &atoms)
    }

    #[test]
    fn shrink_keeps_only_the_culprit_atom() {
        let (minimal, _, probes) =
            shrink_plan(&noisy_plan(), garbage_after(50)).expect("plan fails");
        assert_eq!(minimal.atoms(), vec![FaultAtom::WireGarbage(90, 0x55)]);
        assert!(probes > 1);
    }

    #[test]
    fn shrink_refuses_passing_plans() {
        assert!(shrink_plan(&noisy_plan(), garbage_after(1000)).is_none());
    }

    #[test]
    fn shrink_result_is_one_minimal() {
        // Two culprit atoms that must *both* survive: the failure needs a
        // pair, so ddmin cannot drop either, but must drop all noise.
        let both = |p: &FaultPlan| (p.wire_garbage.len() >= 2).then_some(DiffError::MachineTimeout);
        let (minimal, _, _) = shrink_plan(&noisy_plan(), both).expect("plan fails");
        let atoms = minimal.atoms();
        assert_eq!(
            atoms,
            vec![
                FaultAtom::WireGarbage(10, 0xAA),
                FaultAtom::WireGarbage(90, 0x55)
            ]
        );
        // 1-minimality, checked directly: every single-atom removal passes.
        for i in 0..atoms.len() {
            let mut fewer = atoms.clone();
            fewer.remove(i);
            let sub = FaultPlan::from_atoms(minimal.seed, &fewer);
            assert!(sub.wire_garbage.len() < 2, "removal {i} still fails");
        }
    }

    #[test]
    fn shrink_is_deterministic() {
        let a = shrink_plan(&noisy_plan(), garbage_after(50)).expect("fails");
        let b = shrink_plan(&noisy_plan(), garbage_after(50)).expect("fails");
        assert_eq!(a.0, b.0);
        assert_eq!(a.2, b.2);
    }
}

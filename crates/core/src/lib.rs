//! Integration: composing the verified-lightbulb stack end to end and
//! checking every interface crossing — the paper's primary contribution,
//! as an executable library.
//!
//! The paper's final theorem (§5.9) reads: place the compiled lightbulb
//! binary at address 0 of a memory attached to the pipelined processor;
//! then every I/O trace the system produces is a prefix of a trace allowed
//! by `goodHlTrace`. This crate provides exactly that pipeline:
//!
//! * [`system`] — build the boot image from the Bedrock2 sources and run
//!   it on any of the three machine models (ISA spec machine, single-cycle
//!   core, pipelined core) against the simulated board;
//! * [`end_to_end`] — [`end_to_end::end_to_end_lightbulb`]: run under a
//!   network workload and check the recorded MMIO trace against the
//!   specification (with `longest_matching_prefix` diagnostics on
//!   failure);
//! * [`liveness`] — the always-eventually check of §4.3/§5.2: from every
//!   reachable state the machine returns to the event-loop head within a
//!   bounded number of instructions (which is why the drivers carry
//!   timeout counters);
//! * [`differential`] — the proof-shaped checks between layers:
//!   compiler correctness (Bedrock2 interpreter vs compiled code on the
//!   ISA spec machine), ISA consistency (spec machine vs single-cycle
//!   core, §5.8), and processor refinement (pipelined vs single-cycle,
//!   §5.7), each exercised over randomly generated programs;
//! * [`checkpoint`] — atomic checkpoint/resume state for long sweeps, so
//!   an interrupted run resumes where it stopped and reproduces the
//!   uninterrupted report byte for byte;
//! * [`triage`] — delta-debugging minimization of failing fault plans
//!   plus divergence-site location, turning a red sweep seed into a
//!   1-minimal counterexample automatically;
//! * [`progen`] — the random terminating-program generator driving the
//!   differential checks;
//! * [`debug_dev`] — a deterministic observation device that gives
//!   generated programs an I/O channel whose trace both sides must
//!   reproduce exactly.

pub mod checkpoint;
pub mod debug_dev;
pub mod differential;
pub mod end_to_end;
pub mod liveness;
pub mod progen;
pub mod system;
pub mod triage;

pub use checkpoint::SweepCheckpoint;
pub use differential::{
    check_compiler_differential, check_isa_consistency, fault_check, fault_check_plan, fault_sweep,
    fault_sweep_with, resilient_sweep, CheckpointConfig, DiffError, FaultSweepConfig,
    FaultSweepOptions, RetryPolicy, SeedOutcome, SweepOptions, SweepReport,
};
pub use end_to_end::{end_to_end_lightbulb, EndToEndError, IntegrationReport};
pub use liveness::{check_event_loop_liveness, LivenessError, LivenessReport};
pub use system::{build_image, LightbulbRun, ProcessorKind, RunReport, SystemConfig};
pub use triage::{shrink_plan, triage_plan, triage_seed, TriageReport, TriageSummary};

//! Checkpoint/resume for seed sweeps.
//!
//! A multi-minute [`crate::differential::fault_sweep`] should survive an
//! interruption the way the system it checks survives device faults: an
//! interrupted sweep resumes where it left off and produces a final report
//! byte-identical to an uninterrupted run's. The mechanism is a
//! [`SweepCheckpoint`]: per shard, the count of completed seeds (each
//! shard walks its contiguous chunk in ascending order, so one cursor
//! suffices) plus the shard's accumulated outcomes and telemetry.
//! Checkpoints are dependency-free JSON (`sweep-checkpoint/v1`, rendered
//! with [`obs::json`]) and every write goes through a temp-file-and-rename
//! ([`write_atomic`]), so a kill at any moment leaves either the previous
//! or the next complete checkpoint on disk — never a torn one.
//!
//! Soundness of resume rests on two facts the rest of the repo already
//! enforces: every check is a pure function of its seed (so replaying the
//! remainder is equivalent to having never stopped), and per-shard
//! counters are summed on merge (so restored partial counters extend
//! order-insensitively).

use crate::differential::DiffError;
use obs::json::{parse, Value};
use obs::Counters;
use riscv_spec::{MmioEvent, MmioEventKind};
use std::path::Path;

/// Running state of one shard: the resume cursor plus everything the
/// shard has concluded so far. `done` seeds have been fully classified;
/// on resume the shard skips exactly that many and continues.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardProgress {
    /// Seeds completed in this shard (contiguous from the shard's start).
    pub done: u64,
    /// Seeds that passed.
    pub conclusive: u64,
    /// Seeds discarded as inconclusive.
    pub inconclusive: u64,
    /// Failing seeds with their classified errors.
    pub failures: Vec<(u64, DiffError)>,
    /// Seeds whose check panicked, with the panic payload.
    pub panicked: Vec<(u64, String)>,
    /// The shard's telemetry registry at the cursor.
    pub counters: Counters,
}

/// A whole sweep's progress: geometry (so resume can refuse a mismatched
/// sweep) plus one [`ShardProgress`] per shard.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCheckpoint {
    /// Workload tag supplied by the harness (e.g. `"fault_sweep"`).
    pub tag: String,
    /// First seed of the sweep.
    pub start: u64,
    /// Total seeds in the sweep.
    pub total: u64,
    /// Shard count.
    pub shards: usize,
    /// Seeds per shard (last shard may run fewer).
    pub chunk: u64,
    /// Per-shard progress, shard 0 first.
    pub shard_states: Vec<ShardProgress>,
}

impl SweepCheckpoint {
    /// An empty checkpoint for a sweep about to start.
    pub fn fresh(tag: &str, start: u64, total: u64, shards: usize, chunk: u64) -> SweepCheckpoint {
        SweepCheckpoint {
            tag: tag.to_string(),
            start,
            total,
            shards,
            chunk,
            shard_states: vec![ShardProgress::default(); shards],
        }
    }

    /// Seeds completed across all shards.
    pub fn completed(&self) -> u64 {
        self.shard_states.iter().map(|s| s.done).sum()
    }

    /// Checks that this checkpoint belongs to the sweep described by the
    /// arguments. Resuming under a different geometry would misattribute
    /// cursors to the wrong seeds; a different tag means a different
    /// workload entirely.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch.
    pub fn validate(
        &self,
        start: u64,
        total: u64,
        shards: usize,
        chunk: u64,
        tag: Option<&str>,
    ) -> Result<(), String> {
        if let Some(tag) = tag {
            if self.tag != tag {
                return Err(format!(
                    "checkpoint tag {:?} does not match this sweep's tag {tag:?}",
                    self.tag
                ));
            }
        }
        if (self.start, self.total, self.shards, self.chunk) != (start, total, shards, chunk) {
            return Err(format!(
                "checkpoint geometry (start {}, total {}, shards {}, chunk {}) does not match \
                 this sweep (start {start}, total {total}, shards {shards}, chunk {chunk}); \
                 rerun with the original --seeds/--shards",
                self.start, self.total, self.shards, self.chunk
            ));
        }
        if self.shard_states.len() != self.shards {
            return Err(format!(
                "checkpoint carries {} shard states for {} shards",
                self.shard_states.len(),
                self.shards
            ));
        }
        Ok(())
    }

    /// Serializes the checkpoint (`sweep-checkpoint/v1`).
    pub fn to_json(&self) -> Value {
        let shard = |s: &ShardProgress| {
            Value::obj()
                .field("done", Value::UInt(s.done))
                .field("conclusive", Value::UInt(s.conclusive))
                .field("inconclusive", Value::UInt(s.inconclusive))
                .field(
                    "failures",
                    Value::Arr(
                        s.failures
                            .iter()
                            .map(|(seed, e)| {
                                Value::obj()
                                    .field("seed", Value::UInt(*seed))
                                    .field("error", error_to_json(e))
                            })
                            .collect(),
                    ),
                )
                .field(
                    "panicked",
                    Value::Arr(
                        s.panicked
                            .iter()
                            .map(|(seed, payload)| {
                                Value::obj()
                                    .field("seed", Value::UInt(*seed))
                                    .field("payload", Value::Str(payload.clone()))
                            })
                            .collect(),
                    ),
                )
                .field(
                    "counters",
                    Value::Obj(
                        s.counters
                            .iter()
                            .map(|(k, v)| (k.to_string(), Value::UInt(v)))
                            .collect(),
                    ),
                )
        };
        Value::obj()
            .field("schema", Value::Str("sweep-checkpoint/v1".into()))
            .field("tag", Value::Str(self.tag.clone()))
            .field("start", Value::UInt(self.start))
            .field("total", Value::UInt(self.total))
            .field("shards", Value::UInt(self.shards as u64))
            .field("chunk", Value::UInt(self.chunk))
            .field(
                "shard_states",
                Value::Arr(self.shard_states.iter().map(shard).collect()),
            )
    }

    /// Parses a checkpoint document back.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field.
    pub fn from_json(v: &Value) -> Result<SweepCheckpoint, String> {
        if v.get("schema").and_then(Value::as_str) != Some("sweep-checkpoint/v1") {
            return Err("not a sweep-checkpoint/v1 document".to_string());
        }
        let mut cp = SweepCheckpoint {
            tag: str_field(v, "tag")?.to_string(),
            start: uint_field(v, "start")?,
            total: uint_field(v, "total")?,
            shards: uint_field(v, "shards")? as usize,
            chunk: uint_field(v, "chunk")?,
            shard_states: Vec::new(),
        };
        for s in arr_field(v, "shard_states")? {
            let mut shard = ShardProgress {
                done: uint_field(s, "done")?,
                conclusive: uint_field(s, "conclusive")?,
                inconclusive: uint_field(s, "inconclusive")?,
                ..ShardProgress::default()
            };
            for f in arr_field(s, "failures")? {
                let e = f.get("error").ok_or("failure record without error")?;
                shard
                    .failures
                    .push((uint_field(f, "seed")?, error_from_json(e)?));
            }
            for p in arr_field(s, "panicked")? {
                shard
                    .panicked
                    .push((uint_field(p, "seed")?, str_field(p, "payload")?.to_string()));
            }
            match s.get("counters") {
                Some(Value::Obj(pairs)) => {
                    for (name, value) in pairs {
                        match value {
                            // Counter names parsed from a file are not
                            // `'static`; obs interns each distinct name
                            // once for the life of the process.
                            Value::UInt(n) => shard.counters.set(obs::intern(name), *n),
                            other => {
                                return Err(format!("counter {name}: expected uint, got {other:?}"))
                            }
                        }
                    }
                }
                other => return Err(format!("shard counters: expected object, got {other:?}")),
            }
            cp.shard_states.push(shard);
        }
        Ok(cp)
    }

    /// Loads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// I/O errors and malformed documents, as a printable message.
    pub fn load(path: &Path) -> Result<SweepCheckpoint, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        let doc =
            parse(&text).map_err(|e| format!("checkpoint {} is not JSON: {e}", path.display()))?;
        SweepCheckpoint::from_json(&doc).map_err(|e| format!("checkpoint {}: {e}", path.display()))
    }

    /// Writes the checkpoint atomically (see [`write_atomic`]).
    ///
    /// # Errors
    ///
    /// The underlying I/O error, as a printable message.
    pub fn write_atomic(&self, path: &Path) -> Result<(), String> {
        write_atomic(path, &self.to_json().render())
    }
}

/// Writes `text` to `path` atomically: the bytes land in `<path>.tmp`
/// first and are renamed over the target, so a reader (or a process kill)
/// never observes a torn file — the property `--resume` relies on.
///
/// # Errors
///
/// The underlying I/O error, as a printable message.
pub fn write_atomic(path: &Path, text: &str) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, format!("{text}\n"))
        .map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

/// One MMIO event as JSON (`{"kind": "ld"|"st", "addr", "value"}`).
pub(crate) fn event_to_json(e: &MmioEvent) -> Value {
    Value::obj()
        .field(
            "kind",
            Value::Str(match e.kind {
                MmioEventKind::Load => "ld".into(),
                MmioEventKind::Store => "st".into(),
            }),
        )
        .field("addr", Value::UInt(e.addr as u64))
        .field("value", Value::UInt(e.value as u64))
}

fn event_from_json(v: &Value) -> Result<MmioEvent, String> {
    let addr = uint_field(v, "addr")? as u32;
    let value = uint_field(v, "value")? as u32;
    match v.get("kind").and_then(Value::as_str) {
        Some("ld") => Ok(MmioEvent::load(addr, value)),
        Some("st") => Ok(MmioEvent::store(addr, value)),
        other => Err(format!("event kind: expected \"ld\"/\"st\", got {other:?}")),
    }
}

fn opt_event_to_json(e: &Option<MmioEvent>) -> Value {
    match e {
        Some(e) => event_to_json(e),
        None => Value::Null,
    }
}

fn opt_event_from_json(v: Option<&Value>) -> Result<Option<MmioEvent>, String> {
    match v {
        None | Some(Value::Null) => Ok(None),
        Some(e) => event_from_json(e).map(Some),
    }
}

/// A [`DiffError`] as JSON, round-trippable through [`error_from_json`]
/// so checkpointed failures survive a resume structurally (not just as
/// display strings).
pub(crate) fn error_to_json(e: &DiffError) -> Value {
    let kind = |k: &str| Value::obj().field("kind", Value::Str(k.into()));
    match e {
        DiffError::SourceUb(m) => kind("source_ub").field("msg", Value::Str(m.clone())),
        DiffError::CompileError(m) => kind("compile_error").field("msg", Value::Str(m.clone())),
        DiffError::MachineError(m) => kind("machine_error").field("msg", Value::Str(m.clone())),
        DiffError::MachineTimeout => kind("machine_timeout"),
        DiffError::TraceMismatch {
            index,
            source,
            machine,
        } => kind("trace_mismatch")
            .field("index", Value::UInt(*index as u64))
            .field("source", opt_event_to_json(source))
            .field("machine", opt_event_to_json(machine)),
        DiffError::SpecViolation {
            matched,
            total,
            model,
        } => kind("spec_violation")
            .field("matched", Value::UInt(*matched as u64))
            .field("total", Value::UInt(*total as u64))
            .field("model", Value::Str((*model).to_string())),
        DiffError::WorkloadIncomplete {
            delivered,
            expected,
        } => kind("workload_incomplete")
            .field("delivered", Value::UInt(*delivered))
            .field("expected", Value::UInt(*expected)),
    }
}

/// Parses an error back from [`error_to_json`] form.
pub(crate) fn error_from_json(v: &Value) -> Result<DiffError, String> {
    let msg = |v: &Value| str_field(v, "msg").map(str::to_string);
    match v.get("kind").and_then(Value::as_str) {
        Some("source_ub") => Ok(DiffError::SourceUb(msg(v)?)),
        Some("compile_error") => Ok(DiffError::CompileError(msg(v)?)),
        Some("machine_error") => Ok(DiffError::MachineError(msg(v)?)),
        Some("machine_timeout") => Ok(DiffError::MachineTimeout),
        Some("trace_mismatch") => Ok(DiffError::TraceMismatch {
            index: uint_field(v, "index")? as usize,
            source: opt_event_from_json(v.get("source"))?,
            machine: opt_event_from_json(v.get("machine"))?,
        }),
        Some("spec_violation") => Ok(DiffError::SpecViolation {
            matched: uint_field(v, "matched")? as usize,
            total: uint_field(v, "total")? as usize,
            // The in-memory field is `&'static str`; intern the parsed
            // model name to restore that.
            model: obs::intern(str_field(v, "model")?),
        }),
        Some("workload_incomplete") => Ok(DiffError::WorkloadIncomplete {
            delivered: uint_field(v, "delivered")?,
            expected: uint_field(v, "expected")?,
        }),
        other => Err(format!("unknown error kind {other:?}")),
    }
}

fn uint_field(v: &Value, field: &str) -> Result<u64, String> {
    match v.get(field) {
        Some(&Value::UInt(n)) => Ok(n),
        other => Err(format!("field {field}: expected uint, got {other:?}")),
    }
}

fn str_field<'a>(v: &'a Value, field: &str) -> Result<&'a str, String> {
    v.get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("field {field}: expected string"))
}

fn arr_field<'a>(v: &'a Value, field: &str) -> Result<&'a [Value], String> {
    v.get(field)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("field {field}: expected array"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_errors() -> Vec<DiffError> {
        vec![
            DiffError::SourceUb("fuel".into()),
            DiffError::CompileError("bad".into()),
            DiffError::MachineError("trap".into()),
            DiffError::MachineTimeout,
            DiffError::TraceMismatch {
                index: 12,
                source: Some(MmioEvent::load(0x1000_0000, 7)),
                machine: None,
            },
            DiffError::SpecViolation {
                matched: 3,
                total: 9,
                model: "pipelined",
            },
            DiffError::WorkloadIncomplete {
                delivered: 1,
                expected: 3,
            },
        ]
    }

    #[test]
    fn errors_round_trip_through_json() {
        for e in sample_errors() {
            let text = error_to_json(&e).render();
            let back =
                error_from_json(&parse(&text).expect("valid JSON")).expect("error parses back");
            // DiffError has no PartialEq (it holds free-form strings);
            // compare the canonical JSON instead.
            assert_eq!(error_to_json(&back).render(), text);
        }
    }

    #[test]
    fn checkpoints_round_trip_through_json() {
        let mut shard = ShardProgress {
            done: 5,
            conclusive: 3,
            inconclusive: 1,
            ..ShardProgress::default()
        };
        shard.failures.push((4, DiffError::MachineTimeout));
        shard.panicked.push((2, "index out of bounds".into()));
        shard.counters.add("core.diff.retry_attempts", 2);
        let cp = SweepCheckpoint {
            tag: "fault_sweep".into(),
            start: 0,
            total: 10,
            shards: 2,
            chunk: 5,
            shard_states: vec![shard, ShardProgress::default()],
        };
        let text = cp.to_json().render();
        let back = SweepCheckpoint::from_json(&parse(&text).expect("valid JSON"))
            .expect("checkpoint parses back");
        assert_eq!(back.to_json().render(), text);
        assert_eq!(back.completed(), 5);
        assert_eq!(back.tag, "fault_sweep");
        assert_eq!(
            back.shard_states[0]
                .counters
                .get("core.diff.retry_attempts"),
            2
        );
    }

    #[test]
    fn validate_refuses_mismatches() {
        let cp = SweepCheckpoint::fresh("fault_sweep", 0, 10, 2, 5);
        assert!(cp.validate(0, 10, 2, 5, Some("fault_sweep")).is_ok());
        assert!(cp.validate(0, 10, 2, 5, None).is_ok());
        assert!(cp.validate(0, 10, 2, 5, Some("other")).is_err());
        assert!(cp.validate(1, 10, 2, 5, Some("fault_sweep")).is_err());
        assert!(cp.validate(0, 12, 2, 5, Some("fault_sweep")).is_err());
        assert!(cp.validate(0, 10, 4, 5, Some("fault_sweep")).is_err());
    }

    #[test]
    fn atomic_write_replaces_not_appends() {
        let dir = std::env::temp_dir().join("lightbulb-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cp.json");
        write_atomic(&path, "first").expect("write");
        write_atomic(&path, "second").expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, "second\n");
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        std::fs::remove_file(&path).ok();
    }
}

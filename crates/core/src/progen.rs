//! Random terminating Bedrock2 programs for differential testing.
//!
//! Generated programs are UB-free *by construction* where cheap (loops
//! have constant bounds, memory accesses hit an aligned scratch region,
//! variables are initialized before use, no recursion) — and runs that
//! nevertheless reach undefined behavior or fuel exhaustion at the source
//! level are discarded by the differential harness, mirroring the paper's
//! stance that the compiler promises nothing about UB executions.
//!
//! Observability comes from `MMIOREAD`/`MMIOWRITE` calls against the
//! [`crate::debug_dev::DebugDevice`], so the compared artifact is exactly
//! the kind of I/O trace the whole project is about.

use crate::debug_dev::DEBUG_BASE;
use bedrock2::ast::{BinOp, Expr, Function, Program, Size, Stmt};
use bedrock2::dsl::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Scratch RAM region generated programs may touch (inside the 64 KiB RAM
/// of the default system, above the code, below the stack).
pub const SCRATCH_BASE: u32 = 0x8000;
/// Scratch region size.
pub const SCRATCH_SIZE: u32 = 0x100;

/// Configuration for the generator.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Statements per function body (before nesting).
    pub stmts_per_fn: usize,
    /// Maximum expression depth.
    pub max_expr_depth: usize,
    /// Maximum constant loop trip count.
    pub max_loop_iters: u32,
    /// Number of helper functions.
    pub helpers: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            stmts_per_fn: 12,
            max_expr_depth: 3,
            max_loop_iters: 8,
            helpers: 2,
        }
    }
}

/// The generator.
#[derive(Debug)]
pub struct ProgGen {
    rng: StdRng,
    config: GenConfig,
    loop_counter: u32,
}

const OPS: [BinOp; 15] = BinOp::ALL;

impl ProgGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> ProgGen {
        ProgGen {
            rng: StdRng::seed_from_u64(seed),
            config: GenConfig::default(),
            loop_counter: 0,
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: GenConfig) -> ProgGen {
        self.config = config;
        self
    }

    fn scratch_addr(&mut self, size: Size) -> u32 {
        let n = size.bytes();
        let slots = SCRATCH_SIZE / n;
        SCRATCH_BASE + self.rng.random_range(0..slots) * n
    }

    fn expr(&mut self, vars: &[String], depth: usize) -> Expr {
        let choice = self.rng.random_range(0..10);
        match choice {
            0..=2 if !vars.is_empty() => var(&vars[self.rng.random_range(0..vars.len())]),
            3..=4 => {
                // Mostly small constants, occasionally extreme ones.
                match self.rng.random_range(0..4) {
                    0 => lit(self.rng.random_range(0..16)),
                    1 => lit(self.rng.random_range(0..4096)),
                    2 => lit(self.rng.random()),
                    _ => lit([0, 1, u32::MAX, 0x8000_0000, 0x7FFF_FFFF]
                        [self.rng.random_range(0..5usize)]),
                }
            }
            5 if depth > 0 => {
                let size = [Size::One, Size::Two, Size::Four][self.rng.random_range(0..3usize)];
                Expr::Load(size, Box::new(lit(self.scratch_addr(size))))
            }
            _ if depth > 0 => {
                let op = OPS[self.rng.random_range(0..OPS.len())];
                Expr::Op(
                    op,
                    Box::new(self.expr(vars, depth - 1)),
                    Box::new(self.expr(vars, depth - 1)),
                )
            }
            _ => lit(self.rng.random_range(0..256)),
        }
    }

    fn stmt(&mut self, vars: &mut Vec<String>, callees: &[Function], depth: usize) -> Stmt {
        let d = self.config.max_expr_depth;
        match self.rng.random_range(0..12) {
            // Assignment (most common).
            0..=4 => {
                let e = self.expr(vars, d);
                let name = if !vars.is_empty() && self.rng.random_bool(0.5) {
                    vars[self.rng.random_range(0..vars.len())].clone()
                } else {
                    let name = format!("v{}", vars.len());
                    vars.push(name.clone());
                    name
                };
                set(&name, e)
            }
            // Store into the scratch region.
            5 => {
                let size = [Size::One, Size::Two, Size::Four][self.rng.random_range(0..3usize)];
                let addr = self.scratch_addr(size);
                Stmt::Store(size, lit(addr), self.expr(vars, d))
            }
            // Observation write.
            6 => interact(&[], "MMIOWRITE", [lit(DEBUG_BASE), self.expr(vars, d)]),
            // Observation read into a fresh variable.
            7 => {
                let name = format!("v{}", vars.len());
                vars.push(name.clone());
                let off = self.rng.random_range(0u32..8) * 4;
                interact(&[&name], "MMIOREAD", [lit(DEBUG_BASE + off)])
            }
            // Branch.
            8 if depth > 0 => {
                let c = self.expr(vars, d);
                let mut tv = vars.clone();
                let mut ev = vars.clone();
                let t = self.block(&mut tv, callees, depth - 1, 3);
                let e = self.block(&mut ev, callees, depth - 1, 3);
                if_(c, t, e)
            }
            // Constant-bounded loop (terminating by construction). The
            // counter gets a globally unique name: deriving it from the
            // (branch-local) variable count let a nested loop reuse its
            // enclosing loop's counter, which loops forever.
            9 if depth > 0 => {
                let iters = self.rng.random_range(1..=self.config.max_loop_iters);
                self.loop_counter += 1;
                let i_name = format!("loop{}", self.loop_counter);
                let mut body_vars = vars.clone();
                let body = self.block(&mut body_vars, callees, depth - 1, 3);
                block([
                    set(&i_name, lit(0)),
                    while_(
                        ltu(var(&i_name), lit(iters)),
                        block([body, set(&i_name, add(var(&i_name), lit(1)))]),
                    ),
                ])
            }
            // Call an already-generated helper.
            10 if !callees.is_empty() => {
                let f = &callees[self.rng.random_range(0..callees.len())];
                let args: Vec<Expr> = f.params.iter().map(|_| self.expr(vars, d)).collect();
                let rets: Vec<String> = f
                    .rets
                    .iter()
                    .map(|_| {
                        let name = format!("v{}", vars.len());
                        vars.push(name.clone());
                        name
                    })
                    .collect();
                let ret_refs: Vec<&str> = rets.iter().map(String::as_str).collect();
                call(&ret_refs, &f.name, args)
            }
            _ => {
                let e = self.expr(vars, d);
                let name = format!("v{}", vars.len());
                vars.push(name.clone());
                set(&name, e)
            }
        }
    }

    fn block(
        &mut self,
        vars: &mut Vec<String>,
        callees: &[Function],
        depth: usize,
        max_stmts: usize,
    ) -> Stmt {
        let n = self.rng.random_range(1..=max_stmts);
        let stmts: Vec<Stmt> = (0..n).map(|_| self.stmt(vars, callees, depth)).collect();
        block(stmts)
    }

    /// Generates one whole program with a no-argument `main`.
    pub fn gen_program(&mut self) -> Program {
        let mut funcs: Vec<Function> = Vec::new();
        for h in 0..self.config.helpers {
            let nparams = self.rng.random_range(1..=3usize);
            let params: Vec<String> = (0..nparams).map(|i| format!("p{i}")).collect();
            let mut vars = params.clone();
            let body = {
                let stmts: Vec<Stmt> = (0..self.config.stmts_per_fn / 2)
                    .map(|_| self.stmt(&mut vars, &funcs, 1))
                    .collect();
                block(stmts)
            };
            // Return an arbitrary initialized variable (params are always
            // initialized).
            let ret = vars[self.rng.random_range(0..vars.len())].clone();
            let param_refs: Vec<&str> = params.iter().map(String::as_str).collect();
            funcs.push(Function {
                name: format!("helper{h}"),
                params: param_refs.iter().map(|s| s.to_string()).collect(),
                rets: vec![ret],
                body,
            });
        }
        let mut vars = Vec::new();
        let mut stmts: Vec<Stmt> = (0..self.config.stmts_per_fn)
            .map(|_| self.stmt(&mut vars, &funcs, 2))
            .collect();
        // Flush up to three live variables to the observation device so
        // that register-allocation and call-convention bugs surface in the
        // trace.
        for v in vars.iter().take(3) {
            stmts.push(interact(&[], "MMIOWRITE", [lit(DEBUG_BASE + 4), var(v)]));
        }
        funcs.push(Function::new("main", &[], &[], block(stmts)));
        Program::from_functions(funcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_are_well_formed() {
        for seed in 0..50 {
            let p = ProgGen::new(seed).gen_program();
            assert!(p.check().is_empty(), "seed {seed}: {:?}", p.check());
        }
    }

    #[test]
    fn generated_programs_are_deterministic_per_seed() {
        let a = ProgGen::new(9).gen_program();
        let b = ProgGen::new(9).gen_program();
        assert_eq!(a, b);
    }

    #[test]
    fn most_generated_programs_run_clean_at_source_level() {
        use crate::debug_dev::DebugDevice;
        use bedrock2::semantics::Interp;
        use lightbulb::MmioBridge;
        use riscv_spec::Memory;

        let mut clean = 0;
        let total = 30;
        for seed in 0..total {
            let p = ProgGen::new(seed).gen_program();
            let mut i = Interp::new(
                &p,
                Memory::with_size(0x1_0000),
                MmioBridge::new(DebugDevice::new()),
            )
            .with_fuel(1_000_000);
            if i.call("main", &[]).is_ok() {
                clean += 1;
            }
        }
        assert!(
            clean >= total * 9 / 10,
            "only {clean}/{total} generated programs ran UB-free"
        );
    }
}

//! A deterministic observation device for differential testing.
//!
//! Randomly generated programs need an I/O channel whose events can be
//! compared across machine models that run at different speeds (the
//! interpreter ticks per external call, the processors per cycle). This
//! device is therefore deliberately **time-independent**: loads return a
//! deterministic counter sequence, stores are recorded, and `tick` does
//! nothing — so a trace mismatch can only come from the layer under test,
//! never from clock skew.

use riscv_spec::{AccessSize, MmioHandler};

/// Base address of the observation device.
pub const DEBUG_BASE: u32 = 0x1003_0000;
/// Size of its window.
pub const DEBUG_WINDOW: u32 = 0x100;

/// The device: a store sink and a deterministic load source.
#[derive(Clone, Debug, Default)]
pub struct DebugDevice {
    /// Values stored, in order, with their (offset, value).
    pub stores: Vec<(u32, u32)>,
    counter: u32,
}

impl DebugDevice {
    /// A fresh device.
    pub fn new() -> DebugDevice {
        DebugDevice::default()
    }

    /// True when `addr` is inside the device's window (usable as the
    /// `claims` predicate of replay handlers).
    pub fn claims(addr: u32) -> bool {
        (DEBUG_BASE..DEBUG_BASE + DEBUG_WINDOW).contains(&addr)
    }
}

impl MmioHandler for DebugDevice {
    fn is_mmio(&self, addr: u32, _size: AccessSize) -> bool {
        DebugDevice::claims(addr)
    }

    fn load(&mut self, addr: u32, _size: AccessSize) -> u32 {
        // A deterministic, address-dependent sequence.
        self.counter = self.counter.wrapping_mul(1664525).wrapping_add(1013904223);
        self.counter ^ addr
    }

    fn store(&mut self, addr: u32, _size: AccessSize, value: u32) {
        self.stores.push((addr - DEBUG_BASE, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_are_deterministic_and_time_independent() {
        let mut a = DebugDevice::new();
        let mut b = DebugDevice::new();
        for _ in 0..100 {
            b.tick(); // ticks must not influence anything
        }
        for i in 0..5 {
            let addr = DEBUG_BASE + i * 4;
            assert_eq!(
                a.load(addr, AccessSize::Word),
                b.load(addr, AccessSize::Word)
            );
        }
    }

    #[test]
    fn stores_are_recorded_in_order() {
        let mut d = DebugDevice::new();
        d.store(DEBUG_BASE, AccessSize::Word, 7);
        d.store(DEBUG_BASE + 4, AccessSize::Word, 8);
        assert_eq!(d.stores, vec![(0, 7), (4, 8)]);
    }

    #[test]
    fn claims_only_its_window() {
        assert!(DebugDevice::claims(DEBUG_BASE));
        assert!(!DebugDevice::claims(DEBUG_BASE - 4));
        assert!(!DebugDevice::claims(DEBUG_BASE + DEBUG_WINDOW));
    }
}

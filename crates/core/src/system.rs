//! Building and running the complete system.
//!
//! [`build_image`] is the software half of the paper's bring-up recipe
//! (§5.9): compile the Bedrock2 sources with the event-loop entry
//! (`init(); while(1) loop()`) into a binary for address 0.
//! [`SystemConfig::run`] is the hardware half: attach the image to a
//! machine model and the simulated board, drive traffic in, and collect
//! the MMIO trace.

use bedrock2_compiler::{compile, CompileOptions, CompiledProgram, Entry, MmioExtCompiler};
use devices::{Board, FaultPlan, SpiConfig};
use lightbulb::{lightbulb_program, DriverOptions};
use obs::{Counters, Event, MemSink};
use processor::{PipelineConfig, Pipelined, SingleCycle};
use riscv_spec::{Memory, MmioEvent, SpecMachine};

/// Which machine model executes the binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessorKind {
    /// The riscv-spec software-oriented machine (UB-checking).
    SpecMachine,
    /// The single-cycle Kami spec core (also the idealized ~1 IPC
    /// commercial-core stand-in of §7.2.1).
    SingleCycle,
    /// The 4-stage pipelined core — the shipping configuration of the
    /// paper's theorem.
    Pipelined,
}

/// A full system configuration — the §7.2.1 evaluation grid.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Driver variants (timeouts, SPI pipelining).
    pub driver: DriverOptions,
    /// Compile with the optimizing pipeline (the gcc-like baseline) or the
    /// naive verified-style compiler.
    pub optimize: bool,
    /// Which machine model runs it.
    pub processor: ProcessorKind,
    /// Pipeline configuration (BTB etc.), used when `processor` is
    /// [`ProcessorKind::Pipelined`].
    pub pipeline: PipelineConfig,
    /// RAM size in bytes (the image must fit; the stack starts at the
    /// top).
    pub ram_bytes: u32,
    /// SPI wire speed (device ticks per transferred byte); the knob behind
    /// the "SPI transfer dominates runtime" observation of §7.2.1.
    pub spi: SpiConfig,
}

impl Default for SystemConfig {
    /// The verified configuration the end-to-end theorem is about.
    fn default() -> SystemConfig {
        SystemConfig {
            driver: DriverOptions::default(),
            optimize: false,
            processor: ProcessorKind::Pipelined,
            pipeline: PipelineConfig::default(),
            ram_bytes: 0x1_0000,
            spi: SpiConfig::default(),
        }
    }
}

/// Compiles the lightbulb program for this configuration.
///
/// # Panics
///
/// Panics if the lightbulb sources fail to compile — they are part of this
/// workspace, so that is a bug, not an input error.
pub fn build_image(config: &SystemConfig) -> CompiledProgram {
    let program = lightbulb_program(config.driver);
    let opts = CompileOptions {
        stack_top: config.ram_bytes,
        stack_size: Some(config.ram_bytes / 4),
        entry: Entry::EventLoop {
            init: Some("lightbulb_init".to_string()),
            step: "lightbulb_loop".to_string(),
        },
        optimize: config.optimize,
        spill_everything: false,
    };
    compile(&program, &MmioExtCompiler, &opts).expect("lightbulb sources must compile")
}

/// Machine-readable telemetry of one system run, carried alongside the
/// MMIO trace in [`LightbulbRun`].
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Counters aggregated from every instrumented layer, under the
    /// `layer.component.metric` naming scheme: `compiler.*` (pass wall
    /// times, code size, spill slots), `pipeline.*` or `spec.*` (whichever
    /// machine model ran), and `board.*` (SPI wire and LAN9250 activity).
    pub counters: Counters,
    /// The final pc: fetch pc for the hardware models, architectural pc
    /// for the spec machine.
    pub final_pc: u32,
    /// Structured trace events, non-empty only for traced runs
    /// ([`SystemConfig::run_traced`]).
    pub trace_events: Vec<Event>,
}

impl RunReport {
    /// The plain-text counter summary (see [`obs::summary`]).
    pub fn summary(&self) -> String {
        obs::summary::render(&self.counters)
    }

    /// The trace events as Chrome trace-event JSON, for Perfetto.
    pub fn chrome_trace(&self) -> String {
        obs::chrome::render(&self.trace_events)
    }
}

/// The outcome of one system run.
#[derive(Clone, Debug)]
pub struct LightbulbRun {
    /// The recorded MMIO trace.
    pub events: Vec<MmioEvent>,
    /// Lightbulb states after each GPIO `OUTPUT_VAL` write.
    pub bulb_history: Vec<bool>,
    /// Whether the bulb is on at the end.
    pub bulb_on: bool,
    /// Cycles (or retired instructions, for the spec machine) executed.
    pub cycles: u64,
    /// Machine error, if the run aborted (possible only on
    /// [`ProcessorKind::SpecMachine`], which checks the software
    /// contract).
    pub error: Option<String>,
    /// Cross-layer telemetry for this run.
    pub report: RunReport,
}

impl SystemConfig {
    /// Builds the system, injects `frames`, runs for up to `max_cycles`,
    /// and reports. The returned [`LightbulbRun::report`] aggregates
    /// counters from every layer; its `trace_events` stay empty (use
    /// [`SystemConfig::run_traced`] for those).
    pub fn run(&self, frames: &[Vec<u8>], max_cycles: u64) -> LightbulbRun {
        self.run_inner(frames, max_cycles, None)
    }

    /// Like [`SystemConfig::run`], but on the pipelined core the run also
    /// records structured trace events (redirects, `fence.i`, sampled IPC)
    /// into [`RunReport::trace_events`] for the Chrome/Perfetto exporter.
    /// The other machine models emit no events and run as [`run`].
    ///
    /// [`run`]: SystemConfig::run
    pub fn run_traced(&self, frames: &[Vec<u8>], max_cycles: u64) -> LightbulbRun {
        self.run_inner(frames, max_cycles, Some(MemSink::default()))
    }

    /// Like [`SystemConfig::run`], but on a prebuilt `image` and a board
    /// whose devices misbehave according to `plan`. Fault sweeps compile
    /// the image once and call this per seed; with [`FaultPlan::none`] it
    /// is exactly [`SystemConfig::run`] minus the compile.
    pub fn run_faulted(
        &self,
        image: &CompiledProgram,
        plan: &FaultPlan,
        frames: &[Vec<u8>],
        max_cycles: u64,
    ) -> LightbulbRun {
        self.run_built(image, plan, frames, max_cycles, None)
    }

    fn run_inner(
        &self,
        frames: &[Vec<u8>],
        max_cycles: u64,
        sink: Option<MemSink>,
    ) -> LightbulbRun {
        let image = build_image(self);
        self.run_built(&image, &FaultPlan::none(), frames, max_cycles, sink)
    }

    fn run_built(
        &self,
        image: &CompiledProgram,
        plan: &FaultPlan,
        frames: &[Vec<u8>],
        max_cycles: u64,
        sink: Option<MemSink>,
    ) -> LightbulbRun {
        let mut report = RunReport {
            counters: image.stats.counters(),
            ..RunReport::default()
        };
        let mut board = Board::with_faults(self.spi, plan);
        for f in frames {
            board.inject_frame(f);
        }
        match self.processor {
            ProcessorKind::Pipelined if sink.is_some() => {
                let mut cpu = Pipelined::with_sink(
                    &image.bytes(),
                    self.ram_bytes,
                    board,
                    self.pipeline,
                    sink.unwrap_or_default(),
                );
                cpu.run(max_cycles);
                report.counters.merge(&cpu.counters());
                report.counters.merge(&cpu.mem.mmio.counters());
                report.final_pc = cpu.fetch_pc();
                report.trace_events = std::mem::take(&mut cpu.sink.events);
                LightbulbRun {
                    events: cpu.mem.events(),
                    bulb_history: cpu.mem.mmio.gpio.lightbulb_history(),
                    bulb_on: cpu.mem.mmio.lightbulb_on(),
                    cycles: cpu.cycle,
                    error: None,
                    report,
                }
            }
            ProcessorKind::Pipelined => {
                let mut cpu = Pipelined::new(&image.bytes(), self.ram_bytes, board, self.pipeline);
                cpu.run(max_cycles);
                report.counters.merge(&cpu.counters());
                report.counters.merge(&cpu.mem.mmio.counters());
                report.final_pc = cpu.fetch_pc();
                LightbulbRun {
                    events: cpu.mem.events(),
                    bulb_history: cpu.mem.mmio.gpio.lightbulb_history(),
                    bulb_on: cpu.mem.mmio.lightbulb_on(),
                    cycles: cpu.cycle,
                    error: None,
                    report,
                }
            }
            ProcessorKind::SingleCycle => {
                let mut cpu = SingleCycle::new(&image.bytes(), self.ram_bytes, board);
                cpu.run(max_cycles);
                report.counters.merge(&cpu.mem.mmio.counters());
                report.counters.set("pipeline.cycles", cpu.cycle);
                report.counters.set("pipeline.retired", cpu.retired);
                report.final_pc = cpu.pc;
                LightbulbRun {
                    events: cpu.mem.events(),
                    bulb_history: cpu.mem.mmio.gpio.lightbulb_history(),
                    bulb_on: cpu.mem.mmio.lightbulb_on(),
                    cycles: cpu.cycle,
                    error: None,
                    report,
                }
            }
            ProcessorKind::SpecMachine => {
                let mut m = SpecMachine::new(Memory::with_size(self.ram_bytes), board);
                m.load_program(0, &image.words());
                let error = m.run(max_cycles).err().map(|e| e.to_string());
                report.counters.merge(&m.stats.counters());
                report.counters.merge(&m.mmio.counters());
                report.final_pc = m.pc;
                LightbulbRun {
                    events: m.trace.clone(),
                    bulb_history: m.mmio.gpio.lightbulb_history(),
                    bulb_on: m.mmio.lightbulb_on(),
                    cycles: m.instret,
                    error,
                    report,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_builds_and_reports_stack_usage() {
        let image = build_image(&SystemConfig::default());
        assert!(image.image_size() > 1000, "nontrivial image");
        assert!(image.max_stack_usage >= lightbulb::layout::RX_BUFFER_BYTES);
        assert!(image.function_addrs.contains_key("lightbulb_loop"));
    }

    #[test]
    fn all_processors_boot_the_system() {
        for processor in [
            ProcessorKind::SpecMachine,
            ProcessorKind::SingleCycle,
            ProcessorKind::Pipelined,
        ] {
            let config = SystemConfig {
                processor,
                ..SystemConfig::default()
            };
            let run = config.run(&[], 250_000);
            assert!(run.error.is_none(), "{processor:?}: {:?}", run.error);
            assert!(
                !run.events.is_empty(),
                "{processor:?} must produce boot-sequence I/O"
            );
            assert!(!run.bulb_on);
        }
    }

    #[test]
    fn the_bulb_switches_on_hardware() {
        let mut gen = devices::TrafficGen::new(61);
        let config = SystemConfig::default();
        let run = config.run(&[gen.command(true)], 500_000);
        assert!(
            run.bulb_on,
            "after {} cycles: {:?}",
            run.cycles, run.bulb_history
        );
    }
}

//! Event-loop liveness: the executable analogue of the paper's
//! `swalways s (fun s' ⇒ s' →♢ inv)` (§4.3, §5.2).
//!
//! The paper proves total correctness of each loop iteration, then lifts
//! it with the *eventually* operator ♢ to an instruction-by-instruction
//! invariant: from every reachable state, the machine is a finite number
//! of steps away from the loop-head invariant. Here the check is run on a
//! concrete execution: watch the pc on the ISA spec machine and require
//! that the gap between consecutive visits to the event-loop head never
//! exceeds a bound.
//!
//! The totality story this checks is real: the paper's drivers carry
//! timeout counters precisely so every iteration terminates even when the
//! hardware misbehaves ("exiting with an error if the device does not
//! respond", §7.2.1). [`check_event_loop_liveness`] passes for the
//! timeout-enabled driver against a dead SPI bus and fails for the
//! timeout-free variant — see the tests.

use crate::system::{build_image, SystemConfig};
use riscv_spec::{Memory, MmioHandler, SpecMachine};

/// Result of a liveness check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LivenessReport {
    /// Completed loop iterations (visits to the loop head).
    pub iterations: u64,
    /// Largest observed instruction gap between consecutive visits.
    pub max_gap: u64,
}

/// Why a liveness check failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LivenessError {
    /// The machine hit undefined behavior.
    MachineError(String),
    /// The pc stayed away from the loop head for more than the bound — an
    /// iteration is not terminating (or not within budget).
    StuckIteration {
        /// Instructions executed since the last head visit.
        gap: u64,
        /// Head visits completed before getting stuck.
        iterations: u64,
    },
}

impl std::fmt::Display for LivenessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LivenessError::MachineError(e) => write!(f, "machine error: {e}"),
            LivenessError::StuckIteration { gap, iterations } => write!(
                f,
                "no return to the event-loop head within {gap} instructions \
                 (after {iterations} good iterations)"
            ),
        }
    }
}

impl std::error::Error for LivenessError {}

/// Checks, on the ISA spec machine with `devices` attached, that the
/// system configured by `config` returns to its event-loop head at least
/// `min_iterations` times with never more than `gap_bound` instructions
/// between visits.
///
/// # Errors
///
/// [`LivenessError::StuckIteration`] when an iteration exceeds the bound —
/// the failure a non-total loop body (e.g. a poll without a timeout
/// against dead hardware) produces — or any machine error.
///
/// # Panics
///
/// Panics if `config` does not build an event-loop image.
pub fn check_event_loop_liveness<M: MmioHandler>(
    config: &SystemConfig,
    devices: M,
    min_iterations: u64,
    gap_bound: u64,
) -> Result<LivenessReport, LivenessError> {
    let image = build_image(config);
    let head = image.event_loop_head.expect("event-loop image");
    let mut m = SpecMachine::new(Memory::with_size(config.ram_bytes), devices);
    m.load_program(0, &image.words());

    let mut iterations = 0u64;
    let mut gap = 0u64;
    let mut max_gap = 0u64;
    // The boot (init) phase counts toward the first gap: the paper's
    // theorem begins at reset, not at the first iteration.
    while iterations < min_iterations {
        if m.pc == head {
            iterations += 1;
            max_gap = max_gap.max(gap);
            gap = 0;
        }
        if gap > gap_bound {
            return Err(LivenessError::StuckIteration { gap, iterations });
        }
        m.step()
            .map_err(|e| LivenessError::MachineError(e.to_string()))?;
        gap += 1;
    }
    Ok(LivenessReport {
        iterations,
        max_gap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::workload::TrafficGen;
    use devices::Board;
    use lightbulb::DriverOptions;
    use riscv_spec::AccessSize;

    /// A board whose SPI receive queue is permanently empty: the chip
    /// never answers. The hardware-misbehavior scenario the paper's
    /// timeout counters exist for.
    #[derive(Clone, Debug, Default)]
    struct DeadSpi;
    impl MmioHandler for DeadSpi {
        fn is_mmio(&self, addr: u32, _s: AccessSize) -> bool {
            Board::claims(addr)
        }
        fn load(&mut self, addr: u32, _s: AccessSize) -> u32 {
            if addr == lightbulb::layout::SPI_RXDATA {
                lightbulb::layout::SPI_FLAG // forever empty
            } else {
                0
            }
        }
        fn store(&mut self, _a: u32, _s: AccessSize, _v: u32) {}
    }

    /// Generous per-iteration budget: one iteration may transfer a whole
    /// frame over SPI.
    const GAP: u64 = 2_000_000;

    #[test]
    fn the_idle_loop_is_live() {
        let report = check_event_loop_liveness(&SystemConfig::default(), Board::default(), 5, GAP)
            .expect("idle polling must be live");
        assert_eq!(report.iterations, 5);
        assert!(report.max_gap > 0);
    }

    #[test]
    fn the_loop_is_live_under_traffic() {
        let mut board = Board::default();
        let mut gen = TrafficGen::new(83);
        board.inject_frame(&gen.command(true));
        board.inject_frame(&gen.malformed(devices::workload::Malformation::GiantFrame));
        let report = check_event_loop_liveness(&SystemConfig::default(), board, 6, GAP)
            .expect("traffic must not break liveness");
        assert!(report.iterations >= 6);
    }

    #[test]
    fn timeouts_keep_the_loop_live_on_dead_hardware() {
        // The paper's §7.2.1 story: the timeout logic was added to prove
        // total correctness of each iteration. With it, even a dead SPI
        // bus cannot wedge the loop.
        let report = check_event_loop_liveness(&SystemConfig::default(), DeadSpi, 3, GAP)
            .expect("timeouts must bound every iteration");
        assert!(report.iterations >= 3);
    }

    #[test]
    fn without_timeouts_a_dead_bus_wedges_the_loop() {
        // …and without them, the unverified-prototype behavior: the first
        // poll spins forever and the loop head is never reached again.
        let config = SystemConfig {
            driver: DriverOptions {
                timeouts: false,
                pipelined_spi: false,
            },
            ..SystemConfig::default()
        };
        let err = check_event_loop_liveness(&config, DeadSpi, 2, 500_000);
        assert!(
            matches!(err, Err(LivenessError::StuckIteration { .. })),
            "expected a stuck iteration, got {err:?}"
        );
    }
}

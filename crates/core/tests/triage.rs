//! Property tests for the fault-plan minimizer: on randomized plans and
//! randomized (synthetic, instant) failure predicates, `shrink_plan` must
//! keep the invariants the triage workflow rests on — the minimized plan
//! still fails, is a sub-plan of the original, and comes out identical on
//! every run. The real-stack triage path (slow, one plan) is covered in
//! `tests/fault_injection.rs`; these properties get the combinatorial
//! coverage.

use devices::{FaultAtom, FaultPlan};
use integration::differential::DiffError;
use integration::triage::shrink_plan;
use proptest::prelude::*;

/// Decodes a generated `(kind, at, value)` triple into a fault atom.
/// Register-poll atoms are excluded: [`FaultPlan::from_atoms`] merges
/// duplicates of those by `max`, which is correct plan semantics but
/// would make "the culprit survives verbatim" harder to state.
fn decode(kind: u8, at: u64, value: u8) -> FaultAtom {
    match kind % 3 {
        0 => FaultAtom::SpuriousRx(at),
        1 => FaultAtom::WireGarbage(at, value),
        _ => FaultAtom::RxStall(at, u32::from(value) + 1),
    }
}

/// Builds a plan from generated triples, keeping one atom per trigger
/// index so normalization (sort + dedup by trigger) cannot merge atoms
/// and subset claims stay exact.
fn plan_from(triples: &[(u8, u64, u8)]) -> FaultPlan {
    let mut seen = std::collections::BTreeSet::new();
    let atoms: Vec<FaultAtom> = triples
        .iter()
        .filter(|(_, at, _)| seen.insert(*at))
        .map(|&(kind, at, value)| decode(kind, at, value))
        .collect();
    FaultPlan::from_atoms(42, &atoms)
}

fn is_subset(smaller: &[FaultAtom], larger: &[FaultAtom]) -> bool {
    smaller.iter().all(|a| larger.contains(a))
}

proptest! {
    /// With a monotone predicate ("fails iff every culprit atom is still
    /// scheduled"), the minimizer must return exactly the culprit set:
    /// still failing, a subset of the original, 1-minimal, and identical
    /// across runs.
    #[test]
    fn shrink_finds_exactly_the_culprit_set(
        triples in proptest::collection::vec((any::<u8>(), 0u64..5000, any::<u8>()), 1..14),
        mask in any::<u16>(),
    ) {
        let original = plan_from(&triples);
        let atoms = original.atoms();
        let mut culprits: Vec<FaultAtom> = atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 16)) != 0)
            .map(|(_, a)| *a)
            .collect();
        if culprits.is_empty() {
            // The vendored proptest has no `prop_assume`; conscript the
            // first atom so the predicate is never vacuous.
            culprits.push(atoms[0]);
        }

        let fails = |p: &FaultPlan| {
            is_subset(&culprits, &p.atoms()).then_some(DiffError::MachineTimeout)
        };
        let (minimal, error, probes) =
            shrink_plan(&original, fails).expect("original contains every culprit");

        // Still failing, and a genuine sub-plan.
        prop_assert!(fails(&minimal).is_some(), "minimized plan no longer fails");
        prop_assert_eq!(&error, &DiffError::MachineTimeout);
        prop_assert!(
            is_subset(&minimal.atoms(), &atoms),
            "minimized plan {:?} is not a sub-plan of {:?}", minimal.atoms(), atoms
        );
        prop_assert!(probes >= 1);

        // For a monotone predicate, 1-minimality pins the answer down to
        // the culprit set itself (in canonical plan order).
        let expected = FaultPlan::from_atoms(original.seed, &culprits);
        prop_assert_eq!(&minimal, &expected);

        // Determinism: a second run takes the identical path.
        let again = shrink_plan(&original, fails).expect("still fails");
        prop_assert_eq!(&again.0, &minimal);
        prop_assert_eq!(again.2, probes);
    }

    /// A non-monotone predicate (fails on an exact atom-count parity) must
    /// still shrink to a plan that fails and is a sub-plan — the minimizer
    /// promises local minimality, never global.
    #[test]
    fn shrink_is_sound_under_non_monotone_predicates(
        triples in proptest::collection::vec((any::<u8>(), 0u64..5000, any::<u8>()), 1..14),
    ) {
        let original = plan_from(&triples);
        let parity = original.atoms().len() % 2;
        let fails = |p: &FaultPlan| {
            (p.atoms().len() % 2 == parity && !p.atoms().is_empty())
                .then_some(DiffError::MachineTimeout)
        };
        let (minimal, _, _) = shrink_plan(&original, fails).expect("original fails by parity");
        prop_assert!(fails(&minimal).is_some(), "minimized plan no longer fails");
        prop_assert!(is_subset(&minimal.atoms(), &original.atoms()));
        // 1-minimality, checked directly against the predicate.
        let atoms = minimal.atoms();
        for i in 0..atoms.len() {
            let mut fewer = atoms.clone();
            fewer.remove(i);
            let sub = FaultPlan::from_atoms(minimal.seed, &fewer);
            prop_assert!(
                fails(&sub).is_none(),
                "dropping atom {} still fails: not 1-minimal", i
            );
        }
    }

    /// Plans that never fail never shrink: `shrink_plan` must not
    /// fabricate a counterexample out of a passing plan.
    #[test]
    fn shrink_refuses_passing_plans(
        triples in proptest::collection::vec((any::<u8>(), 0u64..5000, any::<u8>()), 0..14),
    ) {
        let original = plan_from(&triples);
        prop_assert!(shrink_plan(&original, |_| None).is_none());
    }

    /// The seeded-plan decomposition round-trips through atoms and JSON:
    /// triage artifacts must reproduce the exact plan they describe.
    #[test]
    fn plans_round_trip_through_atoms_and_json(seed in any::<u64>()) {
        let plan = FaultPlan::from_seed(seed);
        let rebuilt = FaultPlan::from_atoms(plan.seed, &plan.atoms());
        prop_assert_eq!(&rebuilt, &plan);
        let parsed = FaultPlan::from_json(
            &obs::json::parse(&plan.to_json().render()).expect("valid JSON"),
        )
        .expect("plan parses back");
        prop_assert_eq!(&parsed, &plan);
    }
}

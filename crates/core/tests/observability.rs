//! Cross-layer telemetry checks on real system runs: the counters a run
//! reports must be *accountable* — stalls, flushes, and retirements have
//! to add back up to the cycle total — and the traced variant must yield
//! a Perfetto-loadable document.

use integration::{ProcessorKind, SystemConfig};

const BOOT: u64 = 250_000;

/// Each pipeline cycle is spent exactly one way: retiring an instruction,
/// stalling in decode, or as a flush bubble (squashes ride along with a
/// later retirement/stall). Only the initial pipeline fill is outside the
/// books, so the sum must land within a handful of cycles of the total.
#[test]
fn pipeline_counters_account_for_every_cycle() {
    let run = SystemConfig::default().run(&[], BOOT);
    assert!(run.error.is_none());
    let c = &run.report.counters;

    assert_eq!(c.get("pipeline.cycles"), run.cycles);
    assert_eq!(
        c.get("pipeline.stall.total"),
        c.get("pipeline.stall.raw") + c.get("pipeline.stall.waw")
    );
    assert!(c.get("pipeline.flush.total") >= c.get("pipeline.flush.mispredict"));

    let accounted = c.get("pipeline.retired")
        + c.get("pipeline.stall.total")
        + c.get("pipeline.squashed")
        + c.get("pipeline.flush.total");
    const FILL_SLACK: u64 = 8;
    assert!(
        accounted <= run.cycles,
        "over-accounted: {accounted} > {} cycles",
        run.cycles
    );
    assert!(
        accounted + FILL_SLACK >= run.cycles,
        "unaccounted cycles: {accounted} + {FILL_SLACK} < {}",
        run.cycles
    );

    // The BTB is consulted once per resolved control-flow instruction, so
    // its hit+miss total is bounded by what fetch supplied.
    assert!(
        c.get("pipeline.btb.hit") + c.get("pipeline.btb.miss") <= c.get("pipeline.icache.fetch")
    );
}

#[test]
fn a_traced_run_exports_a_valid_chrome_trace() {
    let run = SystemConfig::default().run_traced(&[], BOOT);
    assert!(run.error.is_none());
    let events = &run.report.trace_events;
    assert!(!events.is_empty(), "a boot has redirects and IPC samples");
    assert!(
        events.windows(2).all(|w| w[0].ts <= w[1].ts),
        "events must be emitted in timestamp order"
    );

    let doc = obs::json::parse(&run.report.chrome_trace()).expect("exporter emits valid JSON");
    let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(items.len(), events.len());

    // The untraced run reports identical counters — tracing only adds the
    // event stream, never changes the machine. Compiler pass wall times
    // are the one nondeterministic family; skip those.
    let plain = SystemConfig::default().run(&[], BOOT);
    let deterministic = |c: &obs::Counters| {
        c.iter()
            .filter(|(name, _)| !name.ends_with("_micros"))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        deterministic(&plain.report.counters),
        deterministic(&run.report.counters)
    );
    assert!(plain.report.trace_events.is_empty());
}

#[test]
fn every_machine_model_reports_its_layer_counters() {
    for (kind, prefix) in [
        (ProcessorKind::Pipelined, "pipeline.cycles"),
        (ProcessorKind::SingleCycle, "pipeline.cycles"),
        (ProcessorKind::SpecMachine, "spec.retired.alu"),
    ] {
        let config = SystemConfig {
            processor: kind,
            ..SystemConfig::default()
        };
        let run = config.run(&[], BOOT);
        assert!(run.error.is_none(), "{kind:?}");
        let c = &run.report.counters;
        assert!(c.get(prefix) > 0, "{kind:?} must report {prefix}");
        assert!(c.get("board.ticks") > 0, "{kind:?} must report board time");
        assert!(
            c.get("compiler.code.instructions") > 0,
            "{kind:?} must carry compile stats"
        );
        assert_ne!(run.report.final_pc, 0, "{kind:?} must report a final pc");
        let summary = run.report.summary();
        assert!(summary.contains("[board]"), "{kind:?}: {summary}");
    }
}

//! The obligation cache must be semantically invisible: for any batch of
//! obligations, proving through a [`ProofCache`] — or through the sharded
//! batch engine at any shard count — must return exactly the outcomes the
//! bare [`prove`] would. A cache that ever changes an answer (a fingerprint
//! collision routed to the wrong entry, a stale persisted result, a merge
//! that loses an overlay) would silently un-verify the system, so this is
//! the property the whole incremental engine hangs on.

use bedrock2::ast::BinOp;
use proglogic::{
    obligation_fingerprint, prove, prove_batch, Formula, Obligation, Outcome, ProofCache, Term,
};
use proptest::prelude::*;
use std::collections::HashSet;

const NVARS: u32 = 3;

/// Random terms biased toward *colliding-looking* shapes: a tiny constant
/// pool and a tiny variable pool mean batches are full of terms that agree
/// on most fingerprint inputs (same tags, same children, one constant or
/// one operand swapped) — exactly the near-misses a sloppy hash scheme
/// would conflate.
fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0u32..NVARS).prop_map(|i| Term::var(i, "v")),
        prop_oneof![
            Just(0u32),
            Just(1),
            Just(3),
            Just(4),
            Just(0xFF),
            any::<u32>()
        ]
        .prop_map(Term::constant),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), inner, 0u8..15).prop_map(|(a, b, k)| {
            let op = BinOp::ALL[k as usize];
            Term::op(op, &a, &b)
        })
    })
}

fn arb_cmp() -> impl Strategy<Value = Formula> {
    (arb_term(), arb_term(), 0u8..4).prop_map(|(a, b, k)| match k {
        0 => Formula::eq(&a, &b),
        1 => Formula::ne(&a, &b),
        2 => Formula::ltu(&a, &b),
        _ => Formula::leu(&a, &b),
    })
}

fn arb_obligation() -> impl Strategy<Value = (Vec<Formula>, Formula)> {
    (proptest::collection::vec(arb_cmp(), 0..3), arb_cmp())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every query through the cache agrees with the bare solver, both on
    /// the miss that populates it and on the hit that replays it.
    #[test]
    fn cached_outcomes_equal_uncached(
        batch in proptest::collection::vec(arb_obligation(), 1..24),
    ) {
        let mut cache = ProofCache::new();
        for (assumptions, goal) in &batch {
            let direct = prove(assumptions, goal);
            prop_assert_eq!(cache.prove(assumptions, goal), direct);
            let hits = cache.hits();
            prop_assert_eq!(cache.prove(assumptions, goal), direct);
            prop_assert_eq!(cache.hits(), hits + 1, "the replay must be a hit");
        }
    }

    /// The sharded batch engine returns the bare solver's outcomes at every
    /// shard count, with or without a shared cache.
    #[test]
    fn batch_outcomes_are_shard_invariant_and_equal_direct(
        batch in proptest::collection::vec(arb_obligation(), 1..24),
    ) {
        let obligations: Vec<Obligation> = batch
            .iter()
            .cloned()
            .map(|(assumptions, goal)| Obligation {
                context: String::new(),
                assumptions,
                goal,
            })
            .collect();
        let direct: Vec<Outcome> = batch
            .iter()
            .map(|(assumptions, goal)| prove(assumptions, goal))
            .collect();
        for shards in [1usize, 3, 8] {
            let report = prove_batch(&obligations, shards, None);
            prop_assert_eq!(&report.outcomes, &direct, "shards={}", shards);
            let mut cache = ProofCache::new();
            let cold = prove_batch(&obligations, shards, Some(&mut cache));
            prop_assert_eq!(&cold.outcomes, &direct, "cold, shards={}", shards);
            let warm = prove_batch(&obligations, shards, Some(&mut cache));
            prop_assert_eq!(&warm.outcomes, &direct, "warm, shards={}", shards);
            prop_assert_eq!(warm.cache_misses, 0, "warm re-run must be all hits");
        }
    }
}

/// Hand-built near-misses: pairs that agree on everything except operand
/// order, one constant, one variable identity, or assumption order. Each
/// must key a distinct cache entry, and each cached answer must match the
/// bare solver's.
#[test]
fn colliding_looking_obligations_stay_distinct() {
    let x = Term::var(0, "x");
    let y = Term::var(1, "y");
    let c10 = Term::constant(10);
    let c11 = Term::constant(11);
    let lt_xy = Formula::ltu(&x, &y);
    let lt_yx = Formula::ltu(&y, &x);
    let le_xy = Formula::leu(&x, &y);

    let cases: Vec<(Vec<Formula>, Formula)> = vec![
        // Operand order in the goal.
        (vec![], lt_xy.clone()),
        (vec![], lt_yx.clone()),
        // Strict vs non-strict with identical operands.
        (vec![], le_xy.clone()),
        // Off-by-one constants.
        (vec![Formula::ltu(&x, &c10)], Formula::ltu(&x, &c11)),
        (vec![Formula::ltu(&x, &c11)], Formula::ltu(&x, &c10)),
        // Same shape, different variable.
        (vec![Formula::ltu(&y, &c10)], Formula::ltu(&y, &c11)),
        // Assumption order (the fingerprint is deliberately
        // order-sensitive; see `solver::obligation_fingerprint`).
        (vec![lt_xy.clone(), le_xy.clone()], lt_xy.clone()),
        (vec![le_xy.clone(), lt_xy.clone()], lt_xy.clone()),
        // Goal moved into the assumptions and vice versa.
        (vec![lt_xy.clone()], le_xy.clone()),
        (vec![le_xy], lt_xy),
    ];

    let fps: HashSet<u128> = cases
        .iter()
        .map(|(a, g)| obligation_fingerprint(a, g))
        .collect();
    assert_eq!(
        fps.len(),
        cases.len(),
        "every near-miss must key its own cache entry"
    );

    let mut cache = ProofCache::new();
    for (assumptions, goal) in &cases {
        let direct = prove(assumptions, goal);
        assert_eq!(
            cache.prove(assumptions, goal),
            direct,
            "cached answer diverged for {goal:?} under {assumptions:?}"
        );
    }
    assert_eq!(cache.misses(), cases.len() as u64, "no spurious hits");
}

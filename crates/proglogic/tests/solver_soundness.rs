//! Soundness fuzzing for the prover: whenever [`prove`] answers `Proved`,
//! the goal must hold under every concrete valuation satisfying the
//! assumptions. The test samples random terms, assumptions, and
//! valuations; a single counterexample would demonstrate an unsound
//! inference (the one failure mode a verification tool must not have —
//! incompleteness is fine, unsoundness is not).

use bedrock2::ast::BinOp;
use proglogic::{prove, Formula, FormulaView, Outcome, Term};
use proptest::prelude::*;
use std::collections::HashMap;

const NVARS: u32 = 3;

fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0u32..NVARS).prop_map(|i| Term::var(i, "v")),
        prop_oneof![
            Just(0u32),
            Just(1),
            Just(4),
            Just(0xFF),
            Just(1520),
            Just(0x8000_0000),
            Just(u32::MAX),
            any::<u32>(),
        ]
        .prop_map(Term::constant),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), inner, 0u8..15).prop_map(|(a, b, k)| {
            let op = BinOp::ALL[k as usize];
            Term::op(op, &a, &b)
        })
    })
}

fn arb_cmp() -> impl Strategy<Value = Formula> {
    (arb_term(), arb_term(), 0u8..4).prop_map(|(a, b, k)| match k {
        0 => Formula::eq(&a, &b),
        1 => Formula::ne(&a, &b),
        2 => Formula::ltu(&a, &b),
        _ => Formula::leu(&a, &b),
    })
}

fn eval_term(t: &Term, env: &HashMap<u32, u32>) -> u32 {
    if let Some(c) = t.as_const() {
        return c;
    }
    if let Some(v) = t.as_var() {
        return env[&v.id];
    }
    let (op, a, b) = t.as_op().expect("term shapes are exhaustive");
    op.eval(eval_term(a, env), eval_term(b, env))
}

fn eval_formula(f: &Formula, env: &HashMap<u32, u32>) -> bool {
    match f.view() {
        FormulaView::True => true,
        FormulaView::False => false,
        FormulaView::Eq(a, b) => eval_term(a, env) == eval_term(b, env),
        FormulaView::Ne(a, b) => eval_term(a, env) != eval_term(b, env),
        FormulaView::Ltu(a, b) => eval_term(a, env) < eval_term(b, env),
        FormulaView::Leu(a, b) => eval_term(a, env) <= eval_term(b, env),
        FormulaView::And(a, b) => eval_formula(a, env) && eval_formula(b, env),
        FormulaView::Or(a, b) => eval_formula(a, env) || eval_formula(b, env),
        FormulaView::Not(a) => !eval_formula(a, env),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Proved goals hold under every satisfying valuation we can sample.
    #[test]
    fn proved_goals_are_concretely_true(
        assumptions in proptest::collection::vec(arb_cmp(), 0..4),
        goal in arb_cmp(),
        valuations in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), NVARS as usize),
            1..24,
        ),
    ) {
        if prove(&assumptions, &goal) != Outcome::Proved {
            return Ok(()); // incompleteness is allowed
        }
        for vals in valuations {
            let env: HashMap<u32, u32> =
                (0..NVARS).zip(vals.iter().copied()).collect();
            if assumptions.iter().all(|a| eval_formula(a, &env)) {
                prop_assert!(
                    eval_formula(&goal, &env),
                    "UNSOUND: {goal:?} proved from {assumptions:?} but false at {env:?}"
                );
            }
        }
    }

    /// Negation is involutive and classical at the evaluation level, so
    /// proving `¬¬g` must be at least as strong as proving `g` concretely.
    #[test]
    fn double_negation_evaluates_identically(
        goal in arb_cmp(),
        vals in proptest::collection::vec(any::<u32>(), NVARS as usize),
    ) {
        let env: HashMap<u32, u32> = (0..NVARS).zip(vals.iter().copied()).collect();
        let neg2 = goal.clone().negate().negate();
        prop_assert_eq!(eval_formula(&goal, &env), eval_formula(&neg2, &env));
    }

    /// Term simplification preserves meaning.
    #[test]
    fn term_simplification_is_sound(
        a in arb_term(),
        b in arb_term(),
        k in 0u8..15,
        vals in proptest::collection::vec(any::<u32>(), NVARS as usize),
    ) {
        let env: HashMap<u32, u32> = (0..NVARS).zip(vals.iter().copied()).collect();
        let op = BinOp::ALL[k as usize];
        // Term::op simplifies eagerly; the unsimplified meaning is
        // op.eval of the operand meanings.
        let combined = Term::op(op, &a, &b);
        prop_assert_eq!(
            eval_term(&combined, &env),
            op.eval(eval_term(&a, &env), eval_term(&b, &env)),
            "simplification changed the meaning of {:?} {:?} {:?}", a, op, b
        );
    }
}

//! The parallel obligation engine.
//!
//! Verification condition batches are embarrassingly parallel: each
//! obligation is a pure `(assumptions, goal)` query, so a batch can be
//! sharded across OS threads exactly like `differential::parallel_sweep`
//! shards differential-test seeds in `crates/core`. The same determinism
//! discipline applies:
//!
//! * obligations are split into *contiguous* chunks, one per shard;
//! * every shard proves into its own [`ProofCache`] overlay, primed from a
//!   snapshot of the shared cache (shards never contend on a lock);
//! * shard results are merged back in shard (= ascending obligation)
//!   order, so outcomes, the final cache contents, and the exported
//!   counters are all deterministic functions of the inputs.
//!
//! Outcomes are additionally *shard-count invariant* — the solver is pure,
//! so splitting work differently cannot change any answer (only the
//! hit/miss split, since shards deduplicate work against their own overlay
//! rather than each other's; the report records the shard count next to
//! those counters for exactly that reason).

use crate::formula::Formula;
use crate::solver::{Outcome, ProofCache};
use obs::Counters;

/// One deferred verification condition: a goal under path assumptions,
/// plus the diagnostic context a failure should report.
#[derive(Clone, Debug)]
pub struct Obligation {
    /// What this obligation checks (e.g. `"store within pad bounds"`).
    pub context: String,
    /// The path condition in force.
    pub assumptions: Vec<Formula>,
    /// The goal to prove.
    pub goal: Formula,
}

/// Result of proving a batch: per-obligation outcomes in input order plus
/// the cache traffic the batch generated.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Outcome of each obligation, in input order.
    pub outcomes: Vec<Outcome>,
    /// Shards the batch ran on.
    pub shards: usize,
    /// Obligations answered from the cache (shared snapshot or the
    /// shard's own overlay).
    pub cache_hits: u64,
    /// Obligations actually solved.
    pub cache_misses: u64,
}

impl BatchReport {
    /// Number of proved obligations.
    pub fn proved(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|&&o| o == Outcome::Proved)
            .count()
    }

    /// Index of the first unproved obligation, when any.
    pub fn first_failure(&self) -> Option<usize> {
        self.outcomes.iter().position(|&o| o != Outcome::Proved)
    }

    /// Whether every obligation was proved.
    pub fn all_proved(&self) -> bool {
        self.first_failure().is_none()
    }

    /// Telemetry: `proglogic.solver.{cache_hit,cache_miss,proved,shards}`.
    pub fn counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("proglogic.solver.cache_hit", self.cache_hits);
        c.set("proglogic.solver.cache_miss", self.cache_misses);
        c.set("proglogic.solver.proved", self.proved() as u64);
        c.set("proglogic.solver.shards", self.shards as u64);
        c
    }
}

/// Proves `obligations` across `shards` OS threads, reading and (on
/// return) extending `cache` when one is supplied.
///
/// Outcomes are deterministic and shard-count invariant; the hit/miss
/// split is deterministic for a fixed shard count. With a cache, new
/// results are merged back in shard order, so the final cache state is
/// reproducible too. Persisting the cache remains the caller's decision
/// ([`ProofCache::save`]).
pub fn prove_batch(
    obligations: &[Obligation],
    shards: usize,
    cache: Option<&mut ProofCache>,
) -> BatchReport {
    let shards = shards.clamp(1, obligations.len().max(1));
    let base = cache.as_ref().map(|c| c.snapshot()).unwrap_or_default();
    let per_shard = obligations.len().div_ceil(shards);

    let mut outcomes = Vec::with_capacity(obligations.len());
    let mut locals: Vec<ProofCache> = Vec::with_capacity(shards);

    if shards == 1 {
        // Degenerate case inline — no thread spawn on single-core runners.
        let mut local = base;
        for ob in obligations {
            outcomes.push(local.prove(&ob.assumptions, &ob.goal));
        }
        locals.push(local);
    } else {
        let chunks: Vec<&[Obligation]> = obligations.chunks(per_shard.max(1)).collect();
        let mut results: Vec<Option<(Vec<Outcome>, ProofCache)>> = Vec::new();
        results.resize_with(chunks.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for chunk in &chunks {
                let mut local = base.snapshot();
                handles.push(scope.spawn(move || {
                    let outcomes: Vec<Outcome> = chunk
                        .iter()
                        .map(|ob| local.prove(&ob.assumptions, &ob.goal))
                        .collect();
                    (outcomes, local)
                }));
            }
            // Join in shard order: the merge below is deterministic.
            for (slot, handle) in results.iter_mut().zip(handles) {
                *slot = Some(
                    handle
                        .join()
                        .expect("prove_batch shard panicked; the solver must not panic"),
                );
            }
        });
        for slot in results {
            let (shard_outcomes, local) =
                slot.expect("every shard slot is filled by the scope above");
            outcomes.extend(shard_outcomes);
            locals.push(local);
        }
    }

    let (mut hits, mut misses) = (0, 0);
    for local in &locals {
        hits += local.hits();
        misses += local.misses();
    }
    if let Some(cache) = cache {
        // Merge overlays back in shard order (later shards win ties, but
        // ties are identical outcomes — the solver is deterministic).
        for local in &locals {
            cache.absorb(local);
        }
    }

    BatchReport {
        outcomes,
        shards,
        cache_hits: hits,
        cache_misses: misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use crate::solver::prove;
    use crate::term::Term;

    fn workload(n: u32) -> Vec<Obligation> {
        (0..n)
            .map(|i| {
                let x = Term::var(0, "x");
                let bound = 10 + (i % 7);
                Obligation {
                    context: format!("ob{i}"),
                    assumptions: vec![Formula::ltu(&x, &Term::constant(bound))],
                    goal: Formula::ltu(&x.add_const(i % 3), &Term::constant(bound + 2)),
                }
            })
            .collect()
    }

    #[test]
    fn outcomes_match_direct_prove_and_are_shard_invariant() {
        let obs = workload(41);
        let direct: Vec<Outcome> = obs
            .iter()
            .map(|ob| prove(&ob.assumptions, &ob.goal))
            .collect();
        for shards in [1, 2, 3, 8, 64] {
            let report = prove_batch(&obs, shards, None);
            assert_eq!(report.outcomes, direct, "shards={shards}");
        }
    }

    #[test]
    fn cache_warms_across_batches() {
        let obs = workload(20);
        let mut cache = ProofCache::new();
        let cold = prove_batch(&obs, 4, Some(&mut cache));
        assert!(cold.cache_misses > 0);
        let warm = prove_batch(&obs, 4, Some(&mut cache));
        assert_eq!(warm.outcomes, cold.outcomes);
        // Every obligation was already cached: zero misses on the re-run.
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.cache_hits, obs.len() as u64);
    }

    #[test]
    fn counters_report_the_batch_shape() {
        let obs = workload(10);
        let report = prove_batch(&obs, 2, None);
        let c = report.counters();
        assert_eq!(c.get("proglogic.solver.shards"), 2);
        assert_eq!(
            c.get("proglogic.solver.cache_hit") + c.get("proglogic.solver.cache_miss"),
            10
        );
        assert_eq!(c.get("proglogic.solver.proved"), report.proved() as u64);
    }

    #[test]
    fn first_failure_is_lowest_index() {
        let x = Term::var(0, "x");
        let mut obs = workload(5);
        obs.insert(
            2,
            Obligation {
                context: "unprovable".into(),
                assumptions: vec![],
                goal: Formula::ltu(&x, &Term::constant(1)),
            },
        );
        let report = prove_batch(&obs, 3, None);
        assert_eq!(report.first_failure(), Some(2));
        assert!(!report.all_proved());
    }
}

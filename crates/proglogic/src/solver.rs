//! A lightweight prover for word formulas.
//!
//! The paper spent much of its engineering budget fighting Coq tactic
//! performance on exactly these goals — linear arithmetic, bitvectors,
//! bounds (§7.3.1). This module is the corresponding "layer-specific tool":
//! a small, predictable decision procedure combining
//!
//! 1. substitution of variable-equals-constant assumptions,
//! 2. eager term simplification (in [`crate::term`]),
//! 3. unsigned interval analysis seeded by the assumptions, and
//! 4. structural decomposition of the goal.
//!
//! It is deliberately incomplete: [`Outcome::Unknown`] means "not proved",
//! never "false". The symbolic executor treats Unknown as a verification
//! failure, the same stance a proof assistant takes toward an unfinished
//! goal.

use crate::formula::Formula;
use crate::term::{SymVar, Term};
use bedrock2::ast::BinOp;
use std::collections::HashMap;

/// Result of a proof attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The goal follows from the assumptions.
    Proved,
    /// The procedure could not establish the goal (it may still be true).
    Unknown,
}

/// An unsigned interval `[lo, hi]` (inclusive).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Iv {
    lo: u32,
    hi: u32,
}

impl Iv {
    const FULL: Iv = Iv {
        lo: 0,
        hi: u32::MAX,
    };

    fn point(c: u32) -> Iv {
        Iv { lo: c, hi: c }
    }

    fn meet(self, other: Iv) -> Iv {
        Iv {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    fn is_empty(self) -> bool {
        self.lo > self.hi
    }
}

struct Ctx {
    subst: HashMap<SymVar, Term>,
    facts: HashMap<Term, Iv>,
}

/// Rewrites assumptions that reify comparisons as 0/1-valued *terms* into
/// direct formulas: `(a <u b) = 0` becomes `b ≤u a`, `(a = b) ≠ 0` becomes
/// `a = b`, and so on. Bedrock2 conditions produce exactly these shapes.
fn normalize(a: &Formula, out: &mut Vec<Formula>) {
    let reified = |t: &Term, truth: bool| -> Option<Formula> {
        let (op, x, y) = t.as_op()?;
        match (op, truth) {
            (BinOp::Ltu, true) => Some(Formula::Ltu(x.clone(), y.clone())),
            (BinOp::Ltu, false) => Some(Formula::Leu(y.clone(), x.clone())),
            (BinOp::Eq, true) => Some(Formula::Eq(x.clone(), y.clone())),
            (BinOp::Eq, false) => Some(Formula::Ne(x.clone(), y.clone())),
            _ => None,
        }
    };
    match a {
        Formula::And(x, y) => {
            normalize(x, out);
            normalize(y, out);
        }
        Formula::Eq(l, r) | Formula::Ne(l, r) => {
            // `a | b = 0` holds iff both halves are zero (for any terms),
            // so split it — this is how a source-level guard like
            // `if (len < MIN) | (MAX < len)` delivers both bounds.
            if matches!(a, Formula::Eq(..)) {
                let or_operand = match (l.as_const(), r.as_const()) {
                    (_, Some(0)) => Some(l),
                    (Some(0), _) => Some(r),
                    _ => None,
                };
                if let Some(t) = or_operand {
                    if let Some((BinOp::Or, x, y)) = t.as_op() {
                        normalize(&Formula::Eq(x.clone(), Term::constant(0)), out);
                        normalize(&Formula::Eq(y.clone(), Term::constant(0)), out);
                        return;
                    }
                }
            }
            let negated = matches!(a, Formula::Eq(..));
            // `t = 0` asserts the comparison is false; `t ≠ 0` that it is
            // true (and symmetrically for a constant on the left).
            let rewritten = match (l.as_const(), r.as_const()) {
                (_, Some(0)) => reified(l, !negated),
                (Some(0), _) => reified(r, !negated),
                (_, Some(1)) if negated => reified(l, true),
                (Some(1), _) if negated => reified(r, true),
                _ => None,
            };
            match rewritten {
                Some(f) => {
                    normalize(&f, out);
                    out.push(a.clone()); // keep the original fact too
                }
                None => out.push(a.clone()),
            }
        }
        _ => out.push(a.clone()),
    }
}

impl Ctx {
    fn from_assumptions(raw: &[Formula]) -> Ctx {
        let mut assumptions = Vec::with_capacity(raw.len());
        for a in raw {
            normalize(a, &mut assumptions);
        }
        let assumptions = &assumptions;
        let mut ctx = Ctx {
            subst: HashMap::new(),
            facts: HashMap::new(),
        };
        // Pass 1: collect var = const substitutions.
        for a in assumptions {
            if let Formula::Eq(l, r) = a {
                match (l.as_var(), r.as_const(), r.as_var(), l.as_const()) {
                    (Some(v), Some(c), _, _) | (_, _, Some(v), Some(c)) => {
                        ctx.subst.insert(v.clone(), Term::constant(c));
                    }
                    _ => {}
                }
            }
        }
        // Pass 2: interval facts over substituted terms.
        for a in assumptions {
            match a {
                Formula::Ltu(l, r) => {
                    let (l, r) = (ctx.substitute(l), ctx.substitute(r));
                    if let Some(c) = r.as_const() {
                        if c > 0 {
                            ctx.add_fact(l.clone(), Iv { lo: 0, hi: c - 1 });
                        }
                    }
                    if let Some(c) = l.as_const() {
                        if c < u32::MAX {
                            ctx.add_fact(
                                r,
                                Iv {
                                    lo: c + 1,
                                    hi: u32::MAX,
                                },
                            );
                        }
                    }
                }
                Formula::Leu(l, r) => {
                    let (l, r) = (ctx.substitute(l), ctx.substitute(r));
                    if let Some(c) = r.as_const() {
                        ctx.add_fact(l.clone(), Iv { lo: 0, hi: c });
                    }
                    if let Some(c) = l.as_const() {
                        ctx.add_fact(
                            r,
                            Iv {
                                lo: c,
                                hi: u32::MAX,
                            },
                        );
                    }
                }
                Formula::Eq(l, r) => {
                    let (l, r) = (ctx.substitute(l), ctx.substitute(r));
                    if let Some(c) = r.as_const() {
                        ctx.add_fact(l, Iv::point(c));
                    } else if let Some(c) = l.as_const() {
                        ctx.add_fact(r, Iv::point(c));
                    }
                }
                _ => {}
            }
        }
        // Pass 3 (iterated): comparisons against non-constant terms
        // propagate the right-hand side's *derived* interval — e.g. from
        // `i <u n` and `n ≤ 380` conclude `i ≤ 379`. Two rounds chain
        // one level of indirection each.
        for _ in 0..2 {
            for a in assumptions {
                match a {
                    Formula::Ltu(l, r) => {
                        let (l, r) = (ctx.substitute(l), ctx.substitute(r));
                        let (il, ir) = (ctx.interval(&l), ctx.interval(&r));
                        if ir.hi > 0 {
                            ctx.add_fact(
                                l,
                                Iv {
                                    lo: 0,
                                    hi: ir.hi - 1,
                                },
                            );
                        }
                        if il.lo < u32::MAX {
                            ctx.add_fact(
                                r,
                                Iv {
                                    lo: il.lo + 1,
                                    hi: u32::MAX,
                                },
                            );
                        }
                    }
                    Formula::Leu(l, r) => {
                        let (l, r) = (ctx.substitute(l), ctx.substitute(r));
                        let (il, ir) = (ctx.interval(&l), ctx.interval(&r));
                        ctx.add_fact(l, Iv { lo: 0, hi: ir.hi });
                        ctx.add_fact(
                            r,
                            Iv {
                                lo: il.lo,
                                hi: u32::MAX,
                            },
                        );
                    }
                    _ => {}
                }
            }
        }
        ctx
    }

    fn add_fact(&mut self, t: Term, iv: Iv) {
        let cur = self.facts.get(&t).copied().unwrap_or(Iv::FULL);
        self.facts.insert(t, cur.meet(iv));
    }

    fn substitute(&self, t: &Term) -> Term {
        if self.subst.is_empty() {
            return t.clone();
        }
        if let Some(v) = t.as_var() {
            return self.subst.get(v).cloned().unwrap_or_else(|| t.clone());
        }
        if let Some((op, a, b)) = t.as_op() {
            return Term::op(op, &self.substitute(a), &self.substitute(b));
        }
        t.clone()
    }

    /// Any assumption's interval became empty ⇒ contradictory context.
    fn contradictory(&self) -> bool {
        self.facts.values().any(|iv| iv.is_empty())
    }

    fn interval(&self, t: &Term) -> Iv {
        let computed = if let Some(c) = t.as_const() {
            Iv::point(c)
        } else if let Some((op, a, b)) = t.as_op() {
            let (ia, ib) = (self.interval(a), self.interval(b));
            match op {
                BinOp::Add => {
                    let lo = ia.lo as u64 + ib.lo as u64;
                    let hi = ia.hi as u64 + ib.hi as u64;
                    if hi <= u32::MAX as u64 {
                        Iv {
                            lo: lo as u32,
                            hi: hi as u32,
                        }
                    } else {
                        Iv::FULL
                    }
                }
                BinOp::Sub => {
                    if ia.lo >= ib.hi {
                        Iv {
                            lo: ia.lo - ib.hi,
                            hi: ia.hi - ib.lo,
                        }
                    } else {
                        Iv::FULL
                    }
                }
                BinOp::Mul => {
                    let hi = ia.hi as u64 * ib.hi as u64;
                    if hi <= u32::MAX as u64 {
                        Iv {
                            lo: ia.lo.wrapping_mul(ib.lo),
                            hi: hi as u32,
                        }
                    } else {
                        Iv::FULL
                    }
                }
                BinOp::And => {
                    // a & b ≤ min(hi(a), hi(b)).
                    Iv {
                        lo: 0,
                        hi: ia.hi.min(ib.hi),
                    }
                }
                BinOp::RemU => {
                    if ib.lo > 0 {
                        Iv {
                            lo: 0,
                            hi: ia.hi.min(ib.hi - 1),
                        }
                    } else {
                        // Remainder by a possibly-zero divisor yields the
                        // dividend in the zero case.
                        Iv { lo: 0, hi: ia.hi }
                    }
                }
                BinOp::DivU => match ia.hi.checked_div(ib.lo) {
                    Some(hi) => Iv { lo: 0, hi },
                    None => Iv::FULL,
                },
                BinOp::Sru => {
                    if let Some(s) = b.as_const() {
                        Iv {
                            lo: ia.lo >> (s & 31),
                            hi: ia.hi >> (s & 31),
                        }
                    } else {
                        Iv { lo: 0, hi: ia.hi }
                    }
                }
                BinOp::Slu => {
                    if let Some(s) = b.as_const() {
                        let s = s & 31;
                        if (ia.hi as u64) << s <= u32::MAX as u64 {
                            Iv {
                                lo: ia.lo << s,
                                hi: ia.hi << s,
                            }
                        } else {
                            Iv::FULL
                        }
                    } else {
                        Iv::FULL
                    }
                }
                BinOp::Eq | BinOp::Ltu | BinOp::Lts => Iv { lo: 0, hi: 1 },
                BinOp::Or | BinOp::Xor => {
                    // Bounded by the next power of two covering both
                    // operands' bounds. Computed in u64: in u32,
                    // `(m + 1).next_power_of_two()` overflows to 0 for
                    // m ≥ 0x8000_0000, which once made this interval
                    // collapse to [0,0] and proved a false goal — found by
                    // the soundness fuzzer (tests/solver_soundness.rs).
                    let m = ia.hi.max(ib.hi) as u64;
                    let hi = u32::try_from((m + 1).next_power_of_two() - 1).unwrap_or(u32::MAX);
                    // a | b is also at least as large as either operand.
                    let lo = if op == BinOp::Or { ia.lo.max(ib.lo) } else { 0 };
                    Iv { lo, hi }
                }
                _ => Iv::FULL,
            }
        } else {
            Iv::FULL
        };
        match self.facts.get(t) {
            Some(f) => computed.meet(*f),
            None => computed,
        }
    }

    fn prove(&self, goal: &Formula) -> Outcome {
        use Formula::*;
        match goal {
            True => Outcome::Proved,
            False => Outcome::Unknown,
            And(a, b) => {
                if self.prove(a) == Outcome::Proved && self.prove(b) == Outcome::Proved {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
            Or(a, b) => {
                if self.prove(a) == Outcome::Proved || self.prove(b) == Outcome::Proved {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
            Not(f) => self.prove(&f.clone().negate()),
            Eq(l, r) => {
                let (l, r) = (self.substitute(l), self.substitute(r));
                if l == r {
                    return Outcome::Proved;
                }
                let (il, ir) = (self.interval(&l), self.interval(&r));
                if il.lo == il.hi && ir.lo == ir.hi && il.lo == ir.lo {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
            Ne(l, r) => {
                let (l, r) = (self.substitute(l), self.substitute(r));
                let (il, ir) = (self.interval(&l), self.interval(&r));
                if il.hi < ir.lo || ir.hi < il.lo {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
            Ltu(l, r) => {
                let (l, r) = (self.substitute(l), self.substitute(r));
                let (il, ir) = (self.interval(&l), self.interval(&r));
                if il.hi < ir.lo {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
            Leu(l, r) => {
                let (l, r) = (self.substitute(l), self.substitute(r));
                if l == r {
                    return Outcome::Proved;
                }
                let (il, ir) = (self.interval(&l), self.interval(&r));
                if il.hi <= ir.lo {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
        }
    }
}

/// Attempts to prove `goal` from `assumptions`.
///
/// A contradictory assumption set proves anything (the vacuous case that
/// arises on infeasible symbolic paths).
pub fn prove(assumptions: &[Formula], goal: &Formula) -> Outcome {
    if assumptions.contains(&Formula::False) {
        return Outcome::Proved;
    }
    let ctx = Ctx::from_assumptions(assumptions);
    if ctx.contradictory() {
        return Outcome::Proved;
    }
    ctx.prove(goal)
}

/// True when the assumptions are unsatisfiable as far as this procedure
/// can tell (used to prune infeasible symbolic paths).
pub fn contradictory(assumptions: &[Formula]) -> bool {
    if assumptions.contains(&Formula::False) {
        return true;
    }
    let ctx = Ctx::from_assumptions(assumptions);
    if ctx.contradictory() {
        return true;
    }
    // Also try refuting each assumption from the others' intervals.
    for a in assumptions {
        if ctx.prove(&a.clone().negate()) == Outcome::Proved {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32, name: &str) -> Term {
        Term::var(id, name)
    }
    fn c(x: u32) -> Term {
        Term::constant(x)
    }

    #[test]
    fn constant_goals() {
        assert_eq!(prove(&[], &Formula::ltu(&c(2), &c(3))), Outcome::Proved);
        assert_eq!(prove(&[], &Formula::ltu(&c(3), &c(2))), Outcome::Unknown);
    }

    #[test]
    fn substitution_of_known_vars() {
        let x = v(0, "x");
        let assms = [Formula::eq(&x, &c(10))];
        let goal = Formula::ltu(&x.add_const(5), &c(16));
        assert_eq!(prove(&assms, &goal), Outcome::Proved);
    }

    #[test]
    fn interval_bounds_flow_through_arithmetic() {
        // len < 1520 ⊢ len + 16 < 2048
        let len = v(0, "len");
        let assms = [Formula::ltu(&len, &c(1520))];
        assert_eq!(
            prove(&assms, &Formula::ltu(&len.add_const(16), &c(2048))),
            Outcome::Proved
        );
        // …but not len + 16 < 1000
        assert_eq!(
            prove(&assms, &Formula::ltu(&len.add_const(16), &c(1000))),
            Outcome::Unknown
        );
    }

    #[test]
    fn masking_bounds() {
        // ⊢ (x & 0xFF) < 256, unconditionally
        let x = v(0, "x");
        let masked = Term::op(BinOp::And, &x, &c(0xFF));
        assert_eq!(prove(&[], &Formula::ltu(&masked, &c(256))), Outcome::Proved);
    }

    #[test]
    fn remainder_bounds() {
        let x = v(0, "x");
        let r = Term::op(BinOp::RemU, &x, &c(4));
        assert_eq!(prove(&[], &Formula::ltu(&r, &c(4))), Outcome::Proved);
    }

    #[test]
    fn shifts_and_division() {
        let x = v(0, "x");
        let assms = [Formula::ltu(&x, &c(0x1000))];
        let q = Term::op(BinOp::DivU, &x, &c(16));
        assert_eq!(prove(&assms, &Formula::ltu(&q, &c(0x100))), Outcome::Proved);
        let s = Term::op(BinOp::Sru, &x, &c(4));
        assert_eq!(prove(&assms, &Formula::ltu(&s, &c(0x100))), Outcome::Proved);
    }

    #[test]
    fn disequality_by_disjoint_intervals() {
        let x = v(0, "x");
        let assms = [Formula::ltu(&x, &c(10))];
        assert_eq!(prove(&assms, &Formula::ne(&x, &c(50))), Outcome::Proved);
        assert_eq!(prove(&assms, &Formula::ne(&x, &c(5))), Outcome::Unknown);
    }

    #[test]
    fn contradiction_proves_anything() {
        let x = v(0, "x");
        let assms = [Formula::ltu(&x, &c(3)), Formula::Leu(c(7), x.clone())];
        assert!(contradictory(&assms));
        assert_eq!(prove(&assms, &Formula::eq(&c(0), &c(1))), Outcome::Proved);
    }

    #[test]
    fn conjunction_and_disjunction() {
        let x = v(0, "x");
        let assms = [Formula::ltu(&x, &c(4))];
        let g = Formula::ltu(&x, &c(8)).and(Formula::leu(&x, &c(3)));
        assert_eq!(prove(&assms, &g), Outcome::Proved);
        let g = Formula::ltu(&c(9), &x).or(Formula::ltu(&x, &c(5)));
        assert_eq!(prove(&assms, &g), Outcome::Proved);
    }

    #[test]
    fn unknown_stays_unknown() {
        let x = v(0, "x");
        let y = v(1, "y");
        assert_eq!(prove(&[], &Formula::ltu(&x, &y)), Outcome::Unknown);
        assert!(!contradictory(&[Formula::ltu(&x, &y)]));
    }
}

//! A lightweight prover for word formulas, with an obligation cache.
//!
//! The paper spent much of its engineering budget fighting Coq tactic
//! performance on exactly these goals — linear arithmetic, bitvectors,
//! bounds (§7.3.1). This module is the corresponding "layer-specific tool":
//! a small, predictable decision procedure combining
//!
//! 1. substitution of variable-equals-constant assumptions,
//! 2. eager term simplification (in [`crate::term`]),
//! 3. unsigned interval analysis seeded by the assumptions, and
//! 4. structural decomposition of the goal.
//!
//! It is deliberately incomplete: [`Outcome::Unknown`] means "not proved",
//! never "false". The symbolic executor treats Unknown as a verification
//! failure, the same stance a proof assistant takes toward an unfinished
//! goal.
//!
//! # The obligation cache
//!
//! [`prove`] is a pure function of `(assumptions, goal)`, and hash-consed
//! formulas carry 128-bit structural fingerprints — so an obligation can
//! be keyed by one `u128` and its outcome reused instead of re-derived.
//! [`ProofCache`] does exactly that, in memory and optionally persisted as
//! a `verif-cache/v1` file (written atomically, temp-file + rename, the
//! same discipline as `SweepCheckpoint::write_atomic` in `crates/core`).
//! Only `Proved` outcomes are persisted: like a compiled Coq proof (`.vo`
//! after `Qed`), a proved obligation never needs re-checking, whereas an
//! `Unknown` might become provable when the procedure improves, so pinning
//! it across runs would freeze today's incompleteness into the cache.
//!
//! Fingerprints are *order-sensitive* in the assumption list. `prove`'s
//! context construction iterates assumptions in order, so two orderings
//! are distinct cache keys; this keeps the cached and uncached procedures
//! bit-for-bit equivalent (tested by `tests/cache_equiv.rs`) at the cost
//! of a miss when a caller reorders an otherwise identical VC — which the
//! deterministic symbolic executor never does.

use crate::formula::{Formula, FormulaView};
use crate::term::{SymVar, Term};
use bedrock2::ast::BinOp;
use obs::fx;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Result of a proof attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The goal follows from the assumptions.
    Proved,
    /// The procedure could not establish the goal (it may still be true).
    Unknown,
}

/// An unsigned interval `[lo, hi]` (inclusive).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Iv {
    lo: u32,
    hi: u32,
}

impl Iv {
    const FULL: Iv = Iv {
        lo: 0,
        hi: u32::MAX,
    };

    fn point(c: u32) -> Iv {
        Iv { lo: c, hi: c }
    }

    fn meet(self, other: Iv) -> Iv {
        Iv {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    fn is_empty(self) -> bool {
        self.lo > self.hi
    }
}

struct Ctx {
    subst: HashMap<SymVar, Term>,
    facts: HashMap<Term, Iv, fx::FxBuild>,
}

/// Rewrites assumptions that reify comparisons as 0/1-valued *terms* into
/// direct formulas: `(a <u b) = 0` becomes `b ≤u a`, `(a = b) ≠ 0` becomes
/// `a = b`, and so on. Bedrock2 conditions produce exactly these shapes.
fn normalize(a: &Formula, out: &mut Vec<Formula>) {
    let reified = |t: &Term, truth: bool| -> Option<Formula> {
        let (op, x, y) = t.as_op()?;
        match (op, truth) {
            (BinOp::Ltu, true) => Some(Formula::raw_ltu(x, y)),
            (BinOp::Ltu, false) => Some(Formula::raw_leu(y, x)),
            (BinOp::Eq, true) => Some(Formula::raw_eq(x, y)),
            (BinOp::Eq, false) => Some(Formula::raw_ne(x, y)),
            _ => None,
        }
    };
    match a.view() {
        FormulaView::And(x, y) => {
            normalize(x, out);
            normalize(y, out);
        }
        FormulaView::Eq(l, r) | FormulaView::Ne(l, r) => {
            let is_eq = matches!(a.view(), FormulaView::Eq(..));
            // `a | b = 0` holds iff both halves are zero (for any terms),
            // so split it — this is how a source-level guard like
            // `if (len < MIN) | (MAX < len)` delivers both bounds.
            if is_eq {
                let or_operand = match (l.as_const(), r.as_const()) {
                    (_, Some(0)) => Some(l),
                    (Some(0), _) => Some(r),
                    _ => None,
                };
                if let Some(t) = or_operand {
                    if let Some((BinOp::Or, x, y)) = t.as_op() {
                        normalize(&Formula::raw_eq(x, &Term::constant(0)), out);
                        normalize(&Formula::raw_eq(y, &Term::constant(0)), out);
                        return;
                    }
                }
            }
            let negated = is_eq;
            // `t = 0` asserts the comparison is false; `t ≠ 0` that it is
            // true (and symmetrically for a constant on the left).
            let rewritten = match (l.as_const(), r.as_const()) {
                (_, Some(0)) => reified(l, !negated),
                (Some(0), _) => reified(r, !negated),
                (_, Some(1)) if negated => reified(l, true),
                (Some(1), _) if negated => reified(r, true),
                _ => None,
            };
            match rewritten {
                Some(f) => {
                    normalize(&f, out);
                    out.push(a.clone()); // keep the original fact too
                }
                None => out.push(a.clone()),
            }
        }
        _ => out.push(a.clone()),
    }
}

impl Ctx {
    fn from_assumptions(raw: &[Formula]) -> Ctx {
        let mut assumptions = Vec::with_capacity(raw.len());
        for a in raw {
            normalize(a, &mut assumptions);
        }
        let assumptions = &assumptions;
        let mut ctx = Ctx {
            subst: HashMap::new(),
            facts: HashMap::default(),
        };
        // Pass 1: collect var = const substitutions.
        for a in assumptions {
            if let FormulaView::Eq(l, r) = a.view() {
                match (l.as_var(), r.as_const(), r.as_var(), l.as_const()) {
                    (Some(v), Some(c), _, _) | (_, _, Some(v), Some(c)) => {
                        ctx.subst.insert(v.clone(), Term::constant(c));
                    }
                    _ => {}
                }
            }
        }
        // Pass 2: interval facts over substituted terms.
        for a in assumptions {
            match a.view() {
                FormulaView::Ltu(l, r) => {
                    let (l, r) = (ctx.substitute(l), ctx.substitute(r));
                    if let Some(c) = r.as_const() {
                        if c > 0 {
                            ctx.add_fact(l.clone(), Iv { lo: 0, hi: c - 1 });
                        }
                    }
                    if let Some(c) = l.as_const() {
                        if c < u32::MAX {
                            ctx.add_fact(
                                r,
                                Iv {
                                    lo: c + 1,
                                    hi: u32::MAX,
                                },
                            );
                        }
                    }
                }
                FormulaView::Leu(l, r) => {
                    let (l, r) = (ctx.substitute(l), ctx.substitute(r));
                    if let Some(c) = r.as_const() {
                        ctx.add_fact(l.clone(), Iv { lo: 0, hi: c });
                    }
                    if let Some(c) = l.as_const() {
                        ctx.add_fact(
                            r,
                            Iv {
                                lo: c,
                                hi: u32::MAX,
                            },
                        );
                    }
                }
                FormulaView::Eq(l, r) => {
                    let (l, r) = (ctx.substitute(l), ctx.substitute(r));
                    if let Some(c) = r.as_const() {
                        ctx.add_fact(l, Iv::point(c));
                    } else if let Some(c) = l.as_const() {
                        ctx.add_fact(r, Iv::point(c));
                    }
                }
                _ => {}
            }
        }
        // Pass 3 (iterated): comparisons against non-constant terms
        // propagate the right-hand side's *derived* interval — e.g. from
        // `i <u n` and `n ≤ 380` conclude `i ≤ 379`. Two rounds chain
        // one level of indirection each.
        for _ in 0..2 {
            for a in assumptions {
                match a.view() {
                    FormulaView::Ltu(l, r) => {
                        let (l, r) = (ctx.substitute(l), ctx.substitute(r));
                        let (il, ir) = (ctx.interval(&l), ctx.interval(&r));
                        if ir.hi > 0 {
                            ctx.add_fact(
                                l,
                                Iv {
                                    lo: 0,
                                    hi: ir.hi - 1,
                                },
                            );
                        }
                        if il.lo < u32::MAX {
                            ctx.add_fact(
                                r,
                                Iv {
                                    lo: il.lo + 1,
                                    hi: u32::MAX,
                                },
                            );
                        }
                    }
                    FormulaView::Leu(l, r) => {
                        let (l, r) = (ctx.substitute(l), ctx.substitute(r));
                        let (il, ir) = (ctx.interval(&l), ctx.interval(&r));
                        ctx.add_fact(l, Iv { lo: 0, hi: ir.hi });
                        ctx.add_fact(
                            r,
                            Iv {
                                lo: il.lo,
                                hi: u32::MAX,
                            },
                        );
                    }
                    _ => {}
                }
            }
        }
        ctx
    }

    fn add_fact(&mut self, t: Term, iv: Iv) {
        let cur = self.facts.get(&t).copied().unwrap_or(Iv::FULL);
        self.facts.insert(t, cur.meet(iv));
    }

    fn substitute(&self, t: &Term) -> Term {
        if self.subst.is_empty() {
            return t.clone();
        }
        if let Some(v) = t.as_var() {
            return self.subst.get(v).cloned().unwrap_or_else(|| t.clone());
        }
        if let Some((op, a, b)) = t.as_op() {
            return Term::op(op, &self.substitute(a), &self.substitute(b));
        }
        t.clone()
    }

    /// Any assumption's interval became empty ⇒ contradictory context.
    fn contradictory(&self) -> bool {
        self.facts.values().any(|iv| iv.is_empty())
    }

    fn interval(&self, t: &Term) -> Iv {
        let computed = if let Some(c) = t.as_const() {
            Iv::point(c)
        } else if let Some((op, a, b)) = t.as_op() {
            let (ia, ib) = (self.interval(a), self.interval(b));
            match op {
                BinOp::Add => {
                    let lo = ia.lo as u64 + ib.lo as u64;
                    let hi = ia.hi as u64 + ib.hi as u64;
                    if hi <= u32::MAX as u64 {
                        Iv {
                            lo: lo as u32,
                            hi: hi as u32,
                        }
                    } else {
                        Iv::FULL
                    }
                }
                BinOp::Sub => {
                    if ia.lo >= ib.hi {
                        Iv {
                            lo: ia.lo - ib.hi,
                            hi: ia.hi - ib.lo,
                        }
                    } else {
                        Iv::FULL
                    }
                }
                BinOp::Mul => {
                    let hi = ia.hi as u64 * ib.hi as u64;
                    if hi <= u32::MAX as u64 {
                        Iv {
                            lo: ia.lo.wrapping_mul(ib.lo),
                            hi: hi as u32,
                        }
                    } else {
                        Iv::FULL
                    }
                }
                BinOp::And => {
                    // a & b ≤ min(hi(a), hi(b)).
                    Iv {
                        lo: 0,
                        hi: ia.hi.min(ib.hi),
                    }
                }
                BinOp::RemU => {
                    if ib.lo > 0 {
                        Iv {
                            lo: 0,
                            hi: ia.hi.min(ib.hi - 1),
                        }
                    } else {
                        // Remainder by a possibly-zero divisor yields the
                        // dividend in the zero case.
                        Iv { lo: 0, hi: ia.hi }
                    }
                }
                BinOp::DivU => match ia.hi.checked_div(ib.lo) {
                    Some(hi) => Iv { lo: 0, hi },
                    None => Iv::FULL,
                },
                BinOp::Sru => {
                    if let Some(s) = b.as_const() {
                        Iv {
                            lo: ia.lo >> (s & 31),
                            hi: ia.hi >> (s & 31),
                        }
                    } else {
                        Iv { lo: 0, hi: ia.hi }
                    }
                }
                BinOp::Slu => {
                    if let Some(s) = b.as_const() {
                        let s = s & 31;
                        if (ia.hi as u64) << s <= u32::MAX as u64 {
                            Iv {
                                lo: ia.lo << s,
                                hi: ia.hi << s,
                            }
                        } else {
                            Iv::FULL
                        }
                    } else {
                        Iv::FULL
                    }
                }
                BinOp::Eq | BinOp::Ltu | BinOp::Lts => Iv { lo: 0, hi: 1 },
                BinOp::Or | BinOp::Xor => {
                    // Bounded by the next power of two covering both
                    // operands' bounds. Computed in u64: in u32,
                    // `(m + 1).next_power_of_two()` overflows to 0 for
                    // m ≥ 0x8000_0000, which once made this interval
                    // collapse to [0,0] and proved a false goal — found by
                    // the soundness fuzzer (tests/solver_soundness.rs).
                    let m = ia.hi.max(ib.hi) as u64;
                    let hi = u32::try_from((m + 1).next_power_of_two() - 1).unwrap_or(u32::MAX);
                    // a | b is also at least as large as either operand.
                    let lo = if op == BinOp::Or { ia.lo.max(ib.lo) } else { 0 };
                    Iv { lo, hi }
                }
                _ => Iv::FULL,
            }
        } else {
            Iv::FULL
        };
        match self.facts.get(t) {
            Some(f) => computed.meet(*f),
            None => computed,
        }
    }

    fn prove(&self, goal: &Formula) -> Outcome {
        match goal.view() {
            FormulaView::True => Outcome::Proved,
            FormulaView::False => Outcome::Unknown,
            FormulaView::And(a, b) => {
                if self.prove(a) == Outcome::Proved && self.prove(b) == Outcome::Proved {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
            FormulaView::Or(a, b) => {
                if self.prove(a) == Outcome::Proved || self.prove(b) == Outcome::Proved {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
            FormulaView::Not(f) => self.prove(&f.clone().negate()),
            FormulaView::Eq(l, r) => {
                let (l, r) = (self.substitute(l), self.substitute(r));
                if l == r {
                    return Outcome::Proved;
                }
                let (il, ir) = (self.interval(&l), self.interval(&r));
                if il.lo == il.hi && ir.lo == ir.hi && il.lo == ir.lo {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
            FormulaView::Ne(l, r) => {
                let (l, r) = (self.substitute(l), self.substitute(r));
                let (il, ir) = (self.interval(&l), self.interval(&r));
                if il.hi < ir.lo || ir.hi < il.lo {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
            FormulaView::Ltu(l, r) => {
                let (l, r) = (self.substitute(l), self.substitute(r));
                let (il, ir) = (self.interval(&l), self.interval(&r));
                if il.hi < ir.lo {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
            FormulaView::Leu(l, r) => {
                let (l, r) = (self.substitute(l), self.substitute(r));
                if l == r {
                    return Outcome::Proved;
                }
                let (il, ir) = (self.interval(&l), self.interval(&r));
                if il.hi <= ir.lo {
                    Outcome::Proved
                } else {
                    Outcome::Unknown
                }
            }
        }
    }
}

/// Attempts to prove `goal` from `assumptions`.
///
/// A contradictory assumption set proves anything (the vacuous case that
/// arises on infeasible symbolic paths).
pub fn prove(assumptions: &[Formula], goal: &Formula) -> Outcome {
    if assumptions.iter().any(Formula::is_false) {
        return Outcome::Proved;
    }
    let ctx = Ctx::from_assumptions(assumptions);
    if ctx.contradictory() {
        return Outcome::Proved;
    }
    ctx.prove(goal)
}

/// True when the assumptions are unsatisfiable as far as this procedure
/// can tell (used to prune infeasible symbolic paths).
pub fn contradictory(assumptions: &[Formula]) -> bool {
    if assumptions.iter().any(Formula::is_false) {
        return true;
    }
    let ctx = Ctx::from_assumptions(assumptions);
    if ctx.contradictory() {
        return true;
    }
    // Also try refuting each assumption from the others' intervals.
    for a in assumptions {
        if ctx.prove(&a.clone().negate()) == Outcome::Proved {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Obligation fingerprints and the proof cache.
// ---------------------------------------------------------------------------

/// Seed distinguishing prove-obligation keys from every other fingerprint
/// domain (terms, formulas, contradiction queries).
const PROVE_SEED: u128 = 0x4528_21E6_38D0_1377_BE54_66CF_34E9_0C6C;

/// Seed for [`contradictory`] queries: `(assumptions, ⊥-question)` must
/// never collide with a prove key over the same assumptions.
const CONTRA_SEED: u128 = 0xC0AC_29B7_C97C_50DD_3F84_D5B5_B547_0917;

fn fold128(h: u128, x: u128) -> u128 {
    fx::mix128(fx::mix128(h, x as u64), (x >> 64) as u64)
}

/// The cache key for a prove obligation. Order-sensitive over the
/// assumption list (see the module docs for why).
pub fn obligation_fingerprint(assumptions: &[Formula], goal: &Formula) -> u128 {
    let mut h = fx::mix128(PROVE_SEED, assumptions.len() as u64);
    for a in assumptions {
        h = fold128(h, a.fingerprint());
    }
    fold128(h, goal.fingerprint())
}

/// The cache key for a contradiction (path-feasibility) query.
pub fn feasibility_fingerprint(assumptions: &[Formula]) -> u128 {
    let mut h = fx::mix128(CONTRA_SEED, assumptions.len() as u64);
    for a in assumptions {
        h = fold128(h, a.fingerprint());
    }
    h
}

/// Schema identifier of the persistent store file.
pub const CACHE_SCHEMA: &str = "verif-cache/v1";

/// A fingerprint-keyed cache of solver outcomes.
///
/// In memory it caches every query (both [`prove`] and [`contradictory`],
/// both outcomes — the solver is deterministic, so replaying a hit is
/// indistinguishable from re-solving). With a backing [`Self::store`]
/// path, *proved* obligations are additionally persisted across processes
/// as a `verif-cache/v1` JSON file, so a re-run only pays for obligations
/// whose VCs actually changed — the moral equivalent of Coq reusing a
/// compiled `.vo` instead of re-running `Qed`.
#[derive(Clone, Debug, Default)]
pub struct ProofCache {
    map: HashMap<u128, Outcome, fx::FxBuild>,
    store: Option<PathBuf>,
    hits: u64,
    misses: u64,
}

impl ProofCache {
    /// An empty in-memory cache.
    pub fn new() -> ProofCache {
        ProofCache::default()
    }

    /// A cache backed by `path`. When the file exists its proved entries
    /// are loaded (a warm start); a missing file is an empty cold cache.
    ///
    /// # Errors
    ///
    /// A printable message when the file exists but is unreadable or not a
    /// well-formed `verif-cache/v1` document.
    pub fn with_store(path: &Path) -> Result<ProofCache, String> {
        let mut cache = ProofCache {
            store: Some(path.to_path_buf()),
            ..ProofCache::default()
        };
        if !path.exists() {
            return Ok(cache);
        }
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let doc = obs::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        match doc.get("schema").and_then(|v| v.as_str()) {
            Some(CACHE_SCHEMA) => {}
            other => {
                return Err(format!(
                    "{}: schema {:?}, expected {CACHE_SCHEMA:?}",
                    path.display(),
                    other
                ))
            }
        }
        let entries = doc
            .get("proved")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| format!("{}: missing \"proved\" array", path.display()))?;
        for e in entries {
            let hex = e
                .as_str()
                .ok_or_else(|| format!("{}: non-string fingerprint", path.display()))?;
            let fp = u128::from_str_radix(hex, 16)
                .map_err(|e| format!("{}: bad fingerprint {hex:?}: {e}", path.display()))?;
            cache.map.insert(fp, Outcome::Proved);
        }
        Ok(cache)
    }

    /// The backing store path, when persistent.
    pub fn store(&self) -> Option<&Path> {
        self.store.as_deref()
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (queries actually solved) since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no outcomes.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a prove obligation, solving and recording it on a miss.
    pub fn prove(&mut self, assumptions: &[Formula], goal: &Formula) -> Outcome {
        let fp = obligation_fingerprint(assumptions, goal);
        if let Some(&outcome) = self.map.get(&fp) {
            self.hits += 1;
            return outcome;
        }
        self.misses += 1;
        let outcome = prove(assumptions, goal);
        self.map.insert(fp, outcome);
        outcome
    }

    /// Looks up a feasibility query, solving and recording it on a miss.
    /// (`Proved` encodes "contradictory".)
    pub fn contradictory(&mut self, assumptions: &[Formula]) -> bool {
        let fp = feasibility_fingerprint(assumptions);
        if let Some(&outcome) = self.map.get(&fp) {
            self.hits += 1;
            return outcome == Outcome::Proved;
        }
        self.misses += 1;
        let contra = contradictory(assumptions);
        let outcome = if contra {
            Outcome::Proved
        } else {
            Outcome::Unknown
        };
        self.map.insert(fp, outcome);
        contra
    }

    /// Inserts an already-solved outcome (used when merging shard-local
    /// overlay caches back into the shared cache).
    pub fn insert(&mut self, fp: u128, outcome: Outcome) {
        self.map.insert(fp, outcome);
    }

    /// Direct fingerprint lookup without solving (no hit/miss accounting).
    pub fn peek(&self, fp: u128) -> Option<Outcome> {
        self.map.get(&fp).copied()
    }

    /// A copy of the cached entries with fresh hit/miss accounting and no
    /// backing store — what each shard of `engine::prove_batch` starts
    /// from, so shards share warm entries without sharing a lock.
    pub fn snapshot(&self) -> ProofCache {
        ProofCache {
            map: self.map.clone(),
            store: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Folds another cache's entries and hit/miss counts into this one.
    pub fn absorb(&mut self, other: &ProofCache) {
        for (&fp, &outcome) in &other.map {
            self.map.insert(fp, outcome);
        }
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// The cache's telemetry: `proglogic.solver.{cache_hit,cache_miss,
    /// cache_entries}`.
    pub fn counters(&self) -> obs::Counters {
        let mut c = obs::Counters::new();
        c.set("proglogic.solver.cache_hit", self.hits);
        c.set("proglogic.solver.cache_miss", self.misses);
        c.set("proglogic.solver.cache_entries", self.map.len() as u64);
        c
    }

    /// Writes the proved entries to the backing store, atomically
    /// (temp-file + rename — a reader or a kill never sees a torn file).
    /// A no-op without a store path. Entries are sorted, so the file is a
    /// deterministic function of the cache contents.
    ///
    /// # Errors
    ///
    /// The underlying I/O error, as a printable message.
    pub fn save(&self) -> Result<(), String> {
        let Some(path) = &self.store else {
            return Ok(());
        };
        let mut proved: Vec<u128> = self
            .map
            .iter()
            .filter(|(_, &o)| o == Outcome::Proved)
            .map(|(&fp, _)| fp)
            .collect();
        proved.sort_unstable();
        let doc = obs::json::Value::obj()
            .field("schema", obs::json::Value::Str(CACHE_SCHEMA.into()))
            .field(
                "proved",
                obs::json::Value::Arr(
                    proved
                        .into_iter()
                        .map(|fp| obs::json::Value::Str(format!("{fp:032x}")))
                        .collect(),
                ),
            );
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{}\n", doc.render()))
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32, name: &str) -> Term {
        Term::var(id, name)
    }
    fn c(x: u32) -> Term {
        Term::constant(x)
    }

    #[test]
    fn constant_goals() {
        assert_eq!(prove(&[], &Formula::ltu(&c(2), &c(3))), Outcome::Proved);
        assert_eq!(prove(&[], &Formula::ltu(&c(3), &c(2))), Outcome::Unknown);
    }

    #[test]
    fn substitution_of_known_vars() {
        let x = v(0, "x");
        let assms = [Formula::eq(&x, &c(10))];
        let goal = Formula::ltu(&x.add_const(5), &c(16));
        assert_eq!(prove(&assms, &goal), Outcome::Proved);
    }

    #[test]
    fn interval_bounds_flow_through_arithmetic() {
        // len < 1520 ⊢ len + 16 < 2048
        let len = v(0, "len");
        let assms = [Formula::ltu(&len, &c(1520))];
        assert_eq!(
            prove(&assms, &Formula::ltu(&len.add_const(16), &c(2048))),
            Outcome::Proved
        );
        // …but not len + 16 < 1000
        assert_eq!(
            prove(&assms, &Formula::ltu(&len.add_const(16), &c(1000))),
            Outcome::Unknown
        );
    }

    #[test]
    fn masking_bounds() {
        // ⊢ (x & 0xFF) < 256, unconditionally
        let x = v(0, "x");
        let masked = Term::op(BinOp::And, &x, &c(0xFF));
        assert_eq!(prove(&[], &Formula::ltu(&masked, &c(256))), Outcome::Proved);
    }

    #[test]
    fn remainder_bounds() {
        let x = v(0, "x");
        let r = Term::op(BinOp::RemU, &x, &c(4));
        assert_eq!(prove(&[], &Formula::ltu(&r, &c(4))), Outcome::Proved);
    }

    #[test]
    fn shifts_and_division() {
        let x = v(0, "x");
        let assms = [Formula::ltu(&x, &c(0x1000))];
        let q = Term::op(BinOp::DivU, &x, &c(16));
        assert_eq!(prove(&assms, &Formula::ltu(&q, &c(0x100))), Outcome::Proved);
        let s = Term::op(BinOp::Sru, &x, &c(4));
        assert_eq!(prove(&assms, &Formula::ltu(&s, &c(0x100))), Outcome::Proved);
    }

    #[test]
    fn disequality_by_disjoint_intervals() {
        let x = v(0, "x");
        let assms = [Formula::ltu(&x, &c(10))];
        assert_eq!(prove(&assms, &Formula::ne(&x, &c(50))), Outcome::Proved);
        assert_eq!(prove(&assms, &Formula::ne(&x, &c(5))), Outcome::Unknown);
    }

    #[test]
    fn contradiction_proves_anything() {
        let x = v(0, "x");
        let assms = [Formula::ltu(&x, &c(3)), Formula::leu(&c(7), &x)];
        assert!(contradictory(&assms));
        assert_eq!(prove(&assms, &Formula::eq(&c(0), &c(1))), Outcome::Proved);
    }

    #[test]
    fn conjunction_and_disjunction() {
        let x = v(0, "x");
        let assms = [Formula::ltu(&x, &c(4))];
        let g = Formula::ltu(&x, &c(8)).and(Formula::leu(&x, &c(3)));
        assert_eq!(prove(&assms, &g), Outcome::Proved);
        let g = Formula::ltu(&c(9), &x).or(Formula::ltu(&x, &c(5)));
        assert_eq!(prove(&assms, &g), Outcome::Proved);
    }

    #[test]
    fn unknown_stays_unknown() {
        let x = v(0, "x");
        let y = v(1, "y");
        assert_eq!(prove(&[], &Formula::ltu(&x, &y)), Outcome::Unknown);
        assert!(!contradictory(&[Formula::ltu(&x, &y)]));
    }

    #[test]
    fn cache_hits_replay_outcomes() {
        let x = v(0, "x");
        let assms = vec![Formula::ltu(&x, &c(10))];
        let goal = Formula::ltu(&x.add_const(1), &c(20));
        let mut cache = ProofCache::new();
        let first = cache.prove(&assms, &goal);
        assert_eq!(first, prove(&assms, &goal));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let second = cache.prove(&assms, &goal);
        assert_eq!(second, first);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn prove_and_feasibility_keys_never_collide() {
        let x = v(0, "x");
        let assms = vec![Formula::ltu(&x, &c(10))];
        // Same assumption list, different query kinds.
        let g = Formula::truth();
        assert_ne!(
            obligation_fingerprint(&assms, &g),
            feasibility_fingerprint(&assms)
        );
    }

    #[test]
    fn fingerprints_are_order_sensitive() {
        let x = v(0, "x");
        let a = Formula::ltu(&x, &c(10));
        let b = Formula::leu(&c(3), &x);
        let g = Formula::ltu(&x, &c(11));
        assert_ne!(
            obligation_fingerprint(&[a.clone(), b.clone()], &g),
            obligation_fingerprint(&[b, a], &g)
        );
    }

    #[test]
    fn persistent_store_round_trips_proved_entries() {
        let dir = std::env::temp_dir().join(format!("proglogic-cache-test-{}", std::process::id()));
        let path = dir.join("store.json");
        let _ = std::fs::remove_dir_all(&dir);

        let x = v(0, "x");
        let assms = vec![Formula::ltu(&x, &c(10))];
        let proved_goal = Formula::ltu(&x, &c(20));
        let unknown_goal = Formula::ltu(&x.add_const(100), &c(20));

        let mut cache = ProofCache::with_store(&path).expect("fresh store path must open");
        assert_eq!(cache.prove(&assms, &proved_goal), Outcome::Proved);
        assert_eq!(cache.prove(&assms, &unknown_goal), Outcome::Unknown);
        cache.save().expect("save to temp dir");

        let mut reloaded = ProofCache::with_store(&path).expect("reload saved store");
        // Proved came back; Unknown deliberately did not.
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.prove(&assms, &proved_goal), Outcome::Proved);
        assert_eq!((reloaded.hits(), reloaded.misses()), (1, 0));
        assert_eq!(reloaded.prove(&assms, &unknown_goal), Outcome::Unknown);
        assert_eq!((reloaded.hits(), reloaded.misses()), (1, 1));

        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Symbolic 32-bit words.
//!
//! Terms are built over the same operator set as Bedrock2 expressions
//! ([`bedrock2::ast::BinOp`]), so the symbolic executor can mirror the
//! source semantics one constructor at a time. Construction simplifies
//! eagerly (constant folding and a few identities), which keeps the terms
//! the solver sees small.

use bedrock2::ast::BinOp;
use std::fmt;
use std::rc::Rc;

/// A symbolic variable: a unique id plus a human-readable name.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SymVar {
    /// Unique within one symbolic execution.
    pub id: u32,
    /// Diagnostic name (e.g. the Bedrock2 variable or `MMIOREAD#3`).
    pub name: String,
}

#[derive(Debug, PartialEq, Eq, Hash)]
enum Node {
    Const(u32),
    Var(SymVar),
    Op(BinOp, Term, Term),
}

/// A symbolic word.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Term {
    node: Rc<Node>,
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.node {
            Node::Const(c) => {
                if *c >= 0x1000 {
                    write!(f, "0x{c:x}")
                } else {
                    write!(f, "{c}")
                }
            }
            Node::Var(v) => write!(f, "{}#{}", v.name, v.id),
            Node::Op(op, a, b) => write!(f, "({a:?} {} {b:?})", op.symbol()),
        }
    }
}

impl Term {
    /// A constant word.
    pub fn constant(c: u32) -> Term {
        Term {
            node: Rc::new(Node::Const(c)),
        }
    }

    /// A symbolic variable.
    pub fn var(id: u32, name: &str) -> Term {
        Term {
            node: Rc::new(Node::Var(SymVar {
                id,
                name: name.to_string(),
            })),
        }
    }

    /// The constant value, when this term is a constant.
    pub fn as_const(&self) -> Option<u32> {
        match &*self.node {
            Node::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// The variable, when this term is a bare variable.
    pub fn as_var(&self) -> Option<&SymVar> {
        match &*self.node {
            Node::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Destructures an operator application.
    pub fn as_op(&self) -> Option<(BinOp, &Term, &Term)> {
        match &*self.node {
            Node::Op(op, a, b) => Some((*op, a, b)),
            _ => None,
        }
    }

    /// Applies a binary operator, simplifying eagerly.
    pub fn op(op: BinOp, a: &Term, b: &Term) -> Term {
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return Term::constant(op.eval(x, y));
        }
        match (op, a.as_const(), b.as_const()) {
            // x + 0, x - 0, x | 0, x ^ 0, x >> 0, x << 0
            (BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor, _, Some(0)) => return a.clone(),
            (BinOp::Sru | BinOp::Slu | BinOp::Srs, _, Some(0)) => return a.clone(),
            (BinOp::Add | BinOp::Or | BinOp::Xor, Some(0), _) => return b.clone(),
            (BinOp::Mul, _, Some(1)) => return a.clone(),
            (BinOp::Mul, Some(1), _) => return b.clone(),
            (BinOp::Mul | BinOp::And, _, Some(0)) => return Term::constant(0),
            (BinOp::Mul | BinOp::And, Some(0), _) => return Term::constant(0),
            (BinOp::And, _, Some(u32::MAX)) => return a.clone(),
            (BinOp::And, Some(u32::MAX), _) => return b.clone(),
            _ => {}
        }
        // Divisibility through multiplication: for a power-of-two modulus d
        // dividing the constant factor c, (x·c) mod d = 0 and (x·c) & (d−1)
        // = 0 — valid under wrapping because d divides 2³². These discharge
        // the alignment obligations of symbolic array indexing (buf + 4·i).
        if let (BinOp::RemU | BinOp::And, Some((BinOp::Mul, _x, cf)), Some(m)) =
            (op, a.as_op(), b.as_const())
        {
            if let Some(c) = cf.as_const() {
                let modulus = match op {
                    BinOp::RemU => m,
                    _ => m.wrapping_add(1),
                };
                if modulus != 0 && modulus.is_power_of_two() && c % modulus == 0 {
                    return Term::constant(0);
                }
            }
        }
        if a == b {
            match op {
                BinOp::Sub | BinOp::Xor => return Term::constant(0),
                BinOp::And | BinOp::Or => return a.clone(),
                BinOp::Eq => return Term::constant(1),
                BinOp::Ltu | BinOp::Lts => return Term::constant(0),
                _ => {}
            }
        }
        // Normalize (x + c1) + c2 → x + (c1+c2); likewise for sub mixed in.
        if let (BinOp::Add | BinOp::Sub, Some(c2)) = (op, b.as_const()) {
            let signed2 = if op == BinOp::Sub {
                c2.wrapping_neg()
            } else {
                c2
            };
            if let Some((BinOp::Add, x, c1t)) = a.as_op() {
                if let Some(c1) = c1t.as_const() {
                    return Term::op(BinOp::Add, x, &Term::constant(c1.wrapping_add(signed2)));
                }
            }
            if op == BinOp::Sub {
                return Term::op(BinOp::Add, a, &Term::constant(signed2));
            }
        }
        Term {
            node: Rc::new(Node::Op(op, a.clone(), b.clone())),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Term) -> Term {
        Term::op(BinOp::Add, self, other)
    }

    /// `self + c`.
    pub fn add_const(&self, c: u32) -> Term {
        self.add(&Term::constant(c))
    }

    /// Decomposes into `(base, offset)` where `self = base + offset` and
    /// `offset` is constant (offset 0 when no addition is present). The
    /// workhorse of symbolic address resolution.
    pub fn split_offset(&self) -> (Term, u32) {
        if let Some((BinOp::Add, x, c)) = self.as_op() {
            if let Some(c) = c.as_const() {
                return (x.clone(), c);
            }
        }
        (self.clone(), 0)
    }

    /// All symbolic variables occurring in the term.
    pub fn vars(&self) -> Vec<SymVar> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<SymVar>) {
        match &*self.node {
            Node::Const(_) => {}
            Node::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Node::Op(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold() {
        let t = Term::op(BinOp::Add, &Term::constant(2), &Term::constant(3));
        assert_eq!(t.as_const(), Some(5));
        let t = Term::op(BinOp::DivU, &Term::constant(7), &Term::constant(0));
        assert_eq!(t.as_const(), Some(u32::MAX));
    }

    #[test]
    fn identities_simplify() {
        let x = Term::var(0, "x");
        assert_eq!(Term::op(BinOp::Add, &x, &Term::constant(0)), x);
        assert_eq!(Term::op(BinOp::Sub, &x, &x).as_const(), Some(0));
        assert_eq!(Term::op(BinOp::Eq, &x, &x).as_const(), Some(1));
        assert_eq!(
            Term::op(BinOp::And, &x, &Term::constant(0)).as_const(),
            Some(0)
        );
    }

    #[test]
    fn offset_chains_normalize() {
        let x = Term::var(0, "x");
        let t = x.add_const(4).add_const(8);
        assert_eq!(t.split_offset(), (x.clone(), 12));
        let t = Term::op(BinOp::Sub, &x.add_const(4), &Term::constant(8));
        assert_eq!(t.split_offset(), (x, 4u32.wrapping_sub(8)));
    }

    #[test]
    fn vars_are_collected_once() {
        let x = Term::var(0, "x");
        let y = Term::var(1, "y");
        let t = Term::op(BinOp::Add, &x, &Term::op(BinOp::Mul, &x, &y));
        assert_eq!(t.vars().len(), 2);
    }

    #[test]
    fn debug_renders_readably() {
        let x = Term::var(3, "len");
        let t = Term::op(BinOp::Ltu, &x, &Term::constant(1520));
        assert_eq!(format!("{t:?}"), "(len#3 < 1520)");
    }
}

//! Symbolic 32-bit words, hash-consed.
//!
//! Terms are built over the same operator set as Bedrock2 expressions
//! ([`bedrock2::ast::BinOp`]), so the symbolic executor can mirror the
//! source semantics one constructor at a time. Construction simplifies
//! eagerly (constant folding and a few identities), which keeps the terms
//! the solver sees small.
//!
//! # Hash-consing
//!
//! Every term carries a 128-bit *structural fingerprint* (two independent
//! FxHash lanes, see [`obs::fx`]) computed once at construction, and
//! construction goes through a thread-local interner keyed by that
//! fingerprint. Within a thread, building the same term twice returns the
//! same allocation, so:
//!
//! * structural equality is usually pointer equality (`Arc::ptr_eq` fast
//!   path, with a fingerprint-guarded structural fallback for terms that
//!   crossed threads or collided in the interner);
//! * `Hash` is O(1) — it feeds the cached fingerprint, never the tree —
//!   which makes the solver's fact maps and the obligation cache cheap;
//! * terms are `Send + Sync` (`Arc`-based), so obligation batches can be
//!   sharded across `std::thread::scope` workers.
//!
//! The fallback keeps equality *sound* in the presence of fingerprint
//! collisions: a collision can only cost a missed interning, never a wrong
//! `==`. The obligation cache additionally relies on 128-bit fingerprints
//! being collision-free in practice; see `solver::ProofCache`.

use bedrock2::ast::BinOp;
use obs::fx;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A symbolic variable: a unique id plus a human-readable name.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SymVar {
    /// Unique within one symbolic execution.
    pub id: u32,
    /// Diagnostic name (e.g. the Bedrock2 variable or `MMIOREAD#3`).
    pub name: String,
}

#[derive(Debug)]
enum Node {
    Const(u32),
    Var(SymVar),
    Op(BinOp, Term, Term),
}

struct Inner {
    /// Structural fingerprint, fixed at construction. Part of the
    /// persistent `verif-cache/v1` key derivation — the mixing scheme in
    /// [`obs::fx`] must stay stable across releases.
    fp: u128,
    node: Node,
}

/// A symbolic word (an interned, immutable DAG node).
#[derive(Clone)]
pub struct Term {
    inner: Arc<Inner>,
}

/// Fingerprint seed (π digits) — any fixed odd-ish constant works; it only
/// has to be the same in every process that shares a persistent cache.
const SEED: u128 = 0x243F_6A88_85A3_08D3_1319_8A2E_0370_7344;

const TAG_CONST: u64 = 0xC0;
const TAG_VAR: u64 = 0x7A;
const TAG_OP: u64 = 0x09;

/// Interner size cap per thread; past this the table is dropped and
/// rebuilt, bounding memory for pathological workloads (a cleared table
/// only costs duplicate allocations, never correctness).
const INTERN_CAP: usize = 1 << 20;

thread_local! {
    static INTERNER: RefCell<HashMap<u128, Term, fx::FxBuild>> =
        RefCell::new(HashMap::default());
}

fn fold128(h: u128, x: u128) -> u128 {
    fx::mix128(fx::mix128(h, x as u64), (x >> 64) as u64)
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner.node {
            Node::Const(c) => {
                if *c >= 0x1000 {
                    write!(f, "0x{c:x}")
                } else {
                    write!(f, "{c}")
                }
            }
            Node::Var(v) => write!(f, "{}#{}", v.name, v.id),
            Node::Op(op, a, b) => write!(f, "({a:?} {} {b:?})", op.symbol()),
        }
    }
}

impl PartialEq for Term {
    fn eq(&self, other: &Term) -> bool {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return true;
        }
        if self.inner.fp != other.inner.fp {
            return false;
        }
        // Same fingerprint but different allocation: either the terms
        // crossed threads (each thread has its own interner) or the
        // fingerprints collided. Decide structurally; inner comparisons
        // re-enter the pointer fast path, so this stays shallow.
        match (&self.inner.node, &other.inner.node) {
            (Node::Const(a), Node::Const(b)) => a == b,
            (Node::Var(a), Node::Var(b)) => a == b,
            (Node::Op(op1, a1, b1), Node::Op(op2, a2, b2)) => op1 == op2 && a1 == a2 && b1 == b2,
            _ => false,
        }
    }
}

impl Eq for Term {}

impl std::hash::Hash for Term {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // O(1): the cached fingerprint stands in for the whole tree.
        state.write_u128(self.inner.fp);
    }
}

impl Term {
    /// The term's 128-bit structural fingerprint (equal terms have equal
    /// fingerprints; the converse holds up to hash collisions).
    pub fn fingerprint(&self) -> u128 {
        self.inner.fp
    }

    /// Interns `node` under `fp`, returning the canonical allocation for
    /// this thread when one exists.
    fn intern(fp: u128, node: Node) -> Term {
        INTERNER.with(|table| {
            let mut table = table.borrow_mut();
            if let Some(existing) = table.get(&fp) {
                let same = match (&existing.inner.node, &node) {
                    (Node::Const(a), Node::Const(b)) => a == b,
                    (Node::Var(a), Node::Var(b)) => a == b,
                    (Node::Op(op1, a1, b1), Node::Op(op2, a2, b2)) => {
                        op1 == op2 && a1 == a2 && b1 == b2
                    }
                    _ => false,
                };
                if same {
                    return existing.clone();
                }
                // Fingerprint collision: leave the incumbent interned and
                // hand out a fresh allocation (equality stays sound via
                // the structural fallback).
                return Term {
                    inner: Arc::new(Inner { fp, node }),
                };
            }
            if table.len() >= INTERN_CAP {
                table.clear();
            }
            let term = Term {
                inner: Arc::new(Inner { fp, node }),
            };
            table.insert(fp, term.clone());
            term
        })
    }

    /// A constant word.
    pub fn constant(c: u32) -> Term {
        let fp = fx::mix128(fx::mix128(SEED, TAG_CONST), c as u64);
        Term::intern(fp, Node::Const(c))
    }

    /// A symbolic variable.
    pub fn var(id: u32, name: &str) -> Term {
        let mut fp = fx::mix128(fx::mix128(SEED, TAG_VAR), id as u64);
        fp = fx::mix128(fp, name.len() as u64);
        for b in name.bytes() {
            fp = fx::mix128(fp, b as u64);
        }
        Term::intern(
            fp,
            Node::Var(SymVar {
                id,
                name: name.to_string(),
            }),
        )
    }

    fn raw_op(op: BinOp, a: &Term, b: &Term) -> Term {
        let mut fp = fx::mix128(fx::mix128(SEED, TAG_OP), op as u64);
        fp = fold128(fp, a.inner.fp);
        fp = fold128(fp, b.inner.fp);
        Term::intern(fp, Node::Op(op, a.clone(), b.clone()))
    }

    /// The constant value, when this term is a constant.
    pub fn as_const(&self) -> Option<u32> {
        match &self.inner.node {
            Node::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// The variable, when this term is a bare variable.
    pub fn as_var(&self) -> Option<&SymVar> {
        match &self.inner.node {
            Node::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Destructures an operator application.
    pub fn as_op(&self) -> Option<(BinOp, &Term, &Term)> {
        match &self.inner.node {
            Node::Op(op, a, b) => Some((*op, a, b)),
            _ => None,
        }
    }

    /// Applies a binary operator, simplifying eagerly.
    pub fn op(op: BinOp, a: &Term, b: &Term) -> Term {
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return Term::constant(op.eval(x, y));
        }
        match (op, a.as_const(), b.as_const()) {
            // x + 0, x - 0, x | 0, x ^ 0, x >> 0, x << 0
            (BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor, _, Some(0)) => return a.clone(),
            (BinOp::Sru | BinOp::Slu | BinOp::Srs, _, Some(0)) => return a.clone(),
            (BinOp::Add | BinOp::Or | BinOp::Xor, Some(0), _) => return b.clone(),
            (BinOp::Mul, _, Some(1)) => return a.clone(),
            (BinOp::Mul, Some(1), _) => return b.clone(),
            (BinOp::Mul | BinOp::And, _, Some(0)) => return Term::constant(0),
            (BinOp::Mul | BinOp::And, Some(0), _) => return Term::constant(0),
            (BinOp::And, _, Some(u32::MAX)) => return a.clone(),
            (BinOp::And, Some(u32::MAX), _) => return b.clone(),
            _ => {}
        }
        // Divisibility through multiplication: for a power-of-two modulus d
        // dividing the constant factor c, (x·c) mod d = 0 and (x·c) & (d−1)
        // = 0 — valid under wrapping because d divides 2³². These discharge
        // the alignment obligations of symbolic array indexing (buf + 4·i).
        if let (BinOp::RemU | BinOp::And, Some((BinOp::Mul, _x, cf)), Some(m)) =
            (op, a.as_op(), b.as_const())
        {
            if let Some(c) = cf.as_const() {
                let modulus = match op {
                    BinOp::RemU => m,
                    _ => m.wrapping_add(1),
                };
                if modulus != 0 && modulus.is_power_of_two() && c % modulus == 0 {
                    return Term::constant(0);
                }
            }
        }
        if a == b {
            match op {
                BinOp::Sub | BinOp::Xor => return Term::constant(0),
                BinOp::And | BinOp::Or => return a.clone(),
                BinOp::Eq => return Term::constant(1),
                BinOp::Ltu | BinOp::Lts => return Term::constant(0),
                _ => {}
            }
        }
        // Normalize (x + c1) + c2 → x + (c1+c2); likewise for sub mixed in.
        if let (BinOp::Add | BinOp::Sub, Some(c2)) = (op, b.as_const()) {
            let signed2 = if op == BinOp::Sub {
                c2.wrapping_neg()
            } else {
                c2
            };
            if let Some((BinOp::Add, x, c1t)) = a.as_op() {
                if let Some(c1) = c1t.as_const() {
                    return Term::op(BinOp::Add, x, &Term::constant(c1.wrapping_add(signed2)));
                }
            }
            if op == BinOp::Sub {
                return Term::op(BinOp::Add, a, &Term::constant(signed2));
            }
        }
        Term::raw_op(op, a, b)
    }

    /// `self + other`.
    pub fn add(&self, other: &Term) -> Term {
        Term::op(BinOp::Add, self, other)
    }

    /// `self + c`.
    pub fn add_const(&self, c: u32) -> Term {
        self.add(&Term::constant(c))
    }

    /// Decomposes into `(base, offset)` where `self = base + offset` and
    /// `offset` is constant (offset 0 when no addition is present). The
    /// workhorse of symbolic address resolution.
    pub fn split_offset(&self) -> (Term, u32) {
        if let Some((BinOp::Add, x, c)) = self.as_op() {
            if let Some(c) = c.as_const() {
                return (x.clone(), c);
            }
        }
        (self.clone(), 0)
    }

    /// All symbolic variables occurring in the term.
    pub fn vars(&self) -> Vec<SymVar> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<SymVar>) {
        match &self.inner.node {
            Node::Const(_) => {}
            Node::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Node::Op(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold() {
        let t = Term::op(BinOp::Add, &Term::constant(2), &Term::constant(3));
        assert_eq!(t.as_const(), Some(5));
        let t = Term::op(BinOp::DivU, &Term::constant(7), &Term::constant(0));
        assert_eq!(t.as_const(), Some(u32::MAX));
    }

    #[test]
    fn identities_simplify() {
        let x = Term::var(0, "x");
        assert_eq!(Term::op(BinOp::Add, &x, &Term::constant(0)), x);
        assert_eq!(Term::op(BinOp::Sub, &x, &x).as_const(), Some(0));
        assert_eq!(Term::op(BinOp::Eq, &x, &x).as_const(), Some(1));
        assert_eq!(
            Term::op(BinOp::And, &x, &Term::constant(0)).as_const(),
            Some(0)
        );
    }

    #[test]
    fn offset_chains_normalize() {
        let x = Term::var(0, "x");
        let t = x.add_const(4).add_const(8);
        assert_eq!(t.split_offset(), (x.clone(), 12));
        let t = Term::op(BinOp::Sub, &x.add_const(4), &Term::constant(8));
        assert_eq!(t.split_offset(), (x, 4u32.wrapping_sub(8)));
    }

    #[test]
    fn vars_are_collected_once() {
        let x = Term::var(0, "x");
        let y = Term::var(1, "y");
        let t = Term::op(BinOp::Add, &x, &Term::op(BinOp::Mul, &x, &y));
        assert_eq!(t.vars().len(), 2);
    }

    #[test]
    fn debug_renders_readably() {
        let x = Term::var(3, "len");
        let t = Term::op(BinOp::Ltu, &x, &Term::constant(1520));
        assert_eq!(format!("{t:?}"), "(len#3 < 1520)");
    }

    #[test]
    fn hash_consing_makes_equality_pointer_equality() {
        let a = Term::op(
            BinOp::Add,
            &Term::var(0, "x"),
            &Term::op(BinOp::Mul, &Term::var(1, "i"), &Term::constant(4)),
        );
        let b = Term::op(
            BinOp::Add,
            &Term::var(0, "x"),
            &Term::op(BinOp::Mul, &Term::var(1, "i"), &Term::constant(4)),
        );
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn distinct_terms_have_distinct_fingerprints() {
        let x = Term::var(0, "x");
        let y = Term::var(0, "y"); // same id, different name
        assert_ne!(x, y);
        assert_ne!(x.fingerprint(), y.fingerprint());
        // Near-miss shapes that a weak hash might conflate.
        let a = Term::op(BinOp::Sub, &x, &Term::constant(1));
        let b = Term::op(BinOp::Add, &x, &Term::constant(1u32.wrapping_neg()));
        // (note: x - 1 normalizes to x + (-1), so these SHOULD agree)
        assert_eq!(a, b);
        let c = Term::op(BinOp::Xor, &x, &Term::constant(1));
        let d = Term::op(BinOp::Or, &x, &Term::constant(1));
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn terms_cross_threads_and_still_compare_equal() {
        let here = Term::op(BinOp::Add, &Term::var(7, "len"), &Term::constant(12));
        let (there, there_fp) = std::thread::spawn(|| {
            let t = Term::op(BinOp::Add, &Term::var(7, "len"), &Term::constant(12));
            let fp = t.fingerprint();
            (t, fp)
        })
        .join()
        .expect("fingerprint thread panicked");
        // Different interners, same structure: equality and fingerprints
        // must agree even though the allocations differ.
        assert_eq!(here, there);
        assert_eq!(here.fingerprint(), there_fp);
    }
}

//! A `vcgen`-style symbolic executor for Bedrock2.
//!
//! Mirrors §4.1 of the paper: for a statement `c`, a starting symbolic
//! state, and a postcondition, it computes what must be proved for `c` to
//! execute without undefined behavior and end in states satisfying the
//! postcondition — then discharges those obligations with
//! [`crate::solver`]. The correspondences:
//!
//! * undefined behavior (out-of-bounds/unresolved/misaligned memory,
//!   unbound variables) surfaces as a [`VcError`] — there is no "assume it
//!   is fine";
//! * loops are handled by user-supplied *invariants* (with havocking of the
//!   modified state), or bounded unrolling for statically short loops —
//!   the same choice the paper's `vcgen` offers (§4.1);
//! * external calls go through a pluggable [`ExtSpec`] — the `vcextern`
//!   parameter of §6.1 — which states the precondition the programmer
//!   must prove (e.g. "the address is in MMIO range") and universally
//!   quantifies the result (a fresh symbolic variable);
//! * the interaction trace is tracked symbolically so postconditions can
//!   constrain it.
//!
//! Memory is a bag of disjoint *regions* (separation-logic style): symbolic
//! base, word-granular symbolic contents, with address resolution by
//! `base + constant-offset` decomposition.

use crate::engine::{self, Obligation};
use crate::formula::Formula;
use crate::solver::{self, Outcome, ProofCache};
use crate::term::Term;
use bedrock2::ast::{Expr, Program, Size, Stmt};
use obs::Counters;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::Instant;

/// Verification failure.
#[derive(Clone, Debug)]
pub enum VcError {
    /// Read of a variable with no symbolic value.
    UnboundVariable(String),
    /// A memory address did not decompose to a known region base plus a
    /// constant offset.
    UnresolvedAddress {
        /// Rendering of the offending address term.
        addr: String,
    },
    /// A resolved access fell outside its region.
    OutOfBounds {
        /// Region name.
        region: String,
        /// Byte offset of the access.
        offset: u32,
        /// Access width in bytes.
        size: u32,
    },
    /// A resolved access was not aligned to its width.
    Misaligned {
        /// Byte offset of the access.
        offset: u32,
        /// Access width in bytes.
        size: u32,
    },
    /// Call to an unknown function.
    UnknownFunction(String),
    /// An obligation could not be proved.
    ProofFailed {
        /// Rendering of the failed goal.
        goal: String,
        /// Where it arose ("external call precondition", …).
        context: String,
    },
    /// A loop had no invariant and did not exit within the unroll budget.
    UnsupportedLoop {
        /// The loop's static id (registration key for invariants).
        id: usize,
    },
    /// The external specification rejected a call outright.
    ExtRefused {
        /// The action name.
        action: String,
        /// Why.
        reason: String,
    },
    /// Call nesting exceeded the depth budget.
    TooDeep,
}

impl fmt::Display for VcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcError::UnboundVariable(x) => write!(f, "unbound variable '{x}'"),
            VcError::UnresolvedAddress { addr } => write!(f, "cannot resolve address {addr}"),
            VcError::OutOfBounds {
                region,
                offset,
                size,
            } => {
                write!(
                    f,
                    "{size}-byte access at offset {offset} outside region '{region}'"
                )
            }
            VcError::Misaligned { offset, size } => {
                write!(f, "misaligned {size}-byte access at offset {offset}")
            }
            VcError::UnknownFunction(n) => write!(f, "unknown function '{n}'"),
            VcError::ProofFailed { goal, context } => {
                write!(f, "could not prove {goal} ({context})")
            }
            VcError::UnsupportedLoop { id } => {
                write!(f, "loop #{id} needs an invariant or a smaller bound")
            }
            VcError::ExtRefused { action, reason } => {
                write!(f, "external call '{action}' refused: {reason}")
            }
            VcError::TooDeep => write!(f, "call nesting too deep"),
        }
    }
}

impl std::error::Error for VcError {}

/// A separation-logic-style memory region with symbolic word contents.
#[derive(Clone, Debug)]
pub struct Region {
    /// Diagnostic name.
    pub name: String,
    /// Symbolic base address (assumed word-aligned by construction).
    pub base: Term,
    /// Word contents, index `i` holding bytes `[4i, 4i+4)`.
    pub words: Vec<Term>,
}

/// One symbolic interaction-trace record: `(action, args, rets)`.
pub type SymEvent = (String, Vec<Term>, Vec<Term>);

/// The symbolic machine state: locals, path condition, memory, trace.
#[derive(Clone, Debug, Default)]
pub struct SymState {
    /// Bedrock2 locals, symbolically.
    pub locals: HashMap<String, Term>,
    /// Path condition (conjunction of assumptions).
    pub path: Vec<Formula>,
    /// Disjoint memory regions.
    pub regions: Vec<Region>,
    /// Symbolic interaction trace, oldest first.
    pub trace: Vec<SymEvent>,
    next_var: u32,
}

impl SymState {
    /// A fresh symbolic variable.
    pub fn fresh(&mut self, name: &str) -> Term {
        let t = Term::var(self.next_var, name);
        self.next_var += 1;
        t
    }

    /// Adds an assumption to the path condition.
    pub fn assume(&mut self, f: Formula) {
        if !f.is_true() {
            self.path.push(f);
        }
    }

    /// Allocates a region of `nbytes` (rounded up to words) with fresh
    /// symbolic contents and a fresh symbolic base; returns the base term.
    pub fn add_region(&mut self, name: &str, nbytes: u32) -> Term {
        let base = self.fresh(&format!("{name}_base"));
        let words = (0..nbytes.div_ceil(4))
            .map(|i| self.fresh(&format!("{name}[{i}]")))
            .collect();
        self.regions.push(Region {
            name: name.to_string(),
            base: base.clone(),
            words,
        });
        base
    }

    fn region_of(&mut self, base: &Term) -> Option<usize> {
        self.regions.iter().position(|r| r.base == *base)
    }

    fn mem_access(&mut self, size: Size, addr: &Term) -> Result<(usize, usize, u32), VcError> {
        let (base, off) = addr.split_offset();
        let Some(ri) = self.region_of(&base) else {
            return Err(VcError::UnresolvedAddress {
                addr: format!("{addr:?}"),
            });
        };
        let n = size.bytes();
        let r = &self.regions[ri];
        if (off as u64) + (n as u64) > (r.words.len() as u64) * 4 {
            return Err(VcError::OutOfBounds {
                region: r.name.clone(),
                offset: off,
                size: n,
            });
        }
        if off % n != 0 {
            return Err(VcError::Misaligned {
                offset: off,
                size: n,
            });
        }
        Ok((ri, (off / 4) as usize, off % 4))
    }

    /// Decomposes `addr` as `region_base + symbolic_offset` where exactly
    /// one addend of the (flattened) sum is a region base. Returns the
    /// region index and the offset term. This is the symbolic-index path
    /// (e.g. `buf + 4·i`): the caller must *prove* bounds and alignment of
    /// the offset instead of checking them syntactically.
    fn linear_access(&self, addr: &Term) -> Option<(usize, Term)> {
        fn addends(t: &Term, out: &mut Vec<Term>) {
            if let Some((bedrock2::ast::BinOp::Add, a, b)) = t.as_op() {
                addends(a, out);
                addends(b, out);
            } else {
                out.push(t.clone());
            }
        }
        let mut parts = Vec::new();
        addends(addr, &mut parts);
        let mut region = None;
        let mut offset_parts = Vec::new();
        for p in parts {
            match self.regions.iter().position(|r| r.base == p) {
                Some(ri) if region.is_none() => region = Some(ri),
                Some(_) => return None, // two bases: not a single region
                None => offset_parts.push(p),
            }
        }
        let ri = region?;
        let mut offset = Term::constant(0);
        for p in offset_parts {
            offset = offset.add(&p);
        }
        Some((ri, offset))
    }

    /// Weak update: the region's contents become unknown (sound for
    /// safety; symbolic-index stores lose value precision).
    fn havoc_region(&mut self, ri: usize) {
        let n = self.regions[ri].words.len();
        let name = self.regions[ri].name.clone();
        for wi in 0..n {
            let fresh = self.fresh(&format!("{name}'[{wi}]"));
            self.regions[ri].words[wi] = fresh;
        }
    }

    fn load(&mut self, size: Size, addr: &Term) -> Result<Term, VcError> {
        let (ri, wi, lane) = self.mem_access(size, addr)?;
        let w = self.regions[ri].words[wi].clone();
        Ok(extract(size, lane, &w))
    }

    fn store(&mut self, size: Size, addr: &Term, value: &Term) -> Result<(), VcError> {
        let (ri, wi, lane) = self.mem_access(size, addr)?;
        let old = self.regions[ri].words[wi].clone();
        self.regions[ri].words[wi] = inject(size, lane, &old, value);
        Ok(())
    }

    /// Havocs every memory word and the listed locals (used when entering
    /// a loop whose invariant abstracts the modified state).
    fn havoc(&mut self, locals: &[String]) {
        let names: Vec<(usize, usize, String)> = self
            .regions
            .iter()
            .enumerate()
            .flat_map(|(ri, r)| {
                (0..r.words.len()).map(move |wi| (ri, wi, format!("{}'[{}]", r.name, wi)))
            })
            .collect();
        for (ri, wi, name) in names {
            let fresh = self.fresh(&name);
            self.regions[ri].words[wi] = fresh;
        }
        for x in locals {
            let fresh = self.fresh(&format!("{x}'"));
            self.locals.insert(x.clone(), fresh);
        }
    }
}

fn extract(size: Size, lane: u32, w: &Term) -> Term {
    use bedrock2::ast::BinOp::*;
    match size {
        Size::Four => w.clone(),
        Size::One | Size::Two => {
            let sh = Term::constant(8 * lane);
            let mask = Term::constant(size.mask());
            Term::op(And, &Term::op(Sru, w, &sh), &mask)
        }
    }
}

fn inject(size: Size, lane: u32, old: &Term, value: &Term) -> Term {
    use bedrock2::ast::BinOp::*;
    match size {
        Size::Four => value.clone(),
        Size::One | Size::Two => {
            let sh = Term::constant(8 * lane);
            let keep = Term::constant(!(size.mask() << (8 * lane)));
            let v = Term::op(
                Slu,
                &Term::op(And, value, &Term::constant(size.mask())),
                &sh,
            );
            Term::op(Or, &Term::op(And, old, &keep), &v)
        }
    }
}

/// The result of an external-call specification.
#[derive(Clone, Debug)]
pub struct ExtResult {
    /// Obligations the caller must prove (the call's precondition).
    pub require: Vec<Formula>,
    /// Result terms (typically fresh variables — the universal quantifier
    /// of `vcextern`).
    pub rets: Vec<Term>,
    /// Facts that may be assumed about the results.
    pub assume: Vec<Formula>,
}

/// The `vcextern` parameter (§6.1).
pub trait ExtSpec {
    /// Specifies one external call.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the action is unknown or structurally
    /// misused (wrong arity).
    fn apply(&self, action: &str, args: &[Term], st: &mut SymState) -> Result<ExtResult, String>;
}

/// An MMIO external-call specification over a fixed set of address ranges:
/// `MMIOREAD`/`MMIOWRITE` require a word-aligned address within range and
/// return unconstrained fresh values — the concrete `vcextern` instance of
/// the lightbulb platform (§6.1).
#[derive(Clone, Debug)]
pub struct MmioExtSpec {
    /// Allowed `[lo, hi)` address ranges.
    pub ranges: Vec<(u32, u32)>,
}

impl MmioExtSpec {
    fn in_range(&self, addr: &Term) -> Formula {
        self.ranges
            .iter()
            .map(|(lo, hi)| {
                Formula::leu(&Term::constant(*lo), addr)
                    .and(Formula::ltu(addr, &Term::constant(*hi)))
            })
            .fold(Formula::falsehood(), Formula::or)
    }

    fn aligned(addr: &Term) -> Formula {
        Formula::eq(
            &Term::op(bedrock2::ast::BinOp::And, addr, &Term::constant(3)),
            &Term::constant(0),
        )
    }
}

impl ExtSpec for MmioExtSpec {
    fn apply(&self, action: &str, args: &[Term], st: &mut SymState) -> Result<ExtResult, String> {
        match (action, args) {
            ("MMIOREAD", [addr]) => Ok(ExtResult {
                require: vec![self.in_range(addr), Self::aligned(addr)],
                rets: vec![st.fresh("mmio_read")],
                assume: vec![],
            }),
            ("MMIOWRITE", [addr, _value]) => Ok(ExtResult {
                require: vec![self.in_range(addr), Self::aligned(addr)],
                rets: vec![],
                assume: vec![],
            }),
            _ => Err(format!("unknown external '{action}' or wrong arity")),
        }
    }
}

/// The predicate half of an [`Invariant`]: obligations over a state.
pub type StatePred = Rc<dyn Fn(&SymState) -> Vec<Formula>>;

/// A loop invariant: which locals the body modifies, and what holds at the
/// head of every iteration.
#[derive(Clone)]
pub struct Invariant {
    /// Locals to havoc (everything the body may assign).
    pub havoc: Vec<String>,
    /// The invariant itself, as obligations over the havoced state.
    pub holds: StatePred,
}

/// The symbolic executor.
pub struct SymExec<'p, E> {
    prog: &'p Program,
    /// The external-call specification.
    pub ext: E,
    /// Unroll budget for loops without invariants.
    pub unroll_limit: usize,
    /// Invariants by static loop id (traversal order across the program's
    /// functions, alphabetical then pre-order).
    pub invariants: HashMap<usize, Invariant>,
    /// When set, loops without a registered invariant get an automatic
    /// trivial one (havoc everything the body assigns, assume nothing)
    /// instead of being unrolled. Path facts established *outside* the
    /// loop and the loop condition itself still hold, which is enough for
    /// push-button memory/MMIO **safety** checking of whole drivers —
    /// functional postconditions usually still need real invariants.
    pub auto_invariants: bool,
    call_depth_limit: usize,
    solver_queries: Cell<u64>,
    solver_nanos: Cell<u64>,
    /// Obligation cache shared by proof and feasibility queries; see
    /// [`SymExec::set_cache`].
    cache: RefCell<Option<ProofCache>>,
    /// When `Some`, [`SymExec::discharge`]/`prove_mem` collect obligations
    /// here instead of proving eagerly (the deferred-batch mode behind
    /// [`SymExec::check_function_parallel`]). The `bool` marks obligations
    /// that count toward [`VcReport::obligations`], matching the eager
    /// accounting exactly.
    deferred: RefCell<Option<Vec<(Obligation, bool)>>>,
}

/// Statistics from a successful verification, exported as `proglogic.*`
/// counters by [`VcReport::counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VcReport {
    /// Symbolic paths fully explored.
    pub paths: usize,
    /// Obligations discharged by the solver.
    pub obligations: usize,
    /// Feasible branch continuations explored at `if` forks.
    pub branches: u64,
    /// Solver queries issued (proofs and feasibility checks).
    pub solver_queries: u64,
    /// Total solver wall time, in microseconds.
    pub solver_micros: u64,
    /// Queries answered from the obligation cache (0 without a cache).
    pub cache_hits: u64,
    /// Queries actually solved when a cache was in use (0 without one).
    pub cache_misses: u64,
    /// Shards the deferred obligation batch ran on (0 in eager mode).
    pub shards: u64,
}

impl VcReport {
    /// Exports the report as `proglogic.*` named counters.
    pub fn counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("proglogic.vc.paths", self.paths as u64);
        c.set("proglogic.vc.obligations", self.obligations as u64);
        c.set("proglogic.symexec.branches", self.branches);
        c.set("proglogic.solver.queries", self.solver_queries);
        c.set("proglogic.solver.micros", self.solver_micros);
        c.set("proglogic.solver.cache_hit", self.cache_hits);
        c.set("proglogic.solver.cache_miss", self.cache_misses);
        c.set("proglogic.solver.proved", self.obligations as u64);
        c.set("proglogic.solver.shards", self.shards);
        c
    }
}

impl<'p, E: ExtSpec> SymExec<'p, E> {
    /// Creates an executor over `prog` with external specification `ext`.
    pub fn new(prog: &'p Program, ext: E) -> SymExec<'p, E> {
        SymExec {
            prog,
            ext,
            unroll_limit: 16,
            invariants: HashMap::new(),
            auto_invariants: false,
            call_depth_limit: 8,
            solver_queries: Cell::new(0),
            solver_nanos: Cell::new(0),
            cache: RefCell::new(None),
            deferred: RefCell::new(None),
        }
    }

    /// Installs an obligation cache. Every subsequent proof and
    /// feasibility query goes through it, so re-checking an unchanged
    /// function becomes a stream of cache hits (the warm-cache CI path).
    pub fn set_cache(&mut self, cache: ProofCache) {
        *self.cache.borrow_mut() = Some(cache);
    }

    /// Removes and returns the installed cache (e.g. to [`ProofCache::save`]
    /// it after a run).
    pub fn take_cache(&mut self) -> Option<ProofCache> {
        self.cache.borrow_mut().take()
    }

    /// Calls [`solver::prove`] (through the cache when one is installed),
    /// accounting the query and its wall time.
    fn solve(&self, assumptions: &[Formula], goal: &Formula) -> Outcome {
        let t = Instant::now();
        let out = match self.cache.borrow_mut().as_mut() {
            Some(cache) => cache.prove(assumptions, goal),
            None => solver::prove(assumptions, goal),
        };
        self.solver_nanos
            .set(self.solver_nanos.get() + t.elapsed().as_nanos() as u64);
        self.solver_queries.set(self.solver_queries.get() + 1);
        out
    }

    /// Calls [`solver::contradictory`] (through the cache when one is
    /// installed), accounting the query and its time.
    fn infeasible(&self, path: &[Formula]) -> bool {
        let t = Instant::now();
        let out = match self.cache.borrow_mut().as_mut() {
            Some(cache) => cache.contradictory(path),
            None => solver::contradictory(path),
        };
        self.solver_nanos
            .set(self.solver_nanos.get() + t.elapsed().as_nanos() as u64);
        self.solver_queries.set(self.solver_queries.get() + 1);
        out
    }

    /// Registers an invariant for the loop with static id `id` (ids are
    /// assigned in pre-order per function, functions in name order; see
    /// [`label_loops`]).
    pub fn set_invariant(&mut self, id: usize, inv: Invariant) {
        self.invariants.insert(id, inv);
    }

    /// Verifies `name` against a precondition (the `setup` closure builds
    /// the initial symbolic state and returns the argument terms) and a
    /// postcondition (obligations over each final state and its returns).
    ///
    /// # Errors
    ///
    /// The first [`VcError`] encountered on any path.
    pub fn check_function(
        &self,
        name: &str,
        setup: impl FnOnce(&mut SymState) -> Vec<Term>,
        post: impl Fn(&SymState, &[Term]) -> Vec<Formula>,
    ) -> Result<VcReport, VcError> {
        let f = self
            .prog
            .function(name)
            .ok_or_else(|| VcError::UnknownFunction(name.to_string()))?;
        let loop_ids = label_loops(self.prog);
        let mut st = SymState::default();
        let args = setup(&mut st);
        for (p, a) in f.params.iter().zip(args) {
            st.locals.insert(p.clone(), a);
        }
        self.solver_queries.set(0);
        self.solver_nanos.set(0);
        let (hits0, misses0) = self.cache_traffic();
        let mut report = VcReport::default();
        let finals = self.exec(&f.body, vec![st], &loop_ids, 0, &mut report)?;
        for st in finals {
            let rets: Vec<Term> = f
                .rets
                .iter()
                .map(|r| {
                    st.locals
                        .get(r)
                        .cloned()
                        .ok_or_else(|| VcError::UnboundVariable(r.clone()))
                })
                .collect::<Result<_, _>>()?;
            for goal in post(&st, &rets) {
                self.discharge(&st, &goal, "postcondition", &mut report)?;
            }
            report.paths += 1;
        }
        report.solver_queries = self.solver_queries.get();
        report.solver_micros = self.solver_nanos.get() / 1_000;
        let (hits1, misses1) = self.cache_traffic();
        report.cache_hits = hits1 - hits0;
        report.cache_misses = misses1 - misses0;
        Ok(report)
    }

    /// Verifies `name` like [`SymExec::check_function`], but defers every
    /// proof obligation and discharges the whole batch at the end on
    /// `shards` threads via [`engine::prove_batch`] — the parallel cold
    /// path. Feasibility checks stay inline (they steer path pruning);
    /// deferring obligations is sound because their outcomes never steer
    /// execution. On failure the reported error is the *first* failing
    /// obligation in exploration order, matching the eager mode.
    ///
    /// # Errors
    ///
    /// The first [`VcError`] encountered, as in eager mode.
    pub fn check_function_parallel(
        &self,
        name: &str,
        setup: impl FnOnce(&mut SymState) -> Vec<Term>,
        post: impl Fn(&SymState, &[Term]) -> Vec<Formula>,
        shards: usize,
    ) -> Result<VcReport, VcError> {
        *self.deferred.borrow_mut() = Some(Vec::new());
        let explored = self.check_function(name, setup, post);
        let batch = self
            .deferred
            .borrow_mut()
            .take()
            .expect("deferred batch installed above and only taken here");
        let mut report = explored?;
        let (obligations, counted): (Vec<Obligation>, Vec<bool>) = batch.into_iter().unzip();
        let t = Instant::now();
        let batch_report =
            engine::prove_batch(&obligations, shards, self.cache.borrow_mut().as_mut());
        report.solver_micros += t.elapsed().as_micros() as u64;
        report.solver_queries += obligations.len() as u64;
        if let Some(i) = batch_report.first_failure() {
            return Err(VcError::ProofFailed {
                goal: format!("{:?}", obligations[i].goal),
                context: obligations[i].context.clone(),
            });
        }
        report.obligations += counted.iter().filter(|&&c| c).count();
        report.cache_hits += batch_report.cache_hits;
        report.cache_misses += batch_report.cache_misses;
        report.shards = batch_report.shards as u64;
        Ok(report)
    }

    /// Current cumulative cache hit/miss counts (zeros without a cache).
    fn cache_traffic(&self) -> (u64, u64) {
        match self.cache.borrow().as_ref() {
            Some(c) => (c.hits(), c.misses()),
            None => (0, 0),
        }
    }

    fn discharge(
        &self,
        st: &SymState,
        goal: &Formula,
        context: &str,
        report: &mut VcReport,
    ) -> Result<(), VcError> {
        if self.defer(st, goal, context, true) {
            return Ok(());
        }
        match self.solve(&st.path, goal) {
            Outcome::Proved => {
                report.obligations += 1;
                Ok(())
            }
            Outcome::Unknown => Err(VcError::ProofFailed {
                goal: format!("{goal:?}"),
                context: context.to_string(),
            }),
        }
    }

    /// Proves a memory-safety obligation under the state's path condition.
    fn prove_mem(&self, st: &SymState, goal: &Formula, context: &str) -> Result<(), VcError> {
        if self.defer(st, goal, context, false) {
            return Ok(());
        }
        match self.solve(&st.path, goal) {
            Outcome::Proved => Ok(()),
            Outcome::Unknown => Err(VcError::ProofFailed {
                goal: format!("{goal:?}"),
                context: context.to_string(),
            }),
        }
    }

    /// In deferred-batch mode, queues the obligation and reports `true`
    /// (the caller then skips the eager solve). `counted` mirrors whether
    /// the eager path would increment [`VcReport::obligations`].
    fn defer(&self, st: &SymState, goal: &Formula, context: &str, counted: bool) -> bool {
        let mut deferred = self.deferred.borrow_mut();
        let Some(batch) = deferred.as_mut() else {
            return false;
        };
        batch.push((
            Obligation {
                context: context.to_string(),
                assumptions: st.path.clone(),
                goal: goal.clone(),
            },
            counted,
        ));
        true
    }

    /// A load through either the constant-offset fast path or the
    /// symbolic-index path (bounds and alignment proved, value unknown).
    fn sym_load(&self, st: &mut SymState, size: Size, addr: &Term) -> Result<Term, VcError> {
        match st.load(size, addr) {
            Err(VcError::UnresolvedAddress { .. }) => {
                let Some((ri, off)) = st.linear_access(addr) else {
                    return Err(VcError::UnresolvedAddress {
                        addr: format!("{addr:?}"),
                    });
                };
                self.prove_symbolic_access(st, ri, &off, size)?;
                Ok(st.fresh("load"))
            }
            other => other,
        }
    }

    /// A store through either path; the symbolic-index path weak-updates
    /// the whole region.
    fn sym_store(
        &self,
        st: &mut SymState,
        size: Size,
        addr: &Term,
        value: &Term,
    ) -> Result<(), VcError> {
        match st.store(size, addr, value) {
            Err(VcError::UnresolvedAddress { .. }) => {
                let Some((ri, off)) = st.linear_access(addr) else {
                    return Err(VcError::UnresolvedAddress {
                        addr: format!("{addr:?}"),
                    });
                };
                self.prove_symbolic_access(st, ri, &off, size)?;
                st.havoc_region(ri);
                Ok(())
            }
            other => other,
        }
    }

    /// Obligations for a symbolic-index access: `off + n ≤ region size`
    /// (no overrun — the §3 property) and `off mod n = 0` (alignment;
    /// region bases are word-aligned by construction).
    fn prove_symbolic_access(
        &self,
        st: &SymState,
        ri: usize,
        off: &Term,
        size: Size,
    ) -> Result<(), VcError> {
        let n = size.bytes();
        let bytes = (st.regions[ri].words.len() as u32) * 4;
        let name = &st.regions[ri].name;
        self.prove_mem(
            st,
            &Formula::leu(&off.add_const(n), &Term::constant(bytes)),
            &format!("bounds of symbolic access into '{name}'"),
        )?;
        if n > 1 {
            self.prove_mem(
                st,
                &Formula::eq(
                    &Term::op(bedrock2::ast::BinOp::RemU, off, &Term::constant(n)),
                    &Term::constant(0),
                ),
                &format!("alignment of symbolic access into '{name}'"),
            )?;
        }
        Ok(())
    }

    fn eval(&self, e: &Expr, st: &mut SymState) -> Result<Term, VcError> {
        match e {
            Expr::Literal(c) => Ok(Term::constant(*c)),
            Expr::Var(x) => st
                .locals
                .get(x)
                .cloned()
                .ok_or_else(|| VcError::UnboundVariable(x.clone())),
            Expr::Load(size, a) => {
                let addr = self.eval(a, st)?;
                self.sym_load(st, *size, &addr)
            }
            Expr::Op(op, a, b) => {
                let ta = self.eval(a, st)?;
                let tb = self.eval(b, st)?;
                Ok(Term::op(*op, &ta, &tb))
            }
        }
    }

    fn exec(
        &self,
        s: &Stmt,
        states: Vec<SymState>,
        loop_ids: &HashMap<usize, usize>,
        depth: usize,
        report: &mut VcReport,
    ) -> Result<Vec<SymState>, VcError> {
        let mut out = Vec::new();
        for st in states {
            out.extend(self.exec1(s, st, loop_ids, depth, report)?);
        }
        Ok(out)
    }

    fn exec1(
        &self,
        s: &Stmt,
        mut st: SymState,
        loop_ids: &HashMap<usize, usize>,
        depth: usize,
        report: &mut VcReport,
    ) -> Result<Vec<SymState>, VcError> {
        match s {
            Stmt::Skip => Ok(vec![st]),
            Stmt::Set(x, e) => {
                let t = self.eval(e, &mut st)?;
                st.locals.insert(x.clone(), t);
                Ok(vec![st])
            }
            Stmt::Store(size, ea, ev) => {
                let addr = self.eval(ea, &mut st)?;
                let val = self.eval(ev, &mut st)?;
                self.sym_store(&mut st, *size, &addr, &val)?;
                Ok(vec![st])
            }
            Stmt::If(c, t, e) => {
                let ct = self.eval(c, &mut st)?;
                let tf = Formula::truthy(&ct);
                let mut branches = Vec::new();
                let mut st_t = st.clone();
                st_t.assume(tf.clone());
                if !self.infeasible(&st_t.path) {
                    report.branches += 1;
                    branches.extend(self.exec1(t, st_t, loop_ids, depth, report)?);
                }
                let mut st_f = st;
                st_f.assume(tf.negate());
                if !self.infeasible(&st_f.path) {
                    report.branches += 1;
                    branches.extend(self.exec1(e, st_f, loop_ids, depth, report)?);
                }
                Ok(branches)
            }
            Stmt::While(c, body) => {
                let id = *loop_ids
                    .get(&(s as *const Stmt as usize))
                    .expect("loop labeled in pre-pass");
                if let Some(inv) = self.invariants.get(&id) {
                    self.exec_invariant_loop(c, body, inv, st, loop_ids, depth, report)
                } else if self.auto_invariants {
                    let inv = Invariant {
                        havoc: assigned_locals(body),
                        holds: Rc::new(|_| vec![]),
                    };
                    self.exec_invariant_loop(c, body, &inv, st, loop_ids, depth, report)
                } else {
                    self.exec_unrolled_loop(id, c, body, st, loop_ids, depth, report)
                }
            }
            Stmt::Block(ss) => {
                let mut states = vec![st];
                for s in ss {
                    states = self.exec(s, states, loop_ids, depth, report)?;
                }
                Ok(states)
            }
            Stmt::Call(rets, fname, args) => {
                if depth >= self.call_depth_limit {
                    return Err(VcError::TooDeep);
                }
                let f = self
                    .prog
                    .function(fname)
                    .ok_or_else(|| VcError::UnknownFunction(fname.clone()))?;
                let argv: Vec<Term> = args
                    .iter()
                    .map(|a| self.eval(a, &mut st))
                    .collect::<Result<_, _>>()?;
                // Execute the callee body on callee-local variables.
                let caller_locals = std::mem::take(&mut st.locals);
                st.locals = f.params.iter().cloned().zip(argv).collect();
                let finals = self.exec1(&f.body, st, loop_ids, depth + 1, report)?;
                let mut out = Vec::new();
                for mut fs in finals {
                    let retv: Vec<Term> = f
                        .rets
                        .iter()
                        .map(|r| {
                            fs.locals
                                .get(r)
                                .cloned()
                                .ok_or_else(|| VcError::UnboundVariable(r.clone()))
                        })
                        .collect::<Result<_, _>>()?;
                    fs.locals = caller_locals.clone();
                    for (r, v) in rets.iter().zip(retv) {
                        fs.locals.insert(r.clone(), v);
                    }
                    out.push(fs);
                }
                Ok(out)
            }
            Stmt::Interact(rets, action, args) => {
                let argv: Vec<Term> = args
                    .iter()
                    .map(|a| self.eval(a, &mut st))
                    .collect::<Result<_, _>>()?;
                let result = self.ext.apply(action, &argv, &mut st).map_err(|reason| {
                    VcError::ExtRefused {
                        action: action.clone(),
                        reason,
                    }
                })?;
                for req in &result.require {
                    self.discharge(&st, req, &format!("precondition of {action}"), report)?;
                }
                st.trace.push((action.clone(), argv, result.rets.clone()));
                for f in result.assume {
                    st.assume(f);
                }
                for (r, v) in rets.iter().zip(result.rets) {
                    st.locals.insert(r.clone(), v);
                }
                Ok(vec![st])
            }
            Stmt::Stackalloc(x, nbytes, body) => {
                let base = st.add_region(x, *nbytes);
                st.locals.insert(x.clone(), base);
                self.exec1(body, st, loop_ids, depth, report)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_unrolled_loop(
        &self,
        id: usize,
        c: &Expr,
        body: &Stmt,
        st: SymState,
        loop_ids: &HashMap<usize, usize>,
        depth: usize,
        report: &mut VcReport,
    ) -> Result<Vec<SymState>, VcError> {
        let mut live = vec![st];
        let mut done = Vec::new();
        for _ in 0..=self.unroll_limit {
            let mut next = Vec::new();
            for mut st in live {
                let ct = self.eval(c, &mut st)?;
                let tf = Formula::truthy(&ct);
                let mut exit = st.clone();
                exit.assume(tf.clone().negate());
                if !self.infeasible(&exit.path) {
                    done.push(exit);
                }
                let mut again = st;
                again.assume(tf);
                if !self.infeasible(&again.path) {
                    next.extend(self.exec1(body, again, loop_ids, depth, report)?);
                }
            }
            live = next;
            if live.is_empty() {
                return Ok(done);
            }
        }
        Err(VcError::UnsupportedLoop { id })
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_invariant_loop(
        &self,
        c: &Expr,
        body: &Stmt,
        inv: &Invariant,
        mut st: SymState,
        loop_ids: &HashMap<usize, usize>,
        depth: usize,
        report: &mut VcReport,
    ) -> Result<Vec<SymState>, VcError> {
        // 1. Establishment.
        for goal in (inv.holds)(&st) {
            self.discharge(&st, &goal, "loop invariant (establishment)", report)?;
        }
        // 2. Arbitrary iteration: havoc, assume invariant.
        st.havoc(&inv.havoc);
        for f in (inv.holds)(&st) {
            st.assume(f);
        }
        let ct = self.eval(c, &mut st)?;
        let tf = Formula::truthy(&ct);
        // 3. Preservation: body re-establishes the invariant.
        let mut iter = st.clone();
        iter.assume(tf.clone());
        if !self.infeasible(&iter.path) {
            for body_final in self.exec1(body, iter, loop_ids, depth, report)? {
                for goal in (inv.holds)(&body_final) {
                    self.discharge(&body_final, &goal, "loop invariant (preservation)", report)?;
                }
            }
        }
        // 4. Exit.
        let mut exit = st;
        exit.assume(tf.negate());
        Ok(vec![exit])
    }
}

/// Local variables a statement may assign (the automatic havoc set for
/// [`SymExec::auto_invariants`]).
pub fn assigned_locals(s: &Stmt) -> Vec<String> {
    fn walk(s: &Stmt, out: &mut Vec<String>) {
        let mut push = |x: &String| {
            if !out.contains(x) {
                out.push(x.clone());
            }
        };
        match s {
            Stmt::Set(x, _) => push(x),
            Stmt::If(_, t, e) => {
                walk(t, out);
                walk(e, out);
            }
            Stmt::While(_, b) => walk(b, out),
            Stmt::Block(ss) => ss.iter().for_each(|s| walk(s, out)),
            Stmt::Call(rets, _, _) | Stmt::Interact(rets, _, _) => {
                rets.iter().for_each(|r| {
                    if !out.contains(r) {
                        out.push(r.clone());
                    }
                });
            }
            Stmt::Stackalloc(x, _, b) => {
                push(x);
                walk(b, out);
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(s, &mut out);
    out
}

/// Assigns static ids to every `While` in the program: functions in name
/// order, loops in pre-order within each body. The ids key
/// [`SymExec::set_invariant`].
pub fn label_loops(prog: &Program) -> HashMap<usize, usize> {
    let mut ids = HashMap::new();
    let mut next = 0;
    for f in prog.functions.values() {
        label_stmt(&f.body, &mut ids, &mut next);
    }
    ids
}

fn label_stmt(s: &Stmt, ids: &mut HashMap<usize, usize>, next: &mut usize) {
    match s {
        Stmt::While(_, body) => {
            ids.insert(s as *const Stmt as usize, *next);
            *next += 1;
            label_stmt(body, ids, next);
        }
        Stmt::If(_, t, e) => {
            label_stmt(t, ids, next);
            label_stmt(e, ids, next);
        }
        Stmt::Block(ss) => ss.iter().for_each(|s| label_stmt(s, ids, next)),
        Stmt::Stackalloc(_, _, b) => label_stmt(b, ids, next),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bedrock2::ast::Function;
    use bedrock2::dsl::*;

    fn mmio_spec() -> MmioExtSpec {
        MmioExtSpec {
            ranges: vec![(0x1001_2000, 0x1001_3000), (0x1002_4000, 0x1002_5000)],
        }
    }

    #[test]
    fn straight_line_arithmetic_verifies() {
        let f = Function::new("f", &["x"], &["r"], set("r", add(var("x"), lit(1))));
        let p = Program::from_functions([f]);
        let se = SymExec::new(&p, mmio_spec());
        let report = se
            .check_function(
                "f",
                |st| vec![st.fresh("x")],
                |_st, rets| {
                    // r = x + 1 cannot be proved without knowing x, but
                    // r - 1 < 10 follows from an x bound; instead check a
                    // tautology over the result: r = r.
                    vec![Formula::eq(&rets[0], &rets[0])]
                },
            )
            .unwrap();
        assert_eq!(report.paths, 1);
    }

    #[test]
    fn bounds_flow_into_postconditions() {
        // f(len) -> padded: padded = (len + 3) / 4 * 4, prove padded < 2048
        // given len < 1520.
        let f = Function::new(
            "pad",
            &["len"],
            &["p"],
            set("p", mul(divu(add(var("len"), lit(3)), lit(4)), lit(4))),
        );
        let p = Program::from_functions([f]);
        let se = SymExec::new(&p, mmio_spec());
        se.check_function(
            "pad",
            |st| {
                let len = st.fresh("len");
                st.assume(Formula::ltu(&len, &Term::constant(1520)));
                vec![len]
            },
            |_st, rets| vec![Formula::ltu(&rets[0], &Term::constant(2048))],
        )
        .unwrap();
    }

    #[test]
    fn memory_roundtrip_verifies() {
        // store4(p, 7); r = load4(p); prove r = 7.
        let f = Function::new(
            "wr",
            &["p"],
            &["r"],
            block([store4(var("p"), lit(7)), set("r", load4(var("p")))]),
        );
        let p = Program::from_functions([f]);
        let se = SymExec::new(&p, mmio_spec());
        se.check_function(
            "wr",
            |st| vec![st.add_region("buf", 8)],
            |_st, rets| vec![Formula::eq(&rets[0], &Term::constant(7))],
        )
        .unwrap();
    }

    #[test]
    fn byte_store_into_word_verifies() {
        // store1(p+1, 0xAA) then load1(p+1) = 0xAA.
        let f = Function::new(
            "b",
            &["p"],
            &["r"],
            block([
                store4(var("p"), lit(0x11223344)),
                store1(add(var("p"), lit(1)), lit(0xAA)),
                set("r", load1(add(var("p"), lit(1)))),
            ]),
        );
        let p = Program::from_functions([f]);
        let se = SymExec::new(&p, mmio_spec());
        se.check_function(
            "b",
            |st| vec![st.add_region("buf", 4)],
            |_st, rets| vec![Formula::eq(&rets[0], &Term::constant(0xAA))],
        )
        .unwrap();
    }

    #[test]
    fn out_of_bounds_is_a_vc_error() {
        let f = Function::new("oob", &["p"], &[], store4(add(var("p"), lit(8)), lit(1)));
        let p = Program::from_functions([f]);
        let se = SymExec::new(&p, mmio_spec());
        let err = se.check_function("oob", |st| vec![st.add_region("buf", 8)], |_, _| vec![]);
        assert!(matches!(err, Err(VcError::OutOfBounds { .. })), "{err:?}");
    }

    #[test]
    fn mmio_precondition_is_enforced() {
        // Writing a constant in-range address verifies…
        let ok = Function::new(
            "ok",
            &[],
            &[],
            interact(&[], "MMIOWRITE", [lit(0x1001_200C), lit(1)]),
        );
        // …writing an arbitrary address does not.
        let bad = Function::new(
            "bad",
            &["a"],
            &[],
            interact(&[], "MMIOWRITE", [var("a"), lit(1)]),
        );
        let p = Program::from_functions([ok, bad]);
        let se = SymExec::new(&p, mmio_spec());
        se.check_function("ok", |_| vec![], |_, _| vec![]).unwrap();
        let err = se.check_function("bad", |st| vec![st.fresh("a")], |_, _| vec![]);
        assert!(matches!(err, Err(VcError::ProofFailed { .. })), "{err:?}");
    }

    #[test]
    fn guarded_mmio_verifies() {
        // The §6.1 pattern: the *programmer* proves range membership by
        // guarding the call. Nested `when`s keep each conjunct a separate
        // path assumption (the solver deliberately does not decompose
        // bitwise-and of boolean terms).
        let f = Function::new(
            "guarded",
            &["a"],
            &[],
            when(
                ltu(var("a"), lit(0x1001_3000)),
                when(
                    eq(ltu(var("a"), lit(0x1001_2000)), lit(0)),
                    when(
                        eq(and(var("a"), lit(3)), lit(0)),
                        interact(&[], "MMIOWRITE", [var("a"), lit(1)]),
                    ),
                ),
            ),
        );
        let p = Program::from_functions([f]);
        let se = SymExec::new(&p, mmio_spec());
        se.check_function("guarded", |st| vec![st.fresh("a")], |_, _| vec![])
            .unwrap();
    }

    #[test]
    fn trace_postconditions_see_external_calls() {
        let f = Function::new(
            "io",
            &[],
            &["v"],
            interact(&["v"], "MMIOREAD", [lit(0x1002_404C)]),
        );
        let p = Program::from_functions([f]);
        let se = SymExec::new(&p, mmio_spec());
        se.check_function(
            "io",
            |_| vec![],
            |st, rets| {
                assert_eq!(st.trace.len(), 1);
                assert_eq!(st.trace[0].0, "MMIOREAD");
                // The result is exactly the traced return value.
                vec![Formula::eq(&rets[0], &st.trace[0].2[0])]
            },
        )
        .unwrap();
    }

    #[test]
    fn bounded_loops_unroll() {
        // i = 0; while (i < 3) i = i + 1; prove i = 3.
        let f = Function::new(
            "count",
            &[],
            &["i"],
            block([
                set("i", lit(0)),
                while_(ltu(var("i"), lit(3)), set("i", add(var("i"), lit(1)))),
            ]),
        );
        let p = Program::from_functions([f]);
        let se = SymExec::new(&p, mmio_spec());
        let report = se
            .check_function(
                "count",
                |_| vec![],
                |_st, rets| vec![Formula::eq(&rets[0], &Term::constant(3))],
            )
            .unwrap();
        assert_eq!(report.paths, 1);
    }

    #[test]
    fn unbounded_loops_need_invariants() {
        let f = Function::new(
            "spin",
            &["n"],
            &[],
            while_(var("n"), set("n", sub(var("n"), lit(1)))),
        );
        let p = Program::from_functions([f]);
        let se = SymExec::new(&p, mmio_spec());
        let err = se.check_function("spin", |st| vec![st.fresh("n")], |_, _| vec![]);
        assert!(
            matches!(err, Err(VcError::UnsupportedLoop { id: 0 })),
            "{err:?}"
        );
    }

    #[test]
    fn invariant_loops_verify() {
        // while (n != 0) { n = n - 1 }; after the loop n = 0.
        // Invariant: true (the exit condition alone gives the post).
        let f = Function::new(
            "drain",
            &["n"],
            &["n"],
            while_(var("n"), set("n", sub(var("n"), lit(1)))),
        );
        let p = Program::from_functions([f]);
        let mut se = SymExec::new(&p, mmio_spec());
        se.set_invariant(
            0,
            Invariant {
                havoc: vec!["n".to_string()],
                holds: Rc::new(|_| vec![]),
            },
        );
        se.check_function(
            "drain",
            |st| vec![st.fresh("n")],
            |_st, rets| vec![Formula::eq(&rets[0], &Term::constant(0))],
        )
        .unwrap();
    }

    #[test]
    fn invariant_preservation_failures_are_reported() {
        // Claim the bogus invariant n < 5 for a loop that increments n.
        let f = Function::new(
            "grow",
            &[],
            &[],
            block([
                set("n", lit(0)),
                while_(ltu(var("n"), lit(100)), set("n", add(var("n"), lit(1)))),
            ]),
        );
        let p = Program::from_functions([f]);
        let mut se = SymExec::new(&p, mmio_spec());
        se.set_invariant(
            0,
            Invariant {
                havoc: vec!["n".to_string()],
                holds: Rc::new(|st| {
                    let n = st
                        .locals
                        .get("n")
                        .cloned()
                        .unwrap_or_else(|| Term::constant(0));
                    vec![Formula::ltu(&n, &Term::constant(5))]
                }),
            },
        );
        let err = se.check_function("grow", |_| vec![], |_, _| vec![]);
        assert!(matches!(err, Err(VcError::ProofFailed { .. })), "{err:?}");
    }

    #[test]
    fn calls_are_verified_interprocedurally() {
        let bump = Function::new("bump", &["x"], &["y"], set("y", add(var("x"), lit(1))));
        let main = Function::new(
            "main",
            &[],
            &["r"],
            block([
                call(&["a"], "bump", [lit(1)]),
                call(&["r"], "bump", [var("a")]),
            ]),
        );
        let p = Program::from_functions([bump, main]);
        let se = SymExec::new(&p, mmio_spec());
        se.check_function(
            "main",
            |_| vec![],
            |_st, rets| vec![Formula::eq(&rets[0], &Term::constant(3))],
        )
        .unwrap();
    }
}

//! Trace predicates: the regex-like specification language of §3.1.
//!
//! A [`TracePred`] denotes a set of I/O traces (sequences of
//! [`MmioEvent`]s). The combinators mirror the paper's notation:
//!
//! | paper        | here                   |
//! |--------------|------------------------|
//! | `P +++ Q`    | [`TracePred::then`]    |
//! | `P \|\|\| Q` | [`TracePred::or`]      |
//! | `P ^*`       | [`TracePred::star`]    |
//! | `EX b, P b`  | [`TracePred::ex_bool`] |
//!
//! Because trace predicates remain ordinary logical functions in the paper
//! (retaining "the full expressive power of higher-order logic"), atoms
//! here are arbitrary predicates on one event, and [`TracePred::matches`]
//! is decided by dynamic programming with per-node length bounds to keep
//! matching fast on long traces.
//!
//! The end-to-end theorem constrains *prefixes* of traces (the system may
//! be mid-interaction when observed); [`TracePred::matches_prefix`] decides
//! "can this trace be extended to a member of the set", under the
//! assumption that every sub-predicate is satisfiable (all of the
//! lightbulb's are).

use riscv_spec::MmioEvent;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A predicate over one I/O event, with a name for diagnostics.
#[derive(Clone)]
pub struct EventPred {
    name: String,
    f: Rc<dyn Fn(&MmioEvent) -> bool>,
}

impl fmt::Debug for EventPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

enum Node {
    /// The empty trace.
    Eps,
    /// Exactly one event satisfying the predicate.
    Atom(EventPred),
    /// Concatenation (`+++`).
    Concat(TracePred, TracePred),
    /// Union (`|||`).
    Union(TracePred, TracePred),
    /// Zero or more repetitions (`^*`).
    Star(TracePred),
}

/// A set of I/O traces, built from regex-like combinators.
#[derive(Clone)]
pub struct TracePred {
    node: Rc<Node>,
    /// Minimum length of any member.
    min_len: usize,
    /// Maximum length of any member (`None` = unbounded).
    max_len: Option<usize>,
    /// Optional display label ([`TracePred::named`]): rendered instead of
    /// the structure, so large sub-specifications print as one token —
    /// how the paper's spec stays "less than a page".
    label: Option<Rc<str>>,
}

impl fmt::Debug for TracePred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(label) = &self.label {
            return write!(f, "{label}");
        }
        match &*self.node {
            Node::Eps => write!(f, "ε"),
            Node::Atom(p) => write!(f, "{p:?}"),
            Node::Concat(a, b) => write!(f, "({a:?} +++ {b:?})"),
            Node::Union(a, b) => write!(f, "({a:?} ||| {b:?})"),
            Node::Star(a) => write!(f, "({a:?})^*"),
        }
    }
}

impl TracePred {
    fn mk(node: Node) -> TracePred {
        let (min_len, max_len) = match &node {
            Node::Eps => (0, Some(0)),
            Node::Atom(_) => (1, Some(1)),
            Node::Concat(a, b) => (
                a.min_len + b.min_len,
                match (a.max_len, b.max_len) {
                    (Some(x), Some(y)) => Some(x + y),
                    _ => None,
                },
            ),
            Node::Union(a, b) => (
                a.min_len.min(b.min_len),
                match (a.max_len, b.max_len) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    _ => None,
                },
            ),
            Node::Star(a) => (0, if a.max_len == Some(0) { Some(0) } else { None }),
        };
        TracePred {
            node: Rc::new(node),
            min_len,
            max_len,
            label: None,
        }
    }

    /// Attaches a display name: `Debug` renders the name instead of the
    /// full combinator structure (matching is unaffected).
    pub fn named(mut self, name: &str) -> TracePred {
        self.label = Some(Rc::from(name));
        self
    }

    /// The set containing only the empty trace.
    pub fn eps() -> TracePred {
        TracePred::mk(Node::Eps)
    }

    /// The set of single-event traces whose event satisfies `f`.
    pub fn atom(name: &str, f: impl Fn(&MmioEvent) -> bool + 'static) -> TracePred {
        TracePred::mk(Node::Atom(EventPred {
            name: name.to_string(),
            f: Rc::new(f),
        }))
    }

    /// Concatenation — the paper's `+++`.
    pub fn then(&self, next: &TracePred) -> TracePred {
        TracePred::mk(Node::Concat(self.clone(), next.clone()))
    }

    /// Union — the paper's `|||`.
    pub fn or(&self, other: &TracePred) -> TracePred {
        TracePred::mk(Node::Union(self.clone(), other.clone()))
    }

    /// Zero or more repetitions — the paper's `^*`.
    pub fn star(&self) -> TracePred {
        TracePred::mk(Node::Star(self.clone()))
    }

    /// One or more repetitions.
    pub fn plus(&self) -> TracePred {
        self.then(&self.star())
    }

    /// Existential over a boolean — the paper's `EX b: bool, P b`
    /// (a finite union).
    pub fn ex_bool(f: impl Fn(bool) -> TracePred) -> TracePred {
        f(false).or(&f(true))
    }

    /// Concatenation of a sequence of predicates.
    pub fn all<I: IntoIterator<Item = TracePred>>(preds: I) -> TracePred {
        let mut it = preds.into_iter();
        let first = it.next().unwrap_or_else(TracePred::eps);
        it.fold(first, |acc, p| acc.then(&p))
    }

    /// Union of a sequence of predicates.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence (the empty union is the empty set,
    /// which no combinator here denotes).
    pub fn any<I: IntoIterator<Item = TracePred>>(preds: I) -> TracePred {
        let mut it = preds.into_iter();
        let first = it.next().expect("any() needs at least one alternative");
        it.fold(first, |acc, p| acc.or(&p))
    }

    /// Decides membership of `t` in the set.
    ///
    /// Matching exploits that traces are concrete: for each (node, start)
    /// pair the *set of possible end positions* is computed and memoized.
    /// Real specifications are nearly deterministic per event, so these
    /// sets stay tiny and matching is close to linear in the trace length.
    pub fn matches(&self, t: &[MmioEvent]) -> bool {
        if !self.len_ok(t.len()) {
            return false;
        }
        let mut memo = Memo::default();
        self.ends(t, 0, &mut memo).contains(&t.len())
    }

    /// Decides whether `t` can be extended to a member (assuming every
    /// sub-predicate is satisfiable).
    pub fn matches_prefix(&self, t: &[MmioEvent]) -> bool {
        let mut memo = Memo::default();
        self.p(t, 0, &mut memo)
    }

    /// Length of the longest prefix of `t` accepted by
    /// [`TracePred::matches_prefix`] — the diagnostic for "where did the
    /// trace go wrong". Prefix acceptance is monotone (an extendable trace
    /// has extendable prefixes), so binary search applies.
    pub fn longest_matching_prefix(&self, t: &[MmioEvent]) -> usize {
        if self.matches_prefix(t) {
            return t.len();
        }
        let (mut lo, mut hi) = (0usize, t.len()); // lo matches, hi doesn't
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.matches_prefix(&t[..mid]) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn key(&self) -> usize {
        Rc::as_ptr(&self.node) as *const u8 as usize
    }

    fn len_ok(&self, n: usize) -> bool {
        n >= self.min_len && self.max_len.is_none_or(|m| n <= m)
    }

    /// The sorted set of positions `e` such that `t[lo..e]` is a member.
    fn ends(&self, t: &[MmioEvent], lo: usize, memo: &mut Memo) -> Rc<Vec<usize>> {
        if let Some(r) = memo.ends.get(&(self.key(), lo)) {
            return Rc::clone(r);
        }
        let result: Vec<usize> = match &*self.node {
            Node::Eps => vec![lo],
            Node::Atom(pred) => {
                if lo < t.len() && (pred.f)(&t[lo]) {
                    vec![lo + 1]
                } else {
                    vec![]
                }
            }
            Node::Concat(a, b) => {
                // End sets are tiny in practice (specs are nearly
                // deterministic per event): a sort-dedup'd Vec beats a
                // tree set on the matching hot path.
                let mut out = Vec::new();
                for m in a.ends(t, lo, memo).iter() {
                    out.extend(b.ends(t, *m, memo).iter().copied());
                }
                if out.len() > 1 {
                    out.sort_unstable();
                    out.dedup();
                }
                out
            }
            Node::Union(a, b) => {
                let mut out: Vec<usize> = a.ends(t, lo, memo).iter().copied().collect();
                out.extend(b.ends(t, lo, memo).iter().copied());
                if out.len() > 1 {
                    out.sort_unstable();
                    out.dedup();
                }
                out
            }
            Node::Star(a) => {
                // Reachability closure over iteration boundaries.
                let mut seen = std::collections::BTreeSet::new();
                seen.insert(lo);
                let mut queue = vec![lo];
                while let Some(s) = queue.pop() {
                    for e in a.ends(t, s, memo).iter() {
                        if *e != s && seen.insert(*e) {
                            queue.push(*e);
                        }
                    }
                }
                seen.into_iter().collect()
            }
        };
        let rc = Rc::new(result);
        memo.ends.insert((self.key(), lo), Rc::clone(&rc));
        rc
    }

    /// Whether the whole remaining trace `t[lo..]` is a prefix of some
    /// member of this set.
    fn p(&self, t: &[MmioEvent], lo: usize, memo: &mut Memo) -> bool {
        let n = t.len();
        if let Some(m) = self.max_len {
            if n - lo > m {
                return false;
            }
        }
        if let Some(&r) = memo.prefix.get(&(self.key(), lo)) {
            return r;
        }
        // Seed against ε-repetition cycles in Star.
        memo.prefix.insert((self.key(), lo), false);
        let r = match &*self.node {
            Node::Eps => lo == n,
            Node::Atom(pred) => lo == n || (n - lo == 1 && (pred.f)(&t[lo])),
            Node::Concat(a, b) => {
                let a_ends = a.ends(t, lo, memo);
                a_ends.iter().any(|m| b.p(t, *m, memo)) || a.p(t, lo, memo)
            }
            Node::Union(a, b) => a.p(t, lo, memo) || b.p(t, lo, memo),
            Node::Star(a) => {
                // Reachable boundaries; prefix holds if any boundary is the
                // end of the trace or starts a prefix of one more body.
                let mut seen = std::collections::BTreeSet::new();
                seen.insert(lo);
                let mut queue = vec![lo];
                let mut ok = false;
                while let Some(s) = queue.pop() {
                    if s == n || a.p(t, s, memo) {
                        ok = true;
                        break;
                    }
                    for e in a.ends(t, s, memo).iter() {
                        if *e != s && seen.insert(*e) {
                            queue.push(*e);
                        }
                    }
                }
                ok
            }
        };
        memo.prefix.insert((self.key(), lo), r);
        r
    }
}

// Memo keys are (node pointer, position) pairs — already well
// distributed, so the default SipHash (which dominates matching time on
// long traces) is replaced by the shared FxHash-style multiply-mix in
// `obs::fx`, the same mixer behind the hash-consed term fingerprints.
type MemoMap<V> = HashMap<(usize, usize), V, obs::fx::FxBuild>;

#[derive(Default)]
struct Memo {
    ends: MemoMap<Rc<Vec<usize>>>,
    prefix: MemoMap<bool>,
}

/// Atom: an MMIO load at `addr` with any value.
pub fn ld(addr: u32) -> TracePred {
    TracePred::atom(&format!("ld@{addr:#x}"), move |e| {
        e.kind == riscv_spec::MmioEventKind::Load && e.addr == addr
    })
}

/// Atom: an MMIO load at `addr` whose value satisfies `f`.
pub fn ld_if(addr: u32, name: &str, f: impl Fn(u32) -> bool + 'static) -> TracePred {
    TracePred::atom(&format!("ld@{addr:#x}[{name}]"), move |e| {
        e.kind == riscv_spec::MmioEventKind::Load && e.addr == addr && f(e.value)
    })
}

/// Atom: an MMIO store at `addr` with any value.
pub fn st(addr: u32) -> TracePred {
    TracePred::atom(&format!("st@{addr:#x}"), move |e| {
        e.kind == riscv_spec::MmioEventKind::Store && e.addr == addr
    })
}

/// Atom: an MMIO store at `addr` whose value satisfies `f`.
pub fn st_if(addr: u32, name: &str, f: impl Fn(u32) -> bool + 'static) -> TracePred {
    TracePred::atom(&format!("st@{addr:#x}[{name}]"), move |e| {
        e.kind == riscv_spec::MmioEventKind::Store && e.addr == addr && f(e.value)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_spec::MmioEvent as E;

    fn l(addr: u32, v: u32) -> E {
        E::load(addr, v)
    }
    fn s(addr: u32, v: u32) -> E {
        E::store(addr, v)
    }

    #[test]
    fn atoms_and_concat() {
        let p = ld(0x10).then(&st(0x20));
        assert!(p.matches(&[l(0x10, 5), s(0x20, 1)]));
        assert!(!p.matches(&[l(0x10, 5)]));
        assert!(!p.matches(&[s(0x20, 1), l(0x10, 5)]));
        assert!(!p.matches(&[l(0x10, 5), s(0x20, 1), s(0x20, 1)]));
    }

    #[test]
    fn union_and_star() {
        let p = ld(0x10).or(&st(0x20)).star();
        assert!(p.matches(&[]));
        assert!(p.matches(&[l(0x10, 1), s(0x20, 2), l(0x10, 3)]));
        assert!(!p.matches(&[l(0x30, 1)]));
    }

    #[test]
    fn value_predicates() {
        let busy = ld_if(0x48, "busy", |v| v & 0x8000_0000 != 0);
        assert!(busy.matches(&[l(0x48, 0x8000_0001)]));
        assert!(!busy.matches(&[l(0x48, 1)]));
    }

    #[test]
    fn ex_bool_is_finite_union() {
        let p = TracePred::ex_bool(|b| st_if(0xC, "bit", move |v| v == b as u32));
        assert!(p.matches(&[s(0xC, 0)]));
        assert!(p.matches(&[s(0xC, 1)]));
        assert!(!p.matches(&[s(0xC, 2)]));
    }

    #[test]
    fn prefix_matching() {
        // (ld a; st b)^*
        let p = ld(0xA).then(&st(0xB)).star();
        assert!(p.matches_prefix(&[]));
        assert!(p.matches_prefix(&[l(0xA, 1)]));
        assert!(p.matches_prefix(&[l(0xA, 1), s(0xB, 2)]));
        assert!(p.matches_prefix(&[l(0xA, 1), s(0xB, 2), l(0xA, 3)]));
        assert!(!p.matches_prefix(&[s(0xB, 2)]));
        assert!(!p.matches_prefix(&[l(0xA, 1), l(0xA, 2)]));
    }

    #[test]
    fn longest_matching_prefix_pinpoints_violations() {
        let p = ld(0xA).then(&st(0xB)).star();
        let t = [l(0xA, 1), s(0xB, 1), l(0xA, 2), l(0xFF, 9), s(0xB, 2)];
        assert_eq!(p.longest_matching_prefix(&t), 3);
        let good = [l(0xA, 1), s(0xB, 1)];
        assert_eq!(p.longest_matching_prefix(&good), 2);
    }

    #[test]
    fn star_of_eps_terminates() {
        let p = TracePred::eps().star();
        assert!(p.matches(&[]));
        assert!(!p.matches(&[l(1, 1)]));
        assert!(p.matches_prefix(&[]));
        assert!(!p.matches_prefix(&[l(1, 1)]));
    }

    #[test]
    fn nested_stars_and_unions() {
        // ((a b)* | c)* — stress the memoization.
        let ab = ld(0xA).then(&ld(0xB));
        let p = ab.star().or(&ld(0xC)).star();
        assert!(p.matches(&[l(0xA, 0), l(0xB, 0), l(0xC, 0), l(0xA, 0), l(0xB, 0)]));
        assert!(!p.matches(&[l(0xA, 0), l(0xC, 0), l(0xB, 0)]));
    }

    #[test]
    fn long_traces_match_quickly() {
        // 3000 repetitions of a 3-event body: must finish fast thanks to
        // the length bounds.
        let body = ld(0x1).then(&ld(0x2)).then(&st(0x3));
        let p = body.star();
        let mut t = Vec::new();
        for i in 0..3000 {
            t.push(l(0x1, i));
            t.push(l(0x2, i));
            t.push(s(0x3, i));
        }
        assert!(p.matches(&t));
        t.push(l(0x1, 0));
        assert!(p.matches_prefix(&t));
        assert!(!p.matches(&t));
    }

    #[test]
    fn all_and_any_combinators() {
        let p = TracePred::all([ld(1), ld(2), ld(3)]);
        assert!(p.matches(&[l(1, 0), l(2, 0), l(3, 0)]));
        let q = TracePred::any([ld(1), ld(2)]);
        assert!(q.matches(&[l(2, 0)]));
        assert!(!q.matches(&[l(3, 0)]));
    }
}

//! The program logic: trace predicates, symbolic terms and formulas, a
//! lightweight prover, and a weakest-precondition-style symbolic executor
//! for Bedrock2.
//!
//! This crate plays the role of the paper's program logic layer (§4.1,
//! §6.1):
//!
//! * [`trace`] — the regex-like trace predicates of §3.1 (`+++`, `|||`,
//!   `^*`, `EX`), used to state `goodHlTrace` and to check recorded MMIO
//!   traces against it (including the *prefix* acceptance the end-to-end
//!   theorem needs);
//! * [`term`] / [`formula`] — symbolic 32-bit words and assertions over
//!   them;
//! * [`solver`] — a small decision procedure (simplification, constant
//!   propagation, unsigned interval reasoning) standing in for the Coq
//!   tactics (and their performance woes, §7.3.1) of the paper;
//! * [`symexec`] — a `vcgen`-style symbolic executor: it computes what
//!   must hold for a Bedrock2 statement to run without undefined behavior
//!   and end in a state satisfying a postcondition, handling loops by
//!   user-supplied invariants (exactly the shape of §4.1) and external
//!   calls by a pluggable specification (`vcextern`, §6.1);
//! * [`engine`] — the parallel, incremental face of the prover: terms and
//!   formulas are hash-consed with cached 128-bit fingerprints, proved
//!   obligations are memoized in a [`solver::ProofCache`] (optionally
//!   persisted as `verif-cache/v1`, so re-runs only pay for changed VCs),
//!   and independent obligations shard across `std::thread::scope`
//!   workers with deterministic merge order.
//!
//! The paper machine-checks these obligations in Coq; here the obligations
//! are *generated* the same way and *discharged* by [`solver`], making the
//! logic an executable development tool rather than a foundational proof —
//! the honest equivalent available to a Rust library.

pub mod engine;
pub mod formula;
pub mod solver;
pub mod symexec;
pub mod term;
pub mod trace;

pub use engine::{prove_batch, BatchReport, Obligation};
pub use formula::{Formula, FormulaView};
pub use solver::{contradictory, obligation_fingerprint, prove, Outcome, ProofCache};
pub use symexec::{ExtSpec, SymExec, SymState, VcError};
pub use term::Term;
pub use trace::TracePred;

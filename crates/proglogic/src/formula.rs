//! Assertions over symbolic words, hash-consed like [`Term`]s.
//!
//! A [`Formula`] is an interned, immutable node carrying a cached 128-bit
//! structural fingerprint, so formula equality has a pointer fast path and
//! `Hash` is O(1) — the properties the solver's obligation cache keys on.
//! Pattern matching goes through [`Formula::view`], which exposes the
//! structure as a borrow without giving up the interned representation:
//!
//! ```
//! use proglogic::{Formula, FormulaView, Term};
//! let f = Formula::ltu(&Term::var(0, "i"), &Term::constant(380));
//! match f.view() {
//!     FormulaView::Ltu(a, b) => assert!(a.as_var().is_some() && b.as_const() == Some(380)),
//!     _ => unreachable!(),
//! }
//! ```

use crate::term::Term;
use bedrock2::ast::BinOp;
use obs::fx;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

#[derive(Debug)]
enum Node {
    True,
    False,
    Eq(Term, Term),
    Ne(Term, Term),
    Ltu(Term, Term),
    Leu(Term, Term),
    And(Formula, Formula),
    Or(Formula, Formula),
    Not(Formula),
}

struct Inner {
    /// Structural fingerprint; feeds the `verif-cache/v1` obligation keys,
    /// so the tags and mixing below are part of the on-disk format.
    fp: u128,
    node: Node,
}

/// A formula over symbolic 32-bit words.
#[derive(Clone)]
pub struct Formula {
    inner: Arc<Inner>,
}

/// A borrowed view of a formula's top constructor, for pattern matching.
#[derive(Clone, Copy, Debug)]
pub enum FormulaView<'a> {
    /// Always true.
    True,
    /// Always false.
    False,
    /// `a = b`.
    Eq(&'a Term, &'a Term),
    /// `a ≠ b`.
    Ne(&'a Term, &'a Term),
    /// Unsigned `a < b`.
    Ltu(&'a Term, &'a Term),
    /// Unsigned `a ≤ b`.
    Leu(&'a Term, &'a Term),
    /// Conjunction.
    And(&'a Formula, &'a Formula),
    /// Disjunction.
    Or(&'a Formula, &'a Formula),
    /// Negation.
    Not(&'a Formula),
}

/// Formula-lane fingerprint seed (more π digits), distinct from the term
/// seed so a formula never fingerprints like a term.
const SEED: u128 = 0xA409_3822_299F_31D0_082E_FA98_EC4E_6C89;

const TAG: [u64; 9] = [0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18];

const INTERN_CAP: usize = 1 << 20;

thread_local! {
    static INTERNER: RefCell<HashMap<u128, Formula, fx::FxBuild>> =
        RefCell::new(HashMap::default());
}

fn fold128(h: u128, x: u128) -> u128 {
    fx::mix128(fx::mix128(h, x as u64), (x >> 64) as u64)
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner.node {
            Node::True => write!(f, "⊤"),
            Node::False => write!(f, "⊥"),
            Node::Eq(a, b) => write!(f, "{a:?} = {b:?}"),
            Node::Ne(a, b) => write!(f, "{a:?} ≠ {b:?}"),
            Node::Ltu(a, b) => write!(f, "{a:?} <u {b:?}"),
            Node::Leu(a, b) => write!(f, "{a:?} ≤u {b:?}"),
            Node::And(a, b) => write!(f, "({a:?} ∧ {b:?})"),
            Node::Or(a, b) => write!(f, "({a:?} ∨ {b:?})"),
            Node::Not(a) => write!(f, "¬({a:?})"),
        }
    }
}

impl PartialEq for Formula {
    fn eq(&self, other: &Formula) -> bool {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return true;
        }
        if self.inner.fp != other.inner.fp {
            return false;
        }
        // Cross-thread or collided allocations: decide structurally (the
        // nested comparisons re-enter the pointer fast path).
        match (&self.inner.node, &other.inner.node) {
            (Node::True, Node::True) | (Node::False, Node::False) => true,
            (Node::Eq(a1, b1), Node::Eq(a2, b2))
            | (Node::Ne(a1, b1), Node::Ne(a2, b2))
            | (Node::Ltu(a1, b1), Node::Ltu(a2, b2))
            | (Node::Leu(a1, b1), Node::Leu(a2, b2)) => a1 == a2 && b1 == b2,
            (Node::And(a1, b1), Node::And(a2, b2)) | (Node::Or(a1, b1), Node::Or(a2, b2)) => {
                a1 == a2 && b1 == b2
            }
            (Node::Not(a1), Node::Not(a2)) => a1 == a2,
            _ => false,
        }
    }
}

impl Eq for Formula {}

impl std::hash::Hash for Formula {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u128(self.inner.fp);
    }
}

impl Formula {
    /// The formula's 128-bit structural fingerprint.
    pub fn fingerprint(&self) -> u128 {
        self.inner.fp
    }

    /// A borrowed view of the top constructor, for pattern matching.
    pub fn view(&self) -> FormulaView<'_> {
        match &self.inner.node {
            Node::True => FormulaView::True,
            Node::False => FormulaView::False,
            Node::Eq(a, b) => FormulaView::Eq(a, b),
            Node::Ne(a, b) => FormulaView::Ne(a, b),
            Node::Ltu(a, b) => FormulaView::Ltu(a, b),
            Node::Leu(a, b) => FormulaView::Leu(a, b),
            Node::And(a, b) => FormulaView::And(a, b),
            Node::Or(a, b) => FormulaView::Or(a, b),
            Node::Not(a) => FormulaView::Not(a),
        }
    }

    /// Whether this is the constant `⊤`.
    pub fn is_true(&self) -> bool {
        matches!(self.inner.node, Node::True)
    }

    /// Whether this is the constant `⊥`.
    pub fn is_false(&self) -> bool {
        matches!(self.inner.node, Node::False)
    }

    fn structurally_same(a: &Node, b: &Node) -> bool {
        match (a, b) {
            (Node::True, Node::True) | (Node::False, Node::False) => true,
            (Node::Eq(a1, b1), Node::Eq(a2, b2))
            | (Node::Ne(a1, b1), Node::Ne(a2, b2))
            | (Node::Ltu(a1, b1), Node::Ltu(a2, b2))
            | (Node::Leu(a1, b1), Node::Leu(a2, b2)) => a1 == a2 && b1 == b2,
            (Node::And(a1, b1), Node::And(a2, b2)) | (Node::Or(a1, b1), Node::Or(a2, b2)) => {
                a1 == a2 && b1 == b2
            }
            (Node::Not(a1), Node::Not(a2)) => a1 == a2,
            _ => false,
        }
    }

    fn intern(fp: u128, node: Node) -> Formula {
        INTERNER.with(|table| {
            let mut table = table.borrow_mut();
            if let Some(existing) = table.get(&fp) {
                if Formula::structurally_same(&existing.inner.node, &node) {
                    return existing.clone();
                }
                // Fingerprint collision: fresh, un-interned allocation.
                return Formula {
                    inner: Arc::new(Inner { fp, node }),
                };
            }
            if table.len() >= INTERN_CAP {
                table.clear();
            }
            let f = Formula {
                inner: Arc::new(Inner { fp, node }),
            };
            table.insert(fp, f.clone());
            f
        })
    }

    fn tag_of(node: &Node) -> u64 {
        match node {
            Node::True => TAG[0],
            Node::False => TAG[1],
            Node::Eq(..) => TAG[2],
            Node::Ne(..) => TAG[3],
            Node::Ltu(..) => TAG[4],
            Node::Leu(..) => TAG[5],
            Node::And(..) => TAG[6],
            Node::Or(..) => TAG[7],
            Node::Not(..) => TAG[8],
        }
    }

    fn make(node: Node) -> Formula {
        let mut fp = fx::mix128(SEED, Formula::tag_of(&node));
        match &node {
            Node::True | Node::False => {}
            Node::Eq(a, b) | Node::Ne(a, b) | Node::Ltu(a, b) | Node::Leu(a, b) => {
                fp = fold128(fp, a.fingerprint());
                fp = fold128(fp, b.fingerprint());
            }
            Node::And(a, b) | Node::Or(a, b) => {
                fp = fold128(fp, a.fingerprint());
                fp = fold128(fp, b.fingerprint());
            }
            Node::Not(a) => {
                fp = fold128(fp, a.fingerprint());
            }
        }
        Formula::intern(fp, node)
    }

    /// The constant `⊤`.
    pub fn truth() -> Formula {
        Formula::make(Node::True)
    }

    /// The constant `⊥`.
    pub fn falsehood() -> Formula {
        Formula::make(Node::False)
    }

    /// `a = b` with no simplification — the solver's normalizer relies on
    /// keeping reified facts in their comparison shape.
    pub(crate) fn raw_eq(a: &Term, b: &Term) -> Formula {
        Formula::make(Node::Eq(a.clone(), b.clone()))
    }

    /// `a ≠ b` with no simplification.
    pub(crate) fn raw_ne(a: &Term, b: &Term) -> Formula {
        Formula::make(Node::Ne(a.clone(), b.clone()))
    }

    /// `a < b` (unsigned) with no simplification.
    pub(crate) fn raw_ltu(a: &Term, b: &Term) -> Formula {
        Formula::make(Node::Ltu(a.clone(), b.clone()))
    }

    /// `a ≤ b` (unsigned) with no simplification.
    pub(crate) fn raw_leu(a: &Term, b: &Term) -> Formula {
        Formula::make(Node::Leu(a.clone(), b.clone()))
    }

    /// `a = b`, simplified when both sides are constant.
    pub fn eq(a: &Term, b: &Term) -> Formula {
        match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) if x == y => Formula::truth(),
            (Some(_), Some(_)) => Formula::falsehood(),
            _ if a == b => Formula::truth(),
            _ => Formula::raw_eq(a, b),
        }
    }

    /// `a ≠ b`.
    pub fn ne(a: &Term, b: &Term) -> Formula {
        Formula::eq(a, b).negate()
    }

    /// Unsigned `a < b`.
    pub fn ltu(a: &Term, b: &Term) -> Formula {
        match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => {
                if x < y {
                    Formula::truth()
                } else {
                    Formula::falsehood()
                }
            }
            (_, Some(0)) => Formula::falsehood(),
            _ if a == b => Formula::falsehood(),
            _ => Formula::raw_ltu(a, b),
        }
    }

    /// Unsigned `a ≤ b`.
    pub fn leu(a: &Term, b: &Term) -> Formula {
        match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    Formula::truth()
                } else {
                    Formula::falsehood()
                }
            }
            _ if a == b => Formula::truth(),
            _ => Formula::raw_leu(a, b),
        }
    }

    /// Conjunction, short-circuiting constants.
    pub fn and(self, other: Formula) -> Formula {
        if self.is_true() {
            return other;
        }
        if other.is_true() {
            return self;
        }
        if self.is_false() || other.is_false() {
            return Formula::falsehood();
        }
        Formula::make(Node::And(self, other))
    }

    /// Disjunction, short-circuiting constants.
    pub fn or(self, other: Formula) -> Formula {
        if self.is_false() {
            return other;
        }
        if other.is_false() {
            return self;
        }
        if self.is_true() || other.is_true() {
            return Formula::truth();
        }
        Formula::make(Node::Or(self, other))
    }

    /// Negation, pushed through the structure where cheap.
    pub fn negate(self) -> Formula {
        match &self.inner.node {
            Node::True => return Formula::falsehood(),
            Node::False => return Formula::truth(),
            Node::Eq(a, b) => return Formula::raw_ne(a, b),
            Node::Ne(a, b) => return Formula::raw_eq(a, b),
            Node::Ltu(a, b) => return Formula::raw_leu(b, a),
            Node::Leu(a, b) => return Formula::raw_ltu(b, a),
            Node::Not(f) => return f.clone(),
            _ => {}
        }
        Formula::make(Node::Not(self))
    }

    /// The truth of a Bedrock2 condition term: `t ≠ 0`.
    pub fn truthy(t: &Term) -> Formula {
        // Comparisons produce 0/1; express their truth directly.
        if let Some((op, a, b)) = t.as_op() {
            match op {
                BinOp::Eq => return Formula::eq(a, b),
                BinOp::Ltu => return Formula::ltu(a, b),
                _ => {}
            }
        }
        Formula::ne(t, &Term::constant(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_comparisons_decide() {
        let two = Term::constant(2);
        let three = Term::constant(3);
        assert_eq!(Formula::ltu(&two, &three), Formula::truth());
        assert_eq!(Formula::ltu(&three, &two), Formula::falsehood());
        assert_eq!(Formula::eq(&two, &two), Formula::truth());
    }

    #[test]
    fn nothing_is_below_zero() {
        let x = Term::var(0, "x");
        assert_eq!(Formula::ltu(&x, &Term::constant(0)), Formula::falsehood());
    }

    #[test]
    fn negation_flips_comparisons() {
        let (a, b) = (Term::var(0, "a"), Term::var(1, "b"));
        assert_eq!(Formula::ltu(&a, &b).negate(), Formula::leu(&b, &a));
        assert_eq!(Formula::eq(&a, &b).negate(), Formula::ne(&a, &b));
    }

    #[test]
    fn truthy_unwraps_comparison_terms() {
        let (a, b) = (Term::var(0, "a"), Term::var(1, "b"));
        let cmp = Term::op(BinOp::Ltu, &a, &b);
        assert_eq!(Formula::truthy(&cmp), Formula::ltu(&a, &b));
        assert_eq!(Formula::truthy(&a), Formula::ne(&a, &Term::constant(0)));
    }

    #[test]
    fn connectives_short_circuit() {
        let f = Formula::ltu(&Term::var(0, "a"), &Term::var(1, "b"));
        assert_eq!(Formula::truth().and(f.clone()), f);
        assert_eq!(Formula::falsehood().and(f.clone()), Formula::falsehood());
        assert_eq!(Formula::falsehood().or(f.clone()), f);
        assert_eq!(Formula::truth().or(f), Formula::truth());
    }

    #[test]
    fn hash_consing_interns_equal_formulas() {
        let a = Formula::ltu(&Term::var(0, "i"), &Term::constant(380));
        let b = Formula::ltu(&Term::var(0, "i"), &Term::constant(380));
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different comparison, same operands: distinct fingerprints.
        let c = Formula::leu(&Term::var(0, "i"), &Term::constant(380));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn view_round_trips_structure() {
        let (a, b) = (Term::var(0, "a"), Term::var(1, "b"));
        let f = Formula::ltu(&a, &b).and(Formula::eq(&a, &Term::constant(3)));
        match f.view() {
            FormulaView::And(l, r) => {
                assert!(matches!(l.view(), FormulaView::Ltu(..)));
                assert!(matches!(r.view(), FormulaView::Eq(..)));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }
}

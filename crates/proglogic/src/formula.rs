//! Assertions over symbolic words.

use crate::term::Term;
use bedrock2::ast::BinOp;
use std::fmt;

/// A formula over symbolic 32-bit words.
#[derive(Clone, PartialEq, Eq)]
pub enum Formula {
    /// Always true.
    True,
    /// Always false.
    False,
    /// `a = b`.
    Eq(Term, Term),
    /// `a ≠ b`.
    Ne(Term, Term),
    /// Unsigned `a < b`.
    Ltu(Term, Term),
    /// Unsigned `a ≤ b`.
    Leu(Term, Term),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Eq(a, b) => write!(f, "{a:?} = {b:?}"),
            Formula::Ne(a, b) => write!(f, "{a:?} ≠ {b:?}"),
            Formula::Ltu(a, b) => write!(f, "{a:?} <u {b:?}"),
            Formula::Leu(a, b) => write!(f, "{a:?} ≤u {b:?}"),
            Formula::And(a, b) => write!(f, "({a:?} ∧ {b:?})"),
            Formula::Or(a, b) => write!(f, "({a:?} ∨ {b:?})"),
            Formula::Not(a) => write!(f, "¬({a:?})"),
        }
    }
}

impl Formula {
    /// `a = b`, simplified when both sides are constant.
    pub fn eq(a: &Term, b: &Term) -> Formula {
        match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) if x == y => Formula::True,
            (Some(_), Some(_)) => Formula::False,
            _ if a == b => Formula::True,
            _ => Formula::Eq(a.clone(), b.clone()),
        }
    }

    /// `a ≠ b`.
    pub fn ne(a: &Term, b: &Term) -> Formula {
        Formula::eq(a, b).negate()
    }

    /// Unsigned `a < b`.
    pub fn ltu(a: &Term, b: &Term) -> Formula {
        match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => {
                if x < y {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            (_, Some(0)) => Formula::False,
            _ if a == b => Formula::False,
            _ => Formula::Ltu(a.clone(), b.clone()),
        }
    }

    /// Unsigned `a ≤ b`.
    pub fn leu(a: &Term, b: &Term) -> Formula {
        match (a.as_const(), b.as_const()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            _ if a == b => Formula::True,
            _ => Formula::Leu(a.clone(), b.clone()),
        }
    }

    /// Conjunction, short-circuiting constants.
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::True, f) | (f, Formula::True) => f,
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (a, b) => Formula::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction, short-circuiting constants.
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::False, f) | (f, Formula::False) => f,
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (a, b) => Formula::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation, pushed through the structure where cheap.
    pub fn negate(self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Eq(a, b) => Formula::Ne(a, b),
            Formula::Ne(a, b) => Formula::Eq(a, b),
            Formula::Ltu(a, b) => Formula::Leu(b, a),
            Formula::Leu(a, b) => Formula::Ltu(b, a),
            Formula::Not(f) => *f,
            f => Formula::Not(Box::new(f)),
        }
    }

    /// The truth of a Bedrock2 condition term: `t ≠ 0`.
    pub fn truthy(t: &Term) -> Formula {
        // Comparisons produce 0/1; express their truth directly.
        if let Some((op, a, b)) = t.as_op() {
            match op {
                BinOp::Eq => return Formula::eq(a, b),
                BinOp::Ltu => return Formula::ltu(a, b),
                _ => {}
            }
        }
        Formula::ne(t, &Term::constant(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_comparisons_decide() {
        let two = Term::constant(2);
        let three = Term::constant(3);
        assert_eq!(Formula::ltu(&two, &three), Formula::True);
        assert_eq!(Formula::ltu(&three, &two), Formula::False);
        assert_eq!(Formula::eq(&two, &two), Formula::True);
    }

    #[test]
    fn nothing_is_below_zero() {
        let x = Term::var(0, "x");
        assert_eq!(Formula::ltu(&x, &Term::constant(0)), Formula::False);
    }

    #[test]
    fn negation_flips_comparisons() {
        let (a, b) = (Term::var(0, "a"), Term::var(1, "b"));
        assert_eq!(
            Formula::ltu(&a, &b).negate(),
            Formula::Leu(b.clone(), a.clone())
        );
        assert_eq!(Formula::eq(&a, &b).negate(), Formula::Ne(a, b));
    }

    #[test]
    fn truthy_unwraps_comparison_terms() {
        let (a, b) = (Term::var(0, "a"), Term::var(1, "b"));
        let cmp = Term::op(BinOp::Ltu, &a, &b);
        assert_eq!(Formula::truthy(&cmp), Formula::Ltu(a.clone(), b.clone()));
        assert_eq!(Formula::truthy(&a), Formula::Ne(a, Term::constant(0)));
    }

    #[test]
    fn connectives_short_circuit() {
        let f = Formula::Ltu(Term::var(0, "a"), Term::var(1, "b"));
        assert_eq!(Formula::True.and(f.clone()), f);
        assert_eq!(Formula::False.and(f.clone()), Formula::False);
        assert_eq!(Formula::False.or(f.clone()), f);
        assert_eq!(Formula::True.or(f), Formula::True);
    }
}

//! The decode-cache soundness property: a machine with the predecoded
//! instruction cache is observably identical to one without it, on random
//! programs **including self-modifying stores** — the executable analogue
//! of the paper's argument that the Kami I$'s staleness window is exactly
//! the XAddrs revocation discipline (§5.6).
//!
//! Programs here are built adversarially for the cache: short instruction
//! streams heavily biased toward stores aimed *at the code region itself*,
//! plus `fence.i`, branches, and jumps, so runs routinely revisit slots
//! whose bytes were overwritten. Both machines run to completion (halt,
//! error, or fuel) and every observable is compared: outcome, registers,
//! pc, instret, retired mix, RAM contents, XAddrs, and the MMIO trace.

use proptest::prelude::*;
use riscv_spec::{
    encode, Instruction, MachineError, Memory, NoMmio, Reg, SpecMachine, StepOutcome,
};

const RAM: u32 = 0x200; // small, so random stores often hit code
const FUEL: u64 = 2_000;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

/// Offsets biased to land inside the (small) code/RAM window.
fn arb_off() -> impl Strategy<Value = i32> {
    0i32..(RAM as i32)
}

/// One instruction of the adversarial mix. Stores are over-represented and
/// aimed at low addresses (the code region); `fence.i` appears often enough
/// to re-legalize patched code; branches/jumps keep control flow revisiting
/// cached slots.
fn arb_inst() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    prop_oneof![
        3 => (arb_reg(), arb_reg(), arb_off()).prop_map(|(rs1, rs2, offset)| Sw {
            rs1,
            rs2,
            offset
        }),
        2 => (arb_reg(), arb_reg(), arb_off()).prop_map(|(rs1, rs2, offset)| Sb {
            rs1,
            rs2,
            offset
        }),
        1 => (arb_reg(), arb_reg(), arb_off()).prop_map(|(rs1, rs2, offset)| Sh {
            rs1,
            rs2,
            offset
        }),
        3 => (arb_reg(), arb_reg(), -2048i32..=2047).prop_map(|(rd, rs1, imm)| Addi {
            rd,
            rs1,
            imm
        }),
        1 => (arb_reg(), arb_reg(), arb_off()).prop_map(|(rd, rs1, offset)| Lw {
            rd,
            rs1,
            offset
        }),
        1 => (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Add { rd, rs1, rs2 }),
        1 => (arb_reg(), arb_reg(), (-16i32..16).prop_map(|x| x * 4)).prop_map(
            |(rs1, rs2, offset)| Beq { rs1, rs2, offset }
        ),
        1 => (arb_reg(), (-16i32..16).prop_map(|x| x * 4)).prop_map(|(rd, offset)| Jal {
            rd,
            offset
        }),
        1 => Just(FenceI),
        1 => Just(Ebreak),
    ]
}

/// The complete observable state of a finished run.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: Result<StepOutcome, MachineError>,
    regs: [u32; 32],
    pc: u32,
    instret: u64,
    retired: [u64; 7],
    mem: Vec<u8>,
    xaddrs_count: u32,
}

fn run_to_completion(words: &[u32], icache: bool) -> Observed {
    let mut m = SpecMachine::new(Memory::with_size(RAM), NoMmio);
    m.set_icache_enabled(icache);
    m.load_program(0, words);
    let outcome = m.run_until_ebreak(FUEL);
    Observed {
        outcome,
        regs: m.regs,
        pc: m.pc,
        instret: m.instret,
        retired: [
            m.stats.retired_alu,
            m.stats.retired_muldiv,
            m.stats.retired_load,
            m.stats.retired_store,
            m.stats.retired_branch,
            m.stats.retired_jump,
            m.stats.retired_system,
        ],
        mem: m.mem.as_bytes().to_vec(),
        xaddrs_count: m.xaddrs.count(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cached_machine_is_observably_identical(
        prog in proptest::collection::vec(arb_inst(), 1..48)
    ) {
        let words: Vec<u32> = prog.iter().map(encode).collect();
        let cached = run_to_completion(&words, true);
        let uncached = run_to_completion(&words, false);
        prop_assert_eq!(cached, uncached);
    }

    #[test]
    fn cached_machine_is_identical_under_raw_word_soup(
        words in proptest::collection::vec(any::<u32>(), 1..32)
    ) {
        // Arbitrary bit patterns: most decode to Invalid (trapping), some to
        // real instructions with wild operands. The two machines must still
        // agree bit-for-bit.
        let cached = run_to_completion(&words, true);
        let uncached = run_to_completion(&words, false);
        prop_assert_eq!(cached, uncached);
    }
}

/// A directed self-modification scenario on top of the random sweeps: code
/// that patches its own loop body every iteration, with and without
/// `fence.i` — the former must halt identically, the latter must fault
/// identically (stale fetch is UB for *both* machines).
#[test]
fn directed_self_patching_agrees() {
    use Instruction as I;
    let addi_x6 = encode(&I::Addi {
        rd: Reg::X6,
        rs1: Reg::X0,
        imm: 7,
    });
    let hi = addi_x6.wrapping_add(0x800) >> 12;
    let lo = riscv_spec::word::sign_extend(addi_x6 & 0xFFF, 12) as i32;
    for fence in [true, false] {
        let prog = [
            I::Lui {
                rd: Reg::X5,
                imm20: hi,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: lo,
            },
            I::Sw {
                rs1: Reg::X0,
                rs2: Reg::X5,
                offset: 20, // patch the slot after the (optional) fence
            },
            I::NOP,
            if fence { I::FenceI } else { I::NOP },
            I::Ebreak, // patched into `addi x6, x0, 7`
            I::Ebreak,
        ];
        let words: Vec<u32> = prog.iter().map(encode).collect();
        let cached = run_to_completion(&words, true);
        let uncached = run_to_completion(&words, false);
        assert_eq!(cached, uncached, "fence={fence}");
        if fence {
            assert!(
                matches!(cached.outcome, Ok(StepOutcome::Halted { .. })),
                "patched path must run to the final ebreak: {:?}",
                cached.outcome
            );
            assert_eq!(cached.regs[6], 7, "patched instruction must execute");
        } else {
            assert_eq!(
                cached.outcome,
                Err(MachineError::FetchNonExecutable { addr: 20 }),
                "stale fetch without fence.i is UB on both machines"
            );
        }
    }
}

//! Property tests: encode/decode are exact inverses, and the machine
//! preserves basic invariants on random instruction streams.

use proptest::prelude::*;
use riscv_spec::{decode, encode, Instruction, Memory, NoMmio, Reg, SpecMachine};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_i_imm() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn arb_b_off() -> impl Strategy<Value = i32> {
    (-2048i32..=2047).prop_map(|x| x * 2)
}

fn arb_j_off() -> impl Strategy<Value = i32> {
    (-(1 << 19)..(1 << 19)).prop_map(|x: i32| x * 2)
}

fn arb_shamt() -> impl Strategy<Value = u32> {
    0u32..32
}

fn arb_imm20() -> impl Strategy<Value = u32> {
    0u32..(1 << 20)
}

prop_compose! {
    fn rri()(rd in arb_reg(), rs1 in arb_reg(), imm in arb_i_imm()) -> (Reg, Reg, i32) {
        (rd, rs1, imm)
    }
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    prop_oneof![
        (arb_reg(), arb_imm20()).prop_map(|(rd, imm20)| Lui { rd, imm20 }),
        (arb_reg(), arb_imm20()).prop_map(|(rd, imm20)| Auipc { rd, imm20 }),
        (arb_reg(), arb_j_off()).prop_map(|(rd, offset)| Jal { rd, offset }),
        rri().prop_map(|(rd, rs1, offset)| Jalr { rd, rs1, offset }),
        (arb_reg(), arb_reg(), arb_b_off(), 0u8..6).prop_map(|(rs1, rs2, offset, k)| match k {
            0 => Beq { rs1, rs2, offset },
            1 => Bne { rs1, rs2, offset },
            2 => Blt { rs1, rs2, offset },
            3 => Bge { rs1, rs2, offset },
            4 => Bltu { rs1, rs2, offset },
            _ => Bgeu { rs1, rs2, offset },
        }),
        (rri(), 0u8..5).prop_map(|((rd, rs1, offset), k)| match k {
            0 => Lb { rd, rs1, offset },
            1 => Lh { rd, rs1, offset },
            2 => Lw { rd, rs1, offset },
            3 => Lbu { rd, rs1, offset },
            _ => Lhu { rd, rs1, offset },
        }),
        (arb_reg(), arb_reg(), arb_i_imm(), 0u8..3).prop_map(|(rs1, rs2, offset, k)| match k {
            0 => Sb { rs1, rs2, offset },
            1 => Sh { rs1, rs2, offset },
            _ => Sw { rs1, rs2, offset },
        }),
        (rri(), 0u8..6).prop_map(|((rd, rs1, imm), k)| match k {
            0 => Addi { rd, rs1, imm },
            1 => Slti { rd, rs1, imm },
            2 => Sltiu { rd, rs1, imm },
            3 => Xori { rd, rs1, imm },
            4 => Ori { rd, rs1, imm },
            _ => Andi { rd, rs1, imm },
        }),
        (arb_reg(), arb_reg(), arb_shamt(), 0u8..3).prop_map(|(rd, rs1, shamt, k)| match k {
            0 => Slli { rd, rs1, shamt },
            1 => Srli { rd, rs1, shamt },
            _ => Srai { rd, rs1, shamt },
        }),
        (arb_reg(), arb_reg(), arb_reg(), 0u8..18).prop_map(|(rd, rs1, rs2, k)| match k {
            0 => Add { rd, rs1, rs2 },
            1 => Sub { rd, rs1, rs2 },
            2 => Sll { rd, rs1, rs2 },
            3 => Slt { rd, rs1, rs2 },
            4 => Sltu { rd, rs1, rs2 },
            5 => Xor { rd, rs1, rs2 },
            6 => Srl { rd, rs1, rs2 },
            7 => Sra { rd, rs1, rs2 },
            8 => Or { rd, rs1, rs2 },
            9 => And { rd, rs1, rs2 },
            10 => Mul { rd, rs1, rs2 },
            11 => Mulh { rd, rs1, rs2 },
            12 => Mulhsu { rd, rs1, rs2 },
            13 => Mulhu { rd, rs1, rs2 },
            14 => Div { rd, rs1, rs2 },
            15 => Divu { rd, rs1, rs2 },
            16 => Rem { rd, rs1, rs2 },
            _ => Remu { rd, rs1, rs2 },
        }),
        Just(Fence),
        Just(FenceI),
        Just(Ecall),
        Just(Ebreak),
    ]
}

proptest! {
    /// decode ∘ encode = id on every valid instruction.
    #[test]
    fn decode_encode_roundtrip(inst in arb_instruction()) {
        prop_assert_eq!(decode(encode(&inst)), inst);
    }

    /// encode ∘ decode = id on arbitrary words: decoding never loses
    /// information (invalid words re-encode to themselves).
    #[test]
    fn encode_decode_roundtrip(word in any::<u32>()) {
        prop_assert_eq!(encode(&decode(word)), word);
    }

    /// parse ∘ disassemble = id on every valid instruction.
    #[test]
    fn asm_roundtrip(inst in arb_instruction()) {
        let text = riscv_spec::disassemble(&inst);
        prop_assert_eq!(riscv_spec::parse_instruction(&text).unwrap(), inst);
    }

    /// The machine never makes x0 nonzero, never reports success with a pc
    /// outside RAM, and counts retired instructions accurately.
    #[test]
    fn machine_invariants(words in proptest::collection::vec(any::<u32>(), 1..64)) {
        let mut m = SpecMachine::new(Memory::with_size(0x1000), NoMmio);
        m.load_program(0, &words);
        for i in 0..200u64 {
            match m.step() {
                Ok(()) => {
                    prop_assert_eq!(m.reg(Reg::X0), 0);
                    prop_assert_eq!(m.instret, i + 1);
                }
                Err(_) => break,
            }
        }
    }
}

//! A small assembler: parses the textual syntax [`crate::disasm`] emits.
//!
//! `parse_instruction` and [`crate::disassemble`] are exact inverses
//! (checked by property test), which makes assembly listings a loss-free
//! interchange format — handy for writing test programs and for diffing
//! compiler output in reviews.

use crate::isa::{Instruction, Reg};
use std::fmt;

/// Why a line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAsmError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly parse error: {}", self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseAsmError> {
    Err(ParseAsmError {
        message: message.into(),
    })
}

fn parse_reg(s: &str) -> Result<Reg, ParseAsmError> {
    let Some(rest) = s.strip_prefix('x') else {
        return err(format!("expected register, got '{s}'"));
    };
    match rest.parse::<u8>() {
        Ok(n) if n < 32 => Ok(Reg::new(n)),
        _ => err(format!("bad register '{s}'")),
    }
}

fn parse_imm(s: &str) -> Result<i64, ParseAsmError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(format!("bad immediate '{s}'")),
    }
}

/// Splits "off(reg)" into its parts.
fn parse_mem(s: &str) -> Result<(i32, Reg), ParseAsmError> {
    let Some(open) = s.find('(') else {
        return err(format!("expected offset(reg), got '{s}'"));
    };
    let Some(stripped) = s.ends_with(')').then(|| &s[open + 1..s.len() - 1]) else {
        return err(format!("missing ')' in '{s}'"));
    };
    Ok((parse_imm(&s[..open])? as i32, parse_reg(stripped)?))
}

/// Parses one instruction in the [`crate::disassemble`] syntax.
///
/// # Errors
///
/// Returns [`ParseAsmError`] on unknown mnemonics, malformed operands, or
/// out-of-range immediates.
///
/// # Examples
///
/// ```
/// use riscv_spec::asm::parse_instruction;
/// use riscv_spec::{disassemble, Instruction, Reg};
/// let i = parse_instruction("lw x10, 8(x2)").unwrap();
/// assert_eq!(i, Instruction::Lw { rd: Reg::X10, rs1: Reg::X2, offset: 8 });
/// assert_eq!(disassemble(&i), "lw x10, 8(x2)");
/// ```
pub fn parse_instruction(line: &str) -> Result<Instruction, ParseAsmError> {
    use Instruction::*;
    let line = line.trim();
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        vec![]
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let nops = ops.len();
    let need = |n: usize| -> Result<(), ParseAsmError> {
        if nops == n {
            Ok(())
        } else {
            err(format!("'{mnemonic}' expects {n} operands, got {nops}"))
        }
    };

    macro_rules! rd_rs1_rs2 {
        ($ctor:ident) => {{
            need(3)?;
            $ctor {
                rd: parse_reg(ops[0])?,
                rs1: parse_reg(ops[1])?,
                rs2: parse_reg(ops[2])?,
            }
        }};
    }
    macro_rules! rd_rs1_imm {
        ($ctor:ident) => {{
            need(3)?;
            $ctor {
                rd: parse_reg(ops[0])?,
                rs1: parse_reg(ops[1])?,
                imm: parse_imm(ops[2])? as i32,
            }
        }};
    }
    macro_rules! rd_rs1_shamt {
        ($ctor:ident) => {{
            need(3)?;
            $ctor {
                rd: parse_reg(ops[0])?,
                rs1: parse_reg(ops[1])?,
                shamt: parse_imm(ops[2])? as u32,
            }
        }};
    }
    macro_rules! branch {
        ($ctor:ident) => {{
            need(3)?;
            $ctor {
                rs1: parse_reg(ops[0])?,
                rs2: parse_reg(ops[1])?,
                offset: parse_imm(ops[2])? as i32,
            }
        }};
    }
    macro_rules! load {
        ($ctor:ident) => {{
            need(2)?;
            let (offset, rs1) = parse_mem(ops[1])?;
            $ctor {
                rd: parse_reg(ops[0])?,
                rs1,
                offset,
            }
        }};
    }
    macro_rules! store {
        ($ctor:ident) => {{
            need(2)?;
            let (offset, rs1) = parse_mem(ops[1])?;
            $ctor {
                rs1,
                rs2: parse_reg(ops[0])?,
                offset,
            }
        }};
    }

    let inst = match mnemonic {
        "lui" | "auipc" => {
            need(2)?;
            let rd = parse_reg(ops[0])?;
            let imm20 = parse_imm(ops[1])? as u32;
            if mnemonic == "lui" {
                Lui { rd, imm20 }
            } else {
                Auipc { rd, imm20 }
            }
        }
        "jal" => {
            need(2)?;
            Jal {
                rd: parse_reg(ops[0])?,
                offset: parse_imm(ops[1])? as i32,
            }
        }
        "jalr" => {
            need(2)?;
            let (offset, rs1) = parse_mem(ops[1])?;
            Jalr {
                rd: parse_reg(ops[0])?,
                rs1,
                offset,
            }
        }
        "beq" => branch!(Beq),
        "bne" => branch!(Bne),
        "blt" => branch!(Blt),
        "bge" => branch!(Bge),
        "bltu" => branch!(Bltu),
        "bgeu" => branch!(Bgeu),
        "lb" => load!(Lb),
        "lh" => load!(Lh),
        "lw" => load!(Lw),
        "lbu" => load!(Lbu),
        "lhu" => load!(Lhu),
        "sb" => store!(Sb),
        "sh" => store!(Sh),
        "sw" => store!(Sw),
        "addi" => rd_rs1_imm!(Addi),
        "slti" => rd_rs1_imm!(Slti),
        "sltiu" => rd_rs1_imm!(Sltiu),
        "xori" => rd_rs1_imm!(Xori),
        "ori" => rd_rs1_imm!(Ori),
        "andi" => rd_rs1_imm!(Andi),
        "slli" => rd_rs1_shamt!(Slli),
        "srli" => rd_rs1_shamt!(Srli),
        "srai" => rd_rs1_shamt!(Srai),
        "add" => rd_rs1_rs2!(Add),
        "sub" => rd_rs1_rs2!(Sub),
        "sll" => rd_rs1_rs2!(Sll),
        "slt" => rd_rs1_rs2!(Slt),
        "sltu" => rd_rs1_rs2!(Sltu),
        "xor" => rd_rs1_rs2!(Xor),
        "srl" => rd_rs1_rs2!(Srl),
        "sra" => rd_rs1_rs2!(Sra),
        "or" => rd_rs1_rs2!(Or),
        "and" => rd_rs1_rs2!(And),
        "mul" => rd_rs1_rs2!(Mul),
        "mulh" => rd_rs1_rs2!(Mulh),
        "mulhsu" => rd_rs1_rs2!(Mulhsu),
        "mulhu" => rd_rs1_rs2!(Mulhu),
        "div" => rd_rs1_rs2!(Div),
        "divu" => rd_rs1_rs2!(Divu),
        "rem" => rd_rs1_rs2!(Rem),
        "remu" => rd_rs1_rs2!(Remu),
        "fence" => {
            need(0)?;
            Fence
        }
        "fence.i" => {
            need(0)?;
            FenceI
        }
        "ecall" => {
            need(0)?;
            Ecall
        }
        "ebreak" => {
            need(0)?;
            Ebreak
        }
        ".word" => {
            need(1)?;
            Invalid {
                word: parse_imm(ops[0])? as u32,
            }
        }
        other => return err(format!("unknown mnemonic '{other}'")),
    };
    Ok(inst)
}

/// Parses a multi-line program: one instruction per line; blank lines and
/// `#`/`//` comments are skipped; `label:`-style address markers from
/// [`crate::disasm::disassemble_program`] listings are tolerated.
///
/// # Errors
///
/// The first line that fails to parse, with its 1-based line number.
pub fn parse_program(text: &str) -> Result<Vec<Instruction>, ParseAsmError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let mut line = raw.trim();
        if let Some(i) = line.find('#') {
            line = line[..i].trim();
        }
        if let Some(i) = line.find("//") {
            line = line[..i].trim();
        }
        // Tolerate "0000001c:" address prefixes and "<name>:" labels.
        if let Some(colon) = line.find(':') {
            let (head, tail) = line.split_at(colon);
            if head.chars().all(|c| c.is_ascii_hexdigit())
                || (head.starts_with('<') && head.ends_with('>'))
            {
                line = tail[1..].trim();
            }
        }
        if line.is_empty() {
            continue;
        }
        out.push(parse_instruction(line).map_err(|e| ParseAsmError {
            message: format!("line {}: {}", lineno + 1, e.message),
        })?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;

    #[test]
    fn parses_each_syntax_family() {
        let cases = [
            "lui x5, 0x10024",
            "jal x1, -2048",
            "jalr x0, 0(x1)",
            "beq x5, x6, 8",
            "lw x10, -4(x2)",
            "sw x10, 8(x2)",
            "addi x1, x2, -3",
            "srai x5, x6, 3",
            "mulhu x5, x6, x7",
            "fence.i",
            "ebreak",
            ".word 0xdeadbeef",
        ];
        for c in cases {
            let i = parse_instruction(c).unwrap_or_else(|e| panic!("{c}: {e}"));
            assert_eq!(disassemble(&i), c, "{c}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_instruction("frobnicate x1, x2").is_err());
        assert!(parse_instruction("addi x1, x2").is_err());
        assert!(parse_instruction("addi x32, x0, 1").is_err());
        assert!(parse_instruction("lw x1, 4[x2]").is_err());
        assert!(parse_instruction("addi x1, x0, twelve").is_err());
    }

    #[test]
    fn parses_whole_listings_with_addresses_and_comments() {
        let text = "
            # a tiny program
            00000000:  addi x5, x0, 40
            00000004:  addi x6, x5, 2   // the answer
            <main>: ebreak
        ";
        let prog = parse_program(text).unwrap();
        assert_eq!(prog.len(), 3);
        assert_eq!(disassemble(&prog[1]), "addi x6, x5, 2");
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_program("addi x1, x0, 1\nbogus").unwrap_err();
        assert!(e.message.contains("line 2"), "{e}");
    }
}

//! The executable-address set **XAddrs** (§5.6 of the paper).
//!
//! The RISC-V specification does not require instruction fetches to observe
//! ordinary stores; hardware with an instruction cache (like the Kami
//! processor's eagerly-filled I$) may execute *stale* instructions after
//! self-modification. The software-oriented machine model encodes the
//! customary embedded-systems discipline: at boot every address is
//! executable, each store revokes executability of the bytes it touches, and
//! fetching from a non-executable address is undefined behavior. The
//! compiler's obligation (discharged by differential testing here, by proof
//! in the paper) is that compiled programs never fetch a revoked address.

/// A set of executable byte addresses over the range `0..len`, stored as a
/// bitmap (one bit per byte of RAM).
#[derive(Clone, PartialEq, Eq)]
pub struct XAddrs {
    bits: Vec<u64>,
    len: u32,
}

impl XAddrs {
    /// Creates the boot-time set in which all of `0..len` is executable.
    pub fn all(len: u32) -> XAddrs {
        let words = (len as usize).div_ceil(64);
        XAddrs {
            bits: vec![u64::MAX; words],
            len,
        }
    }

    /// Creates an empty set covering `0..len`.
    pub fn none(len: u32) -> XAddrs {
        let words = (len as usize).div_ceil(64);
        XAddrs {
            bits: vec![0; words],
            len,
        }
    }

    /// The covered range length in bytes.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when the covered range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when byte `addr` is inside the covered range and executable.
    pub fn contains(&self, addr: u32) -> bool {
        if addr >= self.len {
            return false;
        }
        self.bits[(addr / 64) as usize] >> (addr % 64) & 1 == 1
    }

    /// True when all `n` bytes starting at `addr` are executable (the fetch
    /// check for an `n`-byte instruction).
    pub fn contains_range(&self, addr: u32, n: u32) -> bool {
        match addr.checked_add(n) {
            Some(end) if end <= self.len => (addr..end).all(|a| self.contains(a)),
            _ => false,
        }
    }

    /// [`XAddrs::contains_range`] specialized to the instruction-fetch
    /// shape: 4 bytes at a 4-aligned address. Because the address is
    /// aligned, all four bits live in one bitmap word, so the check is a
    /// single load and mask — this is the hot-path test behind the decode
    /// cache's fetch fast path.
    ///
    /// # Panics
    ///
    /// Debug builds assert that `addr` is 4-aligned; release builds give an
    /// unspecified (but memory-safe) answer for misaligned addresses.
    #[inline]
    pub fn contains_aligned_word(&self, addr: u32) -> bool {
        debug_assert!(
            addr.is_multiple_of(4),
            "contains_aligned_word wants aligned pc"
        );
        match addr.checked_add(4) {
            Some(end) if end <= self.len => {
                (self.bits[(addr / 64) as usize] >> (addr % 64)) & 0xF == 0xF
            }
            _ => false,
        }
    }

    /// Revokes executability of `n` bytes starting at `addr` (the effect of
    /// a store). Bytes outside the covered range are ignored.
    pub fn remove_range(&mut self, addr: u32, n: u32) {
        let end = addr.saturating_add(n).min(self.len);
        for a in addr.min(self.len)..end {
            self.bits[(a / 64) as usize] &= !(1u64 << (a % 64));
        }
    }

    /// Restores executability of `n` bytes starting at `addr` (the effect of
    /// `fence.i` after writing code, in machines that support it).
    pub fn add_range(&mut self, addr: u32, n: u32) {
        let end = addr.saturating_add(n).min(self.len);
        for a in addr.min(self.len)..end {
            self.bits[(a / 64) as usize] |= 1u64 << (a % 64);
        }
    }

    /// Number of executable bytes.
    pub fn count(&self) -> u32 {
        let full = self.bits.iter().map(|w| w.count_ones()).sum::<u32>();
        // Mask out bits above len in the last word.
        let spare = (self.bits.len() as u32) * 64 - self.len;
        let tail_masked = if spare > 0 && !self.bits.is_empty() {
            let last = *self.bits.last().unwrap();
            (last >> (64 - spare)).count_ones()
        } else {
            0
        };
        full - tail_masked
    }
}

impl std::fmt::Debug for XAddrs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "XAddrs({} of {} bytes executable)",
            self.count(),
            self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_state_is_all_executable() {
        let x = XAddrs::all(100);
        assert!(x.contains(0));
        assert!(x.contains(99));
        assert!(!x.contains(100));
        assert!(x.contains_range(0, 100));
        assert!(!x.contains_range(97, 4));
        assert_eq!(x.count(), 100);
    }

    #[test]
    fn stores_revoke() {
        let mut x = XAddrs::all(128);
        x.remove_range(64, 4);
        assert!(!x.contains(64));
        assert!(!x.contains(67));
        assert!(x.contains(63));
        assert!(x.contains(68));
        assert!(!x.contains_range(60, 8));
        assert_eq!(x.count(), 124);
    }

    #[test]
    fn fence_i_restores() {
        let mut x = XAddrs::all(64);
        x.remove_range(0, 64);
        assert_eq!(x.count(), 0);
        x.add_range(8, 4);
        assert!(x.contains_range(8, 4));
        assert_eq!(x.count(), 4);
    }

    #[test]
    fn out_of_range_operations_are_safe() {
        let mut x = XAddrs::all(10);
        x.remove_range(8, 100); // clamped
        assert!(x.contains(7));
        assert!(!x.contains(8));
        assert!(!x.contains_range(u32::MAX, 4)); // no overflow
        x.add_range(u32::MAX, 4); // no-op, no panic
    }

    #[test]
    fn empty_set() {
        let x = XAddrs::none(32);
        assert_eq!(x.count(), 0);
        assert!(!x.contains(0));
        let z = XAddrs::all(0);
        assert!(z.is_empty());
        assert_eq!(z.count(), 0);
    }

    #[test]
    fn aligned_word_check_agrees_with_contains_range() {
        let mut x = XAddrs::all(132);
        x.remove_range(64, 1);
        x.remove_range(99, 2);
        for addr in (0..=136).step_by(4) {
            assert_eq!(
                x.contains_aligned_word(addr),
                x.contains_range(addr, 4),
                "addr 0x{addr:x}"
            );
        }
        // Spans a u64-word boundary of the bitmap (bits 60..64, 64..68).
        assert!(x.contains_aligned_word(60));
        assert!(!x.contains_aligned_word(64));
    }

    #[test]
    fn count_masks_tail_bits() {
        // len not a multiple of 64: the spare bits of the last word must not
        // be counted even though `all` sets them.
        let x = XAddrs::all(65);
        assert_eq!(x.count(), 65);
    }
}

//! Binary instruction encoding, as specified by the RISC-V unprivileged ISA.
//!
//! [`encode`] and [`crate::decode::decode`] are exact inverses on every value
//! an assembler could produce; this is checked by a property test in
//! `tests/roundtrip.rs` of this crate.

use crate::isa::{Instruction, Reg};

pub(crate) const OPCODE_LUI: u32 = 0b0110111;
pub(crate) const OPCODE_AUIPC: u32 = 0b0010111;
pub(crate) const OPCODE_JAL: u32 = 0b1101111;
pub(crate) const OPCODE_JALR: u32 = 0b1100111;
pub(crate) const OPCODE_BRANCH: u32 = 0b1100011;
pub(crate) const OPCODE_LOAD: u32 = 0b0000011;
pub(crate) const OPCODE_STORE: u32 = 0b0100011;
pub(crate) const OPCODE_OP_IMM: u32 = 0b0010011;
pub(crate) const OPCODE_OP: u32 = 0b0110011;
pub(crate) const OPCODE_MISC_MEM: u32 = 0b0001111;
pub(crate) const OPCODE_SYSTEM: u32 = 0b1110011;

fn assert_i_imm(imm: i32) {
    assert!(
        (-2048..=2047).contains(&imm),
        "I-type immediate out of range: {imm}"
    );
}

fn r_type(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    funct7 << 25
        | (rs2.index() as u32) << 20
        | (rs1.index() as u32) << 15
        | funct3 << 12
        | (rd.index() as u32) << 7
        | opcode
}

fn i_type(imm: i32, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    assert_i_imm(imm);
    ((imm as u32) & 0xFFF) << 20
        | (rs1.index() as u32) << 15
        | funct3 << 12
        | (rd.index() as u32) << 7
        | opcode
}

fn s_type(imm: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    assert_i_imm(imm);
    let imm = imm as u32;
    ((imm >> 5) & 0x7F) << 25
        | (rs2.index() as u32) << 20
        | (rs1.index() as u32) << 15
        | funct3 << 12
        | (imm & 0x1F) << 7
        | opcode
}

fn b_type(offset: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    assert!(
        (-4096..=4094).contains(&offset) && offset % 2 == 0,
        "branch offset out of range or odd: {offset}"
    );
    let imm = offset as u32;
    ((imm >> 12) & 1) << 31
        | ((imm >> 5) & 0x3F) << 25
        | (rs2.index() as u32) << 20
        | (rs1.index() as u32) << 15
        | funct3 << 12
        | ((imm >> 1) & 0xF) << 8
        | ((imm >> 11) & 1) << 7
        | opcode
}

fn u_type(imm20: u32, rd: Reg, opcode: u32) -> u32 {
    assert!(imm20 < (1 << 20), "U-type immediate out of range: {imm20}");
    imm20 << 12 | (rd.index() as u32) << 7 | opcode
}

fn j_type(offset: i32, rd: Reg, opcode: u32) -> u32 {
    assert!(
        (-(1 << 20)..(1 << 20)).contains(&offset) && offset % 2 == 0,
        "jal offset out of range or odd: {offset}"
    );
    let imm = offset as u32;
    ((imm >> 20) & 1) << 31
        | ((imm >> 1) & 0x3FF) << 21
        | ((imm >> 11) & 1) << 20
        | ((imm >> 12) & 0xFF) << 12
        | (rd.index() as u32) << 7
        | opcode
}

fn shift_type(funct7: u32, shamt: u32, rs1: Reg, funct3: u32, rd: Reg) -> u32 {
    assert!(shamt < 32, "shift amount out of range: {shamt}");
    funct7 << 25
        | shamt << 20
        | (rs1.index() as u32) << 15
        | funct3 << 12
        | (rd.index() as u32) << 7
        | OPCODE_OP_IMM
}

/// Encodes an instruction to its 32-bit binary representation.
///
/// [`Instruction::Invalid`] encodes back to the word it was decoded from, so
/// encode∘decode is the identity on arbitrary words as well.
///
/// # Panics
///
/// Panics if an immediate, offset, or shift amount is out of range for its
/// encoding (e.g. a branch offset that does not fit in 13 signed bits or is
/// odd). The compiler's layout phase guarantees in-range values; hand-built
/// instructions should be validated by the caller.
///
/// # Examples
///
/// ```
/// use riscv_spec::{encode, Instruction, Reg};
/// let i = Instruction::Addi { rd: Reg::X1, rs1: Reg::X0, imm: 5 };
/// assert_eq!(encode(&i), 0x0050_0093);
/// ```
pub fn encode(inst: &Instruction) -> u32 {
    use Instruction::*;
    match *inst {
        Lui { rd, imm20 } => u_type(imm20, rd, OPCODE_LUI),
        Auipc { rd, imm20 } => u_type(imm20, rd, OPCODE_AUIPC),
        Jal { rd, offset } => j_type(offset, rd, OPCODE_JAL),
        Jalr { rd, rs1, offset } => i_type(offset, rs1, 0b000, rd, OPCODE_JALR),
        Beq { rs1, rs2, offset } => b_type(offset, rs2, rs1, 0b000, OPCODE_BRANCH),
        Bne { rs1, rs2, offset } => b_type(offset, rs2, rs1, 0b001, OPCODE_BRANCH),
        Blt { rs1, rs2, offset } => b_type(offset, rs2, rs1, 0b100, OPCODE_BRANCH),
        Bge { rs1, rs2, offset } => b_type(offset, rs2, rs1, 0b101, OPCODE_BRANCH),
        Bltu { rs1, rs2, offset } => b_type(offset, rs2, rs1, 0b110, OPCODE_BRANCH),
        Bgeu { rs1, rs2, offset } => b_type(offset, rs2, rs1, 0b111, OPCODE_BRANCH),
        Lb { rd, rs1, offset } => i_type(offset, rs1, 0b000, rd, OPCODE_LOAD),
        Lh { rd, rs1, offset } => i_type(offset, rs1, 0b001, rd, OPCODE_LOAD),
        Lw { rd, rs1, offset } => i_type(offset, rs1, 0b010, rd, OPCODE_LOAD),
        Lbu { rd, rs1, offset } => i_type(offset, rs1, 0b100, rd, OPCODE_LOAD),
        Lhu { rd, rs1, offset } => i_type(offset, rs1, 0b101, rd, OPCODE_LOAD),
        Sb { rs1, rs2, offset } => s_type(offset, rs2, rs1, 0b000, OPCODE_STORE),
        Sh { rs1, rs2, offset } => s_type(offset, rs2, rs1, 0b001, OPCODE_STORE),
        Sw { rs1, rs2, offset } => s_type(offset, rs2, rs1, 0b010, OPCODE_STORE),
        Addi { rd, rs1, imm } => i_type(imm, rs1, 0b000, rd, OPCODE_OP_IMM),
        Slti { rd, rs1, imm } => i_type(imm, rs1, 0b010, rd, OPCODE_OP_IMM),
        Sltiu { rd, rs1, imm } => i_type(imm, rs1, 0b011, rd, OPCODE_OP_IMM),
        Xori { rd, rs1, imm } => i_type(imm, rs1, 0b100, rd, OPCODE_OP_IMM),
        Ori { rd, rs1, imm } => i_type(imm, rs1, 0b110, rd, OPCODE_OP_IMM),
        Andi { rd, rs1, imm } => i_type(imm, rs1, 0b111, rd, OPCODE_OP_IMM),
        Slli { rd, rs1, shamt } => shift_type(0b0000000, shamt, rs1, 0b001, rd),
        Srli { rd, rs1, shamt } => shift_type(0b0000000, shamt, rs1, 0b101, rd),
        Srai { rd, rs1, shamt } => shift_type(0b0100000, shamt, rs1, 0b101, rd),
        Add { rd, rs1, rs2 } => r_type(0b0000000, rs2, rs1, 0b000, rd, OPCODE_OP),
        Sub { rd, rs1, rs2 } => r_type(0b0100000, rs2, rs1, 0b000, rd, OPCODE_OP),
        Sll { rd, rs1, rs2 } => r_type(0b0000000, rs2, rs1, 0b001, rd, OPCODE_OP),
        Slt { rd, rs1, rs2 } => r_type(0b0000000, rs2, rs1, 0b010, rd, OPCODE_OP),
        Sltu { rd, rs1, rs2 } => r_type(0b0000000, rs2, rs1, 0b011, rd, OPCODE_OP),
        Xor { rd, rs1, rs2 } => r_type(0b0000000, rs2, rs1, 0b100, rd, OPCODE_OP),
        Srl { rd, rs1, rs2 } => r_type(0b0000000, rs2, rs1, 0b101, rd, OPCODE_OP),
        Sra { rd, rs1, rs2 } => r_type(0b0100000, rs2, rs1, 0b101, rd, OPCODE_OP),
        Or { rd, rs1, rs2 } => r_type(0b0000000, rs2, rs1, 0b110, rd, OPCODE_OP),
        And { rd, rs1, rs2 } => r_type(0b0000000, rs2, rs1, 0b111, rd, OPCODE_OP),
        Mul { rd, rs1, rs2 } => r_type(0b0000001, rs2, rs1, 0b000, rd, OPCODE_OP),
        Mulh { rd, rs1, rs2 } => r_type(0b0000001, rs2, rs1, 0b001, rd, OPCODE_OP),
        Mulhsu { rd, rs1, rs2 } => r_type(0b0000001, rs2, rs1, 0b010, rd, OPCODE_OP),
        Mulhu { rd, rs1, rs2 } => r_type(0b0000001, rs2, rs1, 0b011, rd, OPCODE_OP),
        Div { rd, rs1, rs2 } => r_type(0b0000001, rs2, rs1, 0b100, rd, OPCODE_OP),
        Divu { rd, rs1, rs2 } => r_type(0b0000001, rs2, rs1, 0b101, rd, OPCODE_OP),
        Rem { rd, rs1, rs2 } => r_type(0b0000001, rs2, rs1, 0b110, rd, OPCODE_OP),
        Remu { rd, rs1, rs2 } => r_type(0b0000001, rs2, rs1, 0b111, rd, OPCODE_OP),
        Fence => i_type(0, Reg::X0, 0b000, Reg::X0, OPCODE_MISC_MEM),
        FenceI => i_type(0, Reg::X0, 0b001, Reg::X0, OPCODE_MISC_MEM),
        Ecall => i_type(0, Reg::X0, 0b000, Reg::X0, OPCODE_SYSTEM),
        Ebreak => i_type(1, Reg::X0, 0b000, Reg::X0, OPCODE_SYSTEM),
        Invalid { word } => word,
    }
}

/// Encodes a sequence of instructions to little-endian bytes, the format in
/// which program images are placed into memory (the paper's `instrencode`).
pub fn encode_to_bytes(insts: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(insts.len() * 4);
    for i in insts {
        out.extend_from_slice(&encode(i).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, Reg};

    // Golden encodings cross-checked against the RISC-V specification and
    // binutils `as` output.
    #[test]
    fn golden_words() {
        let cases: &[(Instruction, u32)] = &[
            (
                Instruction::Addi {
                    rd: Reg::X1,
                    rs1: Reg::X0,
                    imm: 5,
                },
                0x0050_0093,
            ),
            (
                Instruction::Lui {
                    rd: Reg::X5,
                    imm20: 0x12345,
                },
                0x1234_52B7,
            ),
            (
                Instruction::Jal {
                    rd: Reg::X1,
                    offset: 0x10,
                },
                0x0100_00EF,
            ),
            (
                Instruction::Jalr {
                    rd: Reg::X0,
                    rs1: Reg::X1,
                    offset: 0,
                },
                0x0000_8067, // ret
            ),
            (
                Instruction::Beq {
                    rs1: Reg::X5,
                    rs2: Reg::X6,
                    offset: -4,
                },
                0xFE62_8EE3,
            ),
            (
                Instruction::Lw {
                    rd: Reg::X10,
                    rs1: Reg::X2,
                    offset: 8,
                },
                0x0081_2503,
            ),
            (
                Instruction::Sw {
                    rs1: Reg::X2,
                    rs2: Reg::X10,
                    offset: 8,
                },
                0x00A1_2423,
            ),
            (
                Instruction::Add {
                    rd: Reg::X5,
                    rs1: Reg::X6,
                    rs2: Reg::X7,
                },
                0x0073_02B3,
            ),
            (
                Instruction::Mul {
                    rd: Reg::X5,
                    rs1: Reg::X6,
                    rs2: Reg::X7,
                },
                0x0273_02B3,
            ),
            (
                Instruction::Srai {
                    rd: Reg::X5,
                    rs1: Reg::X6,
                    shamt: 3,
                },
                0x4033_5293,
            ),
            (Instruction::Ecall, 0x0000_0073),
            (Instruction::Ebreak, 0x0010_0073),
        ];
        for (inst, word) in cases {
            assert_eq!(encode(inst), *word, "encoding of {inst:?}");
        }
    }

    #[test]
    fn negative_offsets_wrap_correctly() {
        let i = Instruction::Sw {
            rs1: Reg::X2,
            rs2: Reg::X1,
            offset: -4,
        };
        let w = encode(&i);
        assert_eq!(crate::decode::decode(w), i);
    }

    #[test]
    #[should_panic(expected = "I-type immediate out of range")]
    fn immediate_range_checked() {
        encode(&Instruction::Addi {
            rd: Reg::X1,
            rs1: Reg::X0,
            imm: 4096,
        });
    }

    #[test]
    #[should_panic(expected = "branch offset out of range or odd")]
    fn odd_branch_offset_rejected() {
        encode(&Instruction::Beq {
            rs1: Reg::X0,
            rs2: Reg::X0,
            offset: 3,
        });
    }

    #[test]
    fn bytes_are_little_endian() {
        let b = encode_to_bytes(&[Instruction::Addi {
            rd: Reg::X1,
            rs1: Reg::X0,
            imm: 5,
        }]);
        assert_eq!(b, vec![0x93, 0x00, 0x50, 0x00]);
    }
}

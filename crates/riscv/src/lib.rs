//! RV32IM instruction-set architecture: encoding, decoding, disassembly, and
//! a formal-style specification machine.
//!
//! This crate is the Rust analogue of the riscv-coq formal specification used
//! in *Integration Verification across Software and Hardware for a Simple
//! Embedded System* (PLDI 2021). Like the paper's specification, instruction
//! semantics are written **once**, in terms of a small set of primitives
//! ([`Primitives`]), without committing to a machine-state representation
//! (§5.4 of the paper). Two important consumers exist:
//!
//! * [`SpecMachine`] — the software-oriented, undefined-behavior-aware
//!   machine the compiler is tested against. It tracks the executable-address
//!   set **XAddrs** (§5.6) so that stale-instruction hazards are undefined
//!   behavior, and it dispatches loads/stores outside RAM to a pluggable
//!   [`MmioHandler`], recording every such access in an I/O trace of
//!   [`MmioEvent`]s (§6.2).
//! * The `processor` crate implements the same ISA as a pipelined hardware
//!   model; the `integration` crate checks the two against each other.
//!
//! # Examples
//!
//! Assemble, encode, decode, and run a two-instruction program:
//!
//! ```
//! use riscv_spec::{Instruction, Reg, SpecMachine, Memory, NoMmio, encode, decode};
//!
//! let prog = [
//!     Instruction::Addi { rd: Reg::X5, rs1: Reg::X0, imm: 42 },
//!     Instruction::Sw { rs1: Reg::X0, rs2: Reg::X5, offset: 0x100 },
//! ];
//! let words: Vec<u32> = prog.iter().map(encode).collect();
//! assert_eq!(decode(words[0]), prog[0]);
//!
//! let mut m = SpecMachine::new(Memory::with_size(0x1000), NoMmio);
//! m.load_program(0, &words);
//! m.step().unwrap();
//! m.step().unwrap();
//! assert_eq!(m.mem.load_u32(0x100).unwrap(), 42);
//! ```

pub mod asm;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod execute;
pub mod icache;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod mmio;
pub mod primitives;
pub mod word;
pub mod xaddrs;

pub use asm::{parse_instruction, parse_program};
pub use decode::decode;
pub use disasm::disassemble;
pub use encode::encode;
pub use execute::execute;
pub use icache::DecodeCache;
pub use isa::{InstrClass, Instruction, Reg};
pub use machine::{MachineError, SpecMachine, SpecStats, StepOutcome};
pub use mem::Memory;
pub use mmio::{AccessSize, MmioEvent, MmioEventKind, MmioHandler, NoMmio};
pub use primitives::Primitives;
pub use xaddrs::XAddrs;

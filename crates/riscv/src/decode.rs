//! Binary instruction decoding.
//!
//! The decoder is total: any 32-bit word decodes, with words outside the
//! implemented RV32IM subset mapping to [`Instruction::Invalid`]. This
//! mirrors the formal specification's treatment, where fetching an
//! undecodable word is an error surfaced by the machine model rather than by
//! the decoder.

use crate::encode::*;
use crate::isa::{Instruction, Reg};
use crate::word::sign_extend;

fn rd(word: u32) -> Reg {
    Reg::new(((word >> 7) & 0x1F) as u8)
}

fn rs1(word: u32) -> Reg {
    Reg::new(((word >> 15) & 0x1F) as u8)
}

fn rs2(word: u32) -> Reg {
    Reg::new(((word >> 20) & 0x1F) as u8)
}

fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

fn funct7(word: u32) -> u32 {
    word >> 25
}

fn imm_i(word: u32) -> i32 {
    sign_extend(word >> 20, 12) as i32
}

fn imm_s(word: u32) -> i32 {
    sign_extend((word >> 25) << 5 | ((word >> 7) & 0x1F), 12) as i32
}

fn imm_b(word: u32) -> i32 {
    let imm = ((word >> 31) & 1) << 12
        | ((word >> 7) & 1) << 11
        | ((word >> 25) & 0x3F) << 5
        | ((word >> 8) & 0xF) << 1;
    sign_extend(imm, 13) as i32
}

fn imm_u(word: u32) -> u32 {
    word >> 12
}

fn imm_j(word: u32) -> i32 {
    let imm = ((word >> 31) & 1) << 20
        | ((word >> 12) & 0xFF) << 12
        | ((word >> 20) & 1) << 11
        | ((word >> 21) & 0x3FF) << 1;
    sign_extend(imm, 21) as i32
}

/// Decodes a 32-bit instruction word.
///
/// Returns [`Instruction::Invalid`] for words outside the RV32IM (+
/// `fence.i`) subset, including all CSR instructions and compressed
/// encodings.
///
/// # Examples
///
/// ```
/// use riscv_spec::{decode, Instruction, Reg};
/// assert_eq!(
///     decode(0x0050_0093),
///     Instruction::Addi { rd: Reg::X1, rs1: Reg::X0, imm: 5 }
/// );
/// assert!(matches!(decode(0xFFFF_FFFF), Instruction::Invalid { .. }));
/// ```
pub fn decode(word: u32) -> Instruction {
    use Instruction::*;
    let invalid = Invalid { word };
    match word & 0x7F {
        OPCODE_LUI => Lui {
            rd: rd(word),
            imm20: imm_u(word),
        },
        OPCODE_AUIPC => Auipc {
            rd: rd(word),
            imm20: imm_u(word),
        },
        OPCODE_JAL => Jal {
            rd: rd(word),
            offset: imm_j(word),
        },
        OPCODE_JALR if funct3(word) == 0 => Jalr {
            rd: rd(word),
            rs1: rs1(word),
            offset: imm_i(word),
        },
        OPCODE_BRANCH => {
            let (rs1, rs2, offset) = (rs1(word), rs2(word), imm_b(word));
            match funct3(word) {
                0b000 => Beq { rs1, rs2, offset },
                0b001 => Bne { rs1, rs2, offset },
                0b100 => Blt { rs1, rs2, offset },
                0b101 => Bge { rs1, rs2, offset },
                0b110 => Bltu { rs1, rs2, offset },
                0b111 => Bgeu { rs1, rs2, offset },
                _ => invalid,
            }
        }
        OPCODE_LOAD => {
            let (rd, rs1, offset) = (rd(word), rs1(word), imm_i(word));
            match funct3(word) {
                0b000 => Lb { rd, rs1, offset },
                0b001 => Lh { rd, rs1, offset },
                0b010 => Lw { rd, rs1, offset },
                0b100 => Lbu { rd, rs1, offset },
                0b101 => Lhu { rd, rs1, offset },
                _ => invalid,
            }
        }
        OPCODE_STORE => {
            let (rs1, rs2, offset) = (rs1(word), rs2(word), imm_s(word));
            match funct3(word) {
                0b000 => Sb { rs1, rs2, offset },
                0b001 => Sh { rs1, rs2, offset },
                0b010 => Sw { rs1, rs2, offset },
                _ => invalid,
            }
        }
        OPCODE_OP_IMM => {
            let (rd, rs1, imm) = (rd(word), rs1(word), imm_i(word));
            let shamt = (word >> 20) & 0x1F;
            match (funct3(word), funct7(word)) {
                (0b000, _) => Addi { rd, rs1, imm },
                (0b010, _) => Slti { rd, rs1, imm },
                (0b011, _) => Sltiu { rd, rs1, imm },
                (0b100, _) => Xori { rd, rs1, imm },
                (0b110, _) => Ori { rd, rs1, imm },
                (0b111, _) => Andi { rd, rs1, imm },
                (0b001, 0b0000000) => Slli { rd, rs1, shamt },
                (0b101, 0b0000000) => Srli { rd, rs1, shamt },
                (0b101, 0b0100000) => Srai { rd, rs1, shamt },
                _ => invalid,
            }
        }
        OPCODE_OP => {
            let (rd, rs1, rs2) = (rd(word), rs1(word), rs2(word));
            match (funct3(word), funct7(word)) {
                (0b000, 0b0000000) => Add { rd, rs1, rs2 },
                (0b000, 0b0100000) => Sub { rd, rs1, rs2 },
                (0b001, 0b0000000) => Sll { rd, rs1, rs2 },
                (0b010, 0b0000000) => Slt { rd, rs1, rs2 },
                (0b011, 0b0000000) => Sltu { rd, rs1, rs2 },
                (0b100, 0b0000000) => Xor { rd, rs1, rs2 },
                (0b101, 0b0000000) => Srl { rd, rs1, rs2 },
                (0b101, 0b0100000) => Sra { rd, rs1, rs2 },
                (0b110, 0b0000000) => Or { rd, rs1, rs2 },
                (0b111, 0b0000000) => And { rd, rs1, rs2 },
                (0b000, 0b0000001) => Mul { rd, rs1, rs2 },
                (0b001, 0b0000001) => Mulh { rd, rs1, rs2 },
                (0b010, 0b0000001) => Mulhsu { rd, rs1, rs2 },
                (0b011, 0b0000001) => Mulhu { rd, rs1, rs2 },
                (0b100, 0b0000001) => Div { rd, rs1, rs2 },
                (0b101, 0b0000001) => Divu { rd, rs1, rs2 },
                (0b110, 0b0000001) => Rem { rd, rs1, rs2 },
                (0b111, 0b0000001) => Remu { rd, rs1, rs2 },
                _ => invalid,
            }
        }
        OPCODE_MISC_MEM if word == encode_fence() => Fence,
        OPCODE_MISC_MEM if word == encode_fence_i() => FenceI,
        OPCODE_SYSTEM if word == 0x0000_0073 => Ecall,
        OPCODE_SYSTEM if word == 0x0010_0073 => Ebreak,
        _ => invalid,
    }
}

fn encode_fence() -> u32 {
    crate::encode::encode(&Instruction::Fence)
}

fn encode_fence_i() -> u32 {
    crate::encode::encode(&Instruction::FenceI)
}

/// Decodes a sequence of little-endian bytes into instructions. Trailing
/// bytes that do not fill a word are ignored.
pub fn decode_bytes(bytes: &[u8]) -> Vec<Instruction> {
    bytes
        .chunks_exact(4)
        .map(|c| decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_known_words() {
        assert_eq!(
            decode(0x0000_8067),
            Instruction::Jalr {
                rd: Reg::X0,
                rs1: Reg::X1,
                offset: 0
            }
        );
        assert_eq!(decode(0x0000_0073), Instruction::Ecall);
        assert_eq!(decode(0x0010_0073), Instruction::Ebreak);
    }

    #[test]
    fn negative_immediates() {
        // addi x1, x0, -1
        let i = Instruction::Addi {
            rd: Reg::X1,
            rs1: Reg::X0,
            imm: -1,
        };
        assert_eq!(decode(encode(&i)), i);
        // jal with the most negative offset
        let j = Instruction::Jal {
            rd: Reg::X0,
            offset: -(1 << 20),
        };
        assert_eq!(decode(encode(&j)), j);
        // branch with most negative offset
        let b = Instruction::Bgeu {
            rs1: Reg::X5,
            rs2: Reg::X6,
            offset: -4096,
        };
        assert_eq!(decode(encode(&b)), b);
    }

    #[test]
    fn garbage_is_invalid() {
        assert!(matches!(decode(0), Instruction::Invalid { word: 0 }));
        assert!(matches!(decode(0xFFFF_FFFF), Instruction::Invalid { .. }));
        // CSR instruction (csrrw) is outside our subset
        assert!(matches!(decode(0x3400_9073), Instruction::Invalid { .. }));
    }

    #[test]
    fn invalid_reencodes_to_same_word() {
        let w = 0xDEAD_BEEF;
        assert_eq!(encode(&decode(w)), w);
    }

    #[test]
    fn decode_bytes_chunks() {
        let nop = encode(&Instruction::NOP);
        let mut bytes = nop.to_le_bytes().to_vec();
        bytes.extend_from_slice(&nop.to_le_bytes());
        bytes.push(0xAA); // trailing partial word ignored
        assert_eq!(
            decode_bytes(&bytes),
            vec![Instruction::NOP, Instruction::NOP]
        );
    }
}

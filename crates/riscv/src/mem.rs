//! Byte-addressed flat memory, shared between the ISA machine, the Bedrock2
//! interpreter, and the hardware models.
//!
//! Memory starts at address 0 (the paper's system boots from address 0 with
//! no bootloader, §5.9) and covers `size` bytes; every access is bounds
//! checked and the machine layers decide what an out-of-range access means
//! (MMIO or undefined behavior). All multi-byte accesses are little-endian.

use std::fmt;

/// Error returned when an access falls outside the memory range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfRange {
    /// The offending address.
    pub addr: u32,
    /// The access width in bytes.
    pub len: u32,
}

impl fmt::Display for OutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory access out of range: {} bytes at 0x{:08x}",
            self.len, self.addr
        )
    }
}

impl std::error::Error for OutOfRange {}

/// A flat little-endian byte memory based at address 0.
#[derive(Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zero-initialized memory of `size` bytes.
    pub fn with_size(size: u32) -> Memory {
        Memory {
            bytes: vec![0; size as usize],
        }
    }

    /// Creates a memory initialized from `image`, padded with zeros to
    /// `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `image` is longer than `size`.
    pub fn from_image(image: &[u8], size: u32) -> Memory {
        assert!(image.len() <= size as usize, "image larger than memory");
        let mut bytes = image.to_vec();
        bytes.resize(size as usize, 0);
        Memory { bytes }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// True when `len` bytes at `addr` are all inside this memory.
    pub fn in_range(&self, addr: u32, len: u32) -> bool {
        (addr as u64) + (len as u64) <= self.bytes.len() as u64
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, OutOfRange> {
        if self.in_range(addr, len) {
            Ok(addr as usize)
        } else {
            Err(OutOfRange { addr, len })
        }
    }

    /// Loads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] when the address is outside memory.
    pub fn load_u8(&self, addr: u32) -> Result<u8, OutOfRange> {
        let i = self.check(addr, 1)?;
        Ok(self.bytes[i])
    }

    /// Loads a little-endian halfword. May be unaligned (alignment policy is
    /// enforced by the machine, not by the memory).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] when the range is outside memory.
    pub fn load_u16(&self, addr: u32) -> Result<u16, OutOfRange> {
        let i = self.check(addr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]]))
    }

    /// Loads a little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] when the range is outside memory.
    pub fn load_u32(&self, addr: u32) -> Result<u32, OutOfRange> {
        let i = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Stores one byte.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] when the address is outside memory.
    pub fn store_u8(&mut self, addr: u32, v: u8) -> Result<(), OutOfRange> {
        let i = self.check(addr, 1)?;
        self.bytes[i] = v;
        Ok(())
    }

    /// Stores a little-endian halfword.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] when the range is outside memory.
    pub fn store_u16(&mut self, addr: u32, v: u16) -> Result<(), OutOfRange> {
        let i = self.check(addr, 2)?;
        self.bytes[i..i + 2].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Stores a little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] when the range is outside memory.
    pub fn store_u32(&mut self, addr: u32, v: u32) -> Result<(), OutOfRange> {
        let i = self.check(addr, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Copies `data` into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] when the range is outside memory; nothing is
    /// written in that case.
    pub fn store_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), OutOfRange> {
        let i = self.check(addr, data.len() as u32)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] when the range is outside memory.
    pub fn load_bytes(&self, addr: u32, len: u32) -> Result<&[u8], OutOfRange> {
        let i = self.check(addr, len)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// A view of the whole memory as bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Memory({} bytes)", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_roundtrip() {
        let mut m = Memory::with_size(16);
        m.store_u32(4, 0x1122_3344).unwrap();
        assert_eq!(m.load_u8(4).unwrap(), 0x44);
        assert_eq!(m.load_u8(7).unwrap(), 0x11);
        assert_eq!(m.load_u16(4).unwrap(), 0x3344);
        assert_eq!(m.load_u32(4).unwrap(), 0x1122_3344);
    }

    #[test]
    fn bounds_checked() {
        let mut m = Memory::with_size(8);
        assert_eq!(m.load_u32(5), Err(OutOfRange { addr: 5, len: 4 }));
        assert_eq!(m.load_u32(8), Err(OutOfRange { addr: 8, len: 4 }));
        assert!(m.load_u32(4).is_ok());
        assert!(m.store_u8(7, 1).is_ok());
        assert!(m.store_u8(8, 1).is_err());
        // address arithmetic must not overflow
        assert!(m.load_u32(u32::MAX).is_err());
    }

    #[test]
    fn unaligned_access_is_memorys_problem_not() {
        // The memory itself allows unaligned accesses; machines reject them.
        let mut m = Memory::with_size(8);
        m.store_u32(1, 0xAABB_CCDD).unwrap();
        assert_eq!(m.load_u32(1).unwrap(), 0xAABB_CCDD);
    }

    #[test]
    fn image_initialization() {
        let m = Memory::from_image(&[1, 2, 3], 8);
        assert_eq!(m.load_u8(0).unwrap(), 1);
        assert_eq!(m.load_u8(3).unwrap(), 0);
        assert_eq!(m.size(), 8);
    }

    #[test]
    #[should_panic(expected = "image larger than memory")]
    fn oversized_image_panics() {
        Memory::from_image(&[0; 9], 8);
    }

    #[test]
    fn store_bytes_all_or_nothing() {
        let mut m = Memory::with_size(4);
        assert!(m.store_bytes(2, &[1, 2, 3]).is_err());
        assert_eq!(m.as_bytes(), &[0, 0, 0, 0]);
        assert!(m.store_bytes(1, &[7, 8]).is_ok());
        assert_eq!(m.as_bytes(), &[0, 7, 8, 0]);
    }
}

//! Memory-mapped I/O: event records and the handler interface.
//!
//! In the paper, the ISA specification is *parameterized* over the behavior
//! of loads and stores that fall outside the memory owned by the running
//! code (§6.2: `nonmem_load` / `nonmem_store`). [`MmioHandler`] is that
//! parameter here. Every access routed to the handler is recorded by the
//! machine as an [`MmioEvent`]; the list of these events is exactly the
//! trace the top-level `goodHlTrace` specification constrains.

use std::fmt;

/// The width of a memory or MMIO access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// One byte (`lb`/`lbu`/`sb`).
    Byte,
    /// Two bytes (`lh`/`lhu`/`sh`).
    Half,
    /// Four bytes (`lw`/`sw`).
    Word,
}

impl AccessSize {
    /// Width in bytes: 1, 2, or 4.
    pub fn bytes(self) -> u32 {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
        }
    }
}

/// Whether an I/O interaction was a load (the device supplied `value`) or a
/// store (the processor supplied `value`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MmioEventKind {
    /// An MMIO load: the triple `("ld", addr, value)` of the paper (§3.1).
    Load,
    /// An MMIO store: the triple `("st", addr, value)`.
    Store,
}

impl fmt::Display for MmioEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmioEventKind::Load => write!(f, "ld"),
            MmioEventKind::Store => write!(f, "st"),
        }
    }
}

/// One observable I/O interaction of the system: the `(kind, addr, value)`
/// triples that make up the end-to-end theorem's trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MmioEvent {
    /// Load or store.
    pub kind: MmioEventKind,
    /// The bus address of the access.
    pub addr: u32,
    /// The value read (for loads) or written (for stores).
    pub value: u32,
}

impl MmioEvent {
    /// Constructs a load event.
    pub fn load(addr: u32, value: u32) -> MmioEvent {
        MmioEvent {
            kind: MmioEventKind::Load,
            addr,
            value,
        }
    }

    /// Constructs a store event.
    pub fn store(addr: u32, value: u32) -> MmioEvent {
        MmioEvent {
            kind: MmioEventKind::Store,
            addr,
            value,
        }
    }
}

impl fmt::Display for MmioEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(\"{}\", 0x{:08x}, 0x{:08x})",
            self.kind, self.addr, self.value
        )
    }
}

/// The external-interaction parameter of the ISA semantics (§6.2).
///
/// A handler decides which addresses belong to it, answers loads, and
/// accepts stores. The machine only consults the handler for accesses that
/// fall outside RAM; accesses outside RAM that the handler also disclaims
/// are undefined behavior.
///
/// `tick` is called once per executed instruction so that devices with
/// internal latency (FIFO drains, PHY timing) can make progress; handlers
/// that don't need time can use the default empty implementation.
pub trait MmioHandler {
    /// True when this handler services `addr` for an access of width `size`.
    fn is_mmio(&self, addr: u32, size: AccessSize) -> bool;

    /// Services an MMIO load. Only called when `is_mmio` returned true.
    fn load(&mut self, addr: u32, size: AccessSize) -> u32;

    /// Services an MMIO store. Only called when `is_mmio` returned true.
    fn store(&mut self, addr: u32, size: AccessSize, value: u32);

    /// Advances device-internal time by one instruction/cycle.
    fn tick(&mut self) {}

    /// Advances device-internal time by `n` instructions at once.
    ///
    /// The batched stepping loop ([`SpecMachine::run_block`]) accumulates
    /// ticks across straight-line instruction runs and flushes them here
    /// immediately before the next MMIO interaction (and at block exit), so
    /// the handler observes exactly as many ticks before each access as it
    /// would under per-instruction ticking. The default implementation
    /// replays `tick` `n` times — always equivalent; handlers whose tick is
    /// a plain counter (or a no-op) can override it with O(1) work.
    ///
    /// [`SpecMachine::run_block`]: crate::SpecMachine::run_block
    fn tick_n(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }
}

/// A handler that claims no addresses: every non-RAM access is undefined
/// behavior. Useful for pure computation tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoMmio;

impl NoMmio {
    /// Creates the empty handler.
    pub fn new() -> NoMmio {
        NoMmio
    }
}

impl MmioHandler for NoMmio {
    fn is_mmio(&self, _addr: u32, _size: AccessSize) -> bool {
        false
    }

    fn load(&mut self, _addr: u32, _size: AccessSize) -> u32 {
        unreachable!("NoMmio never claims an address")
    }

    fn store(&mut self, _addr: u32, _size: AccessSize, _value: u32) {
        unreachable!("NoMmio never claims an address")
    }

    fn tick_n(&mut self, _n: u64) {}
}

/// Forwarding impl so a `&mut H` can be used wherever a handler is needed.
impl<H: MmioHandler + ?Sized> MmioHandler for &mut H {
    fn is_mmio(&self, addr: u32, size: AccessSize) -> bool {
        (**self).is_mmio(addr, size)
    }

    fn load(&mut self, addr: u32, size: AccessSize) -> u32 {
        (**self).load(addr, size)
    }

    fn store(&mut self, addr: u32, size: AccessSize, value: u32) {
        (**self).store(addr, size, value)
    }

    fn tick(&mut self) {
        (**self).tick()
    }

    fn tick_n(&mut self, n: u64) {
        (**self).tick_n(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_display_matches_paper_notation() {
        let e = MmioEvent::load(0x1002_404C, 0x8000_0000);
        assert_eq!(e.to_string(), "(\"ld\", 0x1002404c, 0x80000000)");
        let e = MmioEvent::store(0x1001_200C, 1);
        assert_eq!(e.to_string(), "(\"st\", 0x1001200c, 0x00000001)");
    }

    #[test]
    fn access_size_bytes() {
        assert_eq!(AccessSize::Byte.bytes(), 1);
        assert_eq!(AccessSize::Half.bytes(), 2);
        assert_eq!(AccessSize::Word.bytes(), 4);
    }

    #[test]
    fn no_mmio_claims_nothing() {
        assert!(!NoMmio.is_mmio(0x1000_0000, AccessSize::Word));
    }
}

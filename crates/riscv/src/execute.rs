//! Instruction semantics, written once over [`Primitives`].
//!
//! This module is deliberately the *only* place in the workspace where the
//! meaning of each RV32IM instruction is spelled out for the software side;
//! the hardware models use the shared combinational functions in the
//! `processor` crate, and the integration tests check the two against each
//! other. That mirrors the paper's structure, where the compiler's RISC-V
//! specification and the Kami processor's are reconciled by proof (§5.8).

use crate::isa::Instruction;
use crate::mmio::AccessSize;
use crate::primitives::{Primitives, Trap};
use crate::word;

/// Executes one already-fetched, already-decoded instruction against a
/// machine exposing [`Primitives`].
///
/// The default next-pc (pc+4) is assumed to have been set by the machine's
/// step function; `execute` overrides it only for taken control flow.
///
/// # Errors
///
/// Propagates errors from the machine's `load`, `store`, and `trap`
/// primitives; `execute` itself introduces no other failure modes.
pub fn execute<P: Primitives>(p: &mut P, inst: &Instruction) -> Result<(), P::Error> {
    use Instruction::*;
    let pc = p.pc();
    match *inst {
        Lui { rd, imm20 } => p.set_register(rd, imm20 << 12),
        Auipc { rd, imm20 } => p.set_register(rd, pc.wrapping_add(imm20 << 12)),
        Jal { rd, offset } => {
            let target = pc.wrapping_add(offset as u32);
            if !word::is_aligned(target, 4) {
                return p.trap(Trap::MisalignedJump { target });
            }
            p.set_register(rd, pc.wrapping_add(4));
            p.set_next_pc(target);
        }
        Jalr { rd, rs1, offset } => {
            // Per the ISA, the low bit of the computed target is cleared.
            let target = p.get_register(rs1).wrapping_add(offset as u32) & !1;
            if !word::is_aligned(target, 4) {
                return p.trap(Trap::MisalignedJump { target });
            }
            p.set_register(rd, pc.wrapping_add(4));
            p.set_next_pc(target);
        }
        Beq { rs1, rs2, offset } => branch(p, pc, offset, |a, b| a == b, rs1, rs2)?,
        Bne { rs1, rs2, offset } => branch(p, pc, offset, |a, b| a != b, rs1, rs2)?,
        Blt { rs1, rs2, offset } => branch(p, pc, offset, word::lts, rs1, rs2)?,
        Bge { rs1, rs2, offset } => branch(p, pc, offset, |a, b| !word::lts(a, b), rs1, rs2)?,
        Bltu { rs1, rs2, offset } => branch(p, pc, offset, word::ltu, rs1, rs2)?,
        Bgeu { rs1, rs2, offset } => branch(p, pc, offset, |a, b| !word::ltu(a, b), rs1, rs2)?,
        Lb { rd, rs1, offset } => {
            let v = load(p, AccessSize::Byte, rs1, offset)?;
            p.set_register(rd, word::sext8(v));
        }
        Lh { rd, rs1, offset } => {
            let v = load(p, AccessSize::Half, rs1, offset)?;
            p.set_register(rd, word::sext16(v));
        }
        Lw { rd, rs1, offset } => {
            let v = load(p, AccessSize::Word, rs1, offset)?;
            p.set_register(rd, v);
        }
        Lbu { rd, rs1, offset } => {
            let v = load(p, AccessSize::Byte, rs1, offset)?;
            p.set_register(rd, v & 0xFF);
        }
        Lhu { rd, rs1, offset } => {
            let v = load(p, AccessSize::Half, rs1, offset)?;
            p.set_register(rd, v & 0xFFFF);
        }
        Sb { rs1, rs2, offset } => store(p, AccessSize::Byte, rs1, rs2, offset)?,
        Sh { rs1, rs2, offset } => store(p, AccessSize::Half, rs1, rs2, offset)?,
        Sw { rs1, rs2, offset } => store(p, AccessSize::Word, rs1, rs2, offset)?,
        Addi { rd, rs1, imm } => alu_imm(p, rd, rs1, imm, |a, b| a.wrapping_add(b)),
        Slti { rd, rs1, imm } => alu_imm(p, rd, rs1, imm, |a, b| word::lts(a, b) as u32),
        Sltiu { rd, rs1, imm } => alu_imm(p, rd, rs1, imm, |a, b| word::ltu(a, b) as u32),
        Xori { rd, rs1, imm } => alu_imm(p, rd, rs1, imm, |a, b| a ^ b),
        Ori { rd, rs1, imm } => alu_imm(p, rd, rs1, imm, |a, b| a | b),
        Andi { rd, rs1, imm } => alu_imm(p, rd, rs1, imm, |a, b| a & b),
        Slli { rd, rs1, shamt } => {
            let v = word::sll(p.get_register(rs1), shamt);
            p.set_register(rd, v);
        }
        Srli { rd, rs1, shamt } => {
            let v = word::srl(p.get_register(rs1), shamt);
            p.set_register(rd, v);
        }
        Srai { rd, rs1, shamt } => {
            let v = word::sra(p.get_register(rs1), shamt);
            p.set_register(rd, v);
        }
        Add { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, |a, b| a.wrapping_add(b)),
        Sub { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, |a, b| a.wrapping_sub(b)),
        Sll { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, word::sll),
        Slt { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, |a, b| word::lts(a, b) as u32),
        Sltu { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, |a, b| word::ltu(a, b) as u32),
        Xor { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, |a, b| a ^ b),
        Srl { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, word::srl),
        Sra { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, word::sra),
        Or { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, |a, b| a | b),
        And { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, |a, b| a & b),
        Mul { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, |a, b| a.wrapping_mul(b)),
        Mulh { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, word::mulh),
        Mulhsu { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, word::mulhsu),
        Mulhu { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, word::mulhu),
        Div { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, word::div),
        Divu { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, word::divu),
        Rem { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, word::rem),
        Remu { rd, rs1, rs2 } => alu(p, rd, rs1, rs2, word::remu),
        Fence => p.fence(),
        FenceI => p.fence_i(),
        Ecall => return p.trap(Trap::EnvironmentCall),
        Ebreak => return p.trap(Trap::Breakpoint),
        Invalid { word } => return p.trap(Trap::IllegalInstruction { word }),
    }
    Ok(())
}

fn branch<P: Primitives>(
    p: &mut P,
    pc: u32,
    offset: i32,
    cond: impl Fn(u32, u32) -> bool,
    rs1: crate::isa::Reg,
    rs2: crate::isa::Reg,
) -> Result<(), P::Error> {
    let a = p.get_register(rs1);
    let b = p.get_register(rs2);
    if cond(a, b) {
        let target = pc.wrapping_add(offset as u32);
        if !word::is_aligned(target, 4) {
            return p.trap(Trap::MisalignedJump { target });
        }
        p.set_next_pc(target);
    }
    Ok(())
}

fn load<P: Primitives>(
    p: &mut P,
    size: AccessSize,
    rs1: crate::isa::Reg,
    offset: i32,
) -> Result<u32, P::Error> {
    let addr = p.get_register(rs1).wrapping_add(offset as u32);
    p.load(size, addr)
}

fn store<P: Primitives>(
    p: &mut P,
    size: AccessSize,
    rs1: crate::isa::Reg,
    rs2: crate::isa::Reg,
    offset: i32,
) -> Result<(), P::Error> {
    let addr = p.get_register(rs1).wrapping_add(offset as u32);
    let value = p.get_register(rs2);
    p.store(size, addr, value)
}

fn alu_imm<P: Primitives>(
    p: &mut P,
    rd: crate::isa::Reg,
    rs1: crate::isa::Reg,
    imm: i32,
    f: impl Fn(u32, u32) -> u32,
) {
    let v = f(p.get_register(rs1), imm as u32);
    p.set_register(rd, v);
}

fn alu<P: Primitives>(
    p: &mut P,
    rd: crate::isa::Reg,
    rs1: crate::isa::Reg,
    rs2: crate::isa::Reg,
    f: impl Fn(u32, u32) -> u32,
) {
    let v = f(p.get_register(rs1), p.get_register(rs2));
    p.set_register(rd, v);
}

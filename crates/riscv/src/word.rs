//! Operations on 32-bit machine words.
//!
//! All arithmetic in the ISA (and in the Bedrock2 source language, which
//! shares the machine's word type — the *bitwidth* parameter of Table 2 in
//! the paper) is modular arithmetic on `u32`, with signed views where an
//! instruction calls for them. These helpers centralize the places where
//! signedness and the RISC-V division convention matter.

/// Sign-extend the low `bits` bits of `value` to a full 32-bit word.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 32.
///
/// # Examples
///
/// ```
/// use riscv_spec::word::sign_extend;
/// assert_eq!(sign_extend(0xFFF, 12), 0xFFFF_FFFF);
/// assert_eq!(sign_extend(0x7FF, 12), 0x7FF);
/// ```
pub fn sign_extend(value: u32, bits: u32) -> u32 {
    assert!((1..=32).contains(&bits), "bit width out of range: {bits}");
    if bits == 32 {
        return value;
    }
    let shift = 32 - bits;
    (((value << shift) as i32) >> shift) as u32
}

/// Sign-extend a byte loaded from memory (`lb`).
pub fn sext8(v: u32) -> u32 {
    v as u8 as i8 as i32 as u32
}

/// Sign-extend a halfword loaded from memory (`lh`).
pub fn sext16(v: u32) -> u32 {
    v as u16 as i16 as i32 as u32
}

/// Signed less-than, as used by `slt`, `slti`, `blt`, and `bge`.
pub fn lts(a: u32, b: u32) -> bool {
    (a as i32) < (b as i32)
}

/// Unsigned less-than, as used by `sltu`, `sltiu`, `bltu`, and `bgeu`.
pub fn ltu(a: u32, b: u32) -> bool {
    a < b
}

/// Arithmetic (sign-propagating) right shift; only the low 5 bits of the
/// shift amount are used, as RISC-V specifies.
pub fn sra(a: u32, shamt: u32) -> u32 {
    ((a as i32) >> (shamt & 31)) as u32
}

/// Logical right shift; only the low 5 bits of the shift amount are used.
pub fn srl(a: u32, shamt: u32) -> u32 {
    a >> (shamt & 31)
}

/// Left shift; only the low 5 bits of the shift amount are used.
pub fn sll(a: u32, shamt: u32) -> u32 {
    a << (shamt & 31)
}

/// Upper 32 bits of the signed×signed 64-bit product (`mulh`).
pub fn mulh(a: u32, b: u32) -> u32 {
    (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32
}

/// Upper 32 bits of the signed×unsigned 64-bit product (`mulhsu`).
pub fn mulhsu(a: u32, b: u32) -> u32 {
    (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32
}

/// Upper 32 bits of the unsigned×unsigned 64-bit product (`mulhu`).
pub fn mulhu(a: u32, b: u32) -> u32 {
    (((a as u64) * (b as u64)) >> 32) as u32
}

/// Signed division with the RISC-V conventions: division by zero yields
/// `-1`, and the overflowing case `i32::MIN / -1` yields `i32::MIN`.
///
/// Note that Bedrock2's source semantics leave division by zero
/// *unspecified* while its compiler assumes the RISC-V result (footnote 3 of
/// the paper); this function is that concrete RISC-V result.
pub fn div(a: u32, b: u32) -> u32 {
    let (a, b) = (a as i32, b as i32);
    if b == 0 {
        u32::MAX
    } else if a == i32::MIN && b == -1 {
        i32::MIN as u32
    } else {
        (a / b) as u32
    }
}

/// Unsigned division; division by zero yields all-ones.
pub fn divu(a: u32, b: u32) -> u32 {
    a.checked_div(b).unwrap_or(u32::MAX)
}

/// Signed remainder with the RISC-V conventions: remainder by zero yields
/// the dividend, and `i32::MIN rem -1` yields 0.
pub fn rem(a: u32, b: u32) -> u32 {
    let (a, b) = (a as i32, b as i32);
    if b == 0 {
        a as u32
    } else if a == i32::MIN && b == -1 {
        0
    } else {
        (a % b) as u32
    }
}

/// Unsigned remainder; remainder by zero yields the dividend.
pub fn remu(a: u32, b: u32) -> u32 {
    a.checked_rem(b).unwrap_or(a)
}

/// True when `addr` is a multiple of `align` (which must be a power of two).
pub fn is_aligned(addr: u32, align: u32) -> bool {
    debug_assert!(align.is_power_of_two());
    addr & (align - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_extend_widths() {
        assert_eq!(sign_extend(0b1, 1), u32::MAX);
        assert_eq!(sign_extend(0b0, 1), 0);
        assert_eq!(sign_extend(0x800, 12), 0xFFFF_F800);
        assert_eq!(sign_extend(0x8_0000, 20), 0xFFF8_0000);
        assert_eq!(sign_extend(0x7_FFFF, 20), 0x7_FFFF);
        assert_eq!(sign_extend(0xDEAD_BEEF, 32), 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "bit width out of range")]
    fn sign_extend_zero_width_panics() {
        sign_extend(0, 0);
    }

    #[test]
    fn byte_and_half_extension() {
        assert_eq!(sext8(0x80), 0xFFFF_FF80);
        assert_eq!(sext8(0x7F), 0x7F);
        assert_eq!(sext16(0x8000), 0xFFFF_8000);
        assert_eq!(sext16(0x7FFF), 0x7FFF);
    }

    #[test]
    fn comparisons() {
        assert!(lts(u32::MAX, 0)); // -1 < 0 signed
        assert!(!ltu(u32::MAX, 0)); // max !< 0 unsigned
        assert!(ltu(0, 1));
        assert!(lts(0x8000_0000, 0x7FFF_FFFF)); // INT_MIN < INT_MAX
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(sll(1, 33), 2); // shamt masked to 1
        assert_eq!(srl(4, 33), 2);
        assert_eq!(sra(0x8000_0000, 31), u32::MAX);
        assert_eq!(sra(0x8000_0000, 63), u32::MAX); // masked to 31
    }

    #[test]
    fn mul_upper_halves() {
        assert_eq!(mulhu(u32::MAX, u32::MAX), 0xFFFF_FFFE);
        assert_eq!(mulh(u32::MAX, u32::MAX), 0); // (-1)*(-1)=1, high 0
        assert_eq!(mulh(0x8000_0000, 2), u32::MAX); // INT_MIN*2 = -2^32
        assert_eq!(mulhsu(u32::MAX, 2), u32::MAX); // -1 * 2 = -2, high = -1
    }

    #[test]
    fn riscv_division_conventions() {
        assert_eq!(div(7, 0), u32::MAX);
        assert_eq!(divu(7, 0), u32::MAX);
        assert_eq!(rem(7, 0), 7);
        assert_eq!(remu(7, 0), 7);
        assert_eq!(div(i32::MIN as u32, u32::MAX), i32::MIN as u32);
        assert_eq!(rem(i32::MIN as u32, u32::MAX), 0);
        assert_eq!(div(u32::MAX, 2), 0); // -1 / 2 = 0 signed
        assert_eq!(divu(u32::MAX, 2), 0x7FFF_FFFF);
        assert_eq!(rem((-7i32) as u32, 3), (-1i32) as u32);
    }

    #[test]
    fn alignment() {
        assert!(is_aligned(0, 4));
        assert!(is_aligned(8, 4));
        assert!(!is_aligned(2, 4));
        assert!(is_aligned(2, 2));
        assert!(is_aligned(1, 1));
    }
}

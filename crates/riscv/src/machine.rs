//! The software-oriented specification machine (`swstep` of §5.8).
//!
//! [`SpecMachine`] is the machine model the compiler is checked against. It
//! is strict about everything the software contract is strict about:
//!
//! * fetching from outside RAM, from a misaligned pc, or from an address
//!   whose executability was revoked by a store (XAddrs, §5.6) is an error;
//! * misaligned data accesses are errors;
//! * loads/stores outside RAM go to the [`MmioHandler`] if it claims the
//!   address (word-sized, word-aligned only — `isMMIOAligned` of §6.2) and
//!   are recorded in [`SpecMachine::trace`]; otherwise they are errors.
//!
//! "Error" here is the executable stand-in for the paper's undefined
//! behavior: a verified stack must never reach one, and the differential
//! tests treat any occurrence as a failed run.

use crate::decode::decode;
use crate::execute::execute;
use crate::icache::DecodeCache;
use crate::isa::{InstrClass, Instruction, Reg};
use crate::mem::Memory;
use crate::mmio::{AccessSize, MmioEvent, MmioHandler};
use crate::primitives::{Primitives, Trap};
use crate::word;
use crate::xaddrs::XAddrs;
use obs::{Counters, Histogram};
use std::fmt;

/// Undefined behavior and traps, made explicit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// pc left RAM.
    FetchOutOfRange {
        /// The pc that could not be fetched.
        addr: u32,
    },
    /// pc not 4-byte aligned.
    FetchMisaligned {
        /// The misaligned pc.
        addr: u32,
    },
    /// pc points at bytes whose executability was revoked by a store and
    /// not restored by `fence.i` (§5.6).
    FetchNonExecutable {
        /// The stale pc.
        addr: u32,
    },
    /// The fetched word does not decode.
    IllegalInstruction {
        /// pc of the undecodable word.
        addr: u32,
        /// The undecodable word.
        word: u32,
    },
    /// A jump/branch targeted a misaligned address.
    MisalignedJump {
        /// pc of the jump.
        addr: u32,
        /// The misaligned target.
        target: u32,
    },
    /// A data access was not aligned to its own width.
    MisalignedAccess {
        /// The misaligned data address.
        addr: u32,
        /// The access width.
        size: AccessSize,
    },
    /// A data access fell outside RAM and was not claimed by the MMIO
    /// handler.
    AccessFault {
        /// The faulting data address.
        addr: u32,
        /// The access width.
        size: AccessSize,
    },
    /// An MMIO access was not word-sized and word-aligned.
    MmioMisaligned {
        /// The faulting MMIO address.
        addr: u32,
        /// The access width.
        size: AccessSize,
    },
    /// `ecall` executed (no execution environment exists).
    EnvironmentCall {
        /// pc of the `ecall`.
        addr: u32,
    },
    /// `ebreak` executed (also the halt convention of test harnesses).
    Breakpoint {
        /// pc of the `ebreak`.
        addr: u32,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use MachineError::*;
        match *self {
            FetchOutOfRange { addr } => write!(f, "instruction fetch outside RAM at 0x{addr:08x}"),
            FetchMisaligned { addr } => write!(f, "misaligned instruction fetch at 0x{addr:08x}"),
            FetchNonExecutable { addr } => {
                write!(f, "fetch from non-executable (stale) address 0x{addr:08x}")
            }
            IllegalInstruction { addr, word } => {
                write!(f, "illegal instruction 0x{word:08x} at 0x{addr:08x}")
            }
            MisalignedJump { addr, target } => {
                write!(f, "misaligned jump from 0x{addr:08x} to 0x{target:08x}")
            }
            MisalignedAccess { addr, size } => {
                write!(f, "misaligned {}-byte access at 0x{addr:08x}", size.bytes())
            }
            AccessFault { addr, size } => {
                write!(f, "{}-byte access fault at 0x{addr:08x}", size.bytes())
            }
            MmioMisaligned { addr, size } => {
                write!(
                    f,
                    "non-word MMIO access ({} bytes) at 0x{addr:08x}",
                    size.bytes()
                )
            }
            EnvironmentCall { addr } => write!(f, "ecall at 0x{addr:08x}"),
            Breakpoint { addr } => write!(f, "ebreak at 0x{addr:08x}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Result of running with bounded fuel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The program reached `ebreak` (the harness halt convention) after
    /// executing this many instructions (not counting the `ebreak`).
    Halted {
        /// Retired instruction count.
        steps: u64,
    },
    /// Fuel ran out with the program still executing.
    OutOfFuel,
}

/// Execution statistics of a [`SpecMachine`], exported as `spec.*`
/// counters by [`SpecStats::counters`]. Retired-mix buckets follow
/// [`InstrClass`]; MMIO gap latencies are measured in retired
/// instructions between consecutive MMIO events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpecStats {
    /// Retired instructions per [`InstrClass::Alu`].
    pub retired_alu: u64,
    /// Retired M-extension multiplies/divides.
    pub retired_muldiv: u64,
    /// Retired loads.
    pub retired_load: u64,
    /// Retired stores.
    pub retired_store: u64,
    /// Retired conditional branches.
    pub retired_branch: u64,
    /// Retired jumps.
    pub retired_jump: u64,
    /// Retired system instructions (fences; trapping ones never retire).
    pub retired_system: u64,
    /// MMIO loads recorded in the trace.
    pub mmio_loads: u64,
    /// MMIO stores recorded in the trace.
    pub mmio_stores: u64,
    /// Fetches served by the predecoded instruction cache.
    pub icache_hits: u64,
    /// Fetches that took the full checked fetch-and-decode path (every
    /// fetch, when the cache is disabled).
    pub icache_misses: u64,
    /// Distribution of gaps between consecutive MMIO events, in retired
    /// instructions.
    pub mmio_gap: Histogram,
    last_mmio_instret: Option<u64>,
}

impl SpecStats {
    fn retire(&mut self, class: InstrClass) {
        let slot = match class {
            InstrClass::Alu => &mut self.retired_alu,
            InstrClass::MulDiv => &mut self.retired_muldiv,
            InstrClass::Load => &mut self.retired_load,
            InstrClass::Store => &mut self.retired_store,
            InstrClass::Branch => &mut self.retired_branch,
            InstrClass::Jump => &mut self.retired_jump,
            InstrClass::System => &mut self.retired_system,
        };
        *slot += 1;
    }

    /// Folds a whole block's retired-mix histogram in at once, indexed by
    /// `InstrClass as usize` (the batched twin of [`SpecStats::retire`],
    /// called once per `run_block` instead of once per instruction).
    fn retire_mix(&mut self, counts: &[u64; 7]) {
        self.retired_alu += counts[InstrClass::Alu as usize];
        self.retired_muldiv += counts[InstrClass::MulDiv as usize];
        self.retired_load += counts[InstrClass::Load as usize];
        self.retired_store += counts[InstrClass::Store as usize];
        self.retired_branch += counts[InstrClass::Branch as usize];
        self.retired_jump += counts[InstrClass::Jump as usize];
        self.retired_system += counts[InstrClass::System as usize];
    }

    fn mmio_event(&mut self, instret: u64, is_load: bool) {
        if is_load {
            self.mmio_loads += 1;
        } else {
            self.mmio_stores += 1;
        }
        if let Some(last) = self.last_mmio_instret {
            self.mmio_gap.record(instret - last);
        }
        self.last_mmio_instret = Some(instret);
    }

    /// Exports the stats as `spec.*` named counters.
    pub fn counters(&self) -> Counters {
        let mut c = Counters::new();
        c.set("spec.retired.alu", self.retired_alu);
        c.set("spec.retired.muldiv", self.retired_muldiv);
        c.set("spec.retired.load", self.retired_load);
        c.set("spec.retired.store", self.retired_store);
        c.set("spec.retired.branch", self.retired_branch);
        c.set("spec.retired.jump", self.retired_jump);
        c.set("spec.retired.system", self.retired_system);
        c.set("spec.mmio.loads", self.mmio_loads);
        c.set("spec.mmio.stores", self.mmio_stores);
        c.set("spec.mmio.gap_count", self.mmio_gap.count());
        c.set("spec.mmio.gap_max", self.mmio_gap.max());
        c.set("spec.mmio.gap_mean", self.mmio_gap.mean().round() as u64);
        c.set("riscv.spec.icache_hit", self.icache_hits);
        c.set("riscv.spec.icache_miss", self.icache_misses);
        c
    }
}

/// The specification machine: registers, pc, RAM, XAddrs, MMIO, and the I/O
/// trace.
#[derive(Clone, Debug)]
pub struct SpecMachine<M> {
    /// The 32 integer registers; index 0 is forced to zero on read.
    pub regs: [u32; 32],
    /// Address of the instruction about to execute.
    pub pc: u32,
    next_pc: u32,
    /// RAM, based at address 0.
    pub mem: Memory,
    /// Executable-address set (§5.6).
    pub xaddrs: XAddrs,
    /// The external-interaction parameter (§6.2).
    pub mmio: M,
    /// Every MMIO interaction so far, oldest first.
    pub trace: Vec<MmioEvent>,
    /// Retired instruction count.
    pub instret: u64,
    /// Execution statistics (retired mix, MMIO gaps).
    pub stats: SpecStats,
    /// Predecoded instruction cache (private: its coherence with `mem` and
    /// `xaddrs` is maintained by the store path; see
    /// [`SpecMachine::flush_icache`] for out-of-band memory writes).
    icache: DecodeCache,
    /// Device ticks owed but not yet delivered — nonzero only while inside
    /// [`SpecMachine::run_block`], which flushes them before every MMIO
    /// interaction and at block exit.
    pending_ticks: u64,
}

impl<M: MmioHandler> SpecMachine<M> {
    /// Creates a machine with the given RAM and MMIO handler; pc = 0, all
    /// registers zero, all of RAM executable (the boot state of §5.6).
    pub fn new(mem: Memory, mmio: M) -> SpecMachine<M> {
        let len = mem.size();
        SpecMachine {
            regs: [0; 32],
            pc: 0,
            next_pc: 0,
            mem,
            xaddrs: XAddrs::all(len),
            mmio,
            trace: Vec::new(),
            instret: 0,
            stats: SpecStats::default(),
            icache: DecodeCache::new(len),
            pending_ticks: 0,
        }
    }

    /// Disables (or re-enables) the predecoded instruction cache, dropping
    /// its contents. With the cache off, every fetch takes the seed
    /// interpreter's checked fetch-and-decode path — the baseline the
    /// `spec_step_throughput` bench and the `icache_equiv` property tests
    /// compare against.
    pub fn set_icache_enabled(&mut self, enabled: bool) {
        self.icache.set_enabled(enabled);
    }

    /// Whether the predecoded instruction cache is active.
    pub fn icache_enabled(&self) -> bool {
        self.icache.enabled()
    }

    /// Drops every predecoded entry. Must be called after mutating `mem`
    /// directly (i.e. not through the machine's own store path), which the
    /// cache cannot observe; [`SpecMachine::load_program`] does this
    /// automatically.
    pub fn flush_icache(&mut self) {
        self.icache.flush();
    }

    /// Reads a register (`x0` reads as zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize]
        }
    }

    /// Writes a register (writes to `x0` are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = v;
        }
    }

    /// Places encoded instruction words into RAM at `addr` without revoking
    /// executability (this models initializing the memory image before
    /// reset, the paper's `bytes_at (instrencode …) 0 mem0` precondition).
    ///
    /// # Panics
    ///
    /// Panics if the words do not fit in RAM.
    pub fn load_program(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.mem
                .store_u32(addr + (i as u32) * 4, *w)
                .expect("program image must fit in RAM");
        }
        // Re-imaging memory bypasses the store path, so cached decodes may
        // no longer match RAM; start cold.
        self.icache.flush();
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns the first [`MachineError`] encountered; the machine state is
    /// left as of the error (partial effects of the failing instruction may
    /// have applied, as in real UB — callers must not continue stepping).
    pub fn step(&mut self) -> Result<(), MachineError> {
        let inst = self.fetch()?;
        self.next_pc = self.pc.wrapping_add(4);
        execute(self, &inst)?;
        self.pc = self.next_pc;
        self.instret += 1;
        self.stats.retire(inst.class());
        self.mmio.tick();
        Ok(())
    }

    /// Fetches the instruction at the current pc: one table load on a
    /// cache hit, the full checked fetch-and-decode on a miss.
    #[inline]
    fn fetch(&mut self) -> Result<Instruction, MachineError> {
        let pc = self.pc;
        if let Some(inst) = self.icache.get(pc) {
            // A present entry was filled from an aligned, in-range,
            // executable slot and is killed by every store into it, so only
            // executability (revocable out-of-band via the public `xaddrs`)
            // still needs re-checking — one bitmap word, since `get`
            // guarantees alignment.
            if self.xaddrs.contains_aligned_word(pc) {
                self.stats.icache_hits += 1;
                return Ok(inst);
            }
        }
        self.fetch_slow(pc)
    }

    /// The miss path: the seed interpreter's per-fetch checks, hoisted here
    /// so the hot loop pays them once per cache fill instead of once per
    /// step.
    fn fetch_slow(&mut self, pc: u32) -> Result<Instruction, MachineError> {
        if !word::is_aligned(pc, 4) {
            return Err(MachineError::FetchMisaligned { addr: pc });
        }
        if !self.mem.in_range(pc, 4) {
            return Err(MachineError::FetchOutOfRange { addr: pc });
        }
        if !self.xaddrs.contains_range(pc, 4) {
            return Err(MachineError::FetchNonExecutable { addr: pc });
        }
        let inst_word = self.mem.load_u32(pc).expect("range checked above");
        let inst = decode(inst_word);
        self.stats.icache_misses += 1;
        self.icache.fill(pc, inst);
        Ok(inst)
    }

    /// Delivers any deferred device ticks. Called before every MMIO
    /// interaction and at `run_block` exit, so a handler observes exactly
    /// as many ticks before each access as under per-step ticking.
    fn flush_ticks(&mut self) {
        if self.pending_ticks > 0 {
            let n = self.pending_ticks;
            self.pending_ticks = 0;
            self.mmio.tick_n(n);
        }
    }

    /// Runs up to `fuel` instructions in a batched hot loop: fetches come
    /// from the decode cache, device ticks are accumulated and delivered in
    /// bulk at MMIO boundaries ([`MmioHandler::tick_n`]), and the retired-
    /// mix counters are flushed once per block. Observably identical to
    /// `fuel` calls of [`SpecMachine::step`].
    ///
    /// Returns [`StepOutcome::Halted`] at `ebreak` with the number of
    /// instructions retired *by this call* (not counting the `ebreak`), or
    /// [`StepOutcome::OutOfFuel`].
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] other than [`MachineError::Breakpoint`], which
    /// is the halt convention.
    pub fn run_block(&mut self, fuel: u64) -> Result<StepOutcome, MachineError> {
        let start = self.instret;
        let mut mix = [0u64; 7];
        let mut outcome = Ok(StepOutcome::OutOfFuel);
        for _ in 0..fuel {
            let inst = match self.fetch() {
                Ok(inst) => inst,
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            };
            self.next_pc = self.pc.wrapping_add(4);
            if let Err(e) = execute(self, &inst) {
                outcome = if let MachineError::Breakpoint { .. } = e {
                    Ok(StepOutcome::Halted {
                        steps: self.instret - start,
                    })
                } else {
                    Err(e)
                };
                break;
            }
            self.pc = self.next_pc;
            self.instret += 1;
            mix[inst.class() as usize] += 1;
            self.pending_ticks += 1;
        }
        self.flush_ticks();
        self.stats.retire_mix(&mix);
        outcome
    }

    /// Runs until `ebreak`, an error, or `fuel` instructions (an alias of
    /// [`SpecMachine::run_block`], kept for the harnesses' vocabulary).
    ///
    /// [`StepOutcome::Halted::steps`] counts the instructions retired *in
    /// this call*, so resuming a machine and halting again reports only the
    /// second leg.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] other than [`MachineError::Breakpoint`], which
    /// is the halt convention and reported as [`StepOutcome::Halted`].
    pub fn run_until_ebreak(&mut self, fuel: u64) -> Result<StepOutcome, MachineError> {
        self.run_block(fuel)
    }

    /// Runs exactly `n` instructions or until an error (including
    /// [`MachineError::Breakpoint`], which [`SpecMachine::run_block`] would
    /// instead report as a halt).
    ///
    /// # Errors
    ///
    /// The first [`MachineError`] encountered, with the number of
    /// successfully retired instructions recoverable from
    /// [`SpecMachine::instret`].
    pub fn run(&mut self, n: u64) -> Result<(), MachineError> {
        match self.run_block(n)? {
            StepOutcome::Halted { .. } => Err(MachineError::Breakpoint { addr: self.pc }),
            StepOutcome::OutOfFuel => Ok(()),
        }
    }

    /// Decodes the instruction at the current pc without executing it.
    pub fn current_instruction(&self) -> Option<Instruction> {
        self.mem.load_u32(self.pc).ok().map(decode)
    }
}

impl<M: MmioHandler> Primitives for SpecMachine<M> {
    type Error = MachineError;

    fn get_register(&mut self, r: Reg) -> u32 {
        self.reg(r)
    }

    fn set_register(&mut self, r: Reg, v: u32) {
        self.set_reg(r, v);
    }

    fn load(&mut self, size: AccessSize, addr: u32) -> Result<u32, MachineError> {
        let n = size.bytes();
        if self.mem.in_range(addr, n) {
            if !word::is_aligned(addr, n) {
                return Err(MachineError::MisalignedAccess { addr, size });
            }
            Ok(match size {
                AccessSize::Byte => self.mem.load_u8(addr).unwrap() as u32,
                AccessSize::Half => self.mem.load_u16(addr).unwrap() as u32,
                AccessSize::Word => self.mem.load_u32(addr).unwrap(),
            })
        } else {
            // Deliver deferred ticks before the device decides or acts, so
            // batched runs are indistinguishable from per-step ticking.
            self.flush_ticks();
            if self.mmio.is_mmio(addr, size) {
                if size != AccessSize::Word || !word::is_aligned(addr, 4) {
                    return Err(MachineError::MmioMisaligned { addr, size });
                }
                let value = self.mmio.load(addr, size);
                self.trace.push(MmioEvent::load(addr, value));
                self.stats.mmio_event(self.instret, true);
                Ok(value)
            } else {
                Err(MachineError::AccessFault { addr, size })
            }
        }
    }

    fn store(&mut self, size: AccessSize, addr: u32, value: u32) -> Result<(), MachineError> {
        let n = size.bytes();
        if self.mem.in_range(addr, n) {
            if !word::is_aligned(addr, n) {
                return Err(MachineError::MisalignedAccess { addr, size });
            }
            match size {
                AccessSize::Byte => self.mem.store_u8(addr, value as u8).unwrap(),
                AccessSize::Half => self.mem.store_u16(addr, value as u16).unwrap(),
                AccessSize::Word => self.mem.store_u32(addr, value).unwrap(),
            }
            // The store revokes executability of the touched bytes (§5.6)
            // and, with it, any predecoded instruction over them — the
            // cache staleness discipline is the XAddrs discipline.
            self.xaddrs.remove_range(addr, n);
            self.icache.invalidate_range(addr, n);
            Ok(())
        } else {
            self.flush_ticks();
            if self.mmio.is_mmio(addr, size) {
                if size != AccessSize::Word || !word::is_aligned(addr, 4) {
                    return Err(MachineError::MmioMisaligned { addr, size });
                }
                self.mmio.store(addr, size, value);
                self.trace.push(MmioEvent::store(addr, value));
                self.stats.mmio_event(self.instret, false);
                Ok(())
            } else {
                Err(MachineError::AccessFault { addr, size })
            }
        }
    }

    fn pc(&self) -> u32 {
        self.pc
    }

    fn set_next_pc(&mut self, target: u32) {
        self.next_pc = target;
    }

    fn fence_i(&mut self) {
        // Resynchronize: everything in RAM becomes executable again.
        self.xaddrs.add_range(0, self.mem.size());
    }

    fn trap(&mut self, t: Trap) -> Result<(), MachineError> {
        let addr = self.pc;
        Err(match t {
            Trap::MisalignedJump { target } => MachineError::MisalignedJump { addr, target },
            Trap::EnvironmentCall => MachineError::EnvironmentCall { addr },
            Trap::Breakpoint => MachineError::Breakpoint { addr },
            Trap::IllegalInstruction { word } => MachineError::IllegalInstruction { addr, word },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::isa::Instruction as I;
    use crate::mmio::NoMmio;

    fn machine_with(words: &[I]) -> SpecMachine<NoMmio> {
        let encoded: Vec<u32> = words.iter().map(encode).collect();
        let mut m = SpecMachine::new(Memory::with_size(0x1000), NoMmio);
        m.load_program(0, &encoded);
        m
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut m = machine_with(&[
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 40,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X5,
                imm: 2,
            },
            I::Ebreak,
        ]);
        let out = m.run_until_ebreak(10).unwrap();
        assert_eq!(out, StepOutcome::Halted { steps: 2 });
        assert_eq!(m.reg(Reg::X6), 42);
    }

    #[test]
    fn halted_steps_count_this_call_not_cumulative() {
        // Regression: `Halted { steps }` used to report cumulative
        // `instret`. Halt once, rewind pc, halt again: the second call must
        // report only its own retired instructions.
        let mut m = machine_with(&[
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 1,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X0,
                imm: 2,
            },
            I::Ebreak,
        ]);
        assert_eq!(
            m.run_until_ebreak(10).unwrap(),
            StepOutcome::Halted { steps: 2 }
        );
        m.pc = 4; // resume over the second addi only
        assert_eq!(
            m.run_until_ebreak(10).unwrap(),
            StepOutcome::Halted { steps: 1 },
            "second call must not include the first call's instret"
        );
        assert_eq!(m.instret, 3);
    }

    #[test]
    fn icache_counts_hits_and_misses() {
        // 3-instruction loop run many times: 4 distinct slots miss once
        // (the 3 loop bodies + ebreak... loop: addi, addi, bne backward).
        let mut m = machine_with(&[
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 50,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: -1,
            },
            I::Bne {
                rs1: Reg::X5,
                rs2: Reg::X0,
                offset: -4,
            },
            I::Ebreak,
        ]);
        let out = m.run_until_ebreak(1000).unwrap();
        assert!(matches!(out, StepOutcome::Halted { .. }));
        assert_eq!(m.stats.icache_misses, 4, "one fill per distinct slot");
        assert_eq!(
            m.stats.icache_hits + m.stats.icache_misses,
            m.instret + 1, // the trapping ebreak fetches but does not retire
        );
    }

    #[test]
    fn disabled_icache_matches_enabled_execution() {
        let prog = [
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 5,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X0,
                imm: 0,
            },
            I::Beq {
                rs1: Reg::X5,
                rs2: Reg::X0,
                offset: 16,
            },
            I::Add {
                rd: Reg::X6,
                rs1: Reg::X6,
                rs2: Reg::X5,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: -1,
            },
            I::Jal {
                rd: Reg::X0,
                offset: -12,
            },
            I::Ebreak,
        ];
        let mut cached = machine_with(&prog);
        let mut uncached = machine_with(&prog);
        uncached.set_icache_enabled(false);
        assert_eq!(
            cached.run_until_ebreak(100).unwrap(),
            uncached.run_until_ebreak(100).unwrap()
        );
        assert_eq!(cached.regs, uncached.regs);
        assert_eq!(cached.pc, uncached.pc);
        assert_eq!(cached.instret, uncached.instret);
        assert_eq!(uncached.stats.icache_hits, 0);
        assert!(cached.stats.icache_hits > 0);
    }

    #[test]
    fn self_modifying_store_kills_cached_decode() {
        // Warm the cache over a nop slot, overwrite it with an ebreak,
        // fence.i, and loop back into it: the machine must execute the NEW
        // instruction, not the predecoded stale one.
        let ebreak_word = encode(&I::Ebreak);
        let hi = ebreak_word.wrapping_add(0x800) >> 12;
        let lo = crate::word::sign_extend(ebreak_word & 0xFFF, 12) as i32;
        let mut m = machine_with(&[
            // 0: jump over the patch slot to warm nothing yet
            I::Addi {
                rd: Reg::X7,
                rs1: Reg::X0,
                imm: 1,
            },
            // 4: the slot that gets patched (first pass: nop)
            I::NOP,
            // 8: first pass? then patch and loop back
            I::Beq {
                rs1: Reg::X7,
                rs2: Reg::X0,
                offset: 20, // second pass: skip to final ebreak at 28
            },
            I::Lui {
                rd: Reg::X5,
                imm20: hi,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: lo,
            },
            I::Sw {
                rs1: Reg::X0,
                rs2: Reg::X5,
                offset: 4, // patch slot 4 with ebreak
            },
            I::FenceI,
            // 28: set x7=0 and jump back to the patched slot
            I::Addi {
                rd: Reg::X7,
                rs1: Reg::X0,
                imm: 0,
            },
            I::Jal {
                rd: Reg::X0,
                offset: -28, // back to address 4
            },
        ]);
        let out = m.run_until_ebreak(50).unwrap();
        assert!(
            matches!(out, StepOutcome::Halted { .. }),
            "patched ebreak must execute: stale cached nop would loop to fuel ({out:?})"
        );
        assert_eq!(m.pc, 4, "halted at the patched slot");
    }

    #[test]
    fn batched_ticks_match_per_step_ticks() {
        // A device whose loads expose its tick count: run_block's deferred
        // tick delivery must be invisible.
        #[derive(Default)]
        struct Clock {
            ticks: u64,
            batched: u64,
        }
        impl MmioHandler for Clock {
            fn is_mmio(&self, addr: u32, _s: AccessSize) -> bool {
                addr >= 0x1000_0000
            }
            fn load(&mut self, _a: u32, _s: AccessSize) -> u32 {
                self.ticks as u32
            }
            fn store(&mut self, _a: u32, _s: AccessSize, _v: u32) {}
            fn tick(&mut self) {
                self.ticks += 1;
            }
            fn tick_n(&mut self, n: u64) {
                self.ticks += n;
                self.batched += 1;
            }
        }
        let prog = [
            I::Lui {
                rd: Reg::X5,
                imm20: 0x10000,
            },
            I::NOP,
            I::NOP,
            I::Lw {
                rd: Reg::X6,
                rs1: Reg::X5,
                offset: 0,
            },
            I::NOP,
            I::Lw {
                rd: Reg::X7,
                rs1: Reg::X5,
                offset: 0,
            },
            I::Ebreak,
        ];
        let words: Vec<u32> = prog.iter().map(encode).collect();
        let mut stepped = SpecMachine::new(Memory::with_size(0x1000), Clock::default());
        stepped.load_program(0, &words);
        while stepped.step().is_ok() {}

        let mut blocked = SpecMachine::new(Memory::with_size(0x1000), Clock::default());
        blocked.load_program(0, &words);
        blocked.run_until_ebreak(100).unwrap();

        assert_eq!(stepped.reg(Reg::X6), blocked.reg(Reg::X6));
        assert_eq!(stepped.reg(Reg::X7), blocked.reg(Reg::X7));
        assert_eq!(stepped.mmio.ticks, blocked.mmio.ticks);
        assert_eq!(stepped.trace, blocked.trace);
        assert!(blocked.mmio.batched > 0, "block path must batch ticks");
    }

    #[test]
    fn x0_is_immutable() {
        let mut m = machine_with(&[
            I::Addi {
                rd: Reg::X0,
                rs1: Reg::X0,
                imm: 99,
            },
            I::Ebreak,
        ]);
        m.run_until_ebreak(10).unwrap();
        assert_eq!(m.reg(Reg::X0), 0);
    }

    #[test]
    fn loop_with_branch() {
        // x5 = 5; x6 = 0; while (x5 != 0) { x6 += x5; x5 -= 1; }
        let mut m = machine_with(&[
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: 5,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X0,
                imm: 0,
            },
            I::Beq {
                rs1: Reg::X5,
                rs2: Reg::X0,
                offset: 16,
            },
            I::Add {
                rd: Reg::X6,
                rs1: Reg::X6,
                rs2: Reg::X5,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: -1,
            },
            I::Jal {
                rd: Reg::X0,
                offset: -12,
            },
            I::Ebreak,
        ]);
        m.run_until_ebreak(100).unwrap();
        assert_eq!(m.reg(Reg::X6), 15);
    }

    #[test]
    fn function_call_and_return() {
        // jal x1, +12 ; ebreak ; <pad> ; addi x10,x0,7 ; jalr x0, 0(x1)
        let mut m = machine_with(&[
            I::Jal {
                rd: Reg::X1,
                offset: 12,
            },
            I::Ebreak,
            I::NOP,
            I::Addi {
                rd: Reg::X10,
                rs1: Reg::X0,
                imm: 7,
            },
            I::Jalr {
                rd: Reg::X0,
                rs1: Reg::X1,
                offset: 0,
            },
        ]);
        m.run_until_ebreak(10).unwrap();
        assert_eq!(m.reg(Reg::X10), 7);
        assert_eq!(m.reg(Reg::X1), 4); // return address
    }

    #[test]
    fn memory_roundtrip_and_sign_extension() {
        let mut m = machine_with(&[
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X0,
                imm: -1,
            },
            I::Sb {
                rs1: Reg::X0,
                rs2: Reg::X5,
                offset: 0x100,
            },
            I::Lb {
                rd: Reg::X6,
                rs1: Reg::X0,
                offset: 0x100,
            },
            I::Lbu {
                rd: Reg::X7,
                rs1: Reg::X0,
                offset: 0x100,
            },
            I::Ebreak,
        ]);
        m.run_until_ebreak(10).unwrap();
        assert_eq!(m.reg(Reg::X6), u32::MAX);
        assert_eq!(m.reg(Reg::X7), 0xFF);
    }

    #[test]
    fn stale_instruction_fetch_is_ub() {
        // Store over the *next* instruction, then fall into it.
        let mut m = machine_with(&[
            I::Sw {
                rs1: Reg::X0,
                rs2: Reg::X0,
                offset: 4,
            },
            I::Ebreak, // overwritten by the store; fetching it is now UB
        ]);
        m.step().unwrap();
        assert_eq!(m.step(), Err(MachineError::FetchNonExecutable { addr: 4 }));
    }

    #[test]
    fn fence_i_makes_modified_code_runnable() {
        // Store an ebreak over instruction slot 3, fence.i, run into it.
        let ebreak_word = encode(&I::Ebreak) as i32;
        assert!((0..2048).contains(&(ebreak_word & 0xFFF)));
        // Build: lui x5, %hi(ebreak); addi x5, x5, %lo; sw x5, 12(x0); fence.i; <slot>
        let hi = ((ebreak_word as u32).wrapping_add(0x800)) >> 12;
        let lo = (ebreak_word as u32 & 0xFFF) as i32;
        let lo = if lo >= 2048 { lo - 4096 } else { lo };
        let mut m = machine_with(&[
            I::Lui {
                rd: Reg::X5,
                imm20: hi,
            },
            I::Addi {
                rd: Reg::X5,
                rs1: Reg::X5,
                imm: lo,
            },
            I::Sw {
                rs1: Reg::X0,
                rs2: Reg::X5,
                offset: 16,
            },
            I::FenceI,
            I::NOP, // slot 16 — overwritten with ebreak
        ]);
        let out = m.run_until_ebreak(10).unwrap();
        assert!(matches!(out, StepOutcome::Halted { .. }));
    }

    #[test]
    fn misaligned_access_is_ub() {
        let mut m = machine_with(&[I::Lw {
            rd: Reg::X5,
            rs1: Reg::X0,
            offset: 0x101,
        }]);
        assert_eq!(
            m.step(),
            Err(MachineError::MisalignedAccess {
                addr: 0x101,
                size: AccessSize::Word
            })
        );
    }

    #[test]
    fn non_ram_non_mmio_access_is_ub() {
        let words = [encode(&I::Lw {
            rd: Reg::X5,
            rs1: Reg::X0,
            offset: 0x7FC,
        })];
        let mut m = SpecMachine::new(Memory::with_size(0x400), NoMmio);
        m.load_program(0, &words);
        assert!(matches!(m.step(), Err(MachineError::AccessFault { .. })));
    }

    #[test]
    fn illegal_instruction_reported_with_pc() {
        let mut m = SpecMachine::new(Memory::with_size(0x100), NoMmio);
        m.mem.store_u32(0, 0xFFFF_FFFF).unwrap();
        assert_eq!(
            m.step(),
            Err(MachineError::IllegalInstruction {
                addr: 0,
                word: 0xFFFF_FFFF
            })
        );
    }

    #[test]
    fn pc_leaving_ram_is_ub() {
        let mut m = machine_with(&[I::Jal {
            rd: Reg::X0,
            offset: 0x2000,
        }]);
        m.step().unwrap();
        assert_eq!(
            m.step(),
            Err(MachineError::FetchOutOfRange { addr: 0x2000 })
        );
    }

    #[test]
    fn mmio_trace_recording() {
        #[derive(Default)]
        struct Echo {
            last: u32,
        }
        impl MmioHandler for Echo {
            fn is_mmio(&self, addr: u32, _s: AccessSize) -> bool {
                (0x1000_0000..0x1000_1000).contains(&addr)
            }
            fn load(&mut self, _addr: u32, _s: AccessSize) -> u32 {
                self.last
            }
            fn store(&mut self, _addr: u32, _s: AccessSize, v: u32) {
                self.last = v;
            }
        }
        // lui x5, 0x10000; addi x6, x0, 7; sw x6, 0(x5); lw x7, 0(x5); ebreak
        let prog = [
            I::Lui {
                rd: Reg::X5,
                imm20: 0x10000,
            },
            I::Addi {
                rd: Reg::X6,
                rs1: Reg::X0,
                imm: 7,
            },
            I::Sw {
                rs1: Reg::X5,
                rs2: Reg::X6,
                offset: 0,
            },
            I::Lw {
                rd: Reg::X7,
                rs1: Reg::X5,
                offset: 0,
            },
            I::Ebreak,
        ];
        let words: Vec<u32> = prog.iter().map(encode).collect();
        let mut m = SpecMachine::new(Memory::with_size(0x1000), Echo::default());
        m.load_program(0, &words);
        m.run_until_ebreak(10).unwrap();
        assert_eq!(m.reg(Reg::X7), 7);
        assert_eq!(
            m.trace,
            vec![
                MmioEvent::store(0x1000_0000, 7),
                MmioEvent::load(0x1000_0000, 7)
            ]
        );
    }

    #[test]
    fn byte_mmio_access_is_ub() {
        struct Always;
        impl MmioHandler for Always {
            fn is_mmio(&self, _a: u32, _s: AccessSize) -> bool {
                true
            }
            fn load(&mut self, _a: u32, _s: AccessSize) -> u32 {
                0
            }
            fn store(&mut self, _a: u32, _s: AccessSize, _v: u32) {}
        }
        let prog = [I::Sb {
            rs1: Reg::X0,
            rs2: Reg::X0,
            offset: 0x7FF,
        }];
        let words: Vec<u32> = prog.iter().map(encode).collect();
        // RAM of 0x400 so 0x7FF is outside RAM -> goes to MMIO, but byte-sized.
        let mut m = SpecMachine::new(Memory::with_size(0x400), Always);
        m.load_program(0, &words);
        assert!(matches!(m.step(), Err(MachineError::MmioMisaligned { .. })));
    }
}

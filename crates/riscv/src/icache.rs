//! The predecoded-instruction cache behind [`SpecMachine`]'s fast fetch
//! path.
//!
//! The paper's Kami processor owes its speed to an eagerly-filled
//! instruction cache whose staleness discipline is exactly the XAddrs
//! store-revocation model (§5.6): a store may leave the I$ holding a stale
//! word, which is why fetching a stored-over address without `fence.i` is
//! undefined behavior at the software level. [`DecodeCache`] transplants
//! that idea into the simulator: each 4-byte instruction slot of RAM gets a
//! side-table entry holding its *decoded* form, filled on first fetch and
//! killed through the same store path that revokes executability. Because
//! every event that could make an entry stale also removes it, the cached
//! and uncached machines are observably identical by construction — the
//! property test in `tests/icache_equiv.rs` checks exactly that, including
//! on self-modifying programs.
//!
//! [`SpecMachine`]: crate::SpecMachine

use crate::isa::Instruction;

/// A direct-mapped (really: fully-indexed) predecode table over RAM.
///
/// Entry `i` caches the decoded instruction at byte address `4*i`, present
/// only if, at fill time, that address was 4-aligned, inside RAM, and
/// executable. Invariant: a present entry always equals
/// `decode(mem[4*i..4*i+4])`, because [`DecodeCache::invalidate_range`] is
/// called for every store into RAM (the XAddrs revocation path) and
/// [`DecodeCache::flush`] for every out-of-band memory rewrite
/// (`load_program`).
#[derive(Clone, Debug)]
pub struct DecodeCache {
    entries: Vec<Option<Instruction>>,
    enabled: bool,
}

impl DecodeCache {
    /// An empty cache covering `ram_bytes` of memory (one slot per aligned
    /// word; a trailing partial word is not cacheable).
    pub fn new(ram_bytes: u32) -> DecodeCache {
        DecodeCache {
            entries: vec![None; (ram_bytes / 4) as usize],
            enabled: true,
        }
    }

    /// Whether lookups and fills are active. A disabled cache behaves like
    /// the seed interpreter: every fetch re-decodes from memory.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the cache; disabling also drops every entry so
    /// that re-enabling starts cold.
    pub fn set_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.flush();
        }
        self.enabled = enabled;
    }

    /// The cached decode for `pc`, if present. Returns `None` (forcing the
    /// caller down the checked slow path) when the cache is disabled, `pc`
    /// is misaligned, or the slot is out of range or empty.
    #[inline]
    pub fn get(&self, pc: u32) -> Option<Instruction> {
        if !self.enabled || pc & 3 != 0 {
            return None;
        }
        *self.entries.get((pc >> 2) as usize)?
    }

    /// Records the decode of the word at `pc`. No-op when the cache is
    /// disabled or `pc` does not name an in-range aligned slot — the caller
    /// already performed the full fetch checks, so nothing is lost.
    #[inline]
    pub fn fill(&mut self, pc: u32, inst: Instruction) {
        if !self.enabled || pc & 3 != 0 {
            return;
        }
        if let Some(slot) = self.entries.get_mut((pc >> 2) as usize) {
            *slot = Some(inst);
        }
    }

    /// Kills every entry whose 4-byte slot overlaps `n` bytes at `addr` —
    /// the cache half of the store-revocation path. Out-of-range bytes are
    /// ignored, mirroring [`XAddrs::remove_range`].
    ///
    /// [`XAddrs::remove_range`]: crate::XAddrs::remove_range
    pub fn invalidate_range(&mut self, addr: u32, n: u32) {
        if n == 0 {
            return;
        }
        let first = (addr >> 2) as usize;
        if first >= self.entries.len() {
            return;
        }
        // A store of n bytes at addr touches slots addr/4 ..= (addr+n-1)/4
        // (at most two for the machine's n ≤ 4 accesses).
        let last = (((addr as u64 + n as u64 - 1) >> 2) as usize).min(self.entries.len() - 1);
        for slot in &mut self.entries[first..=last] {
            *slot = None;
        }
    }

    /// Drops every entry. Required after any memory mutation that bypasses
    /// the machine's store path (e.g. re-imaging RAM via `load_program` or
    /// poking `mem` directly).
    pub fn flush(&mut self) {
        self.entries.fill(None);
    }

    /// Number of currently present entries (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// True when no entry is present.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instruction as I;

    const NOP: I = I::NOP;
    const EBREAK: I = I::Ebreak;

    #[test]
    fn fill_then_get() {
        let mut c = DecodeCache::new(0x100);
        assert_eq!(c.get(8), None);
        c.fill(8, NOP);
        assert_eq!(c.get(8), Some(NOP));
        assert_eq!(c.get(12), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn misaligned_and_out_of_range_are_never_cached() {
        let mut c = DecodeCache::new(16);
        c.fill(2, NOP);
        c.fill(16, NOP);
        c.fill(0xFFFF_FFFC, NOP);
        assert!(c.is_empty());
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(16), None);
    }

    #[test]
    fn store_kills_overlapping_slots_only() {
        let mut c = DecodeCache::new(0x40);
        for pc in (0..0x40).step_by(4) {
            c.fill(pc, NOP);
        }
        // A word store at 6 straddles slots 1 and 2.
        c.invalidate_range(6, 4);
        assert_eq!(c.get(0), Some(NOP));
        assert_eq!(c.get(4), None);
        assert_eq!(c.get(8), None);
        assert_eq!(c.get(12), Some(NOP));
        // A byte store kills exactly one slot.
        c.invalidate_range(0x21, 1);
        assert_eq!(c.get(0x20), None);
        assert_eq!(c.get(0x24), Some(NOP));
    }

    #[test]
    fn invalidate_clamps_to_range() {
        let mut c = DecodeCache::new(16);
        c.fill(12, EBREAK);
        c.invalidate_range(14, 100); // runs past the end
        assert_eq!(c.get(12), None);
        c.invalidate_range(u32::MAX - 1, 4); // wholly outside, no panic
        c.invalidate_range(0, 0); // empty access, no-op
    }

    #[test]
    fn disabling_drops_entries_and_blocks_fills() {
        let mut c = DecodeCache::new(0x20);
        c.fill(0, NOP);
        c.set_enabled(false);
        assert!(c.is_empty());
        assert_eq!(c.get(0), None);
        c.fill(0, NOP);
        assert!(c.is_empty(), "disabled cache must not fill");
        c.set_enabled(true);
        c.fill(0, NOP);
        assert_eq!(c.get(0), Some(NOP));
    }

    #[test]
    fn zero_sized_ram() {
        let mut c = DecodeCache::new(0);
        c.fill(0, NOP);
        assert_eq!(c.get(0), None);
        c.invalidate_range(0, 4);
    }
}

//! The RV32IM instruction set as an abstract syntax type.
//!
//! Immediates are stored in *decoded* form: sign-extended byte offsets for
//! loads/stores/branches/jumps, the raw 20-bit field for `lui`/`auipc`, and
//! the 5-bit shift amount for shift-immediates. [`crate::encode()`](crate::encode::encode) and
//! [`crate::decode()`](crate::decode::decode) convert between this type and 32-bit instruction words
//! and are exact inverses on valid encodings (see the property tests).

use std::fmt;

/// One of the 32 integer registers `x0`–`x31`.
///
/// `x0` is hard-wired to zero: writes to it are discarded by every machine
/// model in this workspace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The zero register.
    pub const X0: Reg = Reg(0);
    /// Return-address register (`ra`) in the standard calling convention.
    pub const X1: Reg = Reg(1);
    /// Stack pointer (`sp`) in the standard calling convention.
    pub const X2: Reg = Reg(2);
    /// First temporary, used freely by generated code.
    pub const X5: Reg = Reg(5);
    /// Second temporary.
    pub const X6: Reg = Reg(6);
    /// Third temporary.
    pub const X7: Reg = Reg(7);
    /// First argument/return register (`a0`).
    pub const X10: Reg = Reg(10);
    /// Second argument/return register (`a1`).
    pub const X11: Reg = Reg(11);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Reg {
        assert!(index < 32, "register index out of range: {index}");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` when out of range.
    pub fn try_new(index: u8) -> Option<Reg> {
        if index < 32 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index, 0–31.
    pub fn index(self) -> u8 {
        self.0
    }

    /// True for `x0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterator over all 32 registers in order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// An RV32IM instruction.
///
/// Field conventions:
/// * `offset` fields are sign-extended byte offsets (branch/jump offsets are
///   even; `jal` offsets fit in 21 signed bits, branches in 13).
/// * `imm` fields are sign-extended 12-bit immediates.
/// * `imm20` is the raw upper-immediate field (0 ≤ imm20 < 2²⁰).
/// * `shamt` is a shift amount (0 ≤ shamt < 32).
///
/// [`Instruction::Invalid`] represents a word the decoder rejected; executing
/// it is undefined behavior at the [`crate::SpecMachine`] level, and traps the
/// hardware models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants mirror the RISC-V mnemonics one-to-one
pub enum Instruction {
    Lui { rd: Reg, imm20: u32 },
    Auipc { rd: Reg, imm20: u32 },
    Jal { rd: Reg, offset: i32 },
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    Beq { rs1: Reg, rs2: Reg, offset: i32 },
    Bne { rs1: Reg, rs2: Reg, offset: i32 },
    Blt { rs1: Reg, rs2: Reg, offset: i32 },
    Bge { rs1: Reg, rs2: Reg, offset: i32 },
    Bltu { rs1: Reg, rs2: Reg, offset: i32 },
    Bgeu { rs1: Reg, rs2: Reg, offset: i32 },
    Lb { rd: Reg, rs1: Reg, offset: i32 },
    Lh { rd: Reg, rs1: Reg, offset: i32 },
    Lw { rd: Reg, rs1: Reg, offset: i32 },
    Lbu { rd: Reg, rs1: Reg, offset: i32 },
    Lhu { rd: Reg, rs1: Reg, offset: i32 },
    Sb { rs1: Reg, rs2: Reg, offset: i32 },
    Sh { rs1: Reg, rs2: Reg, offset: i32 },
    Sw { rs1: Reg, rs2: Reg, offset: i32 },
    Addi { rd: Reg, rs1: Reg, imm: i32 },
    Slti { rd: Reg, rs1: Reg, imm: i32 },
    Sltiu { rd: Reg, rs1: Reg, imm: i32 },
    Xori { rd: Reg, rs1: Reg, imm: i32 },
    Ori { rd: Reg, rs1: Reg, imm: i32 },
    Andi { rd: Reg, rs1: Reg, imm: i32 },
    Slli { rd: Reg, rs1: Reg, shamt: u32 },
    Srli { rd: Reg, rs1: Reg, shamt: u32 },
    Srai { rd: Reg, rs1: Reg, shamt: u32 },
    Add { rd: Reg, rs1: Reg, rs2: Reg },
    Sub { rd: Reg, rs1: Reg, rs2: Reg },
    Sll { rd: Reg, rs1: Reg, rs2: Reg },
    Slt { rd: Reg, rs1: Reg, rs2: Reg },
    Sltu { rd: Reg, rs1: Reg, rs2: Reg },
    Xor { rd: Reg, rs1: Reg, rs2: Reg },
    Srl { rd: Reg, rs1: Reg, rs2: Reg },
    Sra { rd: Reg, rs1: Reg, rs2: Reg },
    Or { rd: Reg, rs1: Reg, rs2: Reg },
    And { rd: Reg, rs1: Reg, rs2: Reg },
    Mul { rd: Reg, rs1: Reg, rs2: Reg },
    Mulh { rd: Reg, rs1: Reg, rs2: Reg },
    Mulhsu { rd: Reg, rs1: Reg, rs2: Reg },
    Mulhu { rd: Reg, rs1: Reg, rs2: Reg },
    Div { rd: Reg, rs1: Reg, rs2: Reg },
    Divu { rd: Reg, rs1: Reg, rs2: Reg },
    Rem { rd: Reg, rs1: Reg, rs2: Reg },
    Remu { rd: Reg, rs1: Reg, rs2: Reg },
    Fence,
    FenceI,
    Ecall,
    Ebreak,
    Invalid { word: u32 },
}

/// Broad instruction classes, used for the spec machine's retired-mix
/// counters (`spec.retired.*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Integer ALU ops, including `lui`/`auipc` and immediates.
    Alu,
    /// M-extension multiply/divide.
    MulDiv,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// Conditional branches.
    Branch,
    /// `jal`/`jalr`.
    Jump,
    /// Fences, `ecall`/`ebreak`, and undecodable words.
    System,
}

impl Instruction {
    /// A canonical no-op (`addi x0, x0, 0`).
    pub const NOP: Instruction = Instruction::Addi {
        rd: Reg::X0,
        rs1: Reg::X0,
        imm: 0,
    };

    /// The mnemonic for this instruction (lowercase, no operands).
    pub fn mnemonic(&self) -> &'static str {
        use Instruction::*;
        match self {
            Lui { .. } => "lui",
            Auipc { .. } => "auipc",
            Jal { .. } => "jal",
            Jalr { .. } => "jalr",
            Beq { .. } => "beq",
            Bne { .. } => "bne",
            Blt { .. } => "blt",
            Bge { .. } => "bge",
            Bltu { .. } => "bltu",
            Bgeu { .. } => "bgeu",
            Lb { .. } => "lb",
            Lh { .. } => "lh",
            Lw { .. } => "lw",
            Lbu { .. } => "lbu",
            Lhu { .. } => "lhu",
            Sb { .. } => "sb",
            Sh { .. } => "sh",
            Sw { .. } => "sw",
            Addi { .. } => "addi",
            Slti { .. } => "slti",
            Sltiu { .. } => "sltiu",
            Xori { .. } => "xori",
            Ori { .. } => "ori",
            Andi { .. } => "andi",
            Slli { .. } => "slli",
            Srli { .. } => "srli",
            Srai { .. } => "srai",
            Add { .. } => "add",
            Sub { .. } => "sub",
            Sll { .. } => "sll",
            Slt { .. } => "slt",
            Sltu { .. } => "sltu",
            Xor { .. } => "xor",
            Srl { .. } => "srl",
            Sra { .. } => "sra",
            Or { .. } => "or",
            And { .. } => "and",
            Mul { .. } => "mul",
            Mulh { .. } => "mulh",
            Mulhsu { .. } => "mulhsu",
            Mulhu { .. } => "mulhu",
            Div { .. } => "div",
            Divu { .. } => "divu",
            Rem { .. } => "rem",
            Remu { .. } => "remu",
            Fence => "fence",
            FenceI => "fence.i",
            Ecall => "ecall",
            Ebreak => "ebreak",
            Invalid { .. } => ".word",
        }
    }

    /// The broad class of this instruction, for retired-mix accounting.
    pub fn class(&self) -> InstrClass {
        use Instruction::*;
        match self {
            Lb { .. } | Lh { .. } | Lw { .. } | Lbu { .. } | Lhu { .. } => InstrClass::Load,
            Sb { .. } | Sh { .. } | Sw { .. } => InstrClass::Store,
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Bltu { .. } | Bgeu { .. } => {
                InstrClass::Branch
            }
            Jal { .. } | Jalr { .. } => InstrClass::Jump,
            Mul { .. }
            | Mulh { .. }
            | Mulhsu { .. }
            | Mulhu { .. }
            | Div { .. }
            | Divu { .. }
            | Rem { .. }
            | Remu { .. } => InstrClass::MulDiv,
            Fence | FenceI | Ecall | Ebreak | Invalid { .. } => InstrClass::System,
            _ => InstrClass::Alu,
        }
    }

    /// True when this instruction can transfer control somewhere other than
    /// the next sequential instruction.
    pub fn is_control_flow(&self) -> bool {
        use Instruction::*;
        matches!(
            self,
            Jal { .. }
                | Jalr { .. }
                | Beq { .. }
                | Bne { .. }
                | Blt { .. }
                | Bge { .. }
                | Bltu { .. }
                | Bgeu { .. }
        )
    }

    /// The destination register this instruction writes, if any (writes to
    /// `x0` are still reported; they have no architectural effect).
    pub fn dest(&self) -> Option<Reg> {
        use Instruction::*;
        match *self {
            Lui { rd, .. } | Auipc { rd, .. } | Jal { rd, .. } | Jalr { rd, .. } => Some(rd),
            Lb { rd, .. } | Lh { rd, .. } | Lw { rd, .. } | Lbu { rd, .. } | Lhu { rd, .. } => {
                Some(rd)
            }
            Addi { rd, .. }
            | Slti { rd, .. }
            | Sltiu { rd, .. }
            | Xori { rd, .. }
            | Ori { rd, .. }
            | Andi { rd, .. }
            | Slli { rd, .. }
            | Srli { rd, .. }
            | Srai { rd, .. } => Some(rd),
            Add { rd, .. }
            | Sub { rd, .. }
            | Sll { rd, .. }
            | Slt { rd, .. }
            | Sltu { rd, .. }
            | Xor { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Or { rd, .. }
            | And { rd, .. }
            | Mul { rd, .. }
            | Mulh { rd, .. }
            | Mulhsu { rd, .. }
            | Mulhu { rd, .. }
            | Div { rd, .. }
            | Divu { rd, .. }
            | Rem { rd, .. }
            | Remu { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// The source registers this instruction reads (up to two).
    pub fn sources(&self) -> Vec<Reg> {
        use Instruction::*;
        match *self {
            Jalr { rs1, .. } => vec![rs1],
            Beq { rs1, rs2, .. }
            | Bne { rs1, rs2, .. }
            | Blt { rs1, rs2, .. }
            | Bge { rs1, rs2, .. }
            | Bltu { rs1, rs2, .. }
            | Bgeu { rs1, rs2, .. } => {
                vec![rs1, rs2]
            }
            Lb { rs1, .. }
            | Lh { rs1, .. }
            | Lw { rs1, .. }
            | Lbu { rs1, .. }
            | Lhu { rs1, .. } => vec![rs1],
            Sb { rs1, rs2, .. } | Sh { rs1, rs2, .. } | Sw { rs1, rs2, .. } => vec![rs1, rs2],
            Addi { rs1, .. }
            | Slti { rs1, .. }
            | Sltiu { rs1, .. }
            | Xori { rs1, .. }
            | Ori { rs1, .. }
            | Andi { rs1, .. }
            | Slli { rs1, .. }
            | Srli { rs1, .. }
            | Srai { rs1, .. } => vec![rs1],
            Add { rs1, rs2, .. }
            | Sub { rs1, rs2, .. }
            | Sll { rs1, rs2, .. }
            | Slt { rs1, rs2, .. }
            | Sltu { rs1, rs2, .. }
            | Xor { rs1, rs2, .. }
            | Srl { rs1, rs2, .. }
            | Sra { rs1, rs2, .. }
            | Or { rs1, rs2, .. }
            | And { rs1, rs2, .. }
            | Mul { rs1, rs2, .. }
            | Mulh { rs1, rs2, .. }
            | Mulhsu { rs1, rs2, .. }
            | Mulhu { rs1, rs2, .. }
            | Div { rs1, rs2, .. }
            | Divu { rs1, rs2, .. }
            | Rem { rs1, rs2, .. }
            | Remu { rs1, rs2, .. } => {
                vec![rs1, rs2]
            }
            _ => vec![],
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::disasm::disassemble(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_construction() {
        assert_eq!(Reg::new(31).index(), 31);
        assert_eq!(Reg::try_new(32), None);
        assert_eq!(Reg::try_new(7), Some(Reg::new(7)));
        assert!(Reg::X0.is_zero());
        assert!(!Reg::X1.is_zero());
        assert_eq!(Reg::all().count(), 32);
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn reg_out_of_range_panics() {
        Reg::new(32);
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::new(13).to_string(), "x13");
    }

    #[test]
    fn dest_and_sources() {
        let i = Instruction::Add {
            rd: Reg::X5,
            rs1: Reg::X6,
            rs2: Reg::X7,
        };
        assert_eq!(i.dest(), Some(Reg::X5));
        assert_eq!(i.sources(), vec![Reg::X6, Reg::X7]);

        let s = Instruction::Sw {
            rs1: Reg::X2,
            rs2: Reg::X10,
            offset: -4,
        };
        assert_eq!(s.dest(), None);
        assert_eq!(s.sources(), vec![Reg::X2, Reg::X10]);

        assert_eq!(Instruction::Ecall.sources(), vec![]);
    }

    #[test]
    fn control_flow_classification() {
        assert!(Instruction::Jal {
            rd: Reg::X0,
            offset: 8
        }
        .is_control_flow());
        assert!(!Instruction::NOP.is_control_flow());
        assert!(!Instruction::Fence.is_control_flow());
    }
}

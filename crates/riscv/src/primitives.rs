//! The primitive operations in terms of which instruction semantics are
//! defined once and for all.
//!
//! Following riscv-coq (§5.4 of the paper), [`crate::execute()`](crate::execute::execute) never touches
//! a machine-state representation directly: it only calls methods of this
//! trait. Different machines give the primitives different meanings — the
//! [`crate::SpecMachine`] treats a [`Trap`] as a hard error (undefined
//! behavior from the software contract's point of view), while a test
//! harness could choose to log and continue. This is the "RISC-V as
//! specified by riscv-coq" interface box of Figure 3 in the paper.

use crate::isa::Reg;
use crate::mmio::AccessSize;

/// An exceptional outcome of executing one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// A jump or taken branch targeted an address that is not 4-byte
    /// aligned.
    MisalignedJump {
        /// The misaligned target address.
        target: u32,
    },
    /// An `ecall` was executed. The embedded stack has no execution
    /// environment, so this is fatal.
    EnvironmentCall,
    /// An `ebreak` was executed (used as the halt convention by tests).
    Breakpoint,
    /// The fetched word does not decode to an implemented instruction.
    IllegalInstruction {
        /// The undecodable instruction word.
        word: u32,
    },
}

/// State-access primitives of the RISC-V semantics.
///
/// Implementors decide what memory is, what happens on I/O, and whether a
/// trap is recoverable. `execute` guarantees it never calls
/// [`Primitives::set_register`] with `x0` having an architectural effect —
/// implementors must discard such writes (the provided machines do).
pub trait Primitives {
    /// The implementor's error type (`execute` is polymorphic in it).
    type Error;

    /// Reads a register; `x0` must read as zero.
    fn get_register(&mut self, r: Reg) -> u32;

    /// Writes a register; writes to `x0` must be discarded.
    fn set_register(&mut self, r: Reg, v: u32);

    /// Loads `size` bytes at `addr`, zero-extended into a word.
    ///
    /// # Errors
    ///
    /// Implementation-defined: out-of-range, misaligned, or device errors.
    fn load(&mut self, size: AccessSize, addr: u32) -> Result<u32, Self::Error>;

    /// Stores the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Implementation-defined: out-of-range, misaligned, or device errors.
    fn store(&mut self, size: AccessSize, addr: u32, value: u32) -> Result<(), Self::Error>;

    /// The address of the instruction currently executing.
    fn pc(&self) -> u32;

    /// Sets the address of the *next* instruction (committed by the
    /// machine's step function after `execute` returns).
    fn set_next_pc(&mut self, target: u32);

    /// Memory fence; a no-op on all in-order machines in this workspace.
    fn fence(&mut self) {}

    /// Instruction fence: resynchronizes instruction fetch with data memory
    /// (restores XAddrs executability in machines that track it).
    fn fence_i(&mut self) {}

    /// Reports a trap.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the trap is fatal for this machine (the common
    /// case); may return `Ok(())` in lenient harnesses.
    fn trap(&mut self, t: Trap) -> Result<(), Self::Error>;
}

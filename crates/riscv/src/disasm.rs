//! Textual disassembly of instructions, in the operand order used by
//! standard RISC-V assemblers.

use crate::isa::Instruction;

/// Renders one instruction as assembly text.
///
/// # Examples
///
/// ```
/// use riscv_spec::{disassemble, Instruction, Reg};
/// let i = Instruction::Lw { rd: Reg::X10, rs1: Reg::X2, offset: 8 };
/// assert_eq!(disassemble(&i), "lw x10, 8(x2)");
/// ```
pub fn disassemble(inst: &Instruction) -> String {
    use Instruction::*;
    let m = inst.mnemonic();
    match *inst {
        Lui { rd, imm20 } | Auipc { rd, imm20 } => format!("{m} {rd}, 0x{imm20:x}"),
        Jal { rd, offset } => format!("{m} {rd}, {offset}"),
        Jalr { rd, rs1, offset } => format!("{m} {rd}, {offset}({rs1})"),
        Beq { rs1, rs2, offset }
        | Bne { rs1, rs2, offset }
        | Blt { rs1, rs2, offset }
        | Bge { rs1, rs2, offset }
        | Bltu { rs1, rs2, offset }
        | Bgeu { rs1, rs2, offset } => format!("{m} {rs1}, {rs2}, {offset}"),
        Lb { rd, rs1, offset }
        | Lh { rd, rs1, offset }
        | Lw { rd, rs1, offset }
        | Lbu { rd, rs1, offset }
        | Lhu { rd, rs1, offset } => format!("{m} {rd}, {offset}({rs1})"),
        Sb { rs1, rs2, offset } | Sh { rs1, rs2, offset } | Sw { rs1, rs2, offset } => {
            format!("{m} {rs2}, {offset}({rs1})")
        }
        Addi { rd, rs1, imm }
        | Slti { rd, rs1, imm }
        | Sltiu { rd, rs1, imm }
        | Xori { rd, rs1, imm }
        | Ori { rd, rs1, imm }
        | Andi { rd, rs1, imm } => format!("{m} {rd}, {rs1}, {imm}"),
        Slli { rd, rs1, shamt } | Srli { rd, rs1, shamt } | Srai { rd, rs1, shamt } => {
            format!("{m} {rd}, {rs1}, {shamt}")
        }
        Add { rd, rs1, rs2 }
        | Sub { rd, rs1, rs2 }
        | Sll { rd, rs1, rs2 }
        | Slt { rd, rs1, rs2 }
        | Sltu { rd, rs1, rs2 }
        | Xor { rd, rs1, rs2 }
        | Srl { rd, rs1, rs2 }
        | Sra { rd, rs1, rs2 }
        | Or { rd, rs1, rs2 }
        | And { rd, rs1, rs2 }
        | Mul { rd, rs1, rs2 }
        | Mulh { rd, rs1, rs2 }
        | Mulhsu { rd, rs1, rs2 }
        | Mulhu { rd, rs1, rs2 }
        | Div { rd, rs1, rs2 }
        | Divu { rd, rs1, rs2 }
        | Rem { rd, rs1, rs2 }
        | Remu { rd, rs1, rs2 } => format!("{m} {rd}, {rs1}, {rs2}"),
        Fence | FenceI | Ecall | Ebreak => m.to_string(),
        Invalid { word } => format!(".word 0x{word:08x}"),
    }
}

/// Disassembles a whole program with addresses, one instruction per line,
/// starting at `base`. Useful for debugging compiler output.
pub fn disassemble_program(base: u32, insts: &[Instruction]) -> String {
    let mut out = String::new();
    for (i, inst) in insts.iter().enumerate() {
        let addr = base.wrapping_add((i * 4) as u32);
        out.push_str(&format!("{addr:08x}:  {}\n", disassemble(inst)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    #[test]
    fn formats() {
        assert_eq!(
            disassemble(&Instruction::Addi {
                rd: Reg::X1,
                rs1: Reg::X2,
                imm: -3
            }),
            "addi x1, x2, -3"
        );
        assert_eq!(
            disassemble(&Instruction::Sw {
                rs1: Reg::X2,
                rs2: Reg::X10,
                offset: 8
            }),
            "sw x10, 8(x2)"
        );
        assert_eq!(
            disassemble(&Instruction::Lui {
                rd: Reg::X5,
                imm20: 0x10024
            }),
            "lui x5, 0x10024"
        );
        assert_eq!(disassemble(&Instruction::Ecall), "ecall");
        assert_eq!(
            disassemble(&Instruction::Invalid { word: 0xDEAD }),
            ".word 0x0000dead"
        );
    }

    #[test]
    fn program_listing_has_addresses() {
        let listing = disassemble_program(0x100, &[Instruction::NOP, Instruction::Fence]);
        assert!(listing.contains("00000100:  addi x0, x0, 0"));
        assert!(listing.contains("00000104:  fence"));
    }
}

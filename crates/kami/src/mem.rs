//! A word-addressed memory port with byte enables.
//!
//! The baseline Kami processor only supported word accesses; supporting
//! `lb`/`sb` required adding byte-enable signals to the memory interface
//! (§5.5). [`BeMemory`] is that interface: every access names a word
//! address and a 4-bit byte-enable mask. The hardware models perform only
//! such accesses; narrower architectural accesses are realized by masks and
//! shifts in the datapath, exactly as in RTL.

/// Word-addressed memory with byte-enable writes. Addresses wrap modulo the
/// memory size (hardware has no notion of "out of bounds"; the *software*
/// contract's undefined behavior shows up as wrapping here, §5.8).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BeMemory {
    words: Vec<u32>,
}

impl BeMemory {
    /// Zero-initialized memory of `bytes` bytes (rounded up to a word).
    pub fn with_size(bytes: u32) -> BeMemory {
        BeMemory {
            words: vec![0; (bytes as usize).div_ceil(4)],
        }
    }

    /// Memory initialized from a byte image.
    pub fn from_image(image: &[u8], bytes: u32) -> BeMemory {
        let mut m = BeMemory::with_size(bytes);
        for (i, b) in image.iter().enumerate() {
            let w = i / 4;
            let sh = (i % 4) * 8;
            m.words[w] = (m.words[w] & !(0xFF << sh)) | ((*b as u32) << sh);
        }
        m
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    fn index(&self, addr: u32) -> usize {
        // Word address, wrapping modulo the memory size: high address bits
        // are simply ignored, as in the Kami model (§5.8).
        ((addr as usize) / 4) % self.words.len()
    }

    /// Reads the word containing byte address `addr` (low 2 bits ignored).
    pub fn read(&self, addr: u32) -> u32 {
        self.words[self.index(addr)]
    }

    /// Writes the bytes of `value` selected by the 4-bit `byte_enable`
    /// mask into the word containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `byte_enable` has bits above the low 4 set.
    pub fn write(&mut self, addr: u32, value: u32, byte_enable: u8) {
        assert!(byte_enable <= 0xF, "byte enable is a 4-bit mask");
        let i = self.index(addr);
        let mut w = self.words[i];
        for lane in 0..4 {
            if byte_enable >> lane & 1 == 1 {
                let sh = lane * 8;
                w = (w & !(0xFF << sh)) | (value & (0xFF << sh));
            }
        }
        self.words[i] = w;
    }

    /// The full contents as bytes (little-endian), for end-of-run
    /// comparison against other machine models.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// A snapshot of the raw words (used by the instruction cache's eager
    /// reset-time fill, §5.5).
    pub fn words(&self) -> &[u32] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_enables_select_lanes() {
        let mut m = BeMemory::with_size(16);
        m.write(0, 0xAABB_CCDD, 0b1111);
        assert_eq!(m.read(0), 0xAABB_CCDD);
        m.write(0, 0x0000_00EE, 0b0001);
        assert_eq!(m.read(0), 0xAABB_CCEE);
        m.write(0, 0x1122_0000, 0b1100);
        assert_eq!(m.read(0), 0x1122_CCEE);
    }

    #[test]
    fn addresses_wrap() {
        let mut m = BeMemory::with_size(16);
        m.write(4, 7, 0xF);
        assert_eq!(m.read(4 + 16), 7, "high address bits are ignored");
        assert_eq!(m.read(5), 7, "low 2 bits are ignored");
    }

    #[test]
    fn image_round_trips() {
        let img = [1u8, 2, 3, 4, 5];
        let m = BeMemory::from_image(&img, 8);
        assert_eq!(m.read(0), 0x0403_0201);
        assert_eq!(m.read(4), 0x0000_0005);
        assert_eq!(&m.to_bytes()[..5], &img);
    }

    #[test]
    #[should_panic(expected = "4-bit mask")]
    fn oversized_byte_enable_panics() {
        BeMemory::with_size(4).write(0, 0, 0x1F);
    }
}

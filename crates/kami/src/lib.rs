//! A Kami-flavored hardware simulation framework.
//!
//! Kami [Choi et al., ICFP 2017] models hardware as modules with private
//! registers, *rules* that make atomic state changes, and methods; behavior
//! is a set of label traces under **one-rule-at-a-time** semantics (§5.7 of
//! the PLDI 2021 paper). This crate provides the executable analogues used
//! by the `processor` crate:
//!
//! * [`Fifo`] — the bounded FIFOs that connect pipeline stages (the ■ boxes
//!   of Figure 4);
//! * [`RegFile`] and [`Scoreboard`] — the register file and the busy-bit
//!   interlock;
//! * [`BeMemory`] — a word-addressed memory port with *byte enables*, the
//!   signal the paper's authors had to add to support `lb`/`sb` (§5.5);
//! * [`RuleBased`] and [`Scheduler`] — rule-style execution: a module
//!   exposes named rules, and a scheduler cycle fires each enabled rule
//!   once, in priority order, which is one valid serialization of the
//!   concurrent hardware (the Bluespec compiler guarantee the paper relies
//!   on);
//! * [`TraceEvent`] — cycle-stamped labels; the MMIO method-call labels are
//!   the observable behavior refinement is stated over.

pub mod fifo;
pub mod label;
pub mod mem;
pub mod module;
pub mod regfile;

pub use fifo::Fifo;
pub use label::{LabelTrace, TraceEvent};
pub use mem::BeMemory;
pub use module::{RuleBased, RuleOutcome, Scheduler};
pub use regfile::{RegFile, Scoreboard};

//! Bounded FIFOs connecting pipeline stages.

use std::collections::VecDeque;

/// A bounded FIFO with the Bluespec-style interface: `enq` is only legal
/// when not full, `deq`/`first` only when not empty; the guards are
/// exposed so rules can check their own readiness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Fifo<T> {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// True when an `enq` would be legal.
    pub fn can_enq(&self) -> bool {
        self.items.len() < self.capacity
    }

    /// True when a `deq` or `first` would be legal.
    pub fn can_deq(&self) -> bool {
        !self.items.is_empty()
    }

    /// Enqueues an element.
    ///
    /// # Panics
    ///
    /// Panics when full — rules must check [`Fifo::can_enq`] in their
    /// guard, as the corresponding hardware method is only *ready* when
    /// not full.
    pub fn enq(&mut self, item: T) {
        assert!(self.can_enq(), "enq on full FIFO");
        self.items.push_back(item);
    }

    /// Dequeues the oldest element.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn deq(&mut self) -> T {
        self.items.pop_front().expect("deq on empty FIFO")
    }

    /// The oldest element without removing it.
    pub fn first(&self) -> Option<&T> {
        self.items.front()
    }

    /// Number of buffered elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Discards all contents (used by pipeline flushes).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_guards() {
        let mut f = Fifo::new(2);
        assert!(f.can_enq());
        assert!(!f.can_deq());
        f.enq(1);
        f.enq(2);
        assert!(!f.can_enq());
        assert_eq!(f.first(), Some(&1));
        assert_eq!(f.deq(), 1);
        assert_eq!(f.deq(), 2);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "enq on full FIFO")]
    fn enq_full_panics() {
        let mut f = Fifo::new(1);
        f.enq(1);
        f.enq(2);
    }

    #[test]
    #[should_panic(expected = "deq on empty FIFO")]
    fn deq_empty_panics() {
        let mut f: Fifo<u32> = Fifo::new(1);
        f.deq();
    }

    #[test]
    fn clear_flushes() {
        let mut f = Fifo::new(4);
        f.enq(1);
        f.enq(2);
        f.clear();
        assert!(f.is_empty());
        assert!(f.can_enq());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u32>::new(0);
    }
}

//! Rule-based modules and the one-rule-at-a-time scheduler.
//!
//! A Kami design is a set of rules making atomic state changes; the
//! Bluespec compiler schedules many rules into each hardware cycle but
//! guarantees the outcome equals *some* serialization, so reasoning may
//! proceed one rule at a time (§5.7). Here a module lists its rules in
//! priority order and the [`Scheduler`] realizes one particular legal
//! serialization per cycle: each rule is offered one chance to fire, in
//! order. Pipelined designs list their stages downstream-first (WB before
//! EX before ID before IF) so that every stage observes the state the
//! previous cycle left behind — the standard simulation order for
//! synchronous pipelines, and a serialization Bluespec itself could pick.

/// The result of attempting one rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleOutcome {
    /// The rule's guard was false; no state changed.
    NotReady,
    /// The rule fired atomically.
    Fired,
}

/// A module driven by named rules.
pub trait RuleBased {
    /// Rule names in scheduling priority order.
    fn rules(&self) -> &'static [&'static str];

    /// Attempts to fire the named rule.
    ///
    /// # Panics
    ///
    /// Implementations may panic on names not in [`RuleBased::rules`].
    fn fire(&mut self, rule: &str) -> RuleOutcome;
}

/// Executes rule-based modules cycle by cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Scheduler;

impl Scheduler {
    /// Creates a scheduler.
    pub fn new() -> Scheduler {
        Scheduler
    }

    /// Runs one cycle: offers each rule one chance to fire, in priority
    /// order. Returns how many rules fired.
    pub fn cycle<M: RuleBased>(&self, m: &mut M) -> u32 {
        let mut fired = 0;
        for rule in m.rules() {
            if m.fire(rule) == RuleOutcome::Fired {
                fired += 1;
            }
        }
        fired
    }

    /// Runs cycles until `stop` returns true or `max_cycles` elapse;
    /// returns the number of cycles run.
    pub fn run_until<M: RuleBased>(
        &self,
        m: &mut M,
        max_cycles: u64,
        mut stop: impl FnMut(&M) -> bool,
    ) -> u64 {
        for c in 0..max_cycles {
            if stop(m) {
                return c;
            }
            self.cycle(m);
        }
        max_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy two-rule module: `produce` increments a counter when below a
    /// bound, `consume` drains it. Priority gives `consume` first chance.
    struct Toy {
        pending: u32,
        consumed: u32,
    }

    impl RuleBased for Toy {
        fn rules(&self) -> &'static [&'static str] {
            &["consume", "produce"]
        }

        fn fire(&mut self, rule: &str) -> RuleOutcome {
            match rule {
                "consume" if self.pending > 0 => {
                    self.pending -= 1;
                    self.consumed += 1;
                    RuleOutcome::Fired
                }
                "produce" if self.pending < 2 => {
                    self.pending += 1;
                    RuleOutcome::Fired
                }
                _ => RuleOutcome::NotReady,
            }
        }
    }

    #[test]
    fn rules_fire_in_priority_order() {
        let mut t = Toy {
            pending: 0,
            consumed: 0,
        };
        let s = Scheduler::new();
        // Cycle 1: consume not ready, produce fires.
        assert_eq!(s.cycle(&mut t), 1);
        assert_eq!((t.pending, t.consumed), (1, 0));
        // Cycle 2: consume fires (priority), then produce refills.
        assert_eq!(s.cycle(&mut t), 2);
        assert_eq!((t.pending, t.consumed), (1, 1));
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut t = Toy {
            pending: 0,
            consumed: 0,
        };
        let cycles = Scheduler::new().run_until(&mut t, 100, |t| t.consumed >= 5);
        assert!(
            cycles <= 7,
            "should reach 5 consumed quickly, took {cycles}"
        );
        assert_eq!(t.consumed, 5);
    }

    #[test]
    fn run_until_respects_fuel() {
        let mut t = Toy {
            pending: 0,
            consumed: 0,
        };
        let cycles = Scheduler::new().run_until(&mut t, 3, |_| false);
        assert_eq!(cycles, 3);
    }
}

//! The architectural register file and the scoreboard interlock.

/// A 32-entry register file with the `x0 = 0` convention enforced at both
/// read and write ports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegFile {
    regs: [u32; 32],
}

impl Default for RegFile {
    fn default() -> RegFile {
        RegFile::new()
    }
}

impl RegFile {
    /// All-zero register file (the reset state).
    pub fn new() -> RegFile {
        RegFile { regs: [0; 32] }
    }

    /// Read port.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 32`.
    pub fn read(&self, r: u8) -> u32 {
        assert!(r < 32);
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Write port; writes to `x0` are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 32`.
    pub fn write(&mut self, r: u8, v: u32) {
        assert!(r < 32);
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Snapshot of all registers (index 0 reads as zero).
    pub fn snapshot(&self) -> [u32; 32] {
        self.regs
    }
}

/// Per-register busy bits: a register is busy from the cycle an
/// instruction writing it is dispatched until that instruction writes
/// back. The decode stage stalls on busy sources or destinations, the
/// classic in-order interlock of the Kami processor (`sbFlags`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Scoreboard {
    busy: [bool; 32],
}

impl Scoreboard {
    /// All-clear scoreboard.
    pub fn new() -> Scoreboard {
        Scoreboard::default()
    }

    /// True when `r` has an in-flight writer. `x0` is never busy (it has
    /// no real writers).
    pub fn is_busy(&self, r: u8) -> bool {
        r != 0 && self.busy[r as usize]
    }

    /// Marks `r` busy at dispatch; marking `x0` is a no-op.
    pub fn set_busy(&mut self, r: u8) {
        if r != 0 {
            self.busy[r as usize] = true;
        }
    }

    /// Clears `r` at write-back.
    pub fn clear(&mut self, r: u8) {
        self.busy[r as usize] = false;
    }

    /// Clears everything (pipeline flush after `fence.i`, used by tests).
    pub fn clear_all(&mut self) {
        self.busy = [false; 32];
    }

    /// True when no register is busy (pipeline drained).
    pub fn all_clear(&self) -> bool {
        !self.busy.iter().any(|b| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_reads_zero_and_ignores_writes() {
        let mut rf = RegFile::new();
        rf.write(0, 99);
        assert_eq!(rf.read(0), 0);
        rf.write(5, 42);
        assert_eq!(rf.read(5), 42);
    }

    #[test]
    fn scoreboard_tracks_busy() {
        let mut sb = Scoreboard::new();
        assert!(sb.all_clear());
        sb.set_busy(7);
        assert!(sb.is_busy(7));
        assert!(!sb.is_busy(8));
        sb.clear(7);
        assert!(sb.all_clear());
    }

    #[test]
    fn x0_is_never_busy() {
        let mut sb = Scoreboard::new();
        sb.set_busy(0);
        assert!(!sb.is_busy(0));
        assert!(sb.all_clear());
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        RegFile::new().read(32);
    }
}

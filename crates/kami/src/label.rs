//! Cycle-stamped trace labels.
//!
//! Kami models behavior as the set of label traces a module can produce;
//! for our processors the labels that matter are the external method calls
//! for MMIO, which are [`riscv_spec::MmioEvent`]s. Refinement between the
//! pipelined processor and its single-cycle spec is stated (and checked)
//! over the *projection* of these traces to their events — the cycle stamps
//! exist for diagnostics and performance measurement only.

use riscv_spec::MmioEvent;

/// One label: an MMIO method call observed at a given hardware cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Hardware cycle at which the method call fired.
    pub cycle: u64,
    /// The observable event.
    pub event: MmioEvent,
}

/// A label trace, oldest first.
pub type LabelTrace = Vec<TraceEvent>;

/// Projects a label trace to its bare events (dropping cycle stamps), the
/// form in which traces are compared for refinement and fed to the
/// top-level `goodHlTrace` specification.
pub fn project(trace: &[TraceEvent]) -> Vec<MmioEvent> {
    trace.iter().map(|t| t.event).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_drops_cycles() {
        let t = vec![
            TraceEvent {
                cycle: 3,
                event: MmioEvent::load(0x10, 1),
            },
            TraceEvent {
                cycle: 9,
                event: MmioEvent::store(0x14, 2),
            },
        ];
        assert_eq!(
            project(&t),
            vec![MmioEvent::load(0x10, 1), MmioEvent::store(0x14, 2)]
        );
    }
}

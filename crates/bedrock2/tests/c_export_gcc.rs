//! Differential test of the C export (the "Exported C code" arrow of the
//! paper's Figure 1): export a Bedrock2 program as host-testable C,
//! compile it with the system C compiler, run it with recording
//! `MMIOREAD`/`MMIOWRITE` stubs, and compare the observation trace with
//! the Bedrock2 interpreter's.
//!
//! Skipped silently when no `cc` is on PATH (the export itself is still
//! unit-tested in-crate).

use bedrock2::ast::{Function, Program};
use bedrock2::dsl::*;
use bedrock2::semantics::{ExtHandler, Interp};
use riscv_spec::Memory;
use std::io::Write as _;
use std::process::Command;

/// A recording environment identical in behavior to the C harness below.
#[derive(Default)]
struct Recorder {
    counter: u32,
    log: Vec<String>,
}

impl ExtHandler for Recorder {
    fn call(&mut self, action: &str, args: &[u32], _mem: &mut Memory) -> Result<Vec<u32>, String> {
        match (action, args) {
            ("MMIOREAD", [addr]) => {
                self.counter = self.counter.wrapping_mul(1103515245).wrapping_add(12345);
                let v = self.counter ^ addr;
                self.log.push(format!("R {addr:08x} {v:08x}"));
                Ok(vec![v])
            }
            ("MMIOWRITE", [addr, value]) => {
                self.log.push(format!("W {addr:08x} {value:08x}"));
                Ok(vec![])
            }
            _ => Err("unknown".into()),
        }
    }
}

const C_HARNESS: &str = r#"
#include <stdio.h>
static uint32_t _counter = 0;
void MMIOREAD(uint32_t a0, uint32_t *r0) {
  _counter = _counter * 1103515245u + 12345u;
  *r0 = _counter ^ a0;
  printf("R %08x %08x\n", a0, *r0);
}
void MMIOWRITE(uint32_t a0, uint32_t a1) {
  printf("W %08x %08x\n", a0, a1);
}
int main(void) { main_fn(); return 0; }
"#;

fn cc_available() -> bool {
    Command::new("cc").arg("--version").output().is_ok()
}

/// Exports, compiles, runs, and compares one program whose entry function
/// is `main_fn` (no parameters, no returns).
fn check_against_cc(prog: &Program, tag: &str) {
    if !cc_available() {
        eprintln!("skipping: no `cc` on PATH");
        return;
    }
    // Interpreter side.
    let mut interp = Interp::new(prog, Memory::with_size(0x1_0000), Recorder::default());
    interp.call("main_fn", &[]).expect("source must run clean");
    let expected = interp.ext.log.join("\n");

    // C side.
    let c = bedrock2::c_export::export_for_host_testing(prog) + C_HARNESS;
    let dir = std::env::temp_dir().join(format!("br2_c_export_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("prog.c");
    let bin = dir.join("prog");
    std::fs::File::create(&src)
        .unwrap()
        .write_all(c.as_bytes())
        .unwrap();
    let out = Command::new("cc")
        .args(["-O2", "-o"])
        .arg(&bin)
        .arg(&src)
        .output()
        .expect("cc runs");
    assert!(
        out.status.success(),
        "cc failed:\n{}\n--- source ---\n{c}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run = Command::new(&bin).output().expect("compiled program runs");
    assert!(run.status.success());
    let got = String::from_utf8_lossy(&run.stdout);
    assert_eq!(
        got.trim(),
        expected.trim(),
        "C and interpreter traces differ ({tag})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn arithmetic_and_control_flow_agree_with_cc() {
    let f = Function::new(
        "main_fn",
        &[],
        &[],
        block([
            set("s", lit(0)),
            set("n", lit(20)),
            while_(
                var("n"),
                block([
                    set("s", add(mul(var("s"), lit(3)), var("n"))),
                    set("n", sub(var("n"), lit(1))),
                ]),
            ),
            interact(&[], "MMIOWRITE", [lit(0x1000_0000), var("s")]),
            // Division conventions must survive the export.
            interact(&[], "MMIOWRITE", [lit(0x1000_0004), divu(var("s"), lit(0))]),
            interact(&[], "MMIOWRITE", [lit(0x1000_0008), remu(var("s"), lit(0))]),
            // Signed operators.
            interact(
                &[],
                "MMIOWRITE",
                [lit(0x1000_000c), srs(lit(0x8000_0000), lit(4))],
            ),
            interact(
                &[],
                "MMIOWRITE",
                [lit(0x1000_0010), lts(lit(0xFFFF_FFFF), lit(0))],
            ),
        ]),
    );
    check_against_cc(&Program::from_functions([f]), "arith");
}

#[test]
fn memory_and_calls_agree_with_cc() {
    let helper = Function::new(
        "mix",
        &["x", "y"],
        &["r"],
        set("r", xor(mul(var("x"), lit(0x9E37_79B9)), var("y"))),
    );
    let f = Function::new(
        "main_fn",
        &[],
        &[],
        block([
            store4(lit(0x100), lit(0xAABB_CCDD)),
            store1(lit(0x105), lit(0x42)),
            store2(lit(0x10A), lit(0xBEEF)),
            call(&["h"], "mix", [load4(lit(0x100)), load1(lit(0x105))]),
            call(&["h"], "mix", [var("h"), load2(lit(0x10A))]),
            interact(&[], "MMIOWRITE", [lit(0x1000_0000), var("h")]),
            stackalloc(
                "buf",
                16,
                block([
                    store4(var("buf"), lit(7)),
                    store4(add(var("buf"), lit(4)), load4(var("buf"))),
                    interact(
                        &[],
                        "MMIOWRITE",
                        [lit(0x1000_0004), load4(add(var("buf"), lit(4)))],
                    ),
                ]),
            ),
        ]),
    );
    check_against_cc(&Program::from_functions([helper, f]), "memory");
}

#[test]
fn mmio_reads_agree_with_cc() {
    let f = Function::new(
        "main_fn",
        &[],
        &[],
        block([
            interact(&["a"], "MMIOREAD", [lit(0x1000_0000)]),
            interact(&["b"], "MMIOREAD", [lit(0x1000_0010)]),
            if_(
                ltu(var("a"), var("b")),
                interact(
                    &[],
                    "MMIOWRITE",
                    [lit(0x1000_0020), sub(var("b"), var("a"))],
                ),
                interact(
                    &[],
                    "MMIOWRITE",
                    [lit(0x1000_0024), sub(var("a"), var("b"))],
                ),
            ),
        ]),
    );
    check_against_cc(&Program::from_functions([f]), "mmio");
}

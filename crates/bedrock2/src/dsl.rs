//! A builder DSL for writing Bedrock2 programs inside Rust.
//!
//! The paper's authors write Bedrock2 programs inside Coq using its custom
//! notation mechanism ("fairly natural-looking C-like code directly within
//! Coq", §7.3.1); these free functions play the same role here. They are
//! intentionally small and composable rather than macro-based, so that the
//! driver and application code in the `lightbulb` crate reads close to the
//! paper's listings.
//!
//! # Examples
//!
//! ```
//! use bedrock2::dsl::*;
//! // busy-wait: while ((load4(flag) & 0x80000000) != 0) {}
//! let s = while_(
//!     and(load4(lit(0x1002404C)), lit(0x8000_0000)),
//!     block([]),
//! );
//! ```

use crate::ast::{BinOp, Expr, Size, Stmt};

/// Word literal.
pub fn lit(n: u32) -> Expr {
    Expr::Literal(n)
}

/// Variable reference.
pub fn var(name: &str) -> Expr {
    Expr::Var(name.to_string())
}

/// 1-byte load, zero-extended.
pub fn load1(addr: Expr) -> Expr {
    Expr::Load(Size::One, Box::new(addr))
}

/// 2-byte load, zero-extended.
pub fn load2(addr: Expr) -> Expr {
    Expr::Load(Size::Two, Box::new(addr))
}

/// 4-byte load.
pub fn load4(addr: Expr) -> Expr {
    Expr::Load(Size::Four, Box::new(addr))
}

fn op(o: BinOp, a: Expr, b: Expr) -> Expr {
    Expr::Op(o, Box::new(a), Box::new(b))
}

/// Wrapping addition.
pub fn add(a: Expr, b: Expr) -> Expr {
    op(BinOp::Add, a, b)
}

/// Wrapping subtraction.
pub fn sub(a: Expr, b: Expr) -> Expr {
    op(BinOp::Sub, a, b)
}

/// Wrapping multiplication.
pub fn mul(a: Expr, b: Expr) -> Expr {
    op(BinOp::Mul, a, b)
}

/// Unsigned division.
pub fn divu(a: Expr, b: Expr) -> Expr {
    op(BinOp::DivU, a, b)
}

/// Unsigned remainder.
pub fn remu(a: Expr, b: Expr) -> Expr {
    op(BinOp::RemU, a, b)
}

/// Bitwise and.
pub fn and(a: Expr, b: Expr) -> Expr {
    op(BinOp::And, a, b)
}

/// Bitwise or.
pub fn or(a: Expr, b: Expr) -> Expr {
    op(BinOp::Or, a, b)
}

/// Bitwise xor.
pub fn xor(a: Expr, b: Expr) -> Expr {
    op(BinOp::Xor, a, b)
}

/// Logical shift right.
pub fn sru(a: Expr, b: Expr) -> Expr {
    op(BinOp::Sru, a, b)
}

/// Shift left.
pub fn slu(a: Expr, b: Expr) -> Expr {
    op(BinOp::Slu, a, b)
}

/// Arithmetic shift right.
pub fn srs(a: Expr, b: Expr) -> Expr {
    op(BinOp::Srs, a, b)
}

/// Signed less-than (0 or 1).
pub fn lts(a: Expr, b: Expr) -> Expr {
    op(BinOp::Lts, a, b)
}

/// Unsigned less-than (0 or 1).
pub fn ltu(a: Expr, b: Expr) -> Expr {
    op(BinOp::Ltu, a, b)
}

/// Equality (0 or 1).
pub fn eq(a: Expr, b: Expr) -> Expr {
    op(BinOp::Eq, a, b)
}

/// Inequality, desugared to `(a == b) == 0`.
pub fn ne(a: Expr, b: Expr) -> Expr {
    eq(eq(a, b), lit(0))
}

/// `x = e`.
pub fn set(x: &str, e: Expr) -> Stmt {
    Stmt::Set(x.to_string(), e)
}

/// 1-byte store.
pub fn store1(addr: Expr, value: Expr) -> Stmt {
    Stmt::Store(Size::One, addr, value)
}

/// 2-byte store.
pub fn store2(addr: Expr, value: Expr) -> Stmt {
    Stmt::Store(Size::Two, addr, value)
}

/// 4-byte store.
pub fn store4(addr: Expr, value: Expr) -> Stmt {
    Stmt::Store(Size::Four, addr, value)
}

/// `if (c) { t } else { e }`.
pub fn if_(c: Expr, t: Stmt, e: Stmt) -> Stmt {
    Stmt::If(c, Box::new(t), Box::new(e))
}

/// `if (c) { t }` with an empty else branch.
pub fn when(c: Expr, t: Stmt) -> Stmt {
    if_(c, t, Stmt::Skip)
}

/// `while (c) { body }`.
pub fn while_(c: Expr, body: Stmt) -> Stmt {
    Stmt::While(c, Box::new(body))
}

/// Sequential composition.
pub fn block<I: IntoIterator<Item = Stmt>>(stmts: I) -> Stmt {
    Stmt::Block(stmts.into_iter().collect())
}

/// `r1, …, rn = f(args…)` — call to a Bedrock2-defined function.
pub fn call<A>(rets: &[&str], f: &str, args: A) -> Stmt
where
    A: IntoIterator<Item = Expr>,
{
    Stmt::Call(
        rets.iter().map(|s| s.to_string()).collect(),
        f.to_string(),
        args.into_iter().collect(),
    )
}

/// `r1, …, rn = ext!f(args…)` — external call (§6.1).
pub fn interact<A>(rets: &[&str], action: &str, args: A) -> Stmt
where
    A: IntoIterator<Item = Expr>,
{
    Stmt::Interact(
        rets.iter().map(|s| s.to_string()).collect(),
        action.to_string(),
        args.into_iter().collect(),
    )
}

/// `x = stackalloc(nbytes); { body }`.
pub fn stackalloc(x: &str, nbytes: u32, body: Stmt) -> Stmt {
    Stmt::Stackalloc(x.to_string(), nbytes, Box::new(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, Stmt};

    #[test]
    fn builders_build_expected_ast() {
        assert_eq!(
            add(lit(1), var("x")),
            Expr::Op(
                BinOp::Add,
                Box::new(Expr::Literal(1)),
                Box::new(Expr::Var("x".into()))
            )
        );
        assert_eq!(set("y", lit(3)), Stmt::Set("y".into(), Expr::Literal(3)));
        let w = when(var("c"), set("x", lit(1)));
        assert!(matches!(w, Stmt::If(_, _, ref e) if **e == Stmt::Skip));
    }

    #[test]
    fn ne_desugars_to_double_eq() {
        let e = ne(var("a"), lit(0));
        assert_eq!(e, eq(eq(var("a"), lit(0)), lit(0)));
    }
}

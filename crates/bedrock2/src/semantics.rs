//! The Bedrock2 interpreter: an executable counterpart of the paper's
//! source-language semantics.
//!
//! The paper gives Bedrock2 a weakest-precondition/CPS semantics (§4); for a
//! *library*, the corresponding executable artifact is a definitional
//! interpreter that (a) makes every undefined behavior an explicit [`Ub`]
//! value instead of silently continuing, (b) records external interactions
//! in a trace, and (c) is parameterized over the behavior of external calls
//! via [`ExtHandler`] — the `vcextern` parameter of §6.1. The `proglogic`
//! crate provides the symbolic/WP view over the same AST.
//!
//! Termination is modeled with *fuel*: the paper verifies total correctness
//! (nontermination is identified with UB, §5.2), and here a program that
//! exhausts its fuel reports [`Ub::OutOfFuel`], which differential tests
//! treat as "this run proves nothing" rather than as a behavioral result.

use crate::ast::{Expr, Function, Program, Size, Stmt};
use riscv_spec::Memory;
use std::collections::HashMap;
use std::fmt;

/// One record of the interaction trace: the `(function, args, rets)` triple
/// appended by an external call (§6.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IoEvent {
    /// The external procedure's name (e.g. `"MMIOREAD"`).
    pub action: String,
    /// Evaluated argument values.
    pub args: Vec<u32>,
    /// Values returned by the environment.
    pub rets: Vec<u32>,
}

/// Undefined behavior (and fuel exhaustion), made explicit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ub {
    /// A variable was read before being assigned.
    UnboundVariable(String),
    /// A load touched memory outside the program's address space.
    LoadOutOfBounds {
        /// Faulting address.
        addr: u32,
        /// Access width.
        size: Size,
    },
    /// A store touched memory outside the program's address space.
    StoreOutOfBounds {
        /// Faulting address.
        addr: u32,
        /// Access width.
        size: Size,
    },
    /// A load or store was not aligned to its width (a strengthening of the
    /// paper's memory model so the compiled code can use aligned RISC-V
    /// accesses; see DESIGN.md).
    Misaligned {
        /// Faulting address.
        addr: u32,
        /// Access width.
        size: Size,
    },
    /// A call to a function that is not defined.
    UnknownFunction(String),
    /// A call whose argument or result count does not match the callee.
    ArityMismatch {
        /// The callee.
        function: String,
    },
    /// A function body finished without assigning a declared return
    /// variable.
    MissingReturn {
        /// The function.
        function: String,
        /// The unassigned return variable.
        var: String,
    },
    /// The external environment rejected a call (precondition violation —
    /// e.g. an `MMIOWRITE` outside the allowed address range).
    ExternalCallRefused {
        /// The external procedure.
        action: String,
        /// Why it was refused.
        reason: String,
    },
    /// A (mutually) recursive call, which Bedrock2 forbids (§5.2).
    Recursion(String),
    /// `stackalloc` exceeded the configured stack region.
    StackOverflow,
    /// The fuel budget was exhausted (not UB per se: the run is
    /// inconclusive).
    OutOfFuel,
}

impl fmt::Display for Ub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Ub::*;
        match self {
            UnboundVariable(x) => write!(f, "read of unbound variable '{x}'"),
            LoadOutOfBounds { addr, size } => {
                write!(
                    f,
                    "{}-byte load out of bounds at 0x{addr:08x}",
                    size.bytes()
                )
            }
            StoreOutOfBounds { addr, size } => {
                write!(
                    f,
                    "{}-byte store out of bounds at 0x{addr:08x}",
                    size.bytes()
                )
            }
            Misaligned { addr, size } => {
                write!(f, "misaligned {}-byte access at 0x{addr:08x}", size.bytes())
            }
            UnknownFunction(name) => write!(f, "call to unknown function '{name}'"),
            ArityMismatch { function } => write!(f, "arity mismatch calling '{function}'"),
            MissingReturn { function, var } => {
                write!(f, "'{function}' returned without assigning '{var}'")
            }
            ExternalCallRefused { action, reason } => {
                write!(f, "external call '{action}' refused: {reason}")
            }
            Recursion(name) => write!(f, "recursive call to '{name}'"),
            StackOverflow => write!(f, "stackalloc exceeded the stack region"),
            OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for Ub {}

/// The external-call parameter of the semantics (§6.1).
///
/// An implementation decides, per call, whether the call is allowed and what
/// it returns; it may also mutate memory (the paper supports this for
/// DMA-style devices but the lightbulb does not use it).
pub trait ExtHandler {
    /// Services one external call.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the call violates the
    /// environment's precondition; the interpreter maps it to
    /// [`Ub::ExternalCallRefused`].
    fn call(&mut self, action: &str, args: &[u32], mem: &mut Memory) -> Result<Vec<u32>, String>;
}

/// An environment with no external procedures: every `Interact` is refused.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoExt;

impl ExtHandler for NoExt {
    fn call(&mut self, action: &str, _args: &[u32], _mem: &mut Memory) -> Result<Vec<u32>, String> {
        Err(format!(
            "no external procedures defined (called '{action}')"
        ))
    }
}

/// Forwarding impl so `&mut H` can serve as a handler.
impl<H: ExtHandler + ?Sized> ExtHandler for &mut H {
    fn call(&mut self, action: &str, args: &[u32], mem: &mut Memory) -> Result<Vec<u32>, String> {
        (**self).call(action, args, mem)
    }
}

/// Default fuel: enough for every workload in this workspace while still
/// terminating on accidental infinite loops.
pub const DEFAULT_FUEL: u64 = 50_000_000;

/// The interpreter state: program, memory, trace, external environment.
#[derive(Debug)]
pub struct Interp<'p, E> {
    prog: &'p Program,
    /// Byte-addressed memory shared with the rest of the system model.
    pub mem: Memory,
    /// The interaction trace, oldest event first.
    pub trace: Vec<IoEvent>,
    /// The external environment.
    pub ext: E,
    /// Remaining fuel; each statement and loop iteration consumes one unit.
    pub fuel: u64,
    stack_ptr: u32,
    stack_limit: u32,
    call_stack: Vec<String>,
}

impl<'p, E: ExtHandler> Interp<'p, E> {
    /// Creates an interpreter over `prog` with the given memory and
    /// external environment. The `stackalloc` region is the top half of
    /// memory (growing downward); use [`Interp::with_stack_region`] to
    /// change it.
    pub fn new(prog: &'p Program, mem: Memory, ext: E) -> Interp<'p, E> {
        let top = mem.size();
        let limit = top / 2;
        Interp {
            prog,
            mem,
            trace: Vec::new(),
            ext,
            fuel: DEFAULT_FUEL,
            stack_ptr: top,
            stack_limit: limit,
            call_stack: Vec::new(),
        }
    }

    /// Reconfigures the `stackalloc` region to `[limit, top)`.
    ///
    /// # Panics
    ///
    /// Panics if `limit > top` or `top` exceeds the memory size.
    pub fn with_stack_region(mut self, limit: u32, top: u32) -> Interp<'p, E> {
        assert!(limit <= top && top <= self.mem.size(), "bad stack region");
        self.stack_ptr = top;
        self.stack_limit = limit;
        self
    }

    /// Sets the fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Interp<'p, E> {
        self.fuel = fuel;
        self
    }

    /// Calls a function by name with the given arguments and returns its
    /// results.
    ///
    /// # Errors
    ///
    /// Any [`Ub`] encountered during execution, including
    /// [`Ub::OutOfFuel`].
    pub fn call(&mut self, name: &str, args: &[u32]) -> Result<Vec<u32>, Ub> {
        let f = self
            .prog
            .function(name)
            .ok_or_else(|| Ub::UnknownFunction(name.to_string()))?;
        if f.params.len() != args.len() {
            return Err(Ub::ArityMismatch {
                function: name.to_string(),
            });
        }
        if self.call_stack.iter().any(|c| c == name) {
            return Err(Ub::Recursion(name.to_string()));
        }
        self.call_stack.push(name.to_string());
        let result = self.call_body(f, args);
        self.call_stack.pop();
        result
    }

    fn call_body(&mut self, f: &Function, args: &[u32]) -> Result<Vec<u32>, Ub> {
        let mut locals: HashMap<String, u32> =
            f.params.iter().cloned().zip(args.iter().copied()).collect();
        self.exec(&f.body, &mut locals)?;
        f.rets
            .iter()
            .map(|r| {
                locals.get(r).copied().ok_or_else(|| Ub::MissingReturn {
                    function: f.name.clone(),
                    var: r.clone(),
                })
            })
            .collect()
    }

    fn burn(&mut self) -> Result<(), Ub> {
        if self.fuel == 0 {
            return Err(Ub::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn exec(&mut self, s: &Stmt, locals: &mut HashMap<String, u32>) -> Result<(), Ub> {
        self.burn()?;
        match s {
            Stmt::Skip => Ok(()),
            Stmt::Set(x, e) => {
                let v = self.eval(e, locals)?;
                locals.insert(x.clone(), v);
                Ok(())
            }
            Stmt::Store(size, ea, ev) => {
                let addr = self.eval(ea, locals)?;
                let v = self.eval(ev, locals)?;
                self.store(*size, addr, v)
            }
            Stmt::If(c, t, e) => {
                if self.eval(c, locals)? != 0 {
                    self.exec(t, locals)
                } else {
                    self.exec(e, locals)
                }
            }
            Stmt::While(c, body) => {
                while self.eval(c, locals)? != 0 {
                    self.burn()?;
                    self.exec(body, locals)?;
                }
                Ok(())
            }
            Stmt::Block(ss) => {
                for s in ss {
                    self.exec(s, locals)?;
                }
                Ok(())
            }
            Stmt::Call(rets, fname, argexprs) => {
                let args: Vec<u32> = argexprs
                    .iter()
                    .map(|e| self.eval(e, locals))
                    .collect::<Result<_, _>>()?;
                let f = self
                    .prog
                    .function(fname)
                    .ok_or_else(|| Ub::UnknownFunction(fname.clone()))?;
                if f.rets.len() != rets.len() {
                    return Err(Ub::ArityMismatch {
                        function: fname.clone(),
                    });
                }
                let vals = self.call(fname, &args)?;
                for (r, v) in rets.iter().zip(vals) {
                    locals.insert(r.clone(), v);
                }
                Ok(())
            }
            Stmt::Interact(rets, action, argexprs) => {
                let args: Vec<u32> = argexprs
                    .iter()
                    .map(|e| self.eval(e, locals))
                    .collect::<Result<_, _>>()?;
                let vals = self
                    .ext
                    .call(action, &args, &mut self.mem)
                    .map_err(|reason| Ub::ExternalCallRefused {
                        action: action.clone(),
                        reason,
                    })?;
                if vals.len() != rets.len() {
                    return Err(Ub::ExternalCallRefused {
                        action: action.clone(),
                        reason: format!("returned {} values, expected {}", vals.len(), rets.len()),
                    });
                }
                self.trace.push(IoEvent {
                    action: action.clone(),
                    args,
                    rets: vals.clone(),
                });
                for (r, v) in rets.iter().zip(vals) {
                    locals.insert(r.clone(), v);
                }
                Ok(())
            }
            Stmt::Stackalloc(x, nbytes, body) => {
                // Round the allocation to a word multiple and carve it from
                // the downward-growing stack region. The concrete address is
                // this interpreter's *choice* — the semantics only promise
                // some word-aligned address (internal nondeterminism, §5.3).
                let n = nbytes.div_ceil(4) * 4;
                let new_sp = self.stack_ptr.checked_sub(n).ok_or(Ub::StackOverflow)?;
                if new_sp < self.stack_limit {
                    return Err(Ub::StackOverflow);
                }
                let saved = self.stack_ptr;
                self.stack_ptr = new_sp;
                locals.insert(x.clone(), new_sp);
                let result = self.exec(body, locals);
                self.stack_ptr = saved;
                result
            }
        }
    }

    fn eval(&mut self, e: &Expr, locals: &HashMap<String, u32>) -> Result<u32, Ub> {
        match e {
            Expr::Literal(n) => Ok(*n),
            Expr::Var(x) => locals
                .get(x)
                .copied()
                .ok_or_else(|| Ub::UnboundVariable(x.clone())),
            Expr::Load(size, ea) => {
                let addr = self.eval(ea, locals)?;
                self.load(*size, addr)
            }
            Expr::Op(op, a, b) => {
                let va = self.eval(a, locals)?;
                let vb = self.eval(b, locals)?;
                Ok(op.eval(va, vb))
            }
        }
    }

    fn load(&mut self, size: Size, addr: u32) -> Result<u32, Ub> {
        if !riscv_spec::word::is_aligned(addr, size.bytes()) {
            return Err(Ub::Misaligned { addr, size });
        }
        let out = match size {
            Size::One => self.mem.load_u8(addr).map(|v| v as u32),
            Size::Two => self.mem.load_u16(addr).map(|v| v as u32),
            Size::Four => self.mem.load_u32(addr),
        };
        out.map_err(|_| Ub::LoadOutOfBounds { addr, size })
    }

    fn store(&mut self, size: Size, addr: u32, v: u32) -> Result<(), Ub> {
        if !riscv_spec::word::is_aligned(addr, size.bytes()) {
            return Err(Ub::Misaligned { addr, size });
        }
        let out = match size {
            Size::One => self.mem.store_u8(addr, v as u8),
            Size::Two => self.mem.store_u16(addr, v as u16),
            Size::Four => self.mem.store_u32(addr, v),
        };
        out.map_err(|_| Ub::StoreOutOfBounds { addr, size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Function, Program, Stmt};
    use crate::dsl::*;

    fn run_main(prog: &Program, args: &[u32]) -> Result<Vec<u32>, Ub> {
        let mut i = Interp::new(prog, Memory::with_size(0x1000), NoExt);
        i.call("main", args)
    }

    #[test]
    fn arithmetic_and_returns() {
        let main = Function::new(
            "main",
            &["a", "b"],
            &["s", "d"],
            block([
                set("s", add(var("a"), var("b"))),
                set("d", sub(var("a"), var("b"))),
            ]),
        );
        let p = Program::from_functions([main]);
        assert_eq!(run_main(&p, &[10, 4]).unwrap(), vec![14, 6]);
    }

    #[test]
    fn while_loop_sums() {
        // s = 0; while (n) { s += n; n -= 1 } ; return s
        let main = Function::new(
            "main",
            &["n"],
            &["s"],
            block([
                set("s", lit(0)),
                while_(
                    var("n"),
                    block([
                        set("s", add(var("s"), var("n"))),
                        set("n", sub(var("n"), lit(1))),
                    ]),
                ),
            ]),
        );
        let p = Program::from_functions([main]);
        assert_eq!(run_main(&p, &[10]).unwrap(), vec![55]);
    }

    #[test]
    fn nested_calls_and_tuple_returns() {
        let divmod = Function::new(
            "divmod",
            &["a", "b"],
            &["q", "r"],
            block([
                set("q", divu(var("a"), var("b"))),
                set("r", remu(var("a"), var("b"))),
            ]),
        );
        let main = Function::new(
            "main",
            &["x"],
            &["out"],
            block([
                call(&["q", "r"], "divmod", [var("x"), lit(10)]),
                set("out", add(mul(var("q"), lit(100)), var("r"))),
            ]),
        );
        let p = Program::from_functions([divmod, main]);
        assert_eq!(run_main(&p, &[47]).unwrap(), vec![407]);
    }

    #[test]
    fn unbound_variable_is_ub() {
        let main = Function::new("main", &[], &["r"], set("r", var("ghost")));
        let p = Program::from_functions([main]);
        assert_eq!(run_main(&p, &[]), Err(Ub::UnboundVariable("ghost".into())));
    }

    #[test]
    fn oob_and_misaligned_access_is_ub() {
        let oob = Function::new("main", &[], &[], store4(lit(0xFFFF_0000), lit(1)));
        let p = Program::from_functions([oob]);
        assert!(matches!(
            run_main(&p, &[]),
            Err(Ub::StoreOutOfBounds { .. })
        ));

        let mis = Function::new("main", &[], &["r"], set("r", load4(lit(2))));
        let p = Program::from_functions([mis]);
        assert!(matches!(
            run_main(&p, &[]),
            Err(Ub::Misaligned { addr: 2, .. })
        ));
    }

    #[test]
    fn division_by_zero_is_defined() {
        let main = Function::new(
            "main",
            &[],
            &["q", "r"],
            block([
                set("q", divu(lit(7), lit(0))),
                set("r", remu(lit(7), lit(0))),
            ]),
        );
        let p = Program::from_functions([main]);
        assert_eq!(run_main(&p, &[]).unwrap(), vec![u32::MAX, 7]);
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let main = Function::new("main", &[], &[], while_(lit(1), Stmt::Skip));
        let p = Program::from_functions([main]);
        let mut i = Interp::new(&p, Memory::with_size(64), NoExt).with_fuel(1000);
        assert_eq!(i.call("main", &[]), Err(Ub::OutOfFuel));
    }

    #[test]
    fn recursion_is_rejected() {
        let main = Function::new("main", &[], &[], call(&[], "main", []));
        let p = Program::from_functions([main]);
        assert_eq!(run_main(&p, &[]), Err(Ub::Recursion("main".into())));
    }

    #[test]
    fn external_calls_append_to_trace() {
        struct Counter(u32);
        impl ExtHandler for Counter {
            fn call(
                &mut self,
                action: &str,
                args: &[u32],
                _mem: &mut Memory,
            ) -> Result<Vec<u32>, String> {
                match action {
                    "next" => {
                        self.0 += args[0];
                        Ok(vec![self.0])
                    }
                    _ => Err("unknown".into()),
                }
            }
        }
        let main = Function::new(
            "main",
            &[],
            &["a", "b"],
            block([
                interact(&["a"], "next", [lit(3)]),
                interact(&["b"], "next", [lit(4)]),
            ]),
        );
        let p = Program::from_functions([main]);
        let mut i = Interp::new(&p, Memory::with_size(64), Counter(0));
        assert_eq!(i.call("main", &[]).unwrap(), vec![3, 7]);
        assert_eq!(
            i.trace,
            vec![
                IoEvent {
                    action: "next".into(),
                    args: vec![3],
                    rets: vec![3]
                },
                IoEvent {
                    action: "next".into(),
                    args: vec![4],
                    rets: vec![7]
                },
            ]
        );
    }

    #[test]
    fn refused_external_call_is_ub() {
        let main = Function::new("main", &[], &[], interact(&[], "nope", []));
        let p = Program::from_functions([main]);
        assert!(matches!(
            run_main(&p, &[]),
            Err(Ub::ExternalCallRefused { .. })
        ));
    }

    #[test]
    fn external_calls_may_mutate_memory_dma_style() {
        // §6.2 of the paper: "the same interface is also powerful enough to
        // model direct memory access (DMA), by recording memory-ownership
        // changes in the I/O trace" — the semantics allows external calls
        // to write memory, even though the lightbulb (and our compiler,
        // like the paper's) does not use it.
        struct DmaEngine;
        impl ExtHandler for DmaEngine {
            fn call(
                &mut self,
                action: &str,
                args: &[u32],
                mem: &mut Memory,
            ) -> Result<Vec<u32>, String> {
                match (action, args) {
                    ("DMA_FILL", [dst, len, byte]) => {
                        for i in 0..*len {
                            mem.store_u8(dst + i, *byte as u8)
                                .map_err(|e| e.to_string())?;
                        }
                        Ok(vec![])
                    }
                    _ => Err("unknown".into()),
                }
            }
        }
        let main = Function::new(
            "main",
            &[],
            &["sum"],
            block([
                interact(&[], "DMA_FILL", [lit(0x20), lit(4), lit(7)]),
                set(
                    "sum",
                    add(
                        add(load1(lit(0x20)), load1(lit(0x21))),
                        add(load1(lit(0x22)), load1(lit(0x23))),
                    ),
                ),
            ]),
        );
        let p = Program::from_functions([main]);
        let mut i = Interp::new(&p, Memory::with_size(0x100), DmaEngine);
        assert_eq!(i.call("main", &[]).unwrap(), vec![28]);
        assert_eq!(i.trace.len(), 1, "the DMA interaction is in the trace");
    }

    #[test]
    fn stackalloc_provides_usable_aligned_memory() {
        let main = Function::new(
            "main",
            &[],
            &["v", "aligned"],
            stackalloc(
                "buf",
                10, // rounds up to 12
                block([
                    store4(var("buf"), lit(0xCAFE)),
                    store4(add(var("buf"), lit(8)), lit(1)),
                    set("v", load4(var("buf"))),
                    set("aligned", eq(remu(var("buf"), lit(4)), lit(0))),
                ]),
            ),
        );
        let p = Program::from_functions([main]);
        assert_eq!(run_main(&p, &[]).unwrap(), vec![0xCAFE, 1]);
    }

    #[test]
    fn stackalloc_overflow_is_ub() {
        let main = Function::new(
            "main",
            &[],
            &[],
            stackalloc("b", 0x10_0000, Stmt::Skip), // bigger than memory
        );
        let p = Program::from_functions([main]);
        assert_eq!(run_main(&p, &[]), Err(Ub::StackOverflow));
    }

    #[test]
    fn stackalloc_nests_and_frees() {
        // Two sequential allocations reuse the same addresses.
        let main = Function::new(
            "main",
            &[],
            &["same"],
            block([
                stackalloc("a", 8, set("x", var("a"))),
                stackalloc("b", 8, set("y", var("b"))),
                set("same", eq(var("x"), var("y"))),
            ]),
        );
        let p = Program::from_functions([main]);
        assert_eq!(run_main(&p, &[]).unwrap(), vec![1]);
    }
}

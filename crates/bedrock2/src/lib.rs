//! The Bedrock2 source language (§5.2 of the paper): a minimal C-like
//! language with word-sized variables, byte-addressed memory, and
//! syntactically distinguished *external calls* whose behavior is a
//! parameter of the semantics (§6.1).
//!
//! The language deliberately mirrors the paper's design choices:
//!
//! * every local variable and expression has the machine word type;
//! * memory access is by explicit `load`/`store` with a byte count;
//! * out-of-bounds (and, in this workspace, misaligned) memory access is
//!   undefined behavior, surfaced as a typed error by the interpreter;
//! * division by zero is *not* undefined behavior — the interpreter
//!   returns the RISC-V result, which is the concrete instance of the
//!   paper's axiomatically specified total division (footnote 3);
//! * external calls append `(function, args, rets)` records to an
//!   interaction trace that exists only in specifications and testing, not
//!   at runtime;
//! * there are no function pointers and no recursion (the compiler
//!   statically tracks stack usage, §5.3); the interpreter rejects
//!   recursion dynamically.
//!
//! Programs are built with the [`dsl`] module (Coq's notation mechanism
//! played this role in the paper), interpreted by [`semantics`], printed by
//! [`display`], parsed back from that concrete syntax by [`parse`], and
//! exported to C by [`c_export`].
//!
//! # Examples
//!
//! ```
//! use bedrock2::dsl::*;
//! use bedrock2::{Program, Function};
//! use bedrock2::semantics::{Interp, NoExt};
//! use riscv_spec::Memory;
//!
//! // swap(a, b) { t = load4(a); store4(a, load4(b)); store4(b, t) }
//! let swap = Function::new("swap", &["a", "b"], &[], block([
//!     set("t", load4(var("a"))),
//!     store4(var("a"), load4(var("b"))),
//!     store4(var("b"), var("t")),
//! ]));
//! let prog = Program::from_functions([swap]);
//! let mut interp = Interp::new(&prog, Memory::with_size(0x100), NoExt);
//! interp.mem.store_u32(0, 1).unwrap();
//! interp.mem.store_u32(4, 2).unwrap();
//! interp.call("swap", &[0, 4]).unwrap();
//! assert_eq!(interp.mem.load_u32(0).unwrap(), 2);
//! assert_eq!(interp.mem.load_u32(4).unwrap(), 1);
//! ```

pub mod ast;
pub mod c_export;
pub mod display;
pub mod dsl;
pub mod parse;
pub mod semantics;

pub use ast::{BinOp, Expr, Function, Program, Size, Stmt};
pub use semantics::{ExtHandler, Interp, IoEvent, NoExt, Ub};

//! Export of Bedrock2 programs to compilable C.
//!
//! Figure 1 of the paper shows "Exported C code" as one of the compatibility
//! arrows out of the Coq development: Bedrock2 programs can be rendered as C
//! and compiled with mainstream toolchains (this is how the authors ran
//! their verified sources on the commercial FE310 microcontroller). This
//! module reproduces that arrow. The output is self-contained C11:
//!
//! * the Bedrock2 word type becomes `uintptr_t` (32-bit on the target);
//! * loads and stores become `memcpy` through byte pointers, avoiding
//!   strict-aliasing trouble;
//! * multiple return values become output pointers;
//! * external calls become calls to `extern` functions the integrator
//!   provides (for the lightbulb: `MMIOREAD`/`MMIOWRITE`);
//! * `stackalloc` becomes a local array.
//!
//! The export is *not* verified (neither was the paper's); it exists for
//! interoperability and eyeball-level cross-checking against gcc output.

use crate::ast::{BinOp, Expr, Function, Program, Stmt};
use std::collections::BTreeSet;
use std::fmt::Write;

fn c_expr_typed(e: &Expr, word: &str) -> String {
    let c_expr = |e: &Expr| c_expr_typed(e, word);
    match e {
        Expr::Literal(n) => format!("({word})0x{n:x}u"),
        Expr::Var(x) => x.clone(),
        Expr::Load(s, a) => format!("_br2_load{}({})", s.bytes(), c_expr(a)),
        Expr::Op(o, a, b) => {
            let (a, b) = (c_expr(a), c_expr(b));
            match o {
                BinOp::Add => format!("({a} + {b})"),
                BinOp::Sub => format!("({a} - {b})"),
                BinOp::Mul => format!("({a} * {b})"),
                BinOp::MulHuu => {
                    format!("({word})(((uint64_t)(uint32_t){a} * (uint64_t)(uint32_t){b}) >> 32)")
                }
                BinOp::DivU => format!("_br2_divu({a}, {b})"),
                BinOp::RemU => format!("_br2_remu({a}, {b})"),
                BinOp::And => format!("({a} & {b})"),
                BinOp::Or => format!("({a} | {b})"),
                BinOp::Xor => format!("({a} ^ {b})"),
                BinOp::Sru => format!("({a} >> ({b} & 31))"),
                BinOp::Slu => format!("({a} << ({b} & 31))"),
                BinOp::Srs => format!("({word})((int32_t){a} >> ({b} & 31))"),
                BinOp::Lts => format!("({word})((int32_t){a} < (int32_t){b})"),
                BinOp::Ltu => format!("({word})({a} < {b})"),
                BinOp::Eq => format!("({word})({a} == {b})"),
            }
        }
    }
}

fn locals_of(s: &Stmt, out: &mut BTreeSet<String>) {
    match s {
        Stmt::Set(x, _) => {
            out.insert(x.clone());
        }
        Stmt::If(_, t, e) => {
            locals_of(t, out);
            locals_of(e, out);
        }
        Stmt::While(_, b) => locals_of(b, out),
        Stmt::Block(ss) => ss.iter().for_each(|s| locals_of(s, out)),
        Stmt::Call(rets, _, _) | Stmt::Interact(rets, _, _) => {
            rets.iter().for_each(|r| {
                out.insert(r.clone());
            });
        }
        Stmt::Stackalloc(x, _, b) => {
            out.insert(x.clone());
            locals_of(b, out);
        }
        _ => {}
    }
}

fn externs_of(s: &Stmt, out: &mut BTreeSet<(String, usize, usize)>) {
    match s {
        Stmt::Interact(rets, action, args) => {
            out.insert((action.clone(), args.len(), rets.len()));
        }
        Stmt::If(_, t, e) => {
            externs_of(t, out);
            externs_of(e, out);
        }
        Stmt::While(_, b) | Stmt::Stackalloc(_, _, b) => externs_of(b, out),
        Stmt::Block(ss) => ss.iter().for_each(|s| externs_of(s, out)),
        _ => {}
    }
}

fn emit_stmt(out: &mut String, s: &Stmt, depth: usize, alloc_counter: &mut u32, word: &str) {
    let pad = "  ".repeat(depth);
    let c_expr = |e: &Expr| c_expr_typed(e, word);
    match s {
        Stmt::Skip => {}
        Stmt::Set(x, e) => {
            let _ = writeln!(out, "{pad}{x} = {};", c_expr(e));
        }
        Stmt::Store(sz, a, v) => {
            let _ = writeln!(
                out,
                "{pad}_br2_store{}({}, {});",
                sz.bytes(),
                c_expr(a),
                c_expr(v)
            );
        }
        Stmt::If(c, t, e) => {
            let _ = writeln!(out, "{pad}if ({}) {{", c_expr(c));
            emit_stmt(out, t, depth + 1, alloc_counter, word);
            if **e != Stmt::Skip {
                let _ = writeln!(out, "{pad}}} else {{");
                emit_stmt(out, e, depth + 1, alloc_counter, word);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::While(c, b) => {
            let _ = writeln!(out, "{pad}while ({}) {{", c_expr(c));
            emit_stmt(out, b, depth + 1, alloc_counter, word);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Block(ss) => {
            for s in ss {
                emit_stmt(out, s, depth, alloc_counter, word);
            }
        }
        Stmt::Call(rets, f, args) => {
            let mut call_args: Vec<String> = args.iter().map(c_expr).collect();
            call_args.extend(rets.iter().map(|r| format!("&{r}")));
            let _ = writeln!(out, "{pad}{f}({});", call_args.join(", "));
        }
        Stmt::Interact(rets, action, args) => {
            let mut call_args: Vec<String> = args.iter().map(c_expr).collect();
            call_args.extend(rets.iter().map(|r| format!("&{r}")));
            let _ = writeln!(out, "{pad}{action}({});", call_args.join(", "));
        }
        Stmt::Stackalloc(x, n, b) => {
            let id = *alloc_counter;
            *alloc_counter += 1;
            let words = n.div_ceil(4);
            let _ = writeln!(out, "{pad}{{");
            let _ = writeln!(out, "{pad}  uint32_t _br2_stack{id}[{words}];");
            let _ = writeln!(out, "{pad}  {x} = ({word})(uintptr_t)&_br2_stack{id}[0];");
            emit_stmt(out, b, depth + 1, alloc_counter, word);
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

const PRELUDE: &str = r#"#include <stdint.h>
#include <string.h>

static inline uintptr_t _br2_load1(uintptr_t a) { uint8_t v; memcpy(&v, (void*)a, 1); return v; }
static inline uintptr_t _br2_load2(uintptr_t a) { uint16_t v; memcpy(&v, (void*)a, 2); return v; }
static inline uintptr_t _br2_load4(uintptr_t a) { uint32_t v; memcpy(&v, (void*)a, 4); return v; }
static inline void _br2_store1(uintptr_t a, uintptr_t v) { uint8_t x = (uint8_t)v; memcpy((void*)a, &x, 1); }
static inline void _br2_store2(uintptr_t a, uintptr_t v) { uint16_t x = (uint16_t)v; memcpy((void*)a, &x, 2); }
static inline void _br2_store4(uintptr_t a, uintptr_t v) { uint32_t x = (uint32_t)v; memcpy((void*)a, &x, 4); }
static inline uintptr_t _br2_divu(uintptr_t a, uintptr_t b) { return b == 0 ? (uintptr_t)-1 : a / b; }
static inline uintptr_t _br2_remu(uintptr_t a, uintptr_t b) { return b == 0 ? a : a % b; }
"#;

/// Prelude for [`export_for_host_testing`]: the 32-bit word type is
/// explicit and memory is a simulated flat array, so the exported program
/// computes identically on a 64-bit host.
const HOST_PRELUDE: &str = r#"#include <stdint.h>
#include <string.h>

#define BR2_MEM_BYTES (1u << 16)
static uint8_t _br2_mem[BR2_MEM_BYTES];

static inline uint32_t _br2_load1(uint32_t a) { return _br2_mem[a % BR2_MEM_BYTES]; }
static inline uint32_t _br2_load2(uint32_t a) { uint16_t v; memcpy(&v, &_br2_mem[a % BR2_MEM_BYTES], 2); return v; }
static inline uint32_t _br2_load4(uint32_t a) { uint32_t v; memcpy(&v, &_br2_mem[a % BR2_MEM_BYTES], 4); return v; }
static inline void _br2_store1(uint32_t a, uint32_t v) { _br2_mem[a % BR2_MEM_BYTES] = (uint8_t)v; }
static inline void _br2_store2(uint32_t a, uint32_t v) { uint16_t x = (uint16_t)v; memcpy(&_br2_mem[a % BR2_MEM_BYTES], &x, 2); }
static inline void _br2_store4(uint32_t a, uint32_t v) { memcpy(&_br2_mem[a % BR2_MEM_BYTES], &v, 4); }
static inline uint32_t _br2_divu(uint32_t a, uint32_t b) { return b == 0 ? 0xFFFFFFFFu : a / b; }
static inline uint32_t _br2_remu(uint32_t a, uint32_t b) { return b == 0 ? a : a % b; }
"#;

fn signature(f: &Function, word: &str) -> String {
    let mut params: Vec<String> = f.params.iter().map(|p| format!("{word} {p}")).collect();
    params.extend(f.rets.iter().map(|r| format!("{word} *_out_{r}")));
    format!("void {}({})", f.name, params.join(", "))
}

fn emit_function(out: &mut String, f: &Function, word: &str) {
    let _ = writeln!(out, "{} {{", signature(f, word));
    let mut locals = BTreeSet::new();
    locals_of(&f.body, &mut locals);
    for r in &f.rets {
        locals.insert(r.clone());
    }
    for l in &locals {
        if !f.params.contains(l) {
            let _ = writeln!(out, "  {word} {l} = 0;");
        }
    }
    let mut alloc_counter = 0;
    emit_stmt(out, &f.body, 1, &mut alloc_counter, word);
    for r in &f.rets {
        let _ = writeln!(out, "  *_out_{r} = {r};");
    }
    let _ = writeln!(out, "}}");
}

/// Exports a whole program as a single C translation unit.
///
/// External procedures used by the program are declared `extern` with one
/// `uintptr_t` parameter per argument and one `uintptr_t*` per result; the
/// integrator supplies their definitions.
pub fn export_program(p: &Program) -> String {
    export_with(p, PRELUDE, "uintptr_t")
}

/// Exports for *host-side testing*: the word type is `uint32_t` and memory
/// is a simulated 64 KiB array, so the program computes exactly as the
/// 32-bit semantics prescribe even when compiled for a 64-bit host. Used
/// by the gcc-backed differential test of the C export.
pub fn export_for_host_testing(p: &Program) -> String {
    export_with(p, HOST_PRELUDE, "uint32_t")
}

fn export_with(p: &Program, prelude: &str, word: &str) -> String {
    let mut out = String::from(prelude);
    out.push('\n');

    let mut externs = BTreeSet::new();
    for f in p.functions.values() {
        externs_of(&f.body, &mut externs);
    }
    for (action, nargs, nrets) in &externs {
        let mut params: Vec<String> = (0..*nargs).map(|i| format!("{word} a{i}")).collect();
        params.extend((0..*nrets).map(|i| format!("{word} *r{i}")));
        let _ = writeln!(out, "extern void {action}({});", params.join(", "));
    }
    out.push('\n');

    // Forward declarations, then definitions (call graph is acyclic but
    // BTreeMap order is alphabetical, not topological).
    for f in p.functions.values() {
        let _ = writeln!(out, "{};", signature(f, word));
    }
    out.push('\n');
    for f in p.functions.values() {
        emit_function(&mut out, f, word);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Function;
    use crate::dsl::*;

    fn sample_program() -> Program {
        let helper = Function::new("bump", &["x"], &["y"], set("y", add(var("x"), lit(1))));
        let main = Function::new(
            "main_loop",
            &[],
            &["r"],
            block([
                call(&["r"], "bump", [lit(41)]),
                interact(&["v"], "MMIOREAD", [lit(0x1002_404C)]),
                when(
                    eq(var("v"), lit(0)),
                    stackalloc("buf", 8, store4(var("buf"), var("r"))),
                ),
            ]),
        );
        Program::from_functions([helper, main])
    }

    #[test]
    fn exports_compilable_looking_c() {
        let c = export_program(&sample_program());
        assert!(c.contains("#include <stdint.h>"));
        assert!(c.contains("extern void MMIOREAD(uintptr_t a0, uintptr_t *r0);"));
        assert!(c.contains("void bump(uintptr_t x, uintptr_t *_out_y)"));
        assert!(c.contains("bump((uintptr_t)0x29u, &r);"));
        assert!(c.contains("uint32_t _br2_stack0[2];"));
        assert!(c.contains("*_out_y = y;"));
    }

    #[test]
    fn division_helpers_preserve_riscv_semantics() {
        let c = export_program(&sample_program());
        assert!(c.contains("b == 0 ? (uintptr_t)-1 : a / b"));
        assert!(c.contains("b == 0 ? a : a % b"));
    }

    #[test]
    fn locals_are_declared_once() {
        let f = Function::new(
            "f",
            &[],
            &["a"],
            block([set("a", lit(1)), set("a", lit(2)), set("b", lit(3))]),
        );
        let c = export_program(&Program::from_functions([f]));
        assert_eq!(c.matches("uintptr_t a = 0;").count(), 1);
        assert_eq!(c.matches("uintptr_t b = 0;").count(), 1);
    }
}

//! Pretty printing of Bedrock2 programs in a C-like concrete syntax.
//!
//! The output is for humans (debugging, documentation, and the listings in
//! EXPERIMENTS.md); [`crate::c_export`] produces output for C compilers.

use crate::ast::{Expr, Function, Size, Stmt};
use std::fmt::Write;

fn size_suffix(s: Size) -> &'static str {
    match s {
        Size::One => "1",
        Size::Two => "2",
        Size::Four => "4",
    }
}

/// Renders an expression.
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(n) => {
            if *n >= 0x1000 {
                format!("0x{n:x}")
            } else {
                n.to_string()
            }
        }
        Expr::Var(x) => x.clone(),
        Expr::Load(s, a) => format!("load{}({})", size_suffix(*s), render_expr(a)),
        Expr::Op(o, a, b) => format!("({} {} {})", render_expr(a), o.symbol(), render_expr(b)),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_stmt(out: &mut String, s: &Stmt, depth: usize) {
    match s {
        Stmt::Skip => {
            indent(out, depth);
            out.push_str("/*skip*/;\n");
        }
        Stmt::Set(x, e) => {
            indent(out, depth);
            let _ = writeln!(out, "{x} = {};", render_expr(e));
        }
        Stmt::Store(sz, a, v) => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "store{}({}, {});",
                size_suffix(*sz),
                render_expr(a),
                render_expr(v)
            );
        }
        Stmt::If(c, t, e) => {
            indent(out, depth);
            let _ = writeln!(out, "if ({}) {{", render_expr(c));
            render_stmt(out, t, depth + 1);
            if **e != Stmt::Skip {
                indent(out, depth);
                out.push_str("} else {\n");
                render_stmt(out, e, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::While(c, b) => {
            indent(out, depth);
            let _ = writeln!(out, "while ({}) {{", render_expr(c));
            render_stmt(out, b, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Block(ss) => {
            for s in ss {
                render_stmt(out, s, depth);
            }
        }
        Stmt::Call(rets, f, args) => {
            indent(out, depth);
            if !rets.is_empty() {
                let _ = write!(out, "{} = ", rets.join(", "));
            }
            let args: Vec<String> = args.iter().map(render_expr).collect();
            let _ = writeln!(out, "{f}({});", args.join(", "));
        }
        Stmt::Interact(rets, action, args) => {
            indent(out, depth);
            if !rets.is_empty() {
                let _ = write!(out, "{} = ", rets.join(", "));
            }
            let args: Vec<String> = args.iter().map(render_expr).collect();
            let _ = writeln!(out, "ext!{action}({});", args.join(", "));
        }
        Stmt::Stackalloc(x, n, b) => {
            indent(out, depth);
            let _ = writeln!(out, "{x} = stackalloc({n}); {{");
            render_stmt(out, b, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

/// Renders a whole function.
pub fn render_function(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fn {}({}) -> ({}) {{",
        f.name,
        f.params.join(", "),
        f.rets.join(", ")
    );
    render_stmt(&mut out, &f.body, 1);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Function;
    use crate::dsl::*;

    #[test]
    fn renders_readably() {
        let f = Function::new(
            "poll",
            &["base"],
            &["v"],
            block([
                while_(and(load4(var("base")), lit(0x8000_0000)), Stmt::Skip),
                set("v", load4(add(var("base"), lit(4)))),
                interact(&["r"], "MMIOREAD", [var("base")]),
            ]),
        );
        use crate::ast::Stmt;
        let s = render_function(&f);
        assert!(s.contains("fn poll(base) -> (v) {"), "{s}");
        assert!(s.contains("while ((load4(base) & 0x80000000)) {"), "{s}");
        assert!(s.contains("v = load4((base + 4));"), "{s}");
        assert!(s.contains("r = ext!MMIOREAD(base);"), "{s}");
    }

    #[test]
    fn else_branch_only_when_nontrivial() {
        use crate::ast::Stmt;
        let with_else = if_(var("c"), set("x", lit(1)), set("x", lit(2)));
        let without = if_(var("c"), set("x", lit(1)), Stmt::Skip);
        let mut a = String::new();
        render_stmt(&mut a, &with_else, 0);
        assert!(a.contains("else"));
        let mut b = String::new();
        render_stmt(&mut b, &without, 0);
        assert!(!b.contains("else"));
    }

    #[test]
    fn small_literals_decimal_large_hex() {
        assert_eq!(render_expr(&lit(42)), "42");
        assert_eq!(render_expr(&lit(0x1002_4048)), "0x10024048");
    }
}

//! A parser for the concrete syntax [`crate::display`] prints.
//!
//! `parse_program ∘ render = id` (checked by property test against randomly
//! generated programs), so the pretty-printed form is a faithful on-disk
//! format for Bedrock2 sources — the role Coq `.v` files with notations
//! played in the paper. The grammar is exactly what the printer emits:
//! fully parenthesized binary expressions, one statement per line
//! terminated by `;` or a block.

use crate::ast::{BinOp, Expr, Function, Program, Size, Stmt};
use std::fmt;

/// A parse failure, with a byte offset into the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        loop {
            let rest = &self.src[self.pos..];
            if rest.starts_with("/*") {
                match rest.find("*/") {
                    Some(end) => self.pos += end + 2,
                    None => {
                        self.pos = self.src.len();
                        return;
                    }
                }
            } else if rest.starts_with("//") {
                match rest.find('\n') {
                    Some(end) => self.pos += end + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                match rest.chars().next() {
                    Some(c) if c.is_whitespace() => self.pos += c.len_utf8(),
                    _ => return,
                }
            }
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            self.err(format!("expected '{tok}'"))
        }
    }

    /// Keyword: like `eat` but must not be followed by an identifier char.
    fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if let Some(after) = rest.strip_prefix(kw) {
            if !after
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_' || *c == '$'))
            .map_or(rest.len(), |(i, _)| i);
        let first = rest.chars().next();
        if end == 0 || first.is_some_and(|c| c.is_ascii_digit()) {
            return self.err("expected identifier");
        }
        let name = rest[..end].to_string();
        self.pos += end;
        Ok(name)
    }

    fn number(&mut self) -> Result<u32, ParseError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let (radix, body_start) = if rest.starts_with("0x") {
            (16, 2)
        } else {
            (10, 0)
        };
        let body = &rest[body_start..];
        let end = body
            .char_indices()
            .find(|(_, c)| !c.is_ascii_hexdigit())
            .map_or(body.len(), |(i, _)| i);
        if end == 0 {
            return self.err("expected number");
        }
        match u32::from_str_radix(&body[..end], radix) {
            Ok(v) => {
                self.pos += body_start + end;
                Ok(v)
            }
            Err(_) => self.err("number out of range"),
        }
    }

    fn binop(&mut self) -> Result<BinOp, ParseError> {
        // Longest symbols first (">>s" before ">>", "<s" before "<", "*h"
        // before "*", "==" before... none conflict with "=").
        const TABLE: &[(&str, BinOp)] = &[
            (">>s", BinOp::Srs),
            (">>", BinOp::Sru),
            ("<<", BinOp::Slu),
            ("<s", BinOp::Lts),
            ("<", BinOp::Ltu),
            ("==", BinOp::Eq),
            ("*h", BinOp::MulHuu),
            ("*", BinOp::Mul),
            ("+", BinOp::Add),
            ("-", BinOp::Sub),
            ("/", BinOp::DivU),
            ("%", BinOp::RemU),
            ("&", BinOp::And),
            ("|", BinOp::Or),
            ("^", BinOp::Xor),
        ];
        for (sym, op) in TABLE {
            if self.eat(sym) {
                return Ok(*op);
            }
        }
        self.err("expected binary operator")
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some('(') => {
                self.expect("(")?;
                let a = self.expr()?;
                let op = self.binop()?;
                let b = self.expr()?;
                self.expect(")")?;
                Ok(Expr::Op(op, Box::new(a), Box::new(b)))
            }
            Some(c) if c.is_ascii_digit() => Ok(Expr::Literal(self.number()?)),
            _ => {
                let name = self.ident()?;
                match name.as_str() {
                    "load1" | "load2" | "load4" => {
                        let size = match name.as_str() {
                            "load1" => Size::One,
                            "load2" => Size::Two,
                            _ => Size::Four,
                        };
                        self.expect("(")?;
                        let a = self.expr()?;
                        self.expect(")")?;
                        Ok(Expr::Load(size, Box::new(a)))
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
        }
    }

    fn block_stmts(&mut self) -> Result<Stmt, ParseError> {
        self.expect("{")?;
        let mut stmts = Vec::new();
        while !self.eat("}") {
            if self.pos >= self.src.len() {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(match stmts.len() {
            0 => Stmt::Block(vec![]),
            _ => Stmt::Block(stmts),
        })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        self.skip_ws();
        // `/*skip*/;` was consumed as a comment; a bare `;` is a skip.
        if self.eat(";") {
            return Ok(Stmt::Skip);
        }
        if self.eat_kw("if") {
            self.expect("(")?;
            let c = self.expr()?;
            self.expect(")")?;
            let t = self.block_stmts()?;
            let e = if self.eat_kw("else") {
                self.block_stmts()?
            } else {
                Stmt::Skip
            };
            return Ok(Stmt::If(c, Box::new(t), Box::new(e)));
        }
        if self.eat_kw("while") {
            self.expect("(")?;
            let c = self.expr()?;
            self.expect(")")?;
            let b = self.block_stmts()?;
            return Ok(Stmt::While(c, Box::new(b)));
        }
        for (kw, size) in [
            ("store1", Size::One),
            ("store2", Size::Two),
            ("store4", Size::Four),
        ] {
            if self.eat_kw(kw) {
                self.expect("(")?;
                let a = self.expr()?;
                self.expect(",")?;
                let v = self.expr()?;
                self.expect(")")?;
                self.expect(";")?;
                return Ok(Stmt::Store(size, a, v));
            }
        }
        if self.eat("ext!") {
            // No-result external call: `ext!ACTION(args);`
            let action = self.ident()?;
            let args = self.call_args()?;
            self.expect(";")?;
            return Ok(Stmt::Interact(vec![], action, args));
        }
        // Otherwise: a name list followed by `=` (set / call / interact /
        // stackalloc) or a no-result call `f(args);`.
        let first = self.ident()?;
        if self.peek() == Some('(') {
            let args = self.call_args()?;
            self.expect(";")?;
            return Ok(Stmt::Call(vec![], first, args));
        }
        let mut names = vec![first];
        while self.eat(",") {
            names.push(self.ident()?);
        }
        self.expect("=")?;
        if self.eat("ext!") {
            let action = self.ident()?;
            let args = self.call_args()?;
            self.expect(";")?;
            return Ok(Stmt::Interact(names, action, args));
        }
        if self.eat_kw("stackalloc") {
            self.expect("(")?;
            let n = self.number()?;
            self.expect(")")?;
            self.expect(";")?;
            let body = self.block_stmts()?;
            if names.len() != 1 {
                return self.err("stackalloc binds exactly one name");
            }
            return Ok(Stmt::Stackalloc(names.remove(0), n, Box::new(body)));
        }
        // Could be `x = f(args);` (call) or `x = expr;` (set). Disambiguate
        // by trying an identifier followed by '('.
        let save = self.pos;
        if let Ok(callee) = self.ident() {
            if self.peek() == Some('(') && !callee.starts_with("load") {
                let args = self.call_args()?;
                self.expect(";")?;
                return Ok(Stmt::Call(names, callee, args));
            }
        }
        self.pos = save;
        if names.len() != 1 {
            return self.err("tuple assignment requires a call");
        }
        let e = self.expr()?;
        self.expect(";")?;
        Ok(Stmt::Set(names.remove(0), e))
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect("(")?;
        let mut args = Vec::new();
        if !self.eat(")") {
            loop {
                args.push(self.expr()?);
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        Ok(args)
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        self.expect("fn")?;
        let name = self.ident()?;
        self.expect("(")?;
        let mut params = Vec::new();
        if !self.eat(")") {
            loop {
                params.push(self.ident()?);
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        self.expect("->")?;
        self.expect("(")?;
        let mut rets = Vec::new();
        if !self.eat(")") {
            loop {
                rets.push(self.ident()?);
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        let body = self.block_stmts()?;
        Ok(Function {
            name,
            params,
            rets,
            body,
        })
    }
}

/// Parses a whole program (a sequence of `fn` definitions).
///
/// # Errors
///
/// The first [`ParseError`] encountered.
///
/// # Examples
///
/// ```
/// use bedrock2::parse::parse_program;
/// let p = parse_program("fn inc(x) -> (y) { y = (x + 1); }").unwrap();
/// assert!(p.function("inc").is_some());
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser { src, pos: 0 };
    let mut prog = Program::new();
    loop {
        p.skip_ws();
        if p.pos >= src.len() {
            break;
        }
        prog.add(p.function()?);
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::render_function;
    use crate::dsl::*;

    fn roundtrip(f: Function) {
        let text = render_function(&f);
        let parsed = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        let got = parsed.function(&f.name).expect("function present");
        assert_eq!(
            wrap(normalize(&got.body)),
            wrap(normalize(&f.body)),
            "{text}"
        );
        assert_eq!(got.params, f.params);
        assert_eq!(got.rets, f.rets);
    }

    /// Blocks print flat, so nested Block structure is not preserved;
    /// normalize by flattening before comparison.
    fn normalize(s: &Stmt) -> Stmt {
        match s {
            Stmt::Block(ss) => {
                let mut out = Vec::new();
                for s in ss {
                    match normalize(s) {
                        Stmt::Block(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                Stmt::Block(out)
            }
            Stmt::If(c, t, e) => Stmt::If(
                c.clone(),
                Box::new(wrap(normalize(t))),
                Box::new(wrap(normalize(e))),
            ),
            Stmt::While(c, b) => Stmt::While(c.clone(), Box::new(wrap(normalize(b)))),
            Stmt::Stackalloc(x, n, b) => {
                Stmt::Stackalloc(x.clone(), *n, Box::new(wrap(normalize(b))))
            }
            other => other.clone(),
        }
    }

    /// Single statements parse back as 1-element blocks; normalize both
    /// directions into Block form.
    fn wrap(s: Stmt) -> Stmt {
        match s {
            Stmt::Block(v) => Stmt::Block(v),
            Stmt::Skip => Stmt::Block(vec![]),
            other => Stmt::Block(vec![other]),
        }
    }

    #[test]
    fn expressions_roundtrip() {
        roundtrip(Function::new(
            "f",
            &["a", "b"],
            &["r"],
            set(
                "r",
                add(
                    mul(var("a"), lit(0xDEAD)),
                    srs(load2(add(var("b"), lit(2))), lts(var("a"), var("b"))),
                ),
            ),
        ));
    }

    #[test]
    fn statements_roundtrip() {
        roundtrip(Function::new(
            "g",
            &["n"],
            &["s"],
            block([
                set("s", lit(0)),
                while_(
                    var("n"),
                    block([
                        set("s", add(var("s"), var("n"))),
                        set("n", sub(var("n"), lit(1))),
                    ]),
                ),
                if_(
                    eq(var("s"), lit(0)),
                    store4(lit(0x100), var("s")),
                    store1(lit(0x104), lit(7)),
                ),
                stackalloc("buf", 16, store4(var("buf"), var("s"))),
            ]),
        ));
    }

    #[test]
    fn calls_and_interacts_roundtrip() {
        roundtrip(Function::new(
            "h",
            &[],
            &["x"],
            block([
                call(&["x", "y"], "divmod", [lit(47), lit(10)]),
                call(&[], "effect", []),
                interact(&["v"], "MMIOREAD", [lit(0x1002_404C)]),
                interact(&[], "MMIOWRITE", [lit(0x1001_200C), var("v")]),
            ]),
        ));
    }

    #[test]
    fn parse_errors_carry_positions() {
        let e = parse_program("fn f( -> () {}").unwrap_err();
        assert!(e.at > 0);
        assert!(parse_program("fn f() -> () { x = ; }").is_err());
        assert!(parse_program("fn f() -> () { while (x) }").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program("// leading\nfn f() -> (r) { /* inline */ r = 1; // trailing\n }")
            .unwrap();
        assert!(p.function("f").is_some());
    }
}
